#!/usr/bin/env python3
"""CI driver for the `dise serve` job.

Pipes a mixed batch of concurrent requests (every pair of a `dise gen`
corpus, each sent twice, shuffled deterministically) into one resident
server, then byte-diffs each `analyze` response's `output` member
against the one-shot CLI's verdict residue
(`dise run … --stats json | grep -v '^{'`) and checks that duplicate
requests got byte-identical responses from the cache/coalescing layer.

The contention leg reruns the batch against a server sharing a `--store`
directory with concurrent one-shot CLI runs of the same pairs: the
advisory store lock must keep both sides clean (identical verdicts, a
store `stat` that parses, no crashes).

Usage: serve_ci.py <dise-binary> <corpus-dir> [--jobs N]
"""

import json
import random
import subprocess
import sys
import tempfile
from pathlib import Path


def fail(message):
    print(f"serve-ci: FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def one_shot_residue(dise, base, mod, proc, store=None):
    cmd = [dise, "run", str(base), str(mod), proc, "--stats", "json"]
    if store:
        cmd += ["--store", str(store)]
    out = subprocess.run(cmd, capture_output=True, text=True)
    if out.returncode != 0:
        fail(f"one-shot run failed for {base}: {out.stderr}")
    return "".join(
        line + "\n" for line in out.stdout.splitlines() if not line.startswith("{")
    )


def run_server(dise, requests, extra_args=()):
    """Sends `requests` to one `dise serve` process; returns {id: response}."""
    proc = subprocess.run(
        [dise, "serve", *extra_args],
        input="".join(json.dumps(r) + "\n" for r in requests),
        capture_output=True,
        text=True,
    )
    if proc.returncode != 0:
        fail(f"serve exited with {proc.returncode}: {proc.stderr}")
    responses = {}
    for line in proc.stdout.splitlines():
        try:
            value = json.loads(line)
        except json.JSONDecodeError as e:
            fail(f"unparseable response line {line!r}: {e}")
        responses.setdefault(value.get("id"), []).append((line, value))
    return responses


def main():
    args = [a for a in sys.argv[1:] if not a.startswith("--")]
    jobs = "1"
    for a in sys.argv[1:]:
        if a.startswith("--jobs="):
            jobs = a.split("=", 1)[1]
    if len(args) != 2:
        fail(__doc__)
    dise, corpus = args[0], Path(args[1])
    manifest = json.loads((corpus / "manifest.json").read_text())
    proc_name = manifest["proc"]
    pairs = [
        (corpus / p["base"], corpus / p["modified"]) for p in manifest["pairs"]
    ]
    if not pairs:
        fail("empty corpus")

    # --- Leg 1: mixed concurrent batch, byte-diffed vs one-shot runs ----
    requests = []
    next_id = 1
    for i, (base, mod) in enumerate(pairs):
        for dup in range(2):  # every pair twice: the repeat must coalesce/hit
            requests.append(
                {
                    "jsonrpc": "2.0",
                    "id": next_id,
                    "method": "analyze",
                    "params": {
                        "request_id": f"pair{i:04}-{dup}",
                        "proc": proc_name,
                        "base_path": str(base),
                        "mod_path": str(mod),
                    },
                }
            )
            next_id += 1
    random.Random(0).shuffle(requests)  # deterministic mixing
    status_id = next_id
    requests.append({"jsonrpc": "2.0", "id": status_id, "method": "status"})

    responses = run_server(dise, requests, ["--jobs", jobs])
    for request in requests:
        if request["id"] not in responses:
            fail(f"no response for id {request['id']}")

    outputs = {}
    for request in requests:
        if request["method"] != "analyze":
            continue
        line, value = responses[request["id"]][0]
        result = value.get("result")
        if result is None:
            fail(f"request {request['id']} errored: {line}")
        pair_tag = request["params"]["request_id"].rsplit("-", 1)[0]
        outputs.setdefault(pair_tag, []).append(result["output"])
    for i, (base, mod) in enumerate(pairs):
        expected = one_shot_residue(dise, base, mod, proc_name)
        for output in outputs[f"pair{i:04}"]:
            if output != expected:
                fail(
                    f"pair {i}: serve output diverges from the one-shot residue\n"
                    f"serve:\n{output}\none-shot:\n{expected}"
                )

    _, status = responses[status_id][0]
    m = status["result"]
    if m["explorations"] > len(pairs):
        fail(f"{m['explorations']} explorations for {len(pairs)} distinct pairs: {m}")
    if m["cache_hits"] + m["coalesced"] < len(pairs):
        fail(f"duplicates neither hit nor coalesced: {m}")
    print(
        f"serve-ci: leg 1 OK — {len(pairs)} pairs x2 at jobs={jobs}: "
        f"{m['explorations']} explorations, {m['cache_hits']} hits, "
        f"{m['coalesced']} coalesced, outputs byte-identical to one-shot runs"
    )

    # --- Leg 2: shared-store contention with concurrent one-shot runs ---
    with tempfile.TemporaryDirectory(prefix="dise-serve-ci-store") as store:
        cli_procs = [
            subprocess.Popen(
                [dise, "run", str(b), str(m_), proc_name, "--stats", "json",
                 "--store", store],
                stdout=subprocess.PIPE,
                stderr=subprocess.PIPE,
                text=True,
            )
            for b, m_ in pairs
        ]
        analyze = [r for r in requests if r["method"] == "analyze"]
        responses = run_server(dise, analyze, ["--jobs", jobs, "--store", store])
        for p, (b, _) in zip(cli_procs, pairs):
            out, err = p.communicate(timeout=300)
            if p.returncode != 0:
                fail(f"concurrent one-shot run for {b} failed under contention: {err}")
        for request in analyze:
            line, value = responses[request["id"]][0]
            if value.get("result") is None:
                fail(f"serve request {request['id']} errored under contention: {line}")
        stat = subprocess.run(
            [dise, "store", "stat", store], capture_output=True, text=True
        )
        if stat.returncode != 0:
            fail(f"store stat failed after contention: {stat.stderr}")
        # Both sides kept writing; the verdicts must still match one-shots.
        for i, (base, mod) in enumerate(pairs):
            expected = one_shot_residue(dise, base, mod, proc_name)
            _, value = responses[
                next(
                    r["id"] for r in analyze
                    if r["params"]["request_id"] == f"pair{i:04}-0"
                )
            ][0]
            if value["result"]["output"] != expected:
                fail(f"pair {i}: contention leg verdict diverged")
        print(
            f"serve-ci: leg 2 OK — shared store survived {len(pairs)} concurrent "
            f"one-shot runs + server saves; store stat clean"
        )


if __name__ == "__main__":
    main()
