/root/repo/target/debug/deps/dise_evolution-86a5baf80eb62d8d.d: crates/evolution/src/lib.rs crates/evolution/src/diffsum.rs crates/evolution/src/inputs.rs crates/evolution/src/localize.rs crates/evolution/src/report.rs crates/evolution/src/witness.rs

/root/repo/target/debug/deps/dise_evolution-86a5baf80eb62d8d: crates/evolution/src/lib.rs crates/evolution/src/diffsum.rs crates/evolution/src/inputs.rs crates/evolution/src/localize.rs crates/evolution/src/report.rs crates/evolution/src/witness.rs

crates/evolution/src/lib.rs:
crates/evolution/src/diffsum.rs:
crates/evolution/src/inputs.rs:
crates/evolution/src/localize.rs:
crates/evolution/src/report.rs:
crates/evolution/src/witness.rs:
