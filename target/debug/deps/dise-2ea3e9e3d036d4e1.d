/root/repo/target/debug/deps/dise-2ea3e9e3d036d4e1.d: crates/cli/src/main.rs

/root/repo/target/debug/deps/dise-2ea3e9e3d036d4e1: crates/cli/src/main.rs

crates/cli/src/main.rs:
