/root/repo/target/debug/deps/loops_and_calls-7175bf10af451230.d: tests/loops_and_calls.rs Cargo.toml

/root/repo/target/debug/deps/libloops_and_calls-7175bf10af451230.rmeta: tests/loops_and_calls.rs Cargo.toml

tests/loops_and_calls.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
