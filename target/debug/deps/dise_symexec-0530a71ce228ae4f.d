/root/repo/target/debug/deps/dise_symexec-0530a71ce228ae4f.d: crates/symexec/src/lib.rs crates/symexec/src/concolic.rs crates/symexec/src/concrete.rs crates/symexec/src/env.rs crates/symexec/src/eval.rs crates/symexec/src/executor.rs crates/symexec/src/state.rs crates/symexec/src/tree.rs

/root/repo/target/debug/deps/dise_symexec-0530a71ce228ae4f: crates/symexec/src/lib.rs crates/symexec/src/concolic.rs crates/symexec/src/concrete.rs crates/symexec/src/env.rs crates/symexec/src/eval.rs crates/symexec/src/executor.rs crates/symexec/src/state.rs crates/symexec/src/tree.rs

crates/symexec/src/lib.rs:
crates/symexec/src/concolic.rs:
crates/symexec/src/concrete.rs:
crates/symexec/src/env.rs:
crates/symexec/src/eval.rs:
crates/symexec/src/executor.rs:
crates/symexec/src/state.rs:
crates/symexec/src/tree.rs:
