/root/repo/target/debug/deps/concrete_oracle-214b278ee2a477de.d: tests/concrete_oracle.rs

/root/repo/target/debug/deps/concrete_oracle-214b278ee2a477de: tests/concrete_oracle.rs

tests/concrete_oracle.rs:
