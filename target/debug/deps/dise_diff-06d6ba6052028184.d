/root/repo/target/debug/deps/dise_diff-06d6ba6052028184.d: crates/diff/src/lib.rs crates/diff/src/cfg_map.rs crates/diff/src/line_diff.rs crates/diff/src/stmt_diff.rs

/root/repo/target/debug/deps/libdise_diff-06d6ba6052028184.rlib: crates/diff/src/lib.rs crates/diff/src/cfg_map.rs crates/diff/src/line_diff.rs crates/diff/src/stmt_diff.rs

/root/repo/target/debug/deps/libdise_diff-06d6ba6052028184.rmeta: crates/diff/src/lib.rs crates/diff/src/cfg_map.rs crates/diff/src/line_diff.rs crates/diff/src/stmt_diff.rs

crates/diff/src/lib.rs:
crates/diff/src/cfg_map.rs:
crates/diff/src/line_diff.rs:
crates/diff/src/stmt_diff.rs:
