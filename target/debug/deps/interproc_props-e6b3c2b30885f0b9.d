/root/repo/target/debug/deps/interproc_props-e6b3c2b30885f0b9.d: tests/interproc_props.rs

/root/repo/target/debug/deps/interproc_props-e6b3c2b30885f0b9: tests/interproc_props.rs

tests/interproc_props.rs:
