/root/repo/target/debug/deps/dise_diff-c2f6714afdf94aff.d: crates/diff/src/lib.rs crates/diff/src/cfg_map.rs crates/diff/src/line_diff.rs crates/diff/src/stmt_diff.rs

/root/repo/target/debug/deps/dise_diff-c2f6714afdf94aff: crates/diff/src/lib.rs crates/diff/src/cfg_map.rs crates/diff/src/line_diff.rs crates/diff/src/stmt_diff.rs

crates/diff/src/lib.rs:
crates/diff/src/cfg_map.rs:
crates/diff/src/line_diff.rs:
crates/diff/src/stmt_diff.rs:
