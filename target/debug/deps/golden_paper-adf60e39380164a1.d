/root/repo/target/debug/deps/golden_paper-adf60e39380164a1.d: tests/golden_paper.rs

/root/repo/target/debug/deps/golden_paper-adf60e39380164a1: tests/golden_paper.rs

tests/golden_paper.rs:
