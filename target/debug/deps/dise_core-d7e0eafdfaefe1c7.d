/root/repo/target/debug/deps/dise_core-d7e0eafdfaefe1c7.d: crates/core/src/lib.rs crates/core/src/affected.rs crates/core/src/directed.rs crates/core/src/dise.rs crates/core/src/interproc.rs crates/core/src/removed.rs crates/core/src/report.rs crates/core/src/theorem.rs

/root/repo/target/debug/deps/libdise_core-d7e0eafdfaefe1c7.rlib: crates/core/src/lib.rs crates/core/src/affected.rs crates/core/src/directed.rs crates/core/src/dise.rs crates/core/src/interproc.rs crates/core/src/removed.rs crates/core/src/report.rs crates/core/src/theorem.rs

/root/repo/target/debug/deps/libdise_core-d7e0eafdfaefe1c7.rmeta: crates/core/src/lib.rs crates/core/src/affected.rs crates/core/src/directed.rs crates/core/src/dise.rs crates/core/src/interproc.rs crates/core/src/removed.rs crates/core/src/report.rs crates/core/src/theorem.rs

crates/core/src/lib.rs:
crates/core/src/affected.rs:
crates/core/src/directed.rs:
crates/core/src/dise.rs:
crates/core/src/interproc.rs:
crates/core/src/removed.rs:
crates/core/src/report.rs:
crates/core/src/theorem.rs:
