/root/repo/target/debug/deps/properties-3d27f4f5e0564d11.d: tests/properties.rs

/root/repo/target/debug/deps/properties-3d27f4f5e0564d11: tests/properties.rs

tests/properties.rs:
