/root/repo/target/debug/deps/criterion-4cf2c5eb9e632818.d: crates/criterion-stub/src/lib.rs

/root/repo/target/debug/deps/libcriterion-4cf2c5eb9e632818.rlib: crates/criterion-stub/src/lib.rs

/root/repo/target/debug/deps/libcriterion-4cf2c5eb9e632818.rmeta: crates/criterion-stub/src/lib.rs

crates/criterion-stub/src/lib.rs:
