/root/repo/target/debug/deps/evolution-0ece1e645ebd5223.d: tests/evolution.rs Cargo.toml

/root/repo/target/debug/deps/libevolution-0ece1e645ebd5223.rmeta: tests/evolution.rs Cargo.toml

tests/evolution.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
