/root/repo/target/debug/deps/dise_symexec-330ad432ee409897.d: crates/symexec/src/lib.rs crates/symexec/src/concolic.rs crates/symexec/src/concrete.rs crates/symexec/src/env.rs crates/symexec/src/eval.rs crates/symexec/src/executor.rs crates/symexec/src/state.rs crates/symexec/src/tree.rs

/root/repo/target/debug/deps/libdise_symexec-330ad432ee409897.rlib: crates/symexec/src/lib.rs crates/symexec/src/concolic.rs crates/symexec/src/concrete.rs crates/symexec/src/env.rs crates/symexec/src/eval.rs crates/symexec/src/executor.rs crates/symexec/src/state.rs crates/symexec/src/tree.rs

/root/repo/target/debug/deps/libdise_symexec-330ad432ee409897.rmeta: crates/symexec/src/lib.rs crates/symexec/src/concolic.rs crates/symexec/src/concrete.rs crates/symexec/src/env.rs crates/symexec/src/eval.rs crates/symexec/src/executor.rs crates/symexec/src/state.rs crates/symexec/src/tree.rs

crates/symexec/src/lib.rs:
crates/symexec/src/concolic.rs:
crates/symexec/src/concrete.rs:
crates/symexec/src/env.rs:
crates/symexec/src/eval.rs:
crates/symexec/src/executor.rs:
crates/symexec/src/state.rs:
crates/symexec/src/tree.rs:
