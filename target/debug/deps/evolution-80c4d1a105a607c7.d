/root/repo/target/debug/deps/evolution-80c4d1a105a607c7.d: crates/bench/benches/evolution.rs Cargo.toml

/root/repo/target/debug/deps/libevolution-80c4d1a105a607c7.rmeta: crates/bench/benches/evolution.rs Cargo.toml

crates/bench/benches/evolution.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
