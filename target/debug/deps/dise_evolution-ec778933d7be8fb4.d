/root/repo/target/debug/deps/dise_evolution-ec778933d7be8fb4.d: crates/evolution/src/lib.rs crates/evolution/src/diffsum.rs crates/evolution/src/inputs.rs crates/evolution/src/localize.rs crates/evolution/src/report.rs crates/evolution/src/witness.rs

/root/repo/target/debug/deps/libdise_evolution-ec778933d7be8fb4.rlib: crates/evolution/src/lib.rs crates/evolution/src/diffsum.rs crates/evolution/src/inputs.rs crates/evolution/src/localize.rs crates/evolution/src/report.rs crates/evolution/src/witness.rs

/root/repo/target/debug/deps/libdise_evolution-ec778933d7be8fb4.rmeta: crates/evolution/src/lib.rs crates/evolution/src/diffsum.rs crates/evolution/src/inputs.rs crates/evolution/src/localize.rs crates/evolution/src/report.rs crates/evolution/src/witness.rs

crates/evolution/src/lib.rs:
crates/evolution/src/diffsum.rs:
crates/evolution/src/inputs.rs:
crates/evolution/src/localize.rs:
crates/evolution/src/report.rs:
crates/evolution/src/witness.rs:
