/root/repo/target/debug/deps/interproc_props-0e2ada1b5f6e2614.d: tests/interproc_props.rs Cargo.toml

/root/repo/target/debug/deps/libinterproc_props-0e2ada1b5f6e2614.rmeta: tests/interproc_props.rs Cargo.toml

tests/interproc_props.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
