/root/repo/target/debug/deps/dise_ir-1861d85ab72e0cbc.d: crates/ir/src/lib.rs crates/ir/src/ast.rs crates/ir/src/builder.rs crates/ir/src/error.rs crates/ir/src/inline.rs crates/ir/src/lexer.rs crates/ir/src/parser.rs crates/ir/src/pretty.rs crates/ir/src/span.rs crates/ir/src/token.rs crates/ir/src/typeck.rs Cargo.toml

/root/repo/target/debug/deps/libdise_ir-1861d85ab72e0cbc.rmeta: crates/ir/src/lib.rs crates/ir/src/ast.rs crates/ir/src/builder.rs crates/ir/src/error.rs crates/ir/src/inline.rs crates/ir/src/lexer.rs crates/ir/src/parser.rs crates/ir/src/pretty.rs crates/ir/src/span.rs crates/ir/src/token.rs crates/ir/src/typeck.rs Cargo.toml

crates/ir/src/lib.rs:
crates/ir/src/ast.rs:
crates/ir/src/builder.rs:
crates/ir/src/error.rs:
crates/ir/src/inline.rs:
crates/ir/src/lexer.rs:
crates/ir/src/parser.rs:
crates/ir/src/pretty.rs:
crates/ir/src/span.rs:
crates/ir/src/token.rs:
crates/ir/src/typeck.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
