/root/repo/target/debug/deps/properties-3f6c1a8c5bebaed1.d: tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-3f6c1a8c5bebaed1.rmeta: tests/properties.rs Cargo.toml

tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
