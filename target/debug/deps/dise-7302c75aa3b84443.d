/root/repo/target/debug/deps/dise-7302c75aa3b84443.d: src/lib.rs

/root/repo/target/debug/deps/libdise-7302c75aa3b84443.rlib: src/lib.rs

/root/repo/target/debug/deps/libdise-7302c75aa3b84443.rmeta: src/lib.rs

src/lib.rs:
