/root/repo/target/debug/deps/dise_artifacts-4867ac2813a4753f.d: crates/artifacts/src/lib.rs crates/artifacts/src/asw.rs crates/artifacts/src/figures.rs crates/artifacts/src/oae.rs crates/artifacts/src/random.rs crates/artifacts/src/wbs.rs Cargo.toml

/root/repo/target/debug/deps/libdise_artifacts-4867ac2813a4753f.rmeta: crates/artifacts/src/lib.rs crates/artifacts/src/asw.rs crates/artifacts/src/figures.rs crates/artifacts/src/oae.rs crates/artifacts/src/random.rs crates/artifacts/src/wbs.rs Cargo.toml

crates/artifacts/src/lib.rs:
crates/artifacts/src/asw.rs:
crates/artifacts/src/figures.rs:
crates/artifacts/src/oae.rs:
crates/artifacts/src/random.rs:
crates/artifacts/src/wbs.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
