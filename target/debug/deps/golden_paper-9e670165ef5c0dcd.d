/root/repo/target/debug/deps/golden_paper-9e670165ef5c0dcd.d: tests/golden_paper.rs Cargo.toml

/root/repo/target/debug/deps/libgolden_paper-9e670165ef5c0dcd.rmeta: tests/golden_paper.rs Cargo.toml

tests/golden_paper.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
