/root/repo/target/debug/deps/dise-262c0f6f0cfe65ef.d: src/lib.rs

/root/repo/target/debug/deps/dise-262c0f6f0cfe65ef: src/lib.rs

src/lib.rs:
