/root/repo/target/debug/deps/proptest-7ef833d703f4d0b4.d: crates/proptest-stub/src/lib.rs

/root/repo/target/debug/deps/proptest-7ef833d703f4d0b4: crates/proptest-stub/src/lib.rs

crates/proptest-stub/src/lib.rs:
