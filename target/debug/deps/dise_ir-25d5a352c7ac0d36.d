/root/repo/target/debug/deps/dise_ir-25d5a352c7ac0d36.d: crates/ir/src/lib.rs crates/ir/src/ast.rs crates/ir/src/builder.rs crates/ir/src/error.rs crates/ir/src/inline.rs crates/ir/src/lexer.rs crates/ir/src/parser.rs crates/ir/src/pretty.rs crates/ir/src/span.rs crates/ir/src/token.rs crates/ir/src/typeck.rs

/root/repo/target/debug/deps/dise_ir-25d5a352c7ac0d36: crates/ir/src/lib.rs crates/ir/src/ast.rs crates/ir/src/builder.rs crates/ir/src/error.rs crates/ir/src/inline.rs crates/ir/src/lexer.rs crates/ir/src/parser.rs crates/ir/src/pretty.rs crates/ir/src/span.rs crates/ir/src/token.rs crates/ir/src/typeck.rs

crates/ir/src/lib.rs:
crates/ir/src/ast.rs:
crates/ir/src/builder.rs:
crates/ir/src/error.rs:
crates/ir/src/inline.rs:
crates/ir/src/lexer.rs:
crates/ir/src/parser.rs:
crates/ir/src/pretty.rs:
crates/ir/src/span.rs:
crates/ir/src/token.rs:
crates/ir/src/typeck.rs:
