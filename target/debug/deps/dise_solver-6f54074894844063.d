/root/repo/target/debug/deps/dise_solver-6f54074894844063.d: crates/solver/src/lib.rs crates/solver/src/constraint.rs crates/solver/src/fm.rs crates/solver/src/incremental.rs crates/solver/src/intern.rs crates/solver/src/interval.rs crates/solver/src/linear.rs crates/solver/src/model.rs crates/solver/src/simplify.rs crates/solver/src/solve.rs crates/solver/src/sym.rs Cargo.toml

/root/repo/target/debug/deps/libdise_solver-6f54074894844063.rmeta: crates/solver/src/lib.rs crates/solver/src/constraint.rs crates/solver/src/fm.rs crates/solver/src/incremental.rs crates/solver/src/intern.rs crates/solver/src/interval.rs crates/solver/src/linear.rs crates/solver/src/model.rs crates/solver/src/simplify.rs crates/solver/src/solve.rs crates/solver/src/sym.rs Cargo.toml

crates/solver/src/lib.rs:
crates/solver/src/constraint.rs:
crates/solver/src/fm.rs:
crates/solver/src/incremental.rs:
crates/solver/src/intern.rs:
crates/solver/src/interval.rs:
crates/solver/src/linear.rs:
crates/solver/src/model.rs:
crates/solver/src/simplify.rs:
crates/solver/src/solve.rs:
crates/solver/src/sym.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
