/root/repo/target/debug/deps/criterion-000fb1de02e5c76a.d: crates/criterion-stub/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libcriterion-000fb1de02e5c76a.rmeta: crates/criterion-stub/src/lib.rs Cargo.toml

crates/criterion-stub/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
