/root/repo/target/debug/deps/dise-e0f4c786a3f84d55.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libdise-e0f4c786a3f84d55.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
