/root/repo/target/debug/deps/evolution-a36314b92a136faa.d: tests/evolution.rs

/root/repo/target/debug/deps/evolution-a36314b92a136faa: tests/evolution.rs

tests/evolution.rs:
