/root/repo/target/debug/deps/dise_diff-d84e267dff0498a3.d: crates/diff/src/lib.rs crates/diff/src/cfg_map.rs crates/diff/src/line_diff.rs crates/diff/src/stmt_diff.rs Cargo.toml

/root/repo/target/debug/deps/libdise_diff-d84e267dff0498a3.rmeta: crates/diff/src/lib.rs crates/diff/src/cfg_map.rs crates/diff/src/line_diff.rs crates/diff/src/stmt_diff.rs Cargo.toml

crates/diff/src/lib.rs:
crates/diff/src/cfg_map.rs:
crates/diff/src/line_diff.rs:
crates/diff/src/stmt_diff.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
