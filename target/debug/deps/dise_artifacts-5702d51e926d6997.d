/root/repo/target/debug/deps/dise_artifacts-5702d51e926d6997.d: crates/artifacts/src/lib.rs crates/artifacts/src/asw.rs crates/artifacts/src/figures.rs crates/artifacts/src/oae.rs crates/artifacts/src/random.rs crates/artifacts/src/wbs.rs

/root/repo/target/debug/deps/dise_artifacts-5702d51e926d6997: crates/artifacts/src/lib.rs crates/artifacts/src/asw.rs crates/artifacts/src/figures.rs crates/artifacts/src/oae.rs crates/artifacts/src/random.rs crates/artifacts/src/wbs.rs

crates/artifacts/src/lib.rs:
crates/artifacts/src/asw.rs:
crates/artifacts/src/figures.rs:
crates/artifacts/src/oae.rs:
crates/artifacts/src/random.rs:
crates/artifacts/src/wbs.rs:
