/root/repo/target/debug/deps/cli-e6d4c1de821f68cd.d: crates/cli/tests/cli.rs

/root/repo/target/debug/deps/cli-e6d4c1de821f68cd: crates/cli/tests/cli.rs

crates/cli/tests/cli.rs:

# env-dep:CARGO_BIN_EXE_dise=/root/repo/target/debug/dise
