/root/repo/target/debug/deps/dise_regression-c09baea30061d149.d: crates/regression/src/lib.rs crates/regression/src/select.rs crates/regression/src/suite.rs crates/regression/src/testgen.rs Cargo.toml

/root/repo/target/debug/deps/libdise_regression-c09baea30061d149.rmeta: crates/regression/src/lib.rs crates/regression/src/select.rs crates/regression/src/suite.rs crates/regression/src/testgen.rs Cargo.toml

crates/regression/src/lib.rs:
crates/regression/src/select.rs:
crates/regression/src/suite.rs:
crates/regression/src/testgen.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
