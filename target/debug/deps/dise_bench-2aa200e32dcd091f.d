/root/repo/target/debug/deps/dise_bench-2aa200e32dcd091f.d: crates/bench/src/main.rs crates/bench/src/ablation.rs crates/bench/src/evolution.rs crates/bench/src/figures.rs crates/bench/src/tables.rs

/root/repo/target/debug/deps/dise_bench-2aa200e32dcd091f: crates/bench/src/main.rs crates/bench/src/ablation.rs crates/bench/src/evolution.rs crates/bench/src/figures.rs crates/bench/src/tables.rs

crates/bench/src/main.rs:
crates/bench/src/ablation.rs:
crates/bench/src/evolution.rs:
crates/bench/src/figures.rs:
crates/bench/src/tables.rs:
