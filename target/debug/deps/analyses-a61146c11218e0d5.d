/root/repo/target/debug/deps/analyses-a61146c11218e0d5.d: crates/bench/benches/analyses.rs Cargo.toml

/root/repo/target/debug/deps/libanalyses-a61146c11218e0d5.rmeta: crates/bench/benches/analyses.rs Cargo.toml

crates/bench/benches/analyses.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
