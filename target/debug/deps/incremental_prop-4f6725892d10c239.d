/root/repo/target/debug/deps/incremental_prop-4f6725892d10c239.d: crates/solver/tests/incremental_prop.rs

/root/repo/target/debug/deps/incremental_prop-4f6725892d10c239: crates/solver/tests/incremental_prop.rs

crates/solver/tests/incremental_prop.rs:
