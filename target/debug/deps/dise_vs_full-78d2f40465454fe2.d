/root/repo/target/debug/deps/dise_vs_full-78d2f40465454fe2.d: crates/bench/benches/dise_vs_full.rs Cargo.toml

/root/repo/target/debug/deps/libdise_vs_full-78d2f40465454fe2.rmeta: crates/bench/benches/dise_vs_full.rs Cargo.toml

crates/bench/benches/dise_vs_full.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
