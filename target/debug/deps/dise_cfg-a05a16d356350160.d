/root/repo/target/debug/deps/dise_cfg-a05a16d356350160.d: crates/cfg/src/lib.rs crates/cfg/src/build.rs crates/cfg/src/control_dep.rs crates/cfg/src/dataflow.rs crates/cfg/src/defuse.rs crates/cfg/src/dominator.rs crates/cfg/src/dot.rs crates/cfg/src/graph.rs crates/cfg/src/reach.rs crates/cfg/src/scc.rs Cargo.toml

/root/repo/target/debug/deps/libdise_cfg-a05a16d356350160.rmeta: crates/cfg/src/lib.rs crates/cfg/src/build.rs crates/cfg/src/control_dep.rs crates/cfg/src/dataflow.rs crates/cfg/src/defuse.rs crates/cfg/src/dominator.rs crates/cfg/src/dot.rs crates/cfg/src/graph.rs crates/cfg/src/reach.rs crates/cfg/src/scc.rs Cargo.toml

crates/cfg/src/lib.rs:
crates/cfg/src/build.rs:
crates/cfg/src/control_dep.rs:
crates/cfg/src/dataflow.rs:
crates/cfg/src/defuse.rs:
crates/cfg/src/dominator.rs:
crates/cfg/src/dot.rs:
crates/cfg/src/graph.rs:
crates/cfg/src/reach.rs:
crates/cfg/src/scc.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
