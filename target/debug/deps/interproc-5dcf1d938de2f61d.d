/root/repo/target/debug/deps/interproc-5dcf1d938de2f61d.d: crates/bench/benches/interproc.rs Cargo.toml

/root/repo/target/debug/deps/libinterproc-5dcf1d938de2f61d.rmeta: crates/bench/benches/interproc.rs Cargo.toml

crates/bench/benches/interproc.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
