/root/repo/target/debug/deps/dise_solver-10695ca579f036f3.d: crates/solver/src/lib.rs crates/solver/src/constraint.rs crates/solver/src/fm.rs crates/solver/src/incremental.rs crates/solver/src/intern.rs crates/solver/src/interval.rs crates/solver/src/linear.rs crates/solver/src/model.rs crates/solver/src/simplify.rs crates/solver/src/solve.rs crates/solver/src/sym.rs

/root/repo/target/debug/deps/dise_solver-10695ca579f036f3: crates/solver/src/lib.rs crates/solver/src/constraint.rs crates/solver/src/fm.rs crates/solver/src/incremental.rs crates/solver/src/intern.rs crates/solver/src/interval.rs crates/solver/src/linear.rs crates/solver/src/model.rs crates/solver/src/simplify.rs crates/solver/src/solve.rs crates/solver/src/sym.rs

crates/solver/src/lib.rs:
crates/solver/src/constraint.rs:
crates/solver/src/fm.rs:
crates/solver/src/incremental.rs:
crates/solver/src/intern.rs:
crates/solver/src/interval.rs:
crates/solver/src/linear.rs:
crates/solver/src/model.rs:
crates/solver/src/simplify.rs:
crates/solver/src/solve.rs:
crates/solver/src/sym.rs:
