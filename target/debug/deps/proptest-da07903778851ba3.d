/root/repo/target/debug/deps/proptest-da07903778851ba3.d: crates/proptest-stub/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libproptest-da07903778851ba3.rmeta: crates/proptest-stub/src/lib.rs Cargo.toml

crates/proptest-stub/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
