/root/repo/target/debug/deps/end_to_end-d2afea655c02e822.d: tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-d2afea655c02e822: tests/end_to_end.rs

tests/end_to_end.rs:
