/root/repo/target/debug/deps/dise_core-fb621292900bad8f.d: crates/core/src/lib.rs crates/core/src/affected.rs crates/core/src/directed.rs crates/core/src/dise.rs crates/core/src/interproc.rs crates/core/src/removed.rs crates/core/src/report.rs crates/core/src/theorem.rs Cargo.toml

/root/repo/target/debug/deps/libdise_core-fb621292900bad8f.rmeta: crates/core/src/lib.rs crates/core/src/affected.rs crates/core/src/directed.rs crates/core/src/dise.rs crates/core/src/interproc.rs crates/core/src/removed.rs crates/core/src/report.rs crates/core/src/theorem.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/affected.rs:
crates/core/src/directed.rs:
crates/core/src/dise.rs:
crates/core/src/interproc.rs:
crates/core/src/removed.rs:
crates/core/src/report.rs:
crates/core/src/theorem.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
