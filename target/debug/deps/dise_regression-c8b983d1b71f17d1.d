/root/repo/target/debug/deps/dise_regression-c8b983d1b71f17d1.d: crates/regression/src/lib.rs crates/regression/src/select.rs crates/regression/src/suite.rs crates/regression/src/testgen.rs

/root/repo/target/debug/deps/dise_regression-c8b983d1b71f17d1: crates/regression/src/lib.rs crates/regression/src/select.rs crates/regression/src/suite.rs crates/regression/src/testgen.rs

crates/regression/src/lib.rs:
crates/regression/src/select.rs:
crates/regression/src/suite.rs:
crates/regression/src/testgen.rs:
