/root/repo/target/debug/deps/criterion-59f2496a683da4f0.d: crates/criterion-stub/src/lib.rs

/root/repo/target/debug/deps/criterion-59f2496a683da4f0: crates/criterion-stub/src/lib.rs

crates/criterion-stub/src/lib.rs:
