/root/repo/target/debug/deps/cli-8d1595be76c39a4e.d: crates/cli/tests/cli.rs Cargo.toml

/root/repo/target/debug/deps/libcli-8d1595be76c39a4e.rmeta: crates/cli/tests/cli.rs Cargo.toml

crates/cli/tests/cli.rs:
Cargo.toml:

# env-dep:CARGO_BIN_EXE_dise=placeholder:dise
# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
