/root/repo/target/debug/deps/dise-f97a55301c4eb2ad.d: crates/cli/src/main.rs

/root/repo/target/debug/deps/dise-f97a55301c4eb2ad: crates/cli/src/main.rs

crates/cli/src/main.rs:
