/root/repo/target/debug/deps/dise-39b713169fd2095f.d: crates/cli/src/main.rs Cargo.toml

/root/repo/target/debug/deps/libdise-39b713169fd2095f.rmeta: crates/cli/src/main.rs Cargo.toml

crates/cli/src/main.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
