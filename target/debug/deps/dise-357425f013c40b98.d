/root/repo/target/debug/deps/dise-357425f013c40b98.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libdise-357425f013c40b98.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
