/root/repo/target/debug/deps/proptest-ae08dd48d1c6806b.d: crates/proptest-stub/src/lib.rs

/root/repo/target/debug/deps/libproptest-ae08dd48d1c6806b.rlib: crates/proptest-stub/src/lib.rs

/root/repo/target/debug/deps/libproptest-ae08dd48d1c6806b.rmeta: crates/proptest-stub/src/lib.rs

crates/proptest-stub/src/lib.rs:
