/root/repo/target/debug/deps/dise_bench-086e74a734b9bd64.d: crates/bench/src/main.rs crates/bench/src/ablation.rs crates/bench/src/evolution.rs crates/bench/src/figures.rs crates/bench/src/tables.rs Cargo.toml

/root/repo/target/debug/deps/libdise_bench-086e74a734b9bd64.rmeta: crates/bench/src/main.rs crates/bench/src/ablation.rs crates/bench/src/evolution.rs crates/bench/src/figures.rs crates/bench/src/tables.rs Cargo.toml

crates/bench/src/main.rs:
crates/bench/src/ablation.rs:
crates/bench/src/evolution.rs:
crates/bench/src/figures.rs:
crates/bench/src/tables.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
