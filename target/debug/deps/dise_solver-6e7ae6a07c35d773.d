/root/repo/target/debug/deps/dise_solver-6e7ae6a07c35d773.d: crates/solver/src/lib.rs crates/solver/src/constraint.rs crates/solver/src/fm.rs crates/solver/src/incremental.rs crates/solver/src/intern.rs crates/solver/src/interval.rs crates/solver/src/linear.rs crates/solver/src/model.rs crates/solver/src/simplify.rs crates/solver/src/solve.rs crates/solver/src/sym.rs

/root/repo/target/debug/deps/dise_solver-6e7ae6a07c35d773: crates/solver/src/lib.rs crates/solver/src/constraint.rs crates/solver/src/fm.rs crates/solver/src/incremental.rs crates/solver/src/intern.rs crates/solver/src/interval.rs crates/solver/src/linear.rs crates/solver/src/model.rs crates/solver/src/simplify.rs crates/solver/src/solve.rs crates/solver/src/sym.rs

crates/solver/src/lib.rs:
crates/solver/src/constraint.rs:
crates/solver/src/fm.rs:
crates/solver/src/incremental.rs:
crates/solver/src/intern.rs:
crates/solver/src/interval.rs:
crates/solver/src/linear.rs:
crates/solver/src/model.rs:
crates/solver/src/simplify.rs:
crates/solver/src/solve.rs:
crates/solver/src/sym.rs:
