/root/repo/target/debug/deps/failure_injection-03f190c915f77293.d: tests/failure_injection.rs

/root/repo/target/debug/deps/failure_injection-03f190c915f77293: tests/failure_injection.rs

tests/failure_injection.rs:
