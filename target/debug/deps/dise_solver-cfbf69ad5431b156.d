/root/repo/target/debug/deps/dise_solver-cfbf69ad5431b156.d: crates/solver/src/lib.rs crates/solver/src/constraint.rs crates/solver/src/fm.rs crates/solver/src/incremental.rs crates/solver/src/intern.rs crates/solver/src/interval.rs crates/solver/src/linear.rs crates/solver/src/model.rs crates/solver/src/simplify.rs crates/solver/src/solve.rs crates/solver/src/sym.rs Cargo.toml

/root/repo/target/debug/deps/libdise_solver-cfbf69ad5431b156.rmeta: crates/solver/src/lib.rs crates/solver/src/constraint.rs crates/solver/src/fm.rs crates/solver/src/incremental.rs crates/solver/src/intern.rs crates/solver/src/interval.rs crates/solver/src/linear.rs crates/solver/src/model.rs crates/solver/src/simplify.rs crates/solver/src/solve.rs crates/solver/src/sym.rs Cargo.toml

crates/solver/src/lib.rs:
crates/solver/src/constraint.rs:
crates/solver/src/fm.rs:
crates/solver/src/incremental.rs:
crates/solver/src/intern.rs:
crates/solver/src/interval.rs:
crates/solver/src/linear.rs:
crates/solver/src/model.rs:
crates/solver/src/simplify.rs:
crates/solver/src/solve.rs:
crates/solver/src/sym.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
