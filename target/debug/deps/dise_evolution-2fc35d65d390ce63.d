/root/repo/target/debug/deps/dise_evolution-2fc35d65d390ce63.d: crates/evolution/src/lib.rs crates/evolution/src/diffsum.rs crates/evolution/src/inputs.rs crates/evolution/src/localize.rs crates/evolution/src/report.rs crates/evolution/src/witness.rs Cargo.toml

/root/repo/target/debug/deps/libdise_evolution-2fc35d65d390ce63.rmeta: crates/evolution/src/lib.rs crates/evolution/src/diffsum.rs crates/evolution/src/inputs.rs crates/evolution/src/localize.rs crates/evolution/src/report.rs crates/evolution/src/witness.rs Cargo.toml

crates/evolution/src/lib.rs:
crates/evolution/src/diffsum.rs:
crates/evolution/src/inputs.rs:
crates/evolution/src/localize.rs:
crates/evolution/src/report.rs:
crates/evolution/src/witness.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
