/root/repo/target/debug/deps/dise_cfg-2133d5f4fe35fb42.d: crates/cfg/src/lib.rs crates/cfg/src/build.rs crates/cfg/src/control_dep.rs crates/cfg/src/dataflow.rs crates/cfg/src/defuse.rs crates/cfg/src/dominator.rs crates/cfg/src/dot.rs crates/cfg/src/graph.rs crates/cfg/src/reach.rs crates/cfg/src/scc.rs

/root/repo/target/debug/deps/dise_cfg-2133d5f4fe35fb42: crates/cfg/src/lib.rs crates/cfg/src/build.rs crates/cfg/src/control_dep.rs crates/cfg/src/dataflow.rs crates/cfg/src/defuse.rs crates/cfg/src/dominator.rs crates/cfg/src/dot.rs crates/cfg/src/graph.rs crates/cfg/src/reach.rs crates/cfg/src/scc.rs

crates/cfg/src/lib.rs:
crates/cfg/src/build.rs:
crates/cfg/src/control_dep.rs:
crates/cfg/src/dataflow.rs:
crates/cfg/src/defuse.rs:
crates/cfg/src/dominator.rs:
crates/cfg/src/dot.rs:
crates/cfg/src/graph.rs:
crates/cfg/src/reach.rs:
crates/cfg/src/scc.rs:
