/root/repo/target/debug/deps/criterion-e59b3bb872bc2826.d: crates/criterion-stub/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libcriterion-e59b3bb872bc2826.rmeta: crates/criterion-stub/src/lib.rs Cargo.toml

crates/criterion-stub/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
