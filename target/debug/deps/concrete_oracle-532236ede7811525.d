/root/repo/target/debug/deps/concrete_oracle-532236ede7811525.d: tests/concrete_oracle.rs Cargo.toml

/root/repo/target/debug/deps/libconcrete_oracle-532236ede7811525.rmeta: tests/concrete_oracle.rs Cargo.toml

tests/concrete_oracle.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
