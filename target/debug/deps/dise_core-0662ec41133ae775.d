/root/repo/target/debug/deps/dise_core-0662ec41133ae775.d: crates/core/src/lib.rs crates/core/src/affected.rs crates/core/src/directed.rs crates/core/src/dise.rs crates/core/src/interproc.rs crates/core/src/removed.rs crates/core/src/report.rs crates/core/src/theorem.rs

/root/repo/target/debug/deps/dise_core-0662ec41133ae775: crates/core/src/lib.rs crates/core/src/affected.rs crates/core/src/directed.rs crates/core/src/dise.rs crates/core/src/interproc.rs crates/core/src/removed.rs crates/core/src/report.rs crates/core/src/theorem.rs

crates/core/src/lib.rs:
crates/core/src/affected.rs:
crates/core/src/directed.rs:
crates/core/src/dise.rs:
crates/core/src/interproc.rs:
crates/core/src/removed.rs:
crates/core/src/report.rs:
crates/core/src/theorem.rs:
