/root/repo/target/debug/deps/proptest-f47e7936c2ca4086.d: crates/proptest-stub/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libproptest-f47e7936c2ca4086.rmeta: crates/proptest-stub/src/lib.rs Cargo.toml

crates/proptest-stub/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
