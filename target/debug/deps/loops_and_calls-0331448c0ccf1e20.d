/root/repo/target/debug/deps/loops_and_calls-0331448c0ccf1e20.d: tests/loops_and_calls.rs

/root/repo/target/debug/deps/loops_and_calls-0331448c0ccf1e20: tests/loops_and_calls.rs

tests/loops_and_calls.rs:
