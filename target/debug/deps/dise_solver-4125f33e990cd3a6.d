/root/repo/target/debug/deps/dise_solver-4125f33e990cd3a6.d: crates/solver/src/lib.rs crates/solver/src/constraint.rs crates/solver/src/fm.rs crates/solver/src/incremental.rs crates/solver/src/intern.rs crates/solver/src/interval.rs crates/solver/src/linear.rs crates/solver/src/model.rs crates/solver/src/simplify.rs crates/solver/src/solve.rs crates/solver/src/sym.rs

/root/repo/target/debug/deps/libdise_solver-4125f33e990cd3a6.rlib: crates/solver/src/lib.rs crates/solver/src/constraint.rs crates/solver/src/fm.rs crates/solver/src/incremental.rs crates/solver/src/intern.rs crates/solver/src/interval.rs crates/solver/src/linear.rs crates/solver/src/model.rs crates/solver/src/simplify.rs crates/solver/src/solve.rs crates/solver/src/sym.rs

/root/repo/target/debug/deps/libdise_solver-4125f33e990cd3a6.rmeta: crates/solver/src/lib.rs crates/solver/src/constraint.rs crates/solver/src/fm.rs crates/solver/src/incremental.rs crates/solver/src/intern.rs crates/solver/src/interval.rs crates/solver/src/linear.rs crates/solver/src/model.rs crates/solver/src/simplify.rs crates/solver/src/solve.rs crates/solver/src/sym.rs

crates/solver/src/lib.rs:
crates/solver/src/constraint.rs:
crates/solver/src/fm.rs:
crates/solver/src/incremental.rs:
crates/solver/src/intern.rs:
crates/solver/src/interval.rs:
crates/solver/src/linear.rs:
crates/solver/src/model.rs:
crates/solver/src/simplify.rs:
crates/solver/src/solve.rs:
crates/solver/src/sym.rs:
