/root/repo/target/debug/deps/dise_symexec-ec76c897629d963f.d: crates/symexec/src/lib.rs crates/symexec/src/concolic.rs crates/symexec/src/concrete.rs crates/symexec/src/env.rs crates/symexec/src/eval.rs crates/symexec/src/executor.rs crates/symexec/src/state.rs crates/symexec/src/tree.rs Cargo.toml

/root/repo/target/debug/deps/libdise_symexec-ec76c897629d963f.rmeta: crates/symexec/src/lib.rs crates/symexec/src/concolic.rs crates/symexec/src/concrete.rs crates/symexec/src/env.rs crates/symexec/src/eval.rs crates/symexec/src/executor.rs crates/symexec/src/state.rs crates/symexec/src/tree.rs Cargo.toml

crates/symexec/src/lib.rs:
crates/symexec/src/concolic.rs:
crates/symexec/src/concrete.rs:
crates/symexec/src/env.rs:
crates/symexec/src/eval.rs:
crates/symexec/src/executor.rs:
crates/symexec/src/state.rs:
crates/symexec/src/tree.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
