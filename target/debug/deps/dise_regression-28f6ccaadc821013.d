/root/repo/target/debug/deps/dise_regression-28f6ccaadc821013.d: crates/regression/src/lib.rs crates/regression/src/select.rs crates/regression/src/suite.rs crates/regression/src/testgen.rs

/root/repo/target/debug/deps/libdise_regression-28f6ccaadc821013.rlib: crates/regression/src/lib.rs crates/regression/src/select.rs crates/regression/src/suite.rs crates/regression/src/testgen.rs

/root/repo/target/debug/deps/libdise_regression-28f6ccaadc821013.rmeta: crates/regression/src/lib.rs crates/regression/src/select.rs crates/regression/src/suite.rs crates/regression/src/testgen.rs

crates/regression/src/lib.rs:
crates/regression/src/select.rs:
crates/regression/src/suite.rs:
crates/regression/src/testgen.rs:
