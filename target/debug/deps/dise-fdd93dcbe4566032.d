/root/repo/target/debug/deps/dise-fdd93dcbe4566032.d: crates/cli/src/main.rs Cargo.toml

/root/repo/target/debug/deps/libdise-fdd93dcbe4566032.rmeta: crates/cli/src/main.rs Cargo.toml

crates/cli/src/main.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
