/root/repo/target/debug/deps/incremental_prop-4caef4461eb37ec4.d: crates/solver/tests/incremental_prop.rs Cargo.toml

/root/repo/target/debug/deps/libincremental_prop-4caef4461eb37ec4.rmeta: crates/solver/tests/incremental_prop.rs Cargo.toml

crates/solver/tests/incremental_prop.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
