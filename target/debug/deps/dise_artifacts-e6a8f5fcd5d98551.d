/root/repo/target/debug/deps/dise_artifacts-e6a8f5fcd5d98551.d: crates/artifacts/src/lib.rs crates/artifacts/src/asw.rs crates/artifacts/src/figures.rs crates/artifacts/src/oae.rs crates/artifacts/src/random.rs crates/artifacts/src/wbs.rs

/root/repo/target/debug/deps/libdise_artifacts-e6a8f5fcd5d98551.rlib: crates/artifacts/src/lib.rs crates/artifacts/src/asw.rs crates/artifacts/src/figures.rs crates/artifacts/src/oae.rs crates/artifacts/src/random.rs crates/artifacts/src/wbs.rs

/root/repo/target/debug/deps/libdise_artifacts-e6a8f5fcd5d98551.rmeta: crates/artifacts/src/lib.rs crates/artifacts/src/asw.rs crates/artifacts/src/figures.rs crates/artifacts/src/oae.rs crates/artifacts/src/random.rs crates/artifacts/src/wbs.rs

crates/artifacts/src/lib.rs:
crates/artifacts/src/asw.rs:
crates/artifacts/src/figures.rs:
crates/artifacts/src/oae.rs:
crates/artifacts/src/random.rs:
crates/artifacts/src/wbs.rs:
