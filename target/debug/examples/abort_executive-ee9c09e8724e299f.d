/root/repo/target/debug/examples/abort_executive-ee9c09e8724e299f.d: examples/abort_executive.rs Cargo.toml

/root/repo/target/debug/examples/libabort_executive-ee9c09e8724e299f.rmeta: examples/abort_executive.rs Cargo.toml

examples/abort_executive.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
