/root/repo/target/debug/examples/differential_witnesses-fa743ca553869c1f.d: examples/differential_witnesses.rs Cargo.toml

/root/repo/target/debug/examples/libdifferential_witnesses-fa743ca553869c1f.rmeta: examples/differential_witnesses.rs Cargo.toml

examples/differential_witnesses.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
