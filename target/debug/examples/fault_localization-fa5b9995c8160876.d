/root/repo/target/debug/examples/fault_localization-fa5b9995c8160876.d: examples/fault_localization.rs

/root/repo/target/debug/examples/fault_localization-fa5b9995c8160876: examples/fault_localization.rs

examples/fault_localization.rs:
