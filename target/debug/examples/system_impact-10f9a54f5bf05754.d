/root/repo/target/debug/examples/system_impact-10f9a54f5bf05754.d: examples/system_impact.rs

/root/repo/target/debug/examples/system_impact-10f9a54f5bf05754: examples/system_impact.rs

examples/system_impact.rs:
