/root/repo/target/debug/examples/abort_executive-d8608c416529abd4.d: examples/abort_executive.rs

/root/repo/target/debug/examples/abort_executive-d8608c416529abd4: examples/abort_executive.rs

examples/abort_executive.rs:
