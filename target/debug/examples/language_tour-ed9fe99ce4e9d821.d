/root/repo/target/debug/examples/language_tour-ed9fe99ce4e9d821.d: examples/language_tour.rs

/root/repo/target/debug/examples/language_tour-ed9fe99ce4e9d821: examples/language_tour.rs

examples/language_tour.rs:
