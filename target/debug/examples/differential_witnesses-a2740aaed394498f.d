/root/repo/target/debug/examples/differential_witnesses-a2740aaed394498f.d: examples/differential_witnesses.rs

/root/repo/target/debug/examples/differential_witnesses-a2740aaed394498f: examples/differential_witnesses.rs

examples/differential_witnesses.rs:
