/root/repo/target/debug/examples/interprocedural-51a4b49ac84ff0e8.d: examples/interprocedural.rs

/root/repo/target/debug/examples/interprocedural-51a4b49ac84ff0e8: examples/interprocedural.rs

examples/interprocedural.rs:
