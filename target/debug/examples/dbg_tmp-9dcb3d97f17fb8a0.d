/root/repo/target/debug/examples/dbg_tmp-9dcb3d97f17fb8a0.d: examples/dbg_tmp.rs

/root/repo/target/debug/examples/dbg_tmp-9dcb3d97f17fb8a0: examples/dbg_tmp.rs

examples/dbg_tmp.rs:
