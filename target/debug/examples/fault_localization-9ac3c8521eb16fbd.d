/root/repo/target/debug/examples/fault_localization-9ac3c8521eb16fbd.d: examples/fault_localization.rs Cargo.toml

/root/repo/target/debug/examples/libfault_localization-9ac3c8521eb16fbd.rmeta: examples/fault_localization.rs Cargo.toml

examples/fault_localization.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
