/root/repo/target/debug/examples/dbg-c77fdab8ad95074c.d: crates/artifacts/examples/dbg.rs

/root/repo/target/debug/examples/dbg-c77fdab8ad95074c: crates/artifacts/examples/dbg.rs

crates/artifacts/examples/dbg.rs:
