/root/repo/target/debug/examples/quickstart-37a33e7ff8c6250d.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-37a33e7ff8c6250d: examples/quickstart.rs

examples/quickstart.rs:
