/root/repo/target/debug/examples/interprocedural-936668db1d72f720.d: examples/interprocedural.rs Cargo.toml

/root/repo/target/debug/examples/libinterprocedural-936668db1d72f720.rmeta: examples/interprocedural.rs Cargo.toml

examples/interprocedural.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
