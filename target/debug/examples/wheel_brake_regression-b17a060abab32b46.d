/root/repo/target/debug/examples/wheel_brake_regression-b17a060abab32b46.d: examples/wheel_brake_regression.rs Cargo.toml

/root/repo/target/debug/examples/libwheel_brake_regression-b17a060abab32b46.rmeta: examples/wheel_brake_regression.rs Cargo.toml

examples/wheel_brake_regression.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
