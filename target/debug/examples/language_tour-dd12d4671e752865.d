/root/repo/target/debug/examples/language_tour-dd12d4671e752865.d: examples/language_tour.rs Cargo.toml

/root/repo/target/debug/examples/liblanguage_tour-dd12d4671e752865.rmeta: examples/language_tour.rs Cargo.toml

examples/language_tour.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
