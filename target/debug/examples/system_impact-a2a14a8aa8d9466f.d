/root/repo/target/debug/examples/system_impact-a2a14a8aa8d9466f.d: examples/system_impact.rs Cargo.toml

/root/repo/target/debug/examples/libsystem_impact-a2a14a8aa8d9466f.rmeta: examples/system_impact.rs Cargo.toml

examples/system_impact.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
