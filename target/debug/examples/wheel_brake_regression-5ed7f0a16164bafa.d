/root/repo/target/debug/examples/wheel_brake_regression-5ed7f0a16164bafa.d: examples/wheel_brake_regression.rs

/root/repo/target/debug/examples/wheel_brake_regression-5ed7f0a16164bafa: examples/wheel_brake_regression.rs

examples/wheel_brake_regression.rs:
