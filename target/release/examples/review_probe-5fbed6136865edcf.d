/root/repo/target/release/examples/review_probe-5fbed6136865edcf.d: examples/review_probe.rs

/root/repo/target/release/examples/review_probe-5fbed6136865edcf: examples/review_probe.rs

examples/review_probe.rs:
