/root/repo/target/release/deps/dise_core-b822b7c887187b4a.d: crates/core/src/lib.rs crates/core/src/affected.rs crates/core/src/directed.rs crates/core/src/dise.rs crates/core/src/interproc.rs crates/core/src/removed.rs crates/core/src/report.rs crates/core/src/theorem.rs

/root/repo/target/release/deps/libdise_core-b822b7c887187b4a.rlib: crates/core/src/lib.rs crates/core/src/affected.rs crates/core/src/directed.rs crates/core/src/dise.rs crates/core/src/interproc.rs crates/core/src/removed.rs crates/core/src/report.rs crates/core/src/theorem.rs

/root/repo/target/release/deps/libdise_core-b822b7c887187b4a.rmeta: crates/core/src/lib.rs crates/core/src/affected.rs crates/core/src/directed.rs crates/core/src/dise.rs crates/core/src/interproc.rs crates/core/src/removed.rs crates/core/src/report.rs crates/core/src/theorem.rs

crates/core/src/lib.rs:
crates/core/src/affected.rs:
crates/core/src/directed.rs:
crates/core/src/dise.rs:
crates/core/src/interproc.rs:
crates/core/src/removed.rs:
crates/core/src/report.rs:
crates/core/src/theorem.rs:
