/root/repo/target/release/deps/solver-072fa9d4c4432343.d: crates/bench/benches/solver.rs

/root/repo/target/release/deps/solver-072fa9d4c4432343: crates/bench/benches/solver.rs

crates/bench/benches/solver.rs:
