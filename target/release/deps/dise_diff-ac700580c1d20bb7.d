/root/repo/target/release/deps/dise_diff-ac700580c1d20bb7.d: crates/diff/src/lib.rs crates/diff/src/cfg_map.rs crates/diff/src/line_diff.rs crates/diff/src/stmt_diff.rs

/root/repo/target/release/deps/libdise_diff-ac700580c1d20bb7.rlib: crates/diff/src/lib.rs crates/diff/src/cfg_map.rs crates/diff/src/line_diff.rs crates/diff/src/stmt_diff.rs

/root/repo/target/release/deps/libdise_diff-ac700580c1d20bb7.rmeta: crates/diff/src/lib.rs crates/diff/src/cfg_map.rs crates/diff/src/line_diff.rs crates/diff/src/stmt_diff.rs

crates/diff/src/lib.rs:
crates/diff/src/cfg_map.rs:
crates/diff/src/line_diff.rs:
crates/diff/src/stmt_diff.rs:
