/root/repo/target/release/deps/dise_bench-c34f153f51e69424.d: crates/bench/src/main.rs crates/bench/src/ablation.rs crates/bench/src/evolution.rs crates/bench/src/figures.rs crates/bench/src/tables.rs

/root/repo/target/release/deps/dise_bench-c34f153f51e69424: crates/bench/src/main.rs crates/bench/src/ablation.rs crates/bench/src/evolution.rs crates/bench/src/figures.rs crates/bench/src/tables.rs

crates/bench/src/main.rs:
crates/bench/src/ablation.rs:
crates/bench/src/evolution.rs:
crates/bench/src/figures.rs:
crates/bench/src/tables.rs:
