/root/repo/target/release/deps/dise_symexec-6cdfb3b99b99c8ad.d: crates/symexec/src/lib.rs crates/symexec/src/concolic.rs crates/symexec/src/concrete.rs crates/symexec/src/env.rs crates/symexec/src/eval.rs crates/symexec/src/executor.rs crates/symexec/src/state.rs crates/symexec/src/tree.rs

/root/repo/target/release/deps/libdise_symexec-6cdfb3b99b99c8ad.rlib: crates/symexec/src/lib.rs crates/symexec/src/concolic.rs crates/symexec/src/concrete.rs crates/symexec/src/env.rs crates/symexec/src/eval.rs crates/symexec/src/executor.rs crates/symexec/src/state.rs crates/symexec/src/tree.rs

/root/repo/target/release/deps/libdise_symexec-6cdfb3b99b99c8ad.rmeta: crates/symexec/src/lib.rs crates/symexec/src/concolic.rs crates/symexec/src/concrete.rs crates/symexec/src/env.rs crates/symexec/src/eval.rs crates/symexec/src/executor.rs crates/symexec/src/state.rs crates/symexec/src/tree.rs

crates/symexec/src/lib.rs:
crates/symexec/src/concolic.rs:
crates/symexec/src/concrete.rs:
crates/symexec/src/env.rs:
crates/symexec/src/eval.rs:
crates/symexec/src/executor.rs:
crates/symexec/src/state.rs:
crates/symexec/src/tree.rs:
