/root/repo/target/release/deps/dise_cfg-0b33acfd77f31bb0.d: crates/cfg/src/lib.rs crates/cfg/src/build.rs crates/cfg/src/control_dep.rs crates/cfg/src/dataflow.rs crates/cfg/src/defuse.rs crates/cfg/src/dominator.rs crates/cfg/src/dot.rs crates/cfg/src/graph.rs crates/cfg/src/reach.rs crates/cfg/src/scc.rs

/root/repo/target/release/deps/libdise_cfg-0b33acfd77f31bb0.rlib: crates/cfg/src/lib.rs crates/cfg/src/build.rs crates/cfg/src/control_dep.rs crates/cfg/src/dataflow.rs crates/cfg/src/defuse.rs crates/cfg/src/dominator.rs crates/cfg/src/dot.rs crates/cfg/src/graph.rs crates/cfg/src/reach.rs crates/cfg/src/scc.rs

/root/repo/target/release/deps/libdise_cfg-0b33acfd77f31bb0.rmeta: crates/cfg/src/lib.rs crates/cfg/src/build.rs crates/cfg/src/control_dep.rs crates/cfg/src/dataflow.rs crates/cfg/src/defuse.rs crates/cfg/src/dominator.rs crates/cfg/src/dot.rs crates/cfg/src/graph.rs crates/cfg/src/reach.rs crates/cfg/src/scc.rs

crates/cfg/src/lib.rs:
crates/cfg/src/build.rs:
crates/cfg/src/control_dep.rs:
crates/cfg/src/dataflow.rs:
crates/cfg/src/defuse.rs:
crates/cfg/src/dominator.rs:
crates/cfg/src/dot.rs:
crates/cfg/src/graph.rs:
crates/cfg/src/reach.rs:
crates/cfg/src/scc.rs:
