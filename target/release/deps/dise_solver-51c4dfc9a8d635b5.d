/root/repo/target/release/deps/dise_solver-51c4dfc9a8d635b5.d: crates/solver/src/lib.rs crates/solver/src/constraint.rs crates/solver/src/fm.rs crates/solver/src/incremental.rs crates/solver/src/intern.rs crates/solver/src/interval.rs crates/solver/src/linear.rs crates/solver/src/model.rs crates/solver/src/simplify.rs crates/solver/src/solve.rs crates/solver/src/sym.rs

/root/repo/target/release/deps/libdise_solver-51c4dfc9a8d635b5.rlib: crates/solver/src/lib.rs crates/solver/src/constraint.rs crates/solver/src/fm.rs crates/solver/src/incremental.rs crates/solver/src/intern.rs crates/solver/src/interval.rs crates/solver/src/linear.rs crates/solver/src/model.rs crates/solver/src/simplify.rs crates/solver/src/solve.rs crates/solver/src/sym.rs

/root/repo/target/release/deps/libdise_solver-51c4dfc9a8d635b5.rmeta: crates/solver/src/lib.rs crates/solver/src/constraint.rs crates/solver/src/fm.rs crates/solver/src/incremental.rs crates/solver/src/intern.rs crates/solver/src/interval.rs crates/solver/src/linear.rs crates/solver/src/model.rs crates/solver/src/simplify.rs crates/solver/src/solve.rs crates/solver/src/sym.rs

crates/solver/src/lib.rs:
crates/solver/src/constraint.rs:
crates/solver/src/fm.rs:
crates/solver/src/incremental.rs:
crates/solver/src/intern.rs:
crates/solver/src/interval.rs:
crates/solver/src/linear.rs:
crates/solver/src/model.rs:
crates/solver/src/simplify.rs:
crates/solver/src/solve.rs:
crates/solver/src/sym.rs:
