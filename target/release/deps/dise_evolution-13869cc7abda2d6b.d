/root/repo/target/release/deps/dise_evolution-13869cc7abda2d6b.d: crates/evolution/src/lib.rs crates/evolution/src/diffsum.rs crates/evolution/src/inputs.rs crates/evolution/src/localize.rs crates/evolution/src/report.rs crates/evolution/src/witness.rs

/root/repo/target/release/deps/libdise_evolution-13869cc7abda2d6b.rlib: crates/evolution/src/lib.rs crates/evolution/src/diffsum.rs crates/evolution/src/inputs.rs crates/evolution/src/localize.rs crates/evolution/src/report.rs crates/evolution/src/witness.rs

/root/repo/target/release/deps/libdise_evolution-13869cc7abda2d6b.rmeta: crates/evolution/src/lib.rs crates/evolution/src/diffsum.rs crates/evolution/src/inputs.rs crates/evolution/src/localize.rs crates/evolution/src/report.rs crates/evolution/src/witness.rs

crates/evolution/src/lib.rs:
crates/evolution/src/diffsum.rs:
crates/evolution/src/inputs.rs:
crates/evolution/src/localize.rs:
crates/evolution/src/report.rs:
crates/evolution/src/witness.rs:
