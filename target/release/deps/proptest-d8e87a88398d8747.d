/root/repo/target/release/deps/proptest-d8e87a88398d8747.d: crates/proptest-stub/src/lib.rs

/root/repo/target/release/deps/libproptest-d8e87a88398d8747.rlib: crates/proptest-stub/src/lib.rs

/root/repo/target/release/deps/libproptest-d8e87a88398d8747.rmeta: crates/proptest-stub/src/lib.rs

crates/proptest-stub/src/lib.rs:
