/root/repo/target/release/deps/dise_regression-d2462b3162fbb207.d: crates/regression/src/lib.rs crates/regression/src/select.rs crates/regression/src/suite.rs crates/regression/src/testgen.rs

/root/repo/target/release/deps/libdise_regression-d2462b3162fbb207.rlib: crates/regression/src/lib.rs crates/regression/src/select.rs crates/regression/src/suite.rs crates/regression/src/testgen.rs

/root/repo/target/release/deps/libdise_regression-d2462b3162fbb207.rmeta: crates/regression/src/lib.rs crates/regression/src/select.rs crates/regression/src/suite.rs crates/regression/src/testgen.rs

crates/regression/src/lib.rs:
crates/regression/src/select.rs:
crates/regression/src/suite.rs:
crates/regression/src/testgen.rs:
