/root/repo/target/release/deps/dise_artifacts-2a0bf52e896c4393.d: crates/artifacts/src/lib.rs crates/artifacts/src/asw.rs crates/artifacts/src/figures.rs crates/artifacts/src/oae.rs crates/artifacts/src/random.rs crates/artifacts/src/wbs.rs

/root/repo/target/release/deps/libdise_artifacts-2a0bf52e896c4393.rlib: crates/artifacts/src/lib.rs crates/artifacts/src/asw.rs crates/artifacts/src/figures.rs crates/artifacts/src/oae.rs crates/artifacts/src/random.rs crates/artifacts/src/wbs.rs

/root/repo/target/release/deps/libdise_artifacts-2a0bf52e896c4393.rmeta: crates/artifacts/src/lib.rs crates/artifacts/src/asw.rs crates/artifacts/src/figures.rs crates/artifacts/src/oae.rs crates/artifacts/src/random.rs crates/artifacts/src/wbs.rs

crates/artifacts/src/lib.rs:
crates/artifacts/src/asw.rs:
crates/artifacts/src/figures.rs:
crates/artifacts/src/oae.rs:
crates/artifacts/src/random.rs:
crates/artifacts/src/wbs.rs:
