/root/repo/target/release/deps/dise-6558c5f5f73ef7c9.d: crates/cli/src/main.rs

/root/repo/target/release/deps/dise-6558c5f5f73ef7c9: crates/cli/src/main.rs

crates/cli/src/main.rs:
