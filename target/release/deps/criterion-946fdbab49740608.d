/root/repo/target/release/deps/criterion-946fdbab49740608.d: crates/criterion-stub/src/lib.rs

/root/repo/target/release/deps/libcriterion-946fdbab49740608.rlib: crates/criterion-stub/src/lib.rs

/root/repo/target/release/deps/libcriterion-946fdbab49740608.rmeta: crates/criterion-stub/src/lib.rs

crates/criterion-stub/src/lib.rs:
