/root/repo/target/release/deps/dise-b2088123c7d27060.d: src/lib.rs

/root/repo/target/release/deps/libdise-b2088123c7d27060.rlib: src/lib.rs

/root/repo/target/release/deps/libdise-b2088123c7d27060.rmeta: src/lib.rs

src/lib.rs:
