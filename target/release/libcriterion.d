/root/repo/target/release/libcriterion.rlib: /root/repo/crates/criterion-stub/src/lib.rs
