/root/repo/target/release/libproptest.rlib: /root/repo/crates/proptest-stub/src/lib.rs
