//! Test suites: ordered, deduplicated sets of concrete test calls.
//!
//! The canonical representation of a test is its call string
//! (`update(1, true, false)`), matching the paper's string-comparison
//! methodology. Suites serialize to a plain line-based text format so the
//! regression workflow can persist the old version's suite without any
//! extra dependency.

use std::collections::BTreeSet;
use std::fmt;

/// A deduplicated set of test-call strings.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TestSuite {
    tests: BTreeSet<String>,
}

impl TestSuite {
    /// An empty suite.
    pub fn new() -> TestSuite {
        TestSuite::default()
    }

    /// Inserts a test call. Returns `true` if it was new.
    pub fn insert(&mut self, call: impl Into<String>) -> bool {
        self.tests.insert(call.into())
    }

    /// Does the suite contain this exact call string?
    pub fn contains(&self, call: &str) -> bool {
        self.tests.contains(call)
    }

    /// Number of distinct tests.
    pub fn len(&self) -> usize {
        self.tests.len()
    }

    /// Returns `true` if the suite has no tests.
    pub fn is_empty(&self) -> bool {
        self.tests.is_empty()
    }

    /// Iterates over the calls in sorted order.
    pub fn iter(&self) -> impl Iterator<Item = &str> {
        self.tests.iter().map(String::as_str)
    }

    /// Serializes to the line-based text format (one call per line).
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        for test in &self.tests {
            out.push_str(test);
            out.push('\n');
        }
        out
    }

    /// Parses the line-based text format (blank lines ignored).
    pub fn from_text(text: &str) -> TestSuite {
        let mut suite = TestSuite::new();
        for line in text.lines() {
            let line = line.trim();
            if !line.is_empty() {
                suite.insert(line);
            }
        }
        suite
    }
}

impl fmt::Display for TestSuite {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_text())
    }
}

impl FromIterator<String> for TestSuite {
    fn from_iter<T: IntoIterator<Item = String>>(iter: T) -> Self {
        let mut suite = TestSuite::new();
        for call in iter {
            suite.insert(call);
        }
        suite
    }
}

impl Extend<String> for TestSuite {
    fn extend<T: IntoIterator<Item = String>>(&mut self, iter: T) {
        for call in iter {
            self.insert(call);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_deduplicates() {
        let mut suite = TestSuite::new();
        assert!(suite.insert("f(1)"));
        assert!(!suite.insert("f(1)"));
        assert_eq!(suite.len(), 1);
        assert!(suite.contains("f(1)"));
        assert!(!suite.contains("f(2)"));
    }

    #[test]
    fn text_round_trip() {
        let suite: TestSuite = ["f(2, true)", "f(1, false)"]
            .into_iter()
            .map(String::from)
            .collect();
        let text = suite.to_text();
        assert_eq!(text, "f(1, false)\nf(2, true)\n"); // sorted
        assert_eq!(TestSuite::from_text(&text), suite);
    }

    #[test]
    fn from_text_skips_blank_lines() {
        let suite = TestSuite::from_text("a()\n\n  \nb()\n");
        assert_eq!(suite.len(), 2);
    }

    #[test]
    fn display_matches_to_text() {
        let mut suite = TestSuite::new();
        suite.insert("g(0)");
        assert_eq!(suite.to_string(), suite.to_text());
    }

    #[test]
    fn extend_and_iter() {
        let mut suite = TestSuite::new();
        suite.extend(["x()".to_string(), "y()".to_string()]);
        let collected: Vec<&str> = suite.iter().collect();
        assert_eq!(collected, vec!["x()", "y()"]);
    }
}
