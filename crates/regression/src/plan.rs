//! The complete §5.2 regression application as one step over analysis
//! artifacts.
//!
//! Both the CLI's `dise tests` path and the impact report's regression
//! section used to hand-roll the same three-call dance — generate the
//! existing suite from the base version's full summary, generate the
//! DiSE suite from the affected summary, select and augment. This module
//! packages that dance so every consumer of an `AnalysisSession` (or of
//! raw summaries) produces the suites the same way.

use dise_ir::ast::Program;
use dise_symexec::SymbolicSummary;

use crate::select::{select_and_augment, SelectionResult};
use crate::suite::TestSuite;
use crate::testgen::generate_tests;

/// The regression application's full output for one version pair.
#[derive(Debug, Clone)]
pub struct RegressionPlan {
    /// The existing suite: tests generated from the base version's full
    /// symbolic summary (§5.2's "existing test suite").
    pub existing: TestSuite,
    /// Tests generated from the affected path conditions of the directed
    /// run on the modified version.
    pub dise: TestSuite,
    /// The selection/augmentation verdict between the two.
    pub selection: SelectionResult,
}

/// Builds the §5.2 plan: the existing suite from `(base_flat,
/// base_summary)`, the DiSE suite from `(mod_flat, dise_summary)`, and
/// the selection between them. Both programs must be the *flattened*
/// versions the summaries were computed on (test generation renders
/// calls to the analyzed procedure's parameters).
pub fn regression_plan(
    base_flat: &Program,
    base_summary: &SymbolicSummary,
    mod_flat: &Program,
    dise_summary: &SymbolicSummary,
) -> RegressionPlan {
    let existing = generate_tests(base_flat, base_summary);
    let dise = generate_tests(mod_flat, dise_summary);
    let selection = select_and_augment(&existing, &dise);
    RegressionPlan {
        existing,
        dise,
        selection,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dise_symexec::{ExecConfig, Executor, FullExploration};

    #[test]
    fn plan_matches_the_hand_rolled_dance() {
        let base = dise_ir::parse_program(
            "int out;
             proc f(int x) { if (x > 0) { out = 1; } else { out = 2; } }",
        )
        .unwrap();
        let modified = dise_ir::parse_program(
            "int out;
             proc f(int x) { if (x >= 0) { out = 1; } else { out = 2; } }",
        )
        .unwrap();
        let summarize = |p: &dise_ir::Program| {
            Executor::new(p, "f", ExecConfig::default())
                .unwrap()
                .explore(&mut FullExploration)
        };
        let (base_sum, mod_sum) = (summarize(&base), summarize(&modified));
        let plan = regression_plan(&base, &base_sum, &modified, &mod_sum);
        assert_eq!(plan.existing, generate_tests(&base, &base_sum));
        assert_eq!(plan.dise, generate_tests(&modified, &mod_sum));
        assert_eq!(
            plan.selection.total(),
            plan.selection.selected.len() + plan.selection.added.len()
        );
    }
}
