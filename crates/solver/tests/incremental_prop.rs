//! Differential property tests: the incremental solver's push/pop/check
//! must agree with the monolithic `Solver::check` on randomized path
//! conditions, including pop-then-push divergent branches.
//!
//! "Agree" means the sound core: the two tiers may disagree only when one
//! of them answers `Unknown` (both are allowed to give up on different
//! budgets); a `Sat` vs `Unsat` split is a soundness bug. In addition,
//! every incremental `Sat` must come with a model that satisfies every
//! pushed literal.

use dise_solver::sym::BinOp;
use dise_solver::{IncrementalSolver, SatResult, Solver, SymExpr, SymTy, SymVar, VarPool};
use proptest::prelude::*;

/// Deterministic splitmix64 stream for literal construction (the proptest
/// stub hands us one seed per case).
struct Gen(u64);

impl Gen {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }

    fn small_const(&mut self) -> i64 {
        self.below(21) as i64 - 10
    }
}

struct Fixture {
    ints: Vec<SymVar>,
    bools: Vec<SymVar>,
}

fn fixture() -> (VarPool, Fixture) {
    let mut pool = VarPool::new();
    let ints = (0..3)
        .map(|i| pool.fresh(format!("X{i}"), SymTy::Int))
        .collect();
    let bools = (0..2)
        .map(|i| pool.fresh(format!("B{i}"), SymTy::Bool))
        .collect();
    (pool, Fixture { ints, bools })
}

/// A linear integer operand: variable, constant, or var ± const / var + var.
fn int_operand(g: &mut Gen, f: &Fixture) -> SymExpr {
    let x = &f.ints[g.below(f.ints.len() as u64) as usize];
    match g.below(4) {
        0 => SymExpr::var(x),
        1 => SymExpr::int(g.small_const()),
        2 => SymExpr::add(SymExpr::var(x), SymExpr::int(g.small_const())),
        _ => {
            let y = &f.ints[g.below(f.ints.len() as u64) as usize];
            SymExpr::add(SymExpr::var(x), SymExpr::var(y))
        }
    }
}

fn comparison(g: &mut Gen, f: &Fixture) -> SymExpr {
    let lhs = int_operand(g, f);
    let rhs = int_operand(g, f);
    let op = match g.below(5) {
        0 => BinOp::Lt,
        1 => BinOp::Le,
        2 => BinOp::Gt,
        3 => BinOp::Ge,
        _ => BinOp::Eq,
    };
    SymExpr::binary(op, lhs, rhs)
}

/// One branch literal, occasionally disjunctive/disequal (which forces the
/// incremental tier through its monolithic fallback path) or negated.
fn literal(g: &mut Gen, f: &Fixture) -> SymExpr {
    match g.below(10) {
        0 => {
            let b = &f.bools[g.below(f.bools.len() as u64) as usize];
            SymExpr::var(b)
        }
        1 => {
            let b = &f.bools[g.below(f.bools.len() as u64) as usize];
            SymExpr::not(SymExpr::var(b))
        }
        2 => SymExpr::or(comparison(g, f), comparison(g, f)),
        3 => SymExpr::Binary {
            op: BinOp::Ne,
            lhs: int_operand(g, f).into(),
            rhs: int_operand(g, f).into(),
        },
        4 => SymExpr::not(comparison(g, f)),
        _ => comparison(g, f),
    }
}

/// A non-constant literal (constants fold away before reaching the solver:
/// the executor never pushes them).
fn symbolic_literal(g: &mut Gen, f: &Fixture) -> SymExpr {
    loop {
        let lit = literal(g, f);
        if lit.as_bool().is_none() {
            return lit;
        }
    }
}

fn sound_agreement(incremental: SatResult, monolithic: SatResult) -> bool {
    !matches!(
        (incremental, monolithic),
        (SatResult::Sat, SatResult::Unsat) | (SatResult::Unsat, SatResult::Sat)
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn incremental_agrees_with_monolithic_along_random_paths(seed in any::<u64>()) {
        let (_pool, f) = fixture();
        let mut g = Gen(seed | 1);
        let depth = 2 + g.below(9) as usize;
        let lits: Vec<SymExpr> = (0..depth).map(|_| symbolic_literal(&mut g, &f)).collect();

        let mut incremental = IncrementalSolver::new();
        for d in 0..lits.len() {
            incremental.push(lits[d].clone());
            let iv = incremental.check();
            // A fresh monolithic solver per prefix: no cache assistance.
            let mv = Solver::new().check(&lits[..=d]).result();
            prop_assert!(
                sound_agreement(iv, mv),
                "prefix {:?}: incremental {iv:?} vs monolithic {mv:?}",
                &lits[..=d].iter().map(|l| l.to_string()).collect::<Vec<_>>()
            );
            if iv == SatResult::Sat {
                let model = incremental.model().expect("SAT carries a model");
                prop_assert!(
                    lits[..=d].iter().all(|l| model.satisfies(l)),
                    "model does not satisfy the pushed path"
                );
            }
        }
    }

    #[test]
    fn pop_then_push_divergent_branches_agree(seed in any::<u64>()) {
        let (_pool, f) = fixture();
        let mut g = Gen(seed | 1);
        let depth = 3 + g.below(6) as usize;
        let lits: Vec<SymExpr> = (0..depth).map(|_| symbolic_literal(&mut g, &f)).collect();

        let mut incremental = IncrementalSolver::new();
        for lit in &lits {
            incremental.push(lit.clone());
            incremental.check();
        }
        // Backtrack a random amount (at least one frame) and explore a
        // divergent branch, exactly like the executor's DFS.
        let keep = g.below(depth as u64) as usize;
        while incremental.depth() > keep {
            incremental.pop();
        }
        let branch_depth = 1 + g.below(4) as usize;
        let mut path: Vec<SymExpr> = lits[..keep].to_vec();
        for _ in 0..branch_depth {
            // Half the time, negate a previously seen literal (the classic
            // divergent DFS sibling); otherwise a fresh literal.
            let lit = if g.below(2) == 0 {
                SymExpr::not(lits[g.below(depth as u64) as usize].clone())
            } else {
                symbolic_literal(&mut g, &f)
            };
            path.push(lit.clone());
            incremental.push(lit);
            let iv = incremental.check();
            let mv = Solver::new().check(&path).result();
            prop_assert!(
                sound_agreement(iv, mv),
                "divergent path {:?}: incremental {iv:?} vs monolithic {mv:?}",
                path.iter().map(|l| l.to_string()).collect::<Vec<_>>()
            );
            if iv == SatResult::Sat {
                let model = incremental.model().expect("SAT carries a model");
                prop_assert!(path.iter().all(|l| model.satisfies(l)));
            }
        }
    }

    #[test]
    fn repeated_paths_hit_the_prefix_trie(seed in any::<u64>()) {
        let (_pool, f) = fixture();
        let mut g = Gen(seed | 1);
        let depth = 2 + g.below(5) as usize;
        let lits: Vec<SymExpr> = (0..depth).map(|_| symbolic_literal(&mut g, &f)).collect();

        let mut incremental = IncrementalSolver::new();
        let mut first = Vec::new();
        for lit in &lits {
            incremental.push(lit.clone());
            first.push(incremental.check());
        }
        incremental.reset();
        let busy_before = {
            let s = incremental.stats();
            s.model_searches + s.fm_runs
        };
        // Replaying the same path must answer every check from memoized
        // state (trie or unsat-prefix kill), never re-solving.
        for (i, lit) in lits.iter().enumerate() {
            incremental.push(lit.clone());
            let verdict = incremental.check();
            prop_assert_eq!(verdict, first[i], "replay diverged at depth {}", i);
        }
        let busy_after = {
            let s = incremental.stats();
            s.model_searches + s.fm_runs
        };
        prop_assert_eq!(busy_before, busy_after, "replay re-ran the pipeline");
    }
}
