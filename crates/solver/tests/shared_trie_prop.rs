//! Property tests for the concurrent shared prefix trie: randomized
//! literal chains hammered from several threads must intern to stable
//! node ids, never lose a published verdict, and agree with a
//! single-threaded reference walk.

use std::sync::Arc;

use dise_solver::{SatResult, SharedTrie, SymExpr, SymTy, VarPool};
use proptest::prelude::*;

/// Builds a pool of distinct literals to weave chains from.
fn literal_pool(n: usize) -> Vec<SymExpr> {
    let mut pool = VarPool::new();
    let x = pool.fresh("X", SymTy::Int);
    let y = pool.fresh("Y", SymTy::Int);
    (0..n)
        .map(|i| {
            let k = SymExpr::int(i as i64);
            if i % 2 == 0 {
                SymExpr::gt(SymExpr::var(&x), k)
            } else {
                SymExpr::le(SymExpr::add(SymExpr::var(&x), SymExpr::var(&y)), k)
            }
        })
        .collect()
}

/// Walks `chain` through the trie, returning the node id per depth.
fn walk(trie: &SharedTrie, chain: &[&SymExpr]) -> Vec<u64> {
    let mut parent = SharedTrie::ROOT;
    chain
        .iter()
        .map(|lit| {
            parent = trie.child(parent, lit).expect("within capacity");
            parent
        })
        .collect()
}

proptest! {
    #[test]
    fn concurrent_inserts_and_lookups_agree(seed in any::<u64>()) {
        let lits = literal_pool(8);
        // Derive a handful of overlapping chains from the seed: shared
        // prefixes are the interesting case (that is what workers race
        // on at a fork).
        let mut s = seed;
        let mut chains: Vec<Vec<&SymExpr>> = Vec::new();
        for _ in 0..4 {
            let mut chain = Vec::new();
            for depth in 0..6 {
                s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                // Low indices dominate so chains share prefixes.
                let idx = ((s >> 33) as usize % (2 + depth)) % lits.len();
                chain.push(&lits[idx]);
            }
            chains.push(chain);
        }

        let trie = Arc::new(SharedTrie::new(1 << 12));
        // Every thread walks every chain and publishes a verdict derived
        // from the node id — identical inputs, so racing publishers write
        // identical data (the determinism contract).
        let per_thread: Vec<Vec<Vec<u64>>> = std::thread::scope(|scope| {
            (0..4)
                .map(|_| {
                    let trie = Arc::clone(&trie);
                    let chains = &chains;
                    scope.spawn(move || {
                        chains
                            .iter()
                            .map(|chain| {
                                let ids = walk(&trie, chain);
                                let mut parent = SharedTrie::ROOT;
                                for (lit, &id) in chain.iter().zip(&ids) {
                                    let verdict = if id % 2 == 0 {
                                        SatResult::Sat
                                    } else {
                                        SatResult::Unsat
                                    };
                                    trie.publish(parent, lit, verdict, None, None);
                                    parent = id;
                                }
                                ids
                            })
                            .collect()
                    })
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|handle| handle.join().unwrap())
                .collect()
        });

        // Ids are stable across threads.
        for other in &per_thread[1..] {
            prop_assert_eq!(&per_thread[0], other);
        }

        // A reference re-walk sees every id again and every verdict
        // published (derived from the id, so its value is checkable).
        for (chain, ids) in chains.iter().zip(&per_thread[0]) {
            let rewalk = walk(&trie, chain);
            prop_assert_eq!(&rewalk, ids);
            let mut parent = SharedTrie::ROOT;
            for (lit, &id) in chain.iter().zip(ids) {
                let hit = trie.verdict(parent, lit).expect("published");
                let expect = if id % 2 == 0 {
                    SatResult::Sat
                } else {
                    SatResult::Unsat
                };
                prop_assert_eq!(hit.verdict, expect);
                parent = id;
            }
        }

        // The trie interned exactly the distinct edges of the chains.
        let mut edges = std::collections::BTreeSet::new();
        for (chain, ids) in chains.iter().zip(&per_thread[0]) {
            let mut parent = SharedTrie::ROOT;
            for (lit, &id) in chain.iter().zip(ids) {
                edges.insert((parent, format!("{lit}")));
                parent = id;
            }
        }
        prop_assert_eq!(trie.len(), edges.len());
    }
}
