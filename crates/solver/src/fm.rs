//! Fourier–Motzkin elimination with equality substitution.
//!
//! Decides conjunctions of [`LinAtom`]s over the *rationals*:
//!
//! * [`FmResult::Unsat`] is sound for the integers too (no rational
//!   solution ⇒ no integer solution) — this is the answer the solver
//!   trusts directly;
//! * [`FmResult::RationalSat`] only means a rational solution exists; the
//!   solver confirms integrality by finding an explicit model
//!   ([`crate::model`]);
//! * [`FmResult::Unknown`] is returned when elimination exceeds its size
//!   budget or coefficients overflow `i128`.
//!
//! Before elimination, equalities with a ±1 coefficient are substituted
//! away (integer-exact Gaussian elimination), which both shrinks the system
//! and keeps FM's quadratic blowup in check.

use crate::linear::{LinAtom, LinExpr, Rel};

/// Outcome of [`eliminate`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FmResult {
    /// A rational solution exists.
    RationalSat,
    /// No rational (hence no integer) solution exists.
    Unsat,
    /// The procedure gave up (size budget or overflow).
    Unknown,
}

/// Maximum number of inequalities the eliminator may materialize.
const ATOM_BUDGET: usize = 4096;

/// The result of equality substitution: the reduced system plus the
/// eliminated variables and their defining expressions, in elimination
/// order. `x = expr` means the original system is equisatisfiable with
/// `atoms` extended by that binding.
#[derive(Debug, Clone, Default)]
pub struct Substitution {
    /// The reduced, equisatisfiable system.
    pub atoms: Vec<LinAtom>,
    /// `(variable id, defining expression)`, in elimination order. A later
    /// entry's expression may reference earlier-eliminated variables'
    /// *surviving* peers only, so back-substitute in reverse order.
    pub eliminated: Vec<(u32, LinExpr)>,
}

impl Substitution {
    /// Extends an integer assignment of the surviving variables with values
    /// for the eliminated ones (processed in reverse elimination order).
    /// Returns `None` if a defining expression overflows `i64` or mentions
    /// an unassigned variable.
    pub fn back_solve(&self, assignment: &mut std::collections::BTreeMap<u32, i64>) -> Option<()> {
        for (var, expr) in self.eliminated.iter().rev() {
            let value = expr.eval(assignment)?;
            let value = i64::try_from(value).ok()?;
            assignment.insert(*var, value);
        }
        Some(())
    }
}

/// Substitutes away equalities whose expression contains a variable with
/// coefficient ±1. Returns the simplified system, or `None` if a constant
/// equality is violated (UNSAT) — callers distinguish that via
/// [`substitute_equalities`]' wrapper below.
type SubstituteStep = (Vec<LinAtom>, (u32, LinExpr));

fn substitute_once(atoms: &[LinAtom]) -> Result<Option<SubstituteStep>, ()> {
    // Find a usable equality.
    let target = atoms.iter().enumerate().find_map(|(i, atom)| {
        if atom.rel != Rel::Eq {
            return None;
        }
        atom.expr
            .terms()
            .find(|&(_, c)| c == 1 || c == -1)
            .map(|(id, c)| (i, id, c))
    });
    let Some((idx, var, coeff)) = target else {
        return Ok(None);
    };
    // atom: coeff*var + rest = 0  ⇒  var = -rest/coeff = rest * (-coeff).
    let mut rest = atoms[idx].expr.clone();
    rest.remove_var(var);
    let Some(replacement) = rest.checked_scale(-coeff) else {
        return Err(());
    };

    let mut out = Vec::with_capacity(atoms.len() - 1);
    for (i, atom) in atoms.iter().enumerate() {
        if i == idx {
            continue;
        }
        let c = atom.expr.coeff(var);
        if c == 0 {
            out.push(atom.clone());
            continue;
        }
        let mut expr = atom.expr.clone();
        expr.remove_var(var);
        let Some(scaled) = replacement.checked_scale(c) else {
            return Err(());
        };
        let Some(expr) = expr.checked_add(&scaled) else {
            return Err(());
        };
        let substituted = LinAtom {
            expr,
            rel: atom.rel,
        };
        if substituted.constant_truth() == Some(false) {
            // Canonical false atom.
            return Ok(Some((
                vec![LinAtom::le(LinExpr::constant_expr(1))],
                (var, replacement),
            )));
        }
        if substituted.constant_truth() == Some(true) {
            continue;
        }
        out.push(substituted);
    }
    Ok(Some((out, (var, replacement))))
}

/// Repeatedly substitutes unit-coefficient equalities. The result is
/// equisatisfiable over the integers and records how to recover the
/// eliminated variables. Returns `None` on overflow.
pub fn substitute_equalities(mut atoms: Vec<LinAtom>) -> Option<Substitution> {
    let mut eliminated = Vec::new();
    loop {
        match substitute_once(&atoms) {
            Ok(Some((next, binding))) => {
                atoms = next;
                eliminated.push(binding);
            }
            Ok(None) => return Some(Substitution { atoms, eliminated }),
            Err(()) => return None,
        }
    }
}

/// Runs Fourier–Motzkin elimination on a conjunction of atoms.
///
/// Equalities without unit coefficients are expanded into two
/// inequalities first.
pub fn eliminate(atoms: &[LinAtom]) -> FmResult {
    // Expand equalities into ≤ pairs.
    let mut system: Vec<LinExpr> = Vec::new();
    for atom in atoms {
        match atom.rel {
            Rel::Le => system.push(atom.expr.clone()),
            Rel::Eq => {
                system.push(atom.expr.clone());
                match atom.expr.checked_scale(-1) {
                    Some(neg) => system.push(neg),
                    None => return FmResult::Unknown,
                }
            }
        }
    }

    loop {
        // Constant rows decide or disappear.
        let mut next: Vec<LinExpr> = Vec::new();
        for expr in system {
            if expr.is_constant() {
                if expr.constant() > 0 {
                    return FmResult::Unsat;
                }
            } else {
                next.push(expr);
            }
        }
        system = next;
        if system.is_empty() {
            return FmResult::RationalSat;
        }

        // Choose the variable with the fewest upper×lower products.
        let mut vars: std::collections::BTreeMap<u32, (usize, usize)> =
            std::collections::BTreeMap::new();
        for expr in &system {
            for (id, c) in expr.terms() {
                let entry = vars.entry(id).or_insert((0, 0));
                if c > 0 {
                    entry.0 += 1; // upper bound on id
                } else {
                    entry.1 += 1; // lower bound on id
                }
            }
        }
        let (&victim, _) = vars
            .iter()
            .min_by_key(|(_, &(u, l))| u * l)
            .expect("non-empty system has variables");

        let mut uppers: Vec<LinExpr> = Vec::new();
        let mut lowers: Vec<LinExpr> = Vec::new();
        let mut rest: Vec<LinExpr> = Vec::new();
        for expr in system {
            match expr.coeff(victim).signum() {
                1 => uppers.push(expr),
                -1 => lowers.push(expr),
                _ => rest.push(expr),
            }
        }

        if uppers.len() * lowers.len() + rest.len() > ATOM_BUDGET {
            return FmResult::Unknown;
        }

        // Combine every (upper, lower) pair:
        //   a·x + U ≤ 0 (a>0)  and  -b·x + L ≤ 0 (b>0)
        //   ⇒ b·U + a·L ≤ 0.
        for upper in &uppers {
            let a = upper.coeff(victim);
            let mut u = upper.clone();
            u.remove_var(victim);
            for lower in &lowers {
                let b = -lower.coeff(victim);
                let mut l = lower.clone();
                l.remove_var(victim);
                let combined = u
                    .checked_scale(b)
                    .and_then(|bu| l.checked_scale(a).and_then(|al| bu.checked_add(&al)));
                match combined {
                    Some(expr) => rest.push(expr),
                    None => return FmResult::Unknown,
                }
            }
        }
        system = rest;
        if system.is_empty() {
            return FmResult::RationalSat;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linear::atomize_cmp;
    use crate::sym::{BinOp, SymExpr, SymTy, SymVar, VarPool};

    fn three_vars() -> (SymVar, SymVar, SymVar) {
        let mut pool = VarPool::new();
        (
            pool.fresh("X", SymTy::Int),
            pool.fresh("Y", SymTy::Int),
            pool.fresh("Z", SymTy::Int),
        )
    }

    fn atom(op: BinOp, lhs: SymExpr, rhs: SymExpr) -> LinAtom {
        atomize_cmp(op, &lhs, &rhs).unwrap()
    }

    #[test]
    fn sat_simple_range() {
        let (x, _, _) = three_vars();
        let atoms = vec![
            atom(BinOp::Gt, SymExpr::var(&x), SymExpr::int(0)),
            atom(BinOp::Lt, SymExpr::var(&x), SymExpr::int(10)),
        ];
        assert_eq!(eliminate(&atoms), FmResult::RationalSat);
    }

    #[test]
    fn unsat_contradictory_bounds() {
        let (x, _, _) = three_vars();
        let atoms = vec![
            atom(BinOp::Gt, SymExpr::var(&x), SymExpr::int(5)),
            atom(BinOp::Lt, SymExpr::var(&x), SymExpr::int(3)),
        ];
        assert_eq!(eliminate(&atoms), FmResult::Unsat);
    }

    #[test]
    fn unsat_through_chain() {
        let (x, y, z) = three_vars();
        // x < y ∧ y < z ∧ z < x is unsatisfiable.
        let atoms = vec![
            atom(BinOp::Lt, SymExpr::var(&x), SymExpr::var(&y)),
            atom(BinOp::Lt, SymExpr::var(&y), SymExpr::var(&z)),
            atom(BinOp::Lt, SymExpr::var(&z), SymExpr::var(&x)),
        ];
        assert_eq!(eliminate(&atoms), FmResult::Unsat);
    }

    #[test]
    fn sat_triangle() {
        let (x, y, z) = three_vars();
        let atoms = vec![
            atom(BinOp::Le, SymExpr::var(&x), SymExpr::var(&y)),
            atom(BinOp::Le, SymExpr::var(&y), SymExpr::var(&z)),
            atom(BinOp::Le, SymExpr::var(&x), SymExpr::var(&z)),
        ];
        assert_eq!(eliminate(&atoms), FmResult::RationalSat);
    }

    #[test]
    fn equality_substitution_simplifies() {
        let (x, y, _) = three_vars();
        // x = y + 3 ∧ x ≤ 2 ∧ y ≥ 0  ⇒ after substitution: y + 3 ≤ 2 ∧ y ≥ 0 ⇒ UNSAT
        let atoms = vec![
            atom(
                BinOp::Eq,
                SymExpr::var(&x),
                SymExpr::add(SymExpr::var(&y), SymExpr::int(3)),
            ),
            atom(BinOp::Le, SymExpr::var(&x), SymExpr::int(2)),
            atom(BinOp::Ge, SymExpr::var(&y), SymExpr::int(0)),
        ];
        let substituted = substitute_equalities(atoms).unwrap();
        assert!(substituted.atoms.iter().all(|a| a.rel == Rel::Le));
        assert_eq!(substituted.eliminated.len(), 1);
        assert_eq!(eliminate(&substituted.atoms), FmResult::Unsat);
    }

    #[test]
    fn constant_equality_violation_detected() {
        let (x, _, _) = three_vars();
        // x = 1 ∧ x = 2
        let atoms = vec![
            atom(BinOp::Eq, SymExpr::var(&x), SymExpr::int(1)),
            atom(BinOp::Eq, SymExpr::var(&x), SymExpr::int(2)),
        ];
        let substituted = substitute_equalities(atoms).unwrap();
        assert_eq!(eliminate(&substituted.atoms), FmResult::Unsat);
    }

    #[test]
    fn rational_sat_without_integer_solution() {
        let (x, _, _) = three_vars();
        // 2x = 1 has a rational solution only. FM must NOT claim Unsat.
        let atoms = vec![atom(
            BinOp::Eq,
            SymExpr::mul(SymExpr::int(2), SymExpr::var(&x)),
            SymExpr::int(1),
        )];
        // No unit coefficient, so substitution leaves it alone.
        let substituted = substitute_equalities(atoms).unwrap();
        assert!(substituted.eliminated.is_empty());
        assert_eq!(eliminate(&substituted.atoms), FmResult::RationalSat);
    }

    #[test]
    fn empty_system_is_sat() {
        assert_eq!(eliminate(&[]), FmResult::RationalSat);
        assert!(substitute_equalities(vec![]).unwrap().atoms.is_empty());
    }

    #[test]
    fn back_solve_recovers_eliminated_variables() {
        let (x, y, _) = three_vars();
        // x = y + 3 ∧ y ≥ 0: eliminate x, solve y, back-solve x.
        let atoms = vec![
            atom(
                BinOp::Eq,
                SymExpr::var(&x),
                SymExpr::add(SymExpr::var(&y), SymExpr::int(3)),
            ),
            atom(BinOp::Ge, SymExpr::var(&y), SymExpr::int(0)),
        ];
        let substituted = substitute_equalities(atoms).unwrap();
        let mut assignment = std::collections::BTreeMap::new();
        assignment.insert(y.id(), 2i64);
        substituted.back_solve(&mut assignment).unwrap();
        assert_eq!(assignment[&x.id()], 5);
    }

    #[test]
    fn wide_system_hits_budget() {
        // Engineer a system whose elimination explodes: n uppers and n
        // lowers on each of several variables, all coupled.
        let mut pool = VarPool::new();
        let vars: Vec<_> = (0..8)
            .map(|i| pool.fresh(format!("V{i}"), SymTy::Int))
            .collect();
        let mut atoms = Vec::new();
        for i in 0..vars.len() {
            for j in 0..vars.len() {
                if i != j {
                    // vi - vj ≤ j  and  vj - vi ≤ i + 1 (coupled both ways)
                    atoms.push(atom(
                        BinOp::Le,
                        SymExpr::sub(SymExpr::var(&vars[i]), SymExpr::var(&vars[j])),
                        SymExpr::int(j as i64),
                    ));
                }
            }
        }
        // Whatever the verdict, it must terminate and not be wrong:
        // the system is satisfiable (all zeros), so Unsat is forbidden.
        let result = eliminate(&atoms);
        assert_ne!(result, FmResult::Unsat);
    }
}
