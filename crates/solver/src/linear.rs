//! Linear forms and linear atoms.
//!
//! A [`LinExpr`] is `Σ cᵢ·xᵢ + k` with `i128` coefficients over symbolic
//! integer variables (identified by their [`crate::SymVar`] id). A [`LinAtom`]
//! is a normalized constraint `expr ≤ 0` or `expr = 0`; strict inequalities
//! over the integers are absorbed into `≤` (`e < 0 ⇔ e + 1 ≤ 0`), and `≥`,
//! `>` flip sides. Disequalities are *not* atoms — the solver case-splits
//! them into `<` and `>` upstream.
//!
//! All arithmetic is checked; overflow makes extraction fail, which the
//! solver maps to [`crate::SatResult::Unknown`] (never to a wrong answer).

use std::collections::BTreeMap;
use std::fmt;

use crate::sym::{BinOp, SymExpr, SymTy, UnOp};

/// A linear expression `Σ cᵢ·xᵢ + k` (coefficients never zero).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct LinExpr {
    coeffs: BTreeMap<u32, i128>,
    constant: i128,
}

impl LinExpr {
    /// The constant `k`.
    pub fn constant_expr(k: i128) -> LinExpr {
        LinExpr {
            coeffs: BTreeMap::new(),
            constant: k,
        }
    }

    /// The single variable `x` (coefficient 1).
    pub fn variable(id: u32) -> LinExpr {
        let mut coeffs = BTreeMap::new();
        coeffs.insert(id, 1);
        LinExpr {
            coeffs,
            constant: 0,
        }
    }

    /// The coefficient of variable `id` (zero if absent).
    pub fn coeff(&self, id: u32) -> i128 {
        self.coeffs.get(&id).copied().unwrap_or(0)
    }

    /// The additive constant.
    pub fn constant(&self) -> i128 {
        self.constant
    }

    /// Iterates over `(variable id, coefficient)` pairs.
    pub fn terms(&self) -> impl Iterator<Item = (u32, i128)> + '_ {
        self.coeffs.iter().map(|(&id, &c)| (id, c))
    }

    /// Returns `true` if the expression has no variables.
    pub fn is_constant(&self) -> bool {
        self.coeffs.is_empty()
    }

    /// Number of variables with non-zero coefficient.
    pub fn num_vars(&self) -> usize {
        self.coeffs.len()
    }

    /// Checked addition.
    pub fn checked_add(&self, other: &LinExpr) -> Option<LinExpr> {
        let mut out = self.clone();
        out.constant = out.constant.checked_add(other.constant)?;
        for (&id, &c) in &other.coeffs {
            let merged = out.coeff(id).checked_add(c)?;
            if merged == 0 {
                out.coeffs.remove(&id);
            } else {
                out.coeffs.insert(id, merged);
            }
        }
        Some(out)
    }

    /// Checked subtraction.
    pub fn checked_sub(&self, other: &LinExpr) -> Option<LinExpr> {
        self.checked_add(&other.checked_scale(-1)?)
    }

    /// Checked scalar multiplication.
    pub fn checked_scale(&self, factor: i128) -> Option<LinExpr> {
        if factor == 0 {
            return Some(LinExpr::constant_expr(0));
        }
        let mut out = LinExpr {
            coeffs: BTreeMap::new(),
            constant: self.constant.checked_mul(factor)?,
        };
        for (&id, &c) in &self.coeffs {
            out.coeffs.insert(id, c.checked_mul(factor)?);
        }
        Some(out)
    }

    /// Removes variable `id`, returning its coefficient (zero if absent).
    pub fn remove_var(&mut self, id: u32) -> i128 {
        self.coeffs.remove(&id).unwrap_or(0)
    }

    /// Evaluates under a total integer assignment.
    pub fn eval(&self, assignment: &BTreeMap<u32, i64>) -> Option<i128> {
        let mut total = self.constant;
        for (&id, &c) in &self.coeffs {
            let v = *assignment.get(&id)?;
            total = total.checked_add(c.checked_mul(v as i128)?)?;
        }
        Some(total)
    }
}

impl fmt::Display for LinExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for (&id, &c) in &self.coeffs {
            if first {
                if c == 1 {
                    write!(f, "v{id}")?;
                } else if c == -1 {
                    write!(f, "-v{id}")?;
                } else {
                    write!(f, "{c}*v{id}")?;
                }
                first = false;
            } else if c >= 0 {
                if c == 1 {
                    write!(f, " + v{id}")?;
                } else {
                    write!(f, " + {c}*v{id}")?;
                }
            } else if c == -1 {
                write!(f, " - v{id}")?;
            } else {
                write!(f, " - {}*v{id}", -c)?;
            }
        }
        if first {
            write!(f, "{}", self.constant)?;
        } else if self.constant > 0 {
            write!(f, " + {}", self.constant)?;
        } else if self.constant < 0 {
            write!(f, " - {}", -self.constant)?;
        }
        Ok(())
    }
}

/// The relation of a normalized [`LinAtom`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Rel {
    /// `expr ≤ 0`.
    Le,
    /// `expr = 0`.
    Eq,
}

/// A normalized linear constraint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LinAtom {
    /// The linear expression constrained against zero.
    pub expr: LinExpr,
    /// The relation to zero.
    pub rel: Rel,
}

impl LinAtom {
    /// `expr ≤ 0`.
    pub fn le(expr: LinExpr) -> LinAtom {
        LinAtom { expr, rel: Rel::Le }
    }

    /// `expr = 0`.
    pub fn eq(expr: LinExpr) -> LinAtom {
        LinAtom { expr, rel: Rel::Eq }
    }

    /// For a constant atom, whether it is satisfied; `None` if the atom
    /// still has variables.
    pub fn constant_truth(&self) -> Option<bool> {
        if !self.expr.is_constant() {
            return None;
        }
        Some(match self.rel {
            Rel::Le => self.expr.constant() <= 0,
            Rel::Eq => self.expr.constant() == 0,
        })
    }

    /// Evaluates under a total integer assignment.
    pub fn eval(&self, assignment: &BTreeMap<u32, i64>) -> Option<bool> {
        let value = self.expr.eval(assignment)?;
        Some(match self.rel {
            Rel::Le => value <= 0,
            Rel::Eq => value == 0,
        })
    }
}

impl fmt::Display for LinAtom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.rel {
            Rel::Le => write!(f, "{} <= 0", self.expr),
            Rel::Eq => write!(f, "{} == 0", self.expr),
        }
    }
}

/// Converts an *integer-typed* symbolic expression to a linear form.
/// Returns `None` for nonlinear expressions (`x*y`, `x/2`, `x%3`) or on
/// coefficient overflow.
pub fn linearize(expr: &SymExpr) -> Option<LinExpr> {
    match expr {
        SymExpr::Int(v) => Some(LinExpr::constant_expr(*v as i128)),
        SymExpr::Var(v) if v.ty() == SymTy::Int => Some(LinExpr::variable(v.id())),
        SymExpr::Var(_) => None,
        SymExpr::Unary { op: UnOp::Neg, arg } => linearize(arg)?.checked_scale(-1),
        SymExpr::Unary { .. } => None,
        SymExpr::Binary { op, lhs, rhs } => {
            let l = linearize(lhs);
            let r = linearize(rhs);
            match op {
                BinOp::Add => l?.checked_add(&r?),
                BinOp::Sub => l?.checked_sub(&r?),
                BinOp::Mul => {
                    let (l, r) = (l?, r?);
                    if l.is_constant() {
                        r.checked_scale(l.constant())
                    } else if r.is_constant() {
                        l.checked_scale(r.constant())
                    } else {
                        None
                    }
                }
                _ => None,
            }
        }
        SymExpr::Bool(_) => None,
    }
}

/// Converts a comparison `lhs ⋈ rhs` over integers to normalized atoms.
///
/// Returns the atoms whose conjunction is equivalent:
/// * `<`, `≤`, `>`, `≥` and `=` produce one atom;
/// * `≠` produces `None` (the caller must case-split).
pub fn atomize_cmp(op: BinOp, lhs: &SymExpr, rhs: &SymExpr) -> Option<LinAtom> {
    let l = linearize(lhs)?;
    let r = linearize(rhs)?;
    let diff = l.checked_sub(&r)?; // lhs - rhs ⋈ 0
    Some(match op {
        BinOp::Le => LinAtom::le(diff),
        BinOp::Lt => LinAtom::le(diff.checked_add(&LinExpr::constant_expr(1))?),
        BinOp::Ge => LinAtom::le(diff.checked_scale(-1)?),
        BinOp::Gt => LinAtom::le(
            diff.checked_scale(-1)?
                .checked_add(&LinExpr::constant_expr(1))?,
        ),
        BinOp::Eq => LinAtom::eq(diff),
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sym::{SymTy, VarPool};

    fn vars() -> (VarPool, crate::sym::SymVar, crate::sym::SymVar) {
        let mut pool = VarPool::new();
        let x = pool.fresh("X", SymTy::Int);
        let y = pool.fresh("Y", SymTy::Int);
        (pool, x, y)
    }

    #[test]
    fn linearize_basic_shapes() {
        let (_, x, y) = vars();
        // 2*x - y + 3
        let e = SymExpr::add(
            SymExpr::sub(
                SymExpr::mul(SymExpr::int(2), SymExpr::var(&x)),
                SymExpr::var(&y),
            ),
            SymExpr::int(3),
        );
        let lin = linearize(&e).unwrap();
        assert_eq!(lin.coeff(x.id()), 2);
        assert_eq!(lin.coeff(y.id()), -1);
        assert_eq!(lin.constant(), 3);
        assert_eq!(lin.num_vars(), 2);
    }

    #[test]
    fn linearize_cancels_terms() {
        let (_, x, _) = vars();
        // x - x + 5 folds to 0 at construction (identical operands), so
        // exercise cancellation through distinct shapes: (x + 5) - x.
        let e = SymExpr::Binary {
            op: BinOp::Sub,
            lhs: SymExpr::add(SymExpr::var(&x), SymExpr::int(5)).into(),
            rhs: SymExpr::var(&x).into(),
        };
        let lin = linearize(&e).unwrap();
        assert!(lin.is_constant());
        assert_eq!(lin.constant(), 5);
    }

    #[test]
    fn linearize_rejects_nonlinear() {
        let (_, x, y) = vars();
        assert!(linearize(&SymExpr::Binary {
            op: BinOp::Mul,
            lhs: SymExpr::var(&x).into(),
            rhs: SymExpr::var(&y).into(),
        })
        .is_none());
        assert!(linearize(&SymExpr::Binary {
            op: BinOp::Div,
            lhs: SymExpr::var(&x).into(),
            rhs: SymExpr::int(2).into(),
        })
        .is_none());
        assert!(linearize(&SymExpr::Binary {
            op: BinOp::Rem,
            lhs: SymExpr::var(&x).into(),
            rhs: SymExpr::int(3).into(),
        })
        .is_none());
    }

    #[test]
    fn linearize_negation() {
        let (_, x, _) = vars();
        let lin = linearize(&SymExpr::neg(SymExpr::var(&x))).unwrap();
        assert_eq!(lin.coeff(x.id()), -1);
    }

    #[test]
    fn atomize_strict_comparison_tightens() {
        let (_, x, _) = vars();
        // x < 5 ⇔ x - 5 + 1 ≤ 0 ⇔ x - 4 ≤ 0
        let atom = atomize_cmp(BinOp::Lt, &SymExpr::var(&x), &SymExpr::int(5)).unwrap();
        assert_eq!(atom.rel, Rel::Le);
        assert_eq!(atom.expr.coeff(x.id()), 1);
        assert_eq!(atom.expr.constant(), -4);
    }

    #[test]
    fn atomize_flips_ge_gt() {
        let (_, x, _) = vars();
        // x > 5 ⇔ -x + 6 ≤ 0
        let atom = atomize_cmp(BinOp::Gt, &SymExpr::var(&x), &SymExpr::int(5)).unwrap();
        assert_eq!(atom.expr.coeff(x.id()), -1);
        assert_eq!(atom.expr.constant(), 6);
        // x >= 5 ⇔ -x + 5 ≤ 0
        let atom = atomize_cmp(BinOp::Ge, &SymExpr::var(&x), &SymExpr::int(5)).unwrap();
        assert_eq!(atom.expr.constant(), 5);
    }

    #[test]
    fn atomize_equality() {
        let (_, x, y) = vars();
        let atom = atomize_cmp(BinOp::Eq, &SymExpr::var(&x), &SymExpr::var(&y)).unwrap();
        assert_eq!(atom.rel, Rel::Eq);
        assert_eq!(atom.expr.coeff(x.id()), 1);
        assert_eq!(atom.expr.coeff(y.id()), -1);
    }

    #[test]
    fn atomize_disequality_is_refused() {
        let (_, x, _) = vars();
        assert!(atomize_cmp(BinOp::Ne, &SymExpr::var(&x), &SymExpr::int(0)).is_none());
    }

    #[test]
    fn atom_eval_and_constant_truth() {
        let (_, x, _) = vars();
        let atom = atomize_cmp(BinOp::Le, &SymExpr::var(&x), &SymExpr::int(5)).unwrap();
        assert_eq!(atom.constant_truth(), None);
        let mut assignment = BTreeMap::new();
        assignment.insert(x.id(), 5i64);
        assert_eq!(atom.eval(&assignment), Some(true));
        assignment.insert(x.id(), 6);
        assert_eq!(atom.eval(&assignment), Some(false));
        let trivially = LinAtom::le(LinExpr::constant_expr(-3));
        assert_eq!(trivially.constant_truth(), Some(true));
        let falsely = LinAtom::eq(LinExpr::constant_expr(2));
        assert_eq!(falsely.constant_truth(), Some(false));
    }

    #[test]
    fn scale_overflow_is_detected() {
        let big = LinExpr::constant_expr(i128::MAX);
        assert!(big.checked_scale(2).is_none());
        assert!(big.checked_add(&LinExpr::constant_expr(1)).is_none());
    }

    #[test]
    fn display_is_readable() {
        let (_, x, y) = vars();
        let e = SymExpr::sub(
            SymExpr::mul(SymExpr::int(2), SymExpr::var(&x)),
            SymExpr::var(&y),
        );
        let lin = linearize(&SymExpr::add(e, SymExpr::int(7))).unwrap();
        assert_eq!(lin.to_string(), format!("2*v{} - v{} + 7", x.id(), y.id()));
        assert_eq!(LinExpr::constant_expr(0).to_string(), "0");
    }
}
