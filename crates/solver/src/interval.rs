//! Interval constraint propagation.
//!
//! Maintains a (possibly unbounded) integer interval per variable and
//! tightens the intervals against a set of [`LinAtom`]s: for each atom
//! `Σ cᵢ·xᵢ + k ≤ 0` and each variable `xⱼ`, the remaining terms' interval
//! bounds imply a bound on `xⱼ`. Propagation is an over-approximation —
//! it never removes integer solutions — so an empty interval proves
//! unsatisfiability, and the final intervals safely seed the model search.

use std::collections::BTreeMap;
use std::fmt;

use crate::linear::{LinAtom, Rel};

/// An integer interval; `None` bounds mean unbounded.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Interval {
    /// Inclusive lower bound.
    pub lo: Option<i64>,
    /// Inclusive upper bound.
    pub hi: Option<i64>,
}

impl Interval {
    /// The full interval `(-∞, +∞)`.
    pub fn top() -> Interval {
        Interval::default()
    }

    /// The interval `[lo, hi]`.
    pub fn bounded(lo: i64, hi: i64) -> Interval {
        Interval {
            lo: Some(lo),
            hi: Some(hi),
        }
    }

    /// A single point.
    pub fn point(v: i64) -> Interval {
        Interval::bounded(v, v)
    }

    /// Is the interval empty (`lo > hi`)?
    pub fn is_empty(&self) -> bool {
        matches!((self.lo, self.hi), (Some(l), Some(h)) if l > h)
    }

    /// Does the interval contain `v`?
    pub fn contains(&self, v: i64) -> bool {
        self.lo.is_none_or(|l| l <= v) && self.hi.is_none_or(|h| v <= h)
    }

    /// Intersection; may be empty.
    pub fn intersect(&self, other: &Interval) -> Interval {
        Interval {
            lo: match (self.lo, other.lo) {
                (Some(a), Some(b)) => Some(a.max(b)),
                (a, b) => a.or(b),
            },
            hi: match (self.hi, other.hi) {
                (Some(a), Some(b)) => Some(a.min(b)),
                (a, b) => a.or(b),
            },
        }
    }

    /// Tightens the lower bound to at least `v`. Returns `true` on change.
    pub fn tighten_lo(&mut self, v: i64) -> bool {
        if self.lo.is_none_or(|l| v > l) {
            self.lo = Some(v);
            true
        } else {
            false
        }
    }

    /// Tightens the upper bound to at most `v`. Returns `true` on change.
    pub fn tighten_hi(&mut self, v: i64) -> bool {
        if self.hi.is_none_or(|h| v < h) {
            self.hi = Some(v);
            true
        } else {
            false
        }
    }

    /// Width of the interval, saturating; `None` if unbounded.
    pub fn width(&self) -> Option<u64> {
        match (self.lo, self.hi) {
            (Some(l), Some(h)) if l <= h => Some((h as i128 - l as i128) as u64),
            (Some(_), Some(_)) => Some(0),
            _ => None,
        }
    }
}

impl fmt::Display for Interval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.lo {
            Some(l) => write!(f, "[{l}, ")?,
            None => write!(f, "(-inf, ")?,
        }
        match self.hi {
            Some(h) => write!(f, "{h}]"),
            None => write!(f, "+inf)"),
        }
    }
}

/// Outcome of interval propagation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PropagationResult {
    /// The intervals (one per variable appearing in the atoms) after
    /// tightening to a fixed point or the iteration cap.
    Bounds(BTreeMap<u32, Interval>),
    /// Some variable's interval became empty: the atoms are unsatisfiable
    /// over the integers.
    Empty,
}

/// Maximum sweeps; tightening is monotone so this only limits how long we
/// chase slow count-downs (`x ≤ y - 1 ∧ y ≤ x` style chains).
const MAX_SWEEPS: usize = 64;

/// Propagates `atoms` starting from `initial` bounds (variables absent from
/// `initial` start unbounded).
pub fn propagate(atoms: &[LinAtom], initial: &BTreeMap<u32, Interval>) -> PropagationResult {
    let mut bounds: BTreeMap<u32, Interval> = initial.clone();
    for atom in atoms {
        for (id, _) in atom.expr.terms() {
            bounds.entry(id).or_insert_with(Interval::top);
        }
    }

    for _ in 0..MAX_SWEEPS {
        let mut changed = false;
        for atom in atoms {
            // An equality `e = 0` is `e ≤ 0 ∧ -e ≤ 0`.
            let negated;
            let exprs: &[_] = match atom.rel {
                Rel::Le => std::slice::from_ref(&atom.expr),
                Rel::Eq => {
                    negated = [
                        atom.expr.clone(),
                        match atom.expr.checked_scale(-1) {
                            Some(e) => e,
                            None => continue,
                        },
                    ];
                    &negated
                }
            };
            for expr in exprs {
                // For each xⱼ: cⱼ·xⱼ ≤ -k - Σ_{i≠j} cᵢ·xᵢ.
                for (j, cj) in expr.terms() {
                    // Upper bound of the RHS via interval arithmetic.
                    let mut rhs_max: Option<i128> = Some(-expr.constant());
                    for (i, ci) in expr.terms() {
                        if i == j {
                            continue;
                        }
                        let iv = bounds.get(&i).copied().unwrap_or_default();
                        // max of (-ci * xi) over xi's interval.
                        let term_max = if ci > 0 {
                            iv.lo.map(|l| -(ci * l as i128))
                        } else {
                            iv.hi.map(|h| -(ci * h as i128))
                        };
                        rhs_max = match (rhs_max, term_max) {
                            (Some(a), Some(b)) => a.checked_add(b),
                            _ => None,
                        };
                    }
                    let Some(rhs_max) = rhs_max else { continue };
                    let iv = bounds.get_mut(&j).expect("seeded above");
                    if cj > 0 {
                        // xⱼ ≤ floor(rhs_max / cⱼ)
                        let bound = rhs_max.div_euclid(cj);
                        if bound < i64::MIN as i128 {
                            return PropagationResult::Empty;
                        }
                        let clamped = bound.min(i64::MAX as i128) as i64;
                        changed |= iv.tighten_hi(clamped);
                    } else {
                        // cⱼ < 0: xⱼ ≥ ceil(rhs_max / cⱼ). `div_euclid`
                        // with a negative divisor leaves a non-negative
                        // remainder, so its quotient is exactly the ceiling.
                        let bound = rhs_max.div_euclid(cj);
                        if bound > i64::MAX as i128 {
                            return PropagationResult::Empty;
                        }
                        let clamped = bound.max(i64::MIN as i128) as i64;
                        changed |= iv.tighten_lo(clamped);
                    }
                    if iv.is_empty() {
                        return PropagationResult::Empty;
                    }
                }
                // Constant atoms decide themselves.
                if expr.is_constant() && expr.constant() > 0 {
                    return PropagationResult::Empty;
                }
            }
        }
        if !changed {
            break;
        }
    }
    PropagationResult::Bounds(bounds)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linear::{atomize_cmp, LinExpr};
    use crate::sym::{BinOp, SymExpr, SymTy, SymVar, VarPool};

    fn two_vars() -> (SymVar, SymVar) {
        let mut pool = VarPool::new();
        (pool.fresh("X", SymTy::Int), pool.fresh("Y", SymTy::Int))
    }

    fn atom(op: BinOp, lhs: SymExpr, rhs: SymExpr) -> LinAtom {
        atomize_cmp(op, &lhs, &rhs).unwrap()
    }

    #[test]
    fn interval_basics() {
        let iv = Interval::bounded(2, 5);
        assert!(iv.contains(2) && iv.contains(5) && !iv.contains(6));
        assert!(!iv.is_empty());
        assert!(Interval::bounded(3, 2).is_empty());
        assert_eq!(iv.width(), Some(3));
        assert_eq!(Interval::top().width(), None);
        assert_eq!(
            Interval::bounded(0, 10).intersect(&Interval::bounded(5, 20)),
            Interval::bounded(5, 10)
        );
        assert_eq!(Interval::point(4).to_string(), "[4, 4]");
        assert_eq!(Interval::top().to_string(), "(-inf, +inf)");
    }

    #[test]
    fn propagate_simple_bounds() {
        let (x, _) = two_vars();
        let atoms = vec![
            atom(BinOp::Gt, SymExpr::var(&x), SymExpr::int(0)),
            atom(BinOp::Le, SymExpr::var(&x), SymExpr::int(9)),
        ];
        let PropagationResult::Bounds(bounds) = propagate(&atoms, &BTreeMap::new()) else {
            panic!("expected bounds");
        };
        assert_eq!(bounds[&x.id()], Interval::bounded(1, 9));
    }

    #[test]
    fn propagate_detects_empty() {
        let (x, _) = two_vars();
        let atoms = vec![
            atom(BinOp::Gt, SymExpr::var(&x), SymExpr::int(5)),
            atom(BinOp::Lt, SymExpr::var(&x), SymExpr::int(5)),
        ];
        assert_eq!(
            propagate(&atoms, &BTreeMap::new()),
            PropagationResult::Empty
        );
    }

    #[test]
    fn propagate_equality_pins_point() {
        let (x, _) = two_vars();
        let atoms = vec![atom(BinOp::Eq, SymExpr::var(&x), SymExpr::int(7))];
        let PropagationResult::Bounds(bounds) = propagate(&atoms, &BTreeMap::new()) else {
            panic!("expected bounds");
        };
        assert_eq!(bounds[&x.id()], Interval::point(7));
    }

    #[test]
    fn propagate_through_chain() {
        let (x, y) = two_vars();
        // x ≥ 3 ∧ y ≥ x + 2 ⇒ y ≥ 5
        let atoms = vec![
            atom(BinOp::Ge, SymExpr::var(&x), SymExpr::int(3)),
            atom(
                BinOp::Ge,
                SymExpr::var(&y),
                SymExpr::add(SymExpr::var(&x), SymExpr::int(2)),
            ),
        ];
        let PropagationResult::Bounds(bounds) = propagate(&atoms, &BTreeMap::new()) else {
            panic!("expected bounds");
        };
        assert_eq!(bounds[&y.id()].lo, Some(5));
    }

    #[test]
    fn propagate_scaled_coefficients_round_correctly() {
        let (x, _) = two_vars();
        // 2x ≤ 7 ⇒ x ≤ 3 (floor)
        let atoms = vec![atom(
            BinOp::Le,
            SymExpr::mul(SymExpr::int(2), SymExpr::var(&x)),
            SymExpr::int(7),
        )];
        let PropagationResult::Bounds(bounds) = propagate(&atoms, &BTreeMap::new()) else {
            panic!("expected bounds");
        };
        assert_eq!(bounds[&x.id()].hi, Some(3));
        // 2x ≥ 7 ⇒ x ≥ 4 (ceil)
        let atoms = vec![atom(
            BinOp::Ge,
            SymExpr::mul(SymExpr::int(2), SymExpr::var(&x)),
            SymExpr::int(7),
        )];
        let PropagationResult::Bounds(bounds) = propagate(&atoms, &BTreeMap::new()) else {
            panic!("expected bounds");
        };
        assert_eq!(bounds[&x.id()].lo, Some(4));
    }

    #[test]
    fn propagation_is_sound_never_drops_solutions() {
        let (x, y) = two_vars();
        // x + y ≤ 10 ∧ x ≥ 0 ∧ y ≥ 0; solution (3, 7) must stay inside.
        let atoms = vec![
            atom(
                BinOp::Le,
                SymExpr::add(SymExpr::var(&x), SymExpr::var(&y)),
                SymExpr::int(10),
            ),
            atom(BinOp::Ge, SymExpr::var(&x), SymExpr::int(0)),
            atom(BinOp::Ge, SymExpr::var(&y), SymExpr::int(0)),
        ];
        let PropagationResult::Bounds(bounds) = propagate(&atoms, &BTreeMap::new()) else {
            panic!("expected bounds");
        };
        assert!(bounds[&x.id()].contains(3));
        assert!(bounds[&y.id()].contains(7));
        assert_eq!(bounds[&x.id()], Interval::bounded(0, 10));
    }

    #[test]
    fn initial_bounds_are_respected() {
        let (x, _) = two_vars();
        let mut initial = BTreeMap::new();
        initial.insert(x.id(), Interval::bounded(0, 100));
        let atoms = vec![atom(BinOp::Le, SymExpr::var(&x), SymExpr::int(5))];
        let PropagationResult::Bounds(bounds) = propagate(&atoms, &initial) else {
            panic!("expected bounds");
        };
        assert_eq!(bounds[&x.id()], Interval::bounded(0, 5));
    }

    #[test]
    fn trivially_false_constant_atom() {
        let atoms = vec![LinAtom::le(LinExpr::constant_expr(3))];
        assert_eq!(
            propagate(&atoms, &BTreeMap::new()),
            PropagationResult::Empty
        );
    }
}
