//! Hash-consed term interning.
//!
//! A [`TermId`] is a stable, dense handle for a [`SymExpr`] tree: two
//! structurally equal expressions intern to the *same* id, so equality and
//! hashing become O(1) integer operations instead of deep-tree walks. The
//! solver keys its result cache on interned constraint vectors, and the
//! incremental solver keys its prefix trie on the id of each pushed branch
//! literal.
//!
//! Interning flattens the [`SymExpr`] enum into [`Term`] nodes whose
//! children are themselves [`TermId`]s; the [`Interner`] owns the node
//! table and the reverse (hash-cons) map. Variable identity follows
//! [`crate::SymVar`]: the numeric id and type, never the display name.

use std::collections::HashMap;

use crate::sym::{BinOp, SymExpr, SymTy, UnOp};

/// A stable handle for an interned term. Equality, ordering, and hashing
/// are O(1); ids are only meaningful relative to the [`Interner`] that
/// produced them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TermId(u32);

impl TermId {
    /// The raw index (useful for dense side tables).
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Rebuilds a [`TermId`] from a raw index — only meaningful for
    /// indices into a snapshot's own term table (see
    /// [`crate::snapshot::TrieSnapshot`]), where ids are positions, not
    /// live interner handles.
    pub fn from_index(index: usize) -> TermId {
        TermId(u32::try_from(index).expect("term index overflow"))
    }
}

impl std::fmt::Display for TermId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// One hash-consed node. Children are [`TermId`]s, so structural equality
/// of whole trees reduces to equality of a single node.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Term {
    /// Integer constant.
    Int(i64),
    /// Boolean constant.
    Bool(bool),
    /// Symbolic variable (identified by id + type, as [`crate::SymVar`]).
    Var {
        /// The variable's pool id.
        id: u32,
        /// The variable's type.
        ty: SymTy,
    },
    /// Unary operation.
    Unary {
        /// The operator.
        op: UnOp,
        /// The interned operand.
        arg: TermId,
    },
    /// Binary operation.
    Binary {
        /// The operator.
        op: BinOp,
        /// Interned left operand.
        lhs: TermId,
        /// Interned right operand.
        rhs: TermId,
    },
}

/// The hash-consing table: every distinct [`Term`] is stored once and
/// addressed by its [`TermId`].
#[derive(Debug, Clone, Default)]
pub struct Interner {
    terms: Vec<Term>,
    table: HashMap<Term, TermId>,
}

impl Interner {
    /// An empty interner.
    pub fn new() -> Interner {
        Interner::default()
    }

    /// Interns `expr`, returning the id of its root. Structurally equal
    /// expressions always return the same id.
    pub fn intern(&mut self, expr: &SymExpr) -> TermId {
        let term = match expr {
            SymExpr::Int(v) => Term::Int(*v),
            SymExpr::Bool(b) => Term::Bool(*b),
            SymExpr::Var(v) => Term::Var {
                id: v.id(),
                ty: v.ty(),
            },
            SymExpr::Unary { op, arg } => Term::Unary {
                op: *op,
                arg: self.intern(arg),
            },
            SymExpr::Binary { op, lhs, rhs } => {
                let lhs = self.intern(lhs);
                let rhs = self.intern(rhs);
                Term::Binary { op: *op, lhs, rhs }
            }
        };
        self.intern_term(term)
    }

    pub(crate) fn intern_term(&mut self, term: Term) -> TermId {
        if let Some(&id) = self.table.get(&term) {
            return id;
        }
        let id = TermId(u32::try_from(self.terms.len()).expect("interner overflow"));
        self.terms.push(term.clone());
        self.table.insert(term, id);
        id
    }

    /// The node behind `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` came from a different interner (out of range).
    pub fn term(&self, id: TermId) -> &Term {
        &self.terms[id.index()]
    }

    /// The full term table in insertion order (children precede parents
    /// by construction) — the canonical form persisted by
    /// [`crate::snapshot::TrieSnapshot`].
    pub fn terms(&self) -> &[Term] {
        &self.terms
    }

    /// Number of distinct terms interned so far.
    pub fn len(&self) -> usize {
        self.terms.len()
    }

    /// Returns `true` if nothing was interned.
    pub fn is_empty(&self) -> bool {
        self.terms.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sym::VarPool;

    fn setup() -> (VarPool, crate::sym::SymVar, crate::sym::SymVar) {
        let mut pool = VarPool::new();
        let x = pool.fresh("X", SymTy::Int);
        let y = pool.fresh("Y", SymTy::Int);
        (pool, x, y)
    }

    #[test]
    fn equal_trees_share_one_id() {
        let (_, x, _) = setup();
        let mut interner = Interner::new();
        let a = SymExpr::gt(SymExpr::var(&x), SymExpr::int(0));
        let b = SymExpr::gt(SymExpr::var(&x), SymExpr::int(0));
        assert_eq!(interner.intern(&a), interner.intern(&b));
    }

    #[test]
    fn distinct_trees_get_distinct_ids() {
        let (_, x, y) = setup();
        let mut interner = Interner::new();
        let a = interner.intern(&SymExpr::gt(SymExpr::var(&x), SymExpr::int(0)));
        let b = interner.intern(&SymExpr::gt(SymExpr::var(&y), SymExpr::int(0)));
        let c = interner.intern(&SymExpr::gt(SymExpr::var(&x), SymExpr::int(1)));
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_ne!(b, c);
    }

    #[test]
    fn shared_subtrees_are_stored_once() {
        let (_, x, y) = setup();
        let mut interner = Interner::new();
        // (x + y) > 0 and (x + y) < 5 share the sum node.
        let sum = SymExpr::add(SymExpr::var(&x), SymExpr::var(&y));
        interner.intern(&SymExpr::gt(sum.clone(), SymExpr::int(0)));
        let before = interner.len();
        interner.intern(&SymExpr::lt(sum, SymExpr::int(5)));
        // Only the constant 5 and the new comparison are new nodes.
        assert_eq!(interner.len(), before + 2);
    }

    #[test]
    fn variable_identity_ignores_name() {
        let mut pool = VarPool::new();
        let a = pool.fresh("A", SymTy::Int);
        let mut interner = Interner::new();
        let id1 = interner.intern(&SymExpr::var(&a));
        // Same pool id under a different display name would be the same
        // variable; here we just assert the Term is id+ty based.
        assert_eq!(
            interner.term(id1),
            &Term::Var {
                id: a.id(),
                ty: SymTy::Int
            }
        );
    }

    #[test]
    fn term_structure_is_navigable() {
        let (_, x, y) = setup();
        let mut interner = Interner::new();
        let id = interner.intern(&SymExpr::add(SymExpr::var(&x), SymExpr::var(&y)));
        let Term::Binary { op, lhs, rhs } = *interner.term(id) else {
            panic!("expected a binary node");
        };
        assert_eq!(op, BinOp::Add);
        assert_eq!(
            interner.term(lhs),
            &Term::Var {
                id: x.id(),
                ty: SymTy::Int
            }
        );
        assert_eq!(
            interner.term(rhs),
            &Term::Var {
                id: y.id(),
                ty: SymTy::Int
            }
        );
    }
}
