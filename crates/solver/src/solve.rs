//! The monolithic [`Solver`] facade — the *fallback tier* of the two-tier
//! solving architecture.
//!
//! The solver crate decides path conditions at two tiers:
//!
//! * **Incremental tier** ([`crate::incremental::IncrementalSolver`]) —
//!   mirrors the executor's DFS with `push`/`pop`/`check`, retaining
//!   per-frame derived state (flattened atoms, interval bounds, boolean
//!   assignments, last verified model) so each check processes only the
//!   newly pushed branch literal and propagates deltas. Verdicts live in a
//!   prefix trie keyed by hash-consed [`crate::intern::TermId`]s, so a
//!   repeated prefix is answered without re-solving and an UNSAT prefix
//!   kills all of its extensions.
//! * **Monolithic tier** (this module) — the full pipeline over an
//!   arbitrary constraint vector. The incremental tier falls back to it
//!   whenever a pushed literal needs case splitting (disjunctions, integer
//!   disequalities); it also serves the non-executor clients (witness
//!   replay, test generation, PC simplification).
//!
//! The monolithic pipeline over a conjunction of boolean symbolic
//! expressions:
//!
//! 1. flatten conjunctions and push negations inward (NNF — the smart
//!    constructors already keep comparisons in atom form);
//! 2. split disjunctions and integer disequalities into *cases* (DNF) under
//!    a budget;
//! 3. per case: extract linear atoms, propagate intervals, substitute
//!    equalities, run Fourier–Motzkin (sound UNSAT), and finally search for
//!    an explicit integer/boolean model (sound SAT);
//! 4. verify any model against the original constraints before reporting
//!    [`SatResult::Sat`].
//!
//! Results are cached per constraint vector, keyed by interned
//! [`crate::intern::TermId`]s (O(1) hashing/equality instead of deep-tree
//! hashing). The cache is bounded: when it reaches
//! [`SolverConfig::cache_capacity`], the least-recently-used quarter is
//! evicted, so long executions no longer grow memory without bound.

use std::collections::{BTreeMap, HashMap};

use crate::fm::{eliminate, substitute_equalities, FmResult, Substitution};
use crate::intern::{Interner, TermId};
use crate::interval::{propagate, Interval, PropagationResult};
use crate::linear::{atomize_cmp, LinAtom};
use crate::model::{search_model, Model, SearchConfig, Value};
use crate::sym::{BinOp, SymExpr, SymTy, SymVar, UnOp};
use crate::PathCondition;

/// Three-valued satisfiability verdict.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SatResult {
    /// A verified model exists.
    Sat,
    /// Provably no solution.
    Unsat,
    /// The solver gave up (budget/overflow). The paper's prototype treats
    /// this as unsatisfiable (§4.1); the executor applies that policy.
    Unknown,
}

/// The result of a [`Solver::check`] call: the verdict plus a model when
/// satisfiable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckOutcome {
    result: SatResult,
    model: Option<Model>,
}

impl CheckOutcome {
    /// The verdict.
    pub fn result(&self) -> SatResult {
        self.result
    }

    /// `true` iff the verdict is [`SatResult::Sat`].
    pub fn is_sat(&self) -> bool {
        self.result == SatResult::Sat
    }

    /// `true` iff the verdict is [`SatResult::Unsat`].
    pub fn is_unsat(&self) -> bool {
        self.result == SatResult::Unsat
    }

    /// The verifying model (present exactly when satisfiable).
    pub fn model(&self) -> Option<&Model> {
        self.model.as_ref()
    }

    fn sat(model: Model) -> Self {
        CheckOutcome {
            result: SatResult::Sat,
            model: Some(model),
        }
    }

    fn unsat() -> Self {
        CheckOutcome {
            result: SatResult::Unsat,
            model: None,
        }
    }

    fn unknown() -> Self {
        CheckOutcome {
            result: SatResult::Unknown,
            model: None,
        }
    }
}

/// Tuning knobs for the solver.
#[derive(Debug, Clone, Copy)]
pub struct SolverConfig {
    /// Maximum number of DNF cases explored per query.
    pub case_budget: usize,
    /// Maximum entries in the monolithic result cache; the least-recently
    /// used quarter is evicted when full. `0` disables caching.
    pub cache_capacity: usize,
    /// Maximum nodes in the incremental solver's prefix trie; beyond this
    /// the trie stops growing (checks still run, they just aren't
    /// memoized on new prefixes).
    pub prefix_trie_capacity: usize,
    /// Model-search configuration.
    pub search: SearchConfig,
}

impl Default for SolverConfig {
    fn default() -> Self {
        SolverConfig {
            case_budget: 256,
            cache_capacity: 4096,
            prefix_trie_capacity: 1 << 16,
            search: SearchConfig::default(),
        }
    }
}

impl SolverConfig {
    /// A stable fingerprint of every verdict-relevant knob (budgets and
    /// search parameters; cache sizing is excluded — it changes *when*
    /// answers are memoized, never what they are). Persistent-store
    /// consumers compare this before reusing another run's memoized
    /// verdicts: budgets flip `Unknown` results, so trie entries are only
    /// portable between identically-budgeted solvers. FNV-1a over the
    /// field values, stable across processes and platforms.
    pub fn cache_key(&self) -> u64 {
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut hash = OFFSET;
        let mut eat = |v: u64| {
            for byte in v.to_le_bytes() {
                hash ^= u64::from(byte);
                hash = hash.wrapping_mul(PRIME);
            }
        };
        eat(self.case_budget as u64);
        eat(self.search.node_budget as u64);
        eat(self.search.default_bound as u64);
        eat(self.search.enumerate_width);
        eat(self.search.seed);
        hash
    }
}

/// Counters describing solver activity (reported by the benchmark harness
/// alongside the paper's time/state metrics). The incremental tier's
/// counters are folded in by
/// [`crate::incremental::IncrementalSolver::stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SolverStats {
    /// Total `check` calls.
    pub checks: u64,
    /// Calls answered from the cache.
    pub cache_hits: u64,
    /// Verdicts per kind.
    pub sat: u64,
    /// Provably-unsat verdicts.
    pub unsat: u64,
    /// Given-up verdicts.
    pub unknown: u64,
    /// Fourier–Motzkin runs.
    pub fm_runs: u64,
    /// Model searches attempted.
    pub model_searches: u64,
    /// Checks decided by the incremental pipeline (no monolithic re-solve).
    pub incremental_checks: u64,
    /// Incremental checks that fell back to the monolithic pipeline
    /// (a pushed literal required case splitting).
    pub fallback_checks: u64,
    /// Checks answered from the prefix trie (repeated-prefix re-checks).
    pub prefix_cache_hits: u64,
    /// Checks killed instantly because an ancestor frame was already UNSAT.
    pub prefix_unsat_kills: u64,
    /// SAT answers obtained by re-validating the parent frame's model
    /// against the new literal (no search at all).
    pub model_reuse_hits: u64,
    /// Checks answered from a cross-worker [`crate::SharedTrie`]
    /// (parallel frontier exploration).
    pub shared_trie_hits: u64,
    /// Entries evicted from the bounded monolithic result cache.
    pub cache_evictions: u64,
    /// SAT verdicts recorded through
    /// [`crate::IncrementalSolver::push_verified`]: the caller supplied a
    /// model that was re-validated against the whole stack by direct
    /// evaluation, so no decision pipeline ran at all.
    pub assumed_sat: u64,
}

impl SolverStats {
    /// Adds every counter of `other` into `self` (used to fold the
    /// incremental tier's counters into the fallback solver's).
    pub fn merge(&mut self, other: &SolverStats) {
        self.checks += other.checks;
        self.cache_hits += other.cache_hits;
        self.sat += other.sat;
        self.unsat += other.unsat;
        self.unknown += other.unknown;
        self.fm_runs += other.fm_runs;
        self.model_searches += other.model_searches;
        self.incremental_checks += other.incremental_checks;
        self.fallback_checks += other.fallback_checks;
        self.prefix_cache_hits += other.prefix_cache_hits;
        self.prefix_unsat_kills += other.prefix_unsat_kills;
        self.model_reuse_hits += other.model_reuse_hits;
        self.shared_trie_hits += other.shared_trie_hits;
        self.cache_evictions += other.cache_evictions;
        self.assumed_sat += other.assumed_sat;
    }

    /// Counter-wise difference `self - earlier` (saturating), for reporting
    /// per-run activity of a solver that persists across runs.
    pub fn delta_since(&self, earlier: &SolverStats) -> SolverStats {
        SolverStats {
            checks: self.checks.saturating_sub(earlier.checks),
            cache_hits: self.cache_hits.saturating_sub(earlier.cache_hits),
            sat: self.sat.saturating_sub(earlier.sat),
            unsat: self.unsat.saturating_sub(earlier.unsat),
            unknown: self.unknown.saturating_sub(earlier.unknown),
            fm_runs: self.fm_runs.saturating_sub(earlier.fm_runs),
            model_searches: self.model_searches.saturating_sub(earlier.model_searches),
            incremental_checks: self
                .incremental_checks
                .saturating_sub(earlier.incremental_checks),
            fallback_checks: self.fallback_checks.saturating_sub(earlier.fallback_checks),
            prefix_cache_hits: self
                .prefix_cache_hits
                .saturating_sub(earlier.prefix_cache_hits),
            prefix_unsat_kills: self
                .prefix_unsat_kills
                .saturating_sub(earlier.prefix_unsat_kills),
            model_reuse_hits: self
                .model_reuse_hits
                .saturating_sub(earlier.model_reuse_hits),
            shared_trie_hits: self
                .shared_trie_hits
                .saturating_sub(earlier.shared_trie_hits),
            cache_evictions: self.cache_evictions.saturating_sub(earlier.cache_evictions),
            assumed_sat: self.assumed_sat.saturating_sub(earlier.assumed_sat),
        }
    }

    /// Checks that ran an actual decision pipeline (incremental or
    /// monolithic fallback) — the cost metric the benches and the
    /// profile exporter attribute to stages; cache/trie answers are free.
    pub fn pipeline_checks(&self) -> u64 {
        self.incremental_checks + self.fallback_checks
    }

    /// Fraction of checks answered without running any decision pipeline
    /// (result cache + prefix trie + prefix-unsat kills); `None` when no
    /// checks ran.
    pub fn hit_rate(&self) -> Option<f64> {
        if self.checks == 0 {
            return None;
        }
        let hits = self.cache_hits + self.prefix_cache_hits + self.prefix_unsat_kills;
        Some(hits as f64 / self.checks as f64)
    }
}

/// The monolithic constraint solver: a caching decision procedure for path
/// conditions. See the [module documentation](self) for the pipeline and
/// for its place in the two-tier architecture.
#[derive(Debug, Clone, Default)]
pub struct Solver {
    config: SolverConfig,
    pub(crate) interner: Interner,
    cache: HashMap<Vec<TermId>, (CheckOutcome, u64)>,
    tick: u64,
    stats: SolverStats,
}

impl Solver {
    /// Creates a solver with default configuration.
    pub fn new() -> Solver {
        Solver::default()
    }

    /// Creates a solver with explicit configuration.
    pub fn with_config(config: SolverConfig) -> Solver {
        Solver {
            config,
            ..Solver::default()
        }
    }

    /// Activity counters accumulated so far.
    pub fn stats(&self) -> &SolverStats {
        &self.stats
    }

    /// The configuration in effect.
    pub fn config(&self) -> &SolverConfig {
        &self.config
    }

    /// Clears the result cache (the statistics are kept).
    pub fn clear_cache(&mut self) {
        self.cache.clear();
    }

    /// Number of cached results currently held.
    pub fn cache_len(&self) -> usize {
        self.cache.len()
    }

    /// Checks a path condition.
    pub fn check_pc(&mut self, pc: &PathCondition) -> CheckOutcome {
        self.check(pc.conjuncts())
    }

    /// Checks the conjunction of `constraints`.
    ///
    /// # Examples
    ///
    /// ```
    /// use dise_solver::{Solver, SymExpr, SymTy, VarPool};
    ///
    /// let mut pool = VarPool::new();
    /// let x = pool.fresh("X", SymTy::Int);
    /// let mut solver = Solver::new();
    /// let c = [
    ///     SymExpr::gt(SymExpr::var(&x), SymExpr::int(3)),
    ///     SymExpr::lt(SymExpr::var(&x), SymExpr::int(3)),
    /// ];
    /// assert!(solver.check(&c).is_unsat());
    /// ```
    pub fn check(&mut self, constraints: &[SymExpr]) -> CheckOutcome {
        self.stats.checks += 1;
        let key: Vec<TermId> = constraints
            .iter()
            .map(|c| self.interner.intern(c))
            .collect();
        self.tick += 1;
        let tick = self.tick;
        if let Some((cached, stamp)) = self.cache.get_mut(&key) {
            *stamp = tick;
            self.stats.cache_hits += 1;
            return cached.clone();
        }
        let outcome = self.check_uncached(constraints);
        match outcome.result {
            SatResult::Sat => self.stats.sat += 1,
            SatResult::Unsat => self.stats.unsat += 1,
            SatResult::Unknown => self.stats.unknown += 1,
        }
        self.cache_insert(key, outcome.clone());
        outcome
    }

    /// Inserts into the bounded result cache, evicting the least-recently
    /// used quarter when full.
    fn cache_insert(&mut self, key: Vec<TermId>, outcome: CheckOutcome) {
        let capacity = self.config.cache_capacity;
        if capacity == 0 {
            return;
        }
        if self.cache.len() >= capacity {
            let before = self.cache.len();
            // Keep the most recent ~3/4, leaving room for the new entry.
            let keep = capacity.saturating_sub(capacity / 4 + 1);
            if keep == 0 {
                self.cache.clear();
            } else {
                let mut stamps: Vec<u64> = self.cache.values().map(|(_, s)| *s).collect();
                stamps.sort_unstable();
                let threshold = stamps[stamps.len() - keep];
                self.cache.retain(|_, (_, stamp)| *stamp >= threshold);
            }
            self.stats.cache_evictions += (before - self.cache.len()) as u64;
        }
        self.cache.insert(key, (outcome, self.tick));
    }

    fn check_uncached(&mut self, constraints: &[SymExpr]) -> CheckOutcome {
        // 1. Flatten conjunctions, normalize negations.
        let mut conjuncts = Vec::new();
        for c in constraints {
            if !flatten_conjunct(&nnf(c, true), &mut conjuncts) {
                return CheckOutcome::unsat();
            }
        }

        // 2. Case split.
        let Some(cases) = expand_cases(&conjuncts, self.config.case_budget) else {
            return CheckOutcome::unknown();
        };

        // 3. Decide each case.
        let mut any_unknown = false;
        for case in &cases {
            match self.solve_case(case, constraints) {
                CaseVerdict::Sat(model) => return CheckOutcome::sat(model),
                CaseVerdict::Unsat => {}
                CaseVerdict::Unknown => any_unknown = true,
            }
        }
        if any_unknown {
            CheckOutcome::unknown()
        } else {
            CheckOutcome::unsat()
        }
    }

    fn solve_case(&mut self, case: &[SymExpr], originals: &[SymExpr]) -> CaseVerdict {
        let mut lin: Vec<LinAtom> = Vec::new();
        let mut residuals: Vec<SymExpr> = Vec::new();
        let mut fixed = Model::new();
        let mut vars: BTreeMap<u32, SymVar> = BTreeMap::new();

        for atom in case {
            atom.collect_vars(&mut vars);
            match classify(atom) {
                Classified::True => {}
                Classified::False => return CaseVerdict::Unsat,
                Classified::BoolAssign(var, value) => match fixed.value(&var) {
                    Some(Value::Bool(existing)) if existing != value => {
                        return CaseVerdict::Unsat;
                    }
                    _ => fixed.set(var.id(), Value::Bool(value)),
                },
                Classified::Linear(atom) => lin.push(atom),
                Classified::Residual(expr) => residuals.push(expr),
            }
        }

        decide_conjunction(
            &lin,
            &residuals,
            &vars,
            &fixed,
            &BTreeMap::new(),
            originals,
            &self.config,
            &mut self.stats,
        )
        .0
    }
}

/// Decides one conjunction-only case: interval propagation, equality
/// substitution + Fourier–Motzkin (sound UNSAT), then model search with
/// verification against `originals` (sound SAT). This is the shared core
/// of the monolithic per-case decision and of the incremental solver's
/// per-frame check.
///
/// `initial_bounds` seeds propagation (the incremental tier passes the
/// parent frame's fixed point — sound, because the parent's bounds
/// over-approximate the prefix's solutions and the current system only
/// adds constraints). Returns the verdict together with the propagated
/// bounds for non-UNSAT outcomes (reused as the next frame's seed).
#[allow(clippy::too_many_arguments)]
pub(crate) fn decide_conjunction(
    lin: &[LinAtom],
    residuals: &[SymExpr],
    vars: &BTreeMap<u32, SymVar>,
    fixed: &Model,
    initial_bounds: &BTreeMap<u32, Interval>,
    originals: &[SymExpr],
    config: &SolverConfig,
    stats: &mut SolverStats,
) -> (CaseVerdict, Option<BTreeMap<u32, Interval>>) {
    // Interval propagation: quick unsat + bounds for the search.
    let bounds = match propagate(lin, initial_bounds) {
        PropagationResult::Empty => return (CaseVerdict::Unsat, None),
        PropagationResult::Bounds(bounds) => bounds,
    };

    // Sound UNSAT via equality substitution + Fourier–Motzkin. UNSAT
    // from the linear part alone is sound even with residual atoms (a
    // residual can only constrain further) — but SAT is not, hence the
    // model search.
    stats.fm_runs += 1;
    let substitution = substitute_equalities(lin.to_vec());
    if let Some(sub) = &substitution {
        if eliminate(&sub.atoms) == FmResult::Unsat {
            return (CaseVerdict::Unsat, None);
        }
    }

    // Model search. When there are no residual atoms we can search the
    // *reduced* system (fewer variables — coupled equalities are solved
    // exactly) and back-substitute; residuals mention eliminated
    // variables, so in their presence we search the original system.
    stats.model_searches += 1;
    let found = match (&substitution, residuals.is_empty()) {
        (Some(sub), true) if !sub.eliminated.is_empty() => {
            search_reduced_system(sub, vars, fixed, &config.search)
        }
        _ => search_model(lin, residuals, vars, &bounds, fixed, &config.search),
    };
    let verdict = match found {
        Some(mut model) => {
            // Default-fill variables that appear in the originals but
            // not in this case (dropped `true` conjuncts, other
            // disjuncts), then verify everything.
            let mut all_vars = BTreeMap::new();
            for c in originals {
                c.collect_vars(&mut all_vars);
            }
            for (id, var) in &all_vars {
                if model.value(var).is_none() {
                    match var.ty() {
                        SymTy::Int => model.set(*id, Value::Int(0)),
                        SymTy::Bool => model.set(*id, Value::Bool(false)),
                    }
                }
            }
            if originals.iter().all(|c| model.satisfies(c)) {
                CaseVerdict::Sat(model)
            } else {
                CaseVerdict::Unknown
            }
        }
        None => CaseVerdict::Unknown,
    };
    (verdict, Some(bounds))
}

/// Searches the equality-reduced system and back-substitutes the
/// eliminated variables.
fn search_reduced_system(
    sub: &Substitution,
    vars: &BTreeMap<u32, SymVar>,
    fixed: &Model,
    search: &SearchConfig,
) -> Option<Model> {
    let surviving: BTreeMap<u32, SymVar> = vars
        .iter()
        .filter(|(id, _)| !sub.eliminated.iter().any(|(e, _)| e == *id))
        .map(|(id, v)| (*id, v.clone()))
        .collect();
    search_model(&sub.atoms, &[], &surviving, &BTreeMap::new(), fixed, search).and_then(|model| {
        let mut assignment: BTreeMap<u32, i64> = model
            .iter()
            .filter_map(|(id, v)| match v {
                Value::Int(i) => Some((id, i)),
                Value::Bool(_) => None,
            })
            .collect();
        sub.back_solve(&mut assignment)?;
        let mut full = model;
        for (id, value) in assignment {
            full.set(id, Value::Int(value));
        }
        Some(full)
    })
}

pub(crate) enum CaseVerdict {
    Sat(Model),
    Unsat,
    Unknown,
}

/// Negation normal form: pushes `!` inward through `&&`/`||` (De Morgan)
/// and flips comparisons. `positive == false` means "return NNF of !e".
pub(crate) fn nnf(expr: &SymExpr, positive: bool) -> SymExpr {
    match expr {
        SymExpr::Unary { op: UnOp::Not, arg } => nnf(arg, !positive),
        SymExpr::Binary { op, lhs, rhs } if *op == BinOp::And || *op == BinOp::Or => {
            let flipped = match (op, positive) {
                (BinOp::And, true) | (BinOp::Or, false) => BinOp::And,
                _ => BinOp::Or,
            };
            SymExpr::binary(flipped, nnf(lhs, positive), nnf(rhs, positive))
        }
        other => {
            if positive {
                other.clone()
            } else {
                SymExpr::not(other.clone())
            }
        }
    }
}

/// Flattens nested `&&` into `out`. Returns `false` on a literal `false`.
pub(crate) fn flatten_conjunct(expr: &SymExpr, out: &mut Vec<SymExpr>) -> bool {
    match expr {
        SymExpr::Bool(true) => true,
        SymExpr::Bool(false) => false,
        SymExpr::Binary {
            op: BinOp::And,
            lhs,
            rhs,
        } => flatten_conjunct(lhs, out) && flatten_conjunct(rhs, out),
        other => {
            out.push(other.clone());
            true
        }
    }
}

/// Expands disjunctions and integer disequalities into a bounded set of
/// conjunction-only cases. Returns `None` if the budget is exceeded.
fn expand_cases(conjuncts: &[SymExpr], budget: usize) -> Option<Vec<Vec<SymExpr>>> {
    let mut cases: Vec<Vec<SymExpr>> = vec![Vec::new()];
    for conjunct in conjuncts {
        let alternatives = split_alternatives(conjunct);
        let mut next = Vec::with_capacity(cases.len() * alternatives.len());
        for case in &cases {
            for alt in &alternatives {
                let mut extended = case.clone();
                let mut ok = true;
                for atom in alt {
                    ok &= flatten_conjunct(atom, &mut extended);
                }
                if ok {
                    next.push(extended);
                }
                if next.len() > budget {
                    return None;
                }
            }
        }
        cases = next;
        if cases.is_empty() {
            // Every alternative was literally false: represent one
            // impossible case so the caller reports UNSAT.
            return Some(vec![vec![SymExpr::boolean(false)]]);
        }
    }
    Some(cases)
}

/// The alternative branches contributed by one conjunct: a disjunction
/// splits, an integer `≠` becomes `<` or `>`, everything else is a single
/// alternative.
pub(crate) fn split_alternatives(expr: &SymExpr) -> Vec<Vec<SymExpr>> {
    match expr {
        SymExpr::Binary {
            op: BinOp::Or,
            lhs,
            rhs,
        } => {
            let mut alts = split_alternatives(lhs);
            alts.extend(split_alternatives(rhs));
            alts
        }
        SymExpr::Binary {
            op: BinOp::Ne,
            lhs,
            rhs,
        } if lhs.ty() == SymTy::Int => {
            vec![
                vec![SymExpr::lt((**lhs).clone(), (**rhs).clone())],
                vec![SymExpr::gt((**lhs).clone(), (**rhs).clone())],
            ]
        }
        // A nested And below an Or: keep as one alternative, flattened by
        // the caller.
        other => vec![vec![other.clone()]],
    }
}

pub(crate) enum Classified {
    True,
    False,
    BoolAssign(SymVar, bool),
    Linear(LinAtom),
    Residual(SymExpr),
}

pub(crate) fn classify(atom: &SymExpr) -> Classified {
    match atom {
        SymExpr::Bool(true) => Classified::True,
        SymExpr::Bool(false) => Classified::False,
        SymExpr::Var(v) if v.ty() == SymTy::Bool => Classified::BoolAssign(v.clone(), true),
        SymExpr::Unary { op: UnOp::Not, arg } => match &**arg {
            SymExpr::Var(v) if v.ty() == SymTy::Bool => Classified::BoolAssign(v.clone(), false),
            _ => Classified::Residual(atom.clone()),
        },
        SymExpr::Binary { op, lhs, rhs }
            if (op.is_ordering() || *op == BinOp::Eq) && lhs.ty() == SymTy::Int =>
        {
            match atomize_cmp(*op, lhs, rhs) {
                Some(lin) => Classified::Linear(lin),
                None => Classified::Residual(atom.clone()),
            }
        }
        _ => Classified::Residual(atom.clone()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sym::VarPool;

    fn setup() -> (VarPool, SymVar, SymVar, SymVar) {
        let mut pool = VarPool::new();
        let x = pool.fresh("X", SymTy::Int);
        let y = pool.fresh("Y", SymTy::Int);
        let b = pool.fresh("B", SymTy::Bool);
        (pool, x, y, b)
    }

    #[test]
    fn trivial_truths() {
        let mut solver = Solver::new();
        assert!(solver.check(&[]).is_sat());
        assert!(solver.check(&[SymExpr::boolean(true)]).is_sat());
        assert!(solver.check(&[SymExpr::boolean(false)]).is_unsat());
    }

    #[test]
    fn simple_range_is_sat_with_model() {
        let (_, x, _, _) = setup();
        let mut solver = Solver::new();
        let outcome = solver.check(&[
            SymExpr::gt(SymExpr::var(&x), SymExpr::int(0)),
            SymExpr::le(SymExpr::var(&x), SymExpr::int(3)),
        ]);
        assert!(outcome.is_sat());
        let v = outcome.model().unwrap().int_value(&x).unwrap();
        assert!(v > 0 && v <= 3);
    }

    #[test]
    fn contradiction_is_unsat() {
        let (_, x, _, _) = setup();
        let mut solver = Solver::new();
        let outcome = solver.check(&[
            SymExpr::eq(SymExpr::var(&x), SymExpr::int(2)),
            SymExpr::eq(SymExpr::var(&x), SymExpr::int(3)),
        ]);
        assert!(outcome.is_unsat());
    }

    #[test]
    fn integer_gap_is_unsat() {
        let (_, x, _, _) = setup();
        // x > 2 ∧ x < 3 has a rational solution but no integer one;
        // interval propagation catches the gap.
        let mut solver = Solver::new();
        let outcome = solver.check(&[
            SymExpr::gt(SymExpr::var(&x), SymExpr::int(2)),
            SymExpr::lt(SymExpr::var(&x), SymExpr::int(3)),
        ]);
        assert!(outcome.is_unsat());
    }

    #[test]
    fn disequality_splits() {
        let (_, x, _, _) = setup();
        let mut solver = Solver::new();
        // x ≠ 0 ∧ x ≥ 0 ⇒ x > 0
        let outcome = solver.check(&[
            SymExpr::Binary {
                op: BinOp::Ne,
                lhs: SymExpr::var(&x).into(),
                rhs: SymExpr::int(0).into(),
            },
            SymExpr::ge(SymExpr::var(&x), SymExpr::int(0)),
        ]);
        assert!(outcome.is_sat());
        assert!(outcome.model().unwrap().int_value(&x).unwrap() > 0);
    }

    #[test]
    fn disjunction_explores_both_branches() {
        let (_, x, _, _) = setup();
        let mut solver = Solver::new();
        // (x < -5 || x > 5) ∧ x ≥ 0 ⇒ x > 5
        let outcome = solver.check(&[
            SymExpr::or(
                SymExpr::lt(SymExpr::var(&x), SymExpr::int(-5)),
                SymExpr::gt(SymExpr::var(&x), SymExpr::int(5)),
            ),
            SymExpr::ge(SymExpr::var(&x), SymExpr::int(0)),
        ]);
        assert!(outcome.is_sat());
        assert!(outcome.model().unwrap().int_value(&x).unwrap() > 5);
    }

    #[test]
    fn negated_conjunction_de_morgans() {
        let (_, x, _, _) = setup();
        let mut solver = Solver::new();
        // !(x ≥ 0 && x ≤ 10) ∧ x ≥ -3  ⇒ x ∈ [-3, -1] (or x > 10)
        let inside = SymExpr::Binary {
            op: BinOp::And,
            lhs: SymExpr::ge(SymExpr::var(&x), SymExpr::int(0)).into(),
            rhs: SymExpr::le(SymExpr::var(&x), SymExpr::int(10)).into(),
        };
        let outcome = solver.check(&[
            SymExpr::Unary {
                op: UnOp::Not,
                arg: inside.into(),
            },
            SymExpr::ge(SymExpr::var(&x), SymExpr::int(-3)),
        ]);
        assert!(outcome.is_sat());
        let v = outcome.model().unwrap().int_value(&x).unwrap();
        assert!((-3..0).contains(&v) || v > 10);
    }

    #[test]
    fn boolean_variables() {
        let (_, _, _, b) = setup();
        let mut solver = Solver::new();
        let outcome = solver.check(&[SymExpr::var(&b)]);
        assert!(outcome.is_sat());
        assert_eq!(outcome.model().unwrap().bool_value(&b), Some(true));
        let outcome = solver.check(&[SymExpr::var(&b), SymExpr::not(SymExpr::var(&b))]);
        assert!(outcome.is_unsat());
    }

    #[test]
    fn two_variable_system() {
        let (_, x, y, _) = setup();
        let mut solver = Solver::new();
        // x + y = 10 ∧ x - y = 4 ⇒ x = 7, y = 3
        let outcome = solver.check(&[
            SymExpr::eq(
                SymExpr::add(SymExpr::var(&x), SymExpr::var(&y)),
                SymExpr::int(10),
            ),
            SymExpr::eq(
                SymExpr::sub(SymExpr::var(&x), SymExpr::var(&y)),
                SymExpr::int(4),
            ),
        ]);
        assert!(outcome.is_sat());
        let m = outcome.model().unwrap();
        assert_eq!(m.int_value(&x), Some(7));
        assert_eq!(m.int_value(&y), Some(3));
    }

    #[test]
    fn unsat_linear_combination() {
        let (_, x, y, _) = setup();
        let mut solver = Solver::new();
        // x ≤ y ∧ y ≤ x ∧ x ≠ y
        let outcome = solver.check(&[
            SymExpr::le(SymExpr::var(&x), SymExpr::var(&y)),
            SymExpr::le(SymExpr::var(&y), SymExpr::var(&x)),
            SymExpr::Binary {
                op: BinOp::Ne,
                lhs: SymExpr::var(&x).into(),
                rhs: SymExpr::var(&y).into(),
            },
        ]);
        assert!(outcome.is_unsat());
    }

    #[test]
    fn nonlinear_constraints_are_searched() {
        let (_, x, y, _) = setup();
        let mut solver = Solver::new();
        // x*y = 6 ∧ 1 ≤ x ≤ 6 ∧ 1 ≤ y ≤ 6
        let outcome = solver.check(&[
            SymExpr::Binary {
                op: BinOp::Eq,
                lhs: SymExpr::Binary {
                    op: BinOp::Mul,
                    lhs: SymExpr::var(&x).into(),
                    rhs: SymExpr::var(&y).into(),
                }
                .into(),
                rhs: SymExpr::int(6).into(),
            },
            SymExpr::ge(SymExpr::var(&x), SymExpr::int(1)),
            SymExpr::le(SymExpr::var(&x), SymExpr::int(6)),
            SymExpr::ge(SymExpr::var(&y), SymExpr::int(1)),
            SymExpr::le(SymExpr::var(&y), SymExpr::int(6)),
        ]);
        assert!(outcome.is_sat());
        let m = outcome.model().unwrap();
        assert_eq!(m.int_value(&x).unwrap() * m.int_value(&y).unwrap(), 6);
    }

    #[test]
    fn cache_hits_are_counted() {
        let (_, x, _, _) = setup();
        let mut solver = Solver::new();
        let constraints = [SymExpr::gt(SymExpr::var(&x), SymExpr::int(0))];
        solver.check(&constraints);
        solver.check(&constraints);
        assert_eq!(solver.stats().checks, 2);
        assert_eq!(solver.stats().cache_hits, 1);
        solver.clear_cache();
        solver.check(&constraints);
        assert_eq!(solver.stats().cache_hits, 1);
    }

    #[test]
    fn cache_is_bounded_with_lru_eviction() {
        let (_, x, _, _) = setup();
        let config = SolverConfig {
            cache_capacity: 8,
            ..SolverConfig::default()
        };
        let mut solver = Solver::with_config(config);
        for i in 0..50 {
            solver.check(&[SymExpr::gt(SymExpr::var(&x), SymExpr::int(i))]);
        }
        assert!(solver.cache_len() <= 8, "len = {}", solver.cache_len());
        assert!(solver.stats().cache_evictions > 0);
        // The most recent query is still resident.
        let hits = solver.stats().cache_hits;
        solver.check(&[SymExpr::gt(SymExpr::var(&x), SymExpr::int(49))]);
        assert_eq!(solver.stats().cache_hits, hits + 1);
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let (_, x, _, _) = setup();
        let config = SolverConfig {
            cache_capacity: 0,
            ..SolverConfig::default()
        };
        let mut solver = Solver::with_config(config);
        let constraints = [SymExpr::gt(SymExpr::var(&x), SymExpr::int(0))];
        solver.check(&constraints);
        solver.check(&constraints);
        assert_eq!(solver.stats().cache_hits, 0);
        assert_eq!(solver.cache_len(), 0);
    }

    #[test]
    fn sat_models_always_verify() {
        // A mixed bag of shapes; every SAT answer must carry a model that
        // satisfies the original constraints (the solver re-verifies, so a
        // SAT here is self-validating; this test just pins the behaviour).
        let mut pool = VarPool::new();
        let x = pool.fresh("X", SymTy::Int);
        let b = pool.fresh("B", SymTy::Bool);
        let mut solver = Solver::new();
        let cs = [
            SymExpr::or(
                SymExpr::var(&b),
                SymExpr::gt(SymExpr::var(&x), SymExpr::int(100)),
            ),
            SymExpr::le(SymExpr::var(&x), SymExpr::int(100)),
        ];
        let outcome = solver.check(&cs);
        assert!(outcome.is_sat());
        let m = outcome.model().unwrap();
        assert!(cs.iter().all(|c| m.satisfies(c)));
        assert_eq!(m.bool_value(&b), Some(true)); // forced by second conjunct
    }

    #[test]
    fn paper_fig1_branch_feasibility() {
        // testX: both PC `X > 0` and `!(X > 0)` are feasible.
        let mut pool = VarPool::new();
        let x = pool.fresh("X", SymTy::Int);
        let mut solver = Solver::new();
        let taken = SymExpr::gt(SymExpr::var(&x), SymExpr::int(0));
        assert!(solver.check(std::slice::from_ref(&taken)).is_sat());
        let not_taken = SymExpr::not(taken);
        assert!(solver.check(std::slice::from_ref(&not_taken)).is_sat());
    }
}
