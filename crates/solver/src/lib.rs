//! # dise-solver — symbolic expressions and constraint solving
//!
//! The paper's prototype delegates path-condition satisfiability to the
//! Choco solver. This crate is the equivalent substrate, built from scratch:
//!
//! * [`sym`] — symbolic expressions ([`SymExpr`]) over typed symbolic
//!   variables, with eagerly-folding smart constructors;
//! * [`constraint`] — path conditions (conjunctions of boolean symbolic
//!   expressions) as accumulated during symbolic execution;
//! * [`linear`] — extraction of linear atoms `Σ cᵢ·xᵢ + k ⋈ 0`;
//! * [`interval`] — interval constraint propagation (fast bounds and quick
//!   unsatisfiability);
//! * [`fm`] — Fourier–Motzkin elimination (sound UNSAT answers over the
//!   integers; rational-SAT answers are confirmed by model search);
//! * [`model`] — integer/boolean model construction by bounded backtracking
//!   search over propagated intervals;
//! * [`solve`] — the [`Solver`] facade: normalization, case splitting,
//!   caching, statistics, and the SPF-compatible "unknown ⇒ unsat" policy
//!   (§4.1 of the paper; configurable).
//!
//! Decision-procedure soundness contract:
//!
//! * [`SatResult::Unsat`] is only returned when the constraint system
//!   provably has no integer/boolean solution;
//! * [`SatResult::Sat`] is only returned together with a verified model;
//! * everything else is [`SatResult::Unknown`], which the symbolic executor
//!   maps according to its configured policy.
//!
//! # Examples
//!
//! ```
//! use dise_solver::{Solver, SymExpr, SymTy, VarPool};
//!
//! let mut pool = VarPool::new();
//! let x = pool.fresh("X", SymTy::Int);
//! let constraint = SymExpr::gt(SymExpr::var(&x), SymExpr::int(0));
//! let mut solver = Solver::new();
//! let outcome = solver.check(std::slice::from_ref(&constraint));
//! assert!(outcome.is_sat());
//! let model = outcome.model().unwrap();
//! assert!(model.int_value(&x).unwrap() > 0);
//! ```

pub mod constraint;
pub mod fm;
pub mod interval;
pub mod linear;
pub mod model;
pub mod simplify;
pub mod solve;
pub mod sym;

pub use constraint::PathCondition;
pub use interval::Interval;
pub use model::Model;
pub use simplify::simplify_pc;
pub use solve::{CheckOutcome, SatResult, Solver, SolverConfig, SolverStats};
pub use sym::{SymExpr, SymTy, SymVar, VarPool};
