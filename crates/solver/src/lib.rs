//! # dise-solver — symbolic expressions and two-tier constraint solving
//!
//! The paper's prototype delegates path-condition satisfiability to the
//! Choco solver. This crate is the equivalent substrate, built from
//! scratch, organized as a **two-tier decision architecture**:
//!
//! * the **incremental tier** ([`incremental::IncrementalSolver`]) mirrors
//!   the symbolic executor's DFS with `push`/`pop`/`check`. It retains
//!   per-frame derived state (flattened atoms, interval fixed points,
//!   boolean assignments, the last verified model) so each check processes
//!   only the newly pushed branch literal; verdicts are memoized in a
//!   prefix trie keyed by hash-consed [`intern::TermId`]s, so repeated
//!   prefixes are answered without solving and an UNSAT prefix kills all
//!   of its extensions;
//! * the **monolithic tier** ([`solve::Solver`]) runs the full pipeline
//!   over an arbitrary constraint vector, with a bounded (LRU-evicting)
//!   result cache keyed by interned term ids. The incremental tier falls
//!   back to it when a literal needs case splitting, and the non-executor
//!   clients (witness replay, test generation, simplification) use it
//!   directly.
//!
//! Module map:
//!
//! * [`sym`] — symbolic expressions ([`SymExpr`]) over typed symbolic
//!   variables, with eagerly-folding smart constructors;
//! * [`intern`] — hash-consing of [`SymExpr`] trees into [`intern::TermId`]s
//!   with O(1) equality/hash (cache keys, prefix-trie edges);
//! * [`constraint`] — path conditions (conjunctions of boolean symbolic
//!   expressions) as accumulated during symbolic execution;
//! * [`linear`] — extraction of linear atoms `Σ cᵢ·xᵢ + k ⋈ 0`;
//! * [`interval`] — interval constraint propagation (fast bounds and quick
//!   unsatisfiability);
//! * [`fm`] — Fourier–Motzkin elimination (sound UNSAT answers over the
//!   integers; rational-SAT answers are confirmed by model search);
//! * [`model`] — integer/boolean model construction by bounded backtracking
//!   search over propagated intervals;
//! * [`solve`] — the monolithic [`Solver`] facade: normalization, case
//!   splitting, bounded caching, statistics, and the SPF-compatible
//!   "unknown ⇒ unsat" policy (§4.1 of the paper; configurable);
//! * [`incremental`] — the [`IncrementalSolver`] described above;
//! * [`shared_trie`] — the lock-sharded cross-worker verdict cache of the
//!   parallel frontier ([`SharedTrie`]), with producer/consumer hit
//!   counters feeding the speculative-sweep budget controller;
//! * [`simplify`] — path-condition subsumption for display.
//!
//! Decision-procedure soundness contract (both tiers):
//!
//! * [`SatResult::Unsat`] is only returned when the constraint system
//!   provably has no integer/boolean solution;
//! * [`SatResult::Sat`] is only returned together with a verified model
//!   (the incremental tier exposes it via
//!   [`incremental::IncrementalSolver::model`]);
//! * everything else is [`SatResult::Unknown`], which the symbolic executor
//!   maps according to its configured policy.
//!
//! # Examples
//!
//! Monolithic one-shot check:
//!
//! ```
//! use dise_solver::{Solver, SymExpr, SymTy, VarPool};
//!
//! let mut pool = VarPool::new();
//! let x = pool.fresh("X", SymTy::Int);
//! let constraint = SymExpr::gt(SymExpr::var(&x), SymExpr::int(0));
//! let mut solver = Solver::new();
//! let outcome = solver.check(std::slice::from_ref(&constraint));
//! assert!(outcome.is_sat());
//! let model = outcome.model().unwrap();
//! assert!(model.int_value(&x).unwrap() > 0);
//! ```
//!
//! Incremental push/pop along a DFS path:
//!
//! ```
//! use dise_solver::{IncrementalSolver, SatResult, SymExpr, SymTy, VarPool};
//!
//! let mut pool = VarPool::new();
//! let x = pool.fresh("X", SymTy::Int);
//! let mut solver = IncrementalSolver::new();
//! solver.push(SymExpr::gt(SymExpr::var(&x), SymExpr::int(0)));
//! assert_eq!(solver.check(), SatResult::Sat);
//! solver.push(SymExpr::lt(SymExpr::var(&x), SymExpr::int(0)));
//! assert_eq!(solver.check(), SatResult::Unsat);
//! solver.pop(); // back to the SAT prefix
//! assert_eq!(solver.check(), SatResult::Sat);
//! ```

pub mod constraint;
pub mod fm;
pub mod incremental;
pub mod intern;
pub mod interval;
pub mod linear;
pub mod model;
pub mod shared_trie;
pub mod simplify;
pub mod snapshot;
pub mod solve;
pub mod subst;
pub mod sym;

pub use constraint::PathCondition;
pub use incremental::IncrementalSolver;
pub use intern::{Interner, TermId};
pub use interval::Interval;
pub use model::Model;
pub use shared_trie::{Bounds, SharedTrie, SharedVerdict};
pub use simplify::simplify_pc;
pub use snapshot::{SummaryPathSnapshot, SummarySnapshot, TrieEntry, TrieSnapshot};
pub use solve::{CheckOutcome, SatResult, Solver, SolverConfig, SolverStats};
pub use subst::substitute;
pub use sym::{SymExpr, SymTy, SymVar, VarPool};
