//! Capture-free substitution over symbolic expressions.
//!
//! Procedure-summary instantiation rewrites a callee-relative expression
//! (guards over the callee's formals and the globals' entry values) into
//! the caller's expression space by mapping each variable id to the
//! caller-side expression bound to it. Rebuilding goes through the same
//! smart constructors that symbolic evaluation uses
//! ([`SymExpr::unary`]/[`SymExpr::binary`]), so the substituted tree folds
//! constants and algebraic identities exactly as if the callee had been
//! inlined and evaluated in the caller's environment — this is what makes
//! summary-instantiated path conditions *byte-identical* to inlined ones.
//!
//! MJ symbolic expressions have no binders, so substitution is a plain
//! bottom-up fold and capture is impossible.

use std::collections::BTreeMap;

use crate::sym::SymExpr;

/// Rewrites `expr`, replacing every variable whose id appears in `map`
/// with the mapped expression. Unmapped variables are kept as-is.
///
/// The rebuild runs through the folding smart constructors, so
/// `substitute` commutes with symbolic evaluation: evaluating an
/// expression under an environment and then substituting equals
/// substituting first and evaluating under the rewritten environment.
pub fn substitute(expr: &SymExpr, map: &BTreeMap<u32, SymExpr>) -> SymExpr {
    match expr {
        SymExpr::Int(_) | SymExpr::Bool(_) => expr.clone(),
        SymExpr::Var(v) => match map.get(&v.id()) {
            Some(replacement) => replacement.clone(),
            None => expr.clone(),
        },
        SymExpr::Unary { op, arg } => SymExpr::unary(*op, substitute(arg.as_ref(), map)),
        SymExpr::Binary { op, lhs, rhs } => SymExpr::binary(
            *op,
            substitute(lhs.as_ref(), map),
            substitute(rhs.as_ref(), map),
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sym::{BinOp, SymTy, VarPool};

    #[test]
    fn maps_variables_and_keeps_the_rest() {
        let mut pool = VarPool::new();
        let x = pool.fresh("X", SymTy::Int);
        let y = pool.fresh("Y", SymTy::Int);
        let expr = SymExpr::binary(
            BinOp::Gt,
            SymExpr::binary(BinOp::Add, SymExpr::var(&x), SymExpr::var(&y)),
            SymExpr::int(0),
        );
        let mut map = BTreeMap::new();
        map.insert(x.id(), SymExpr::int(5));
        let out = substitute(&expr, &map);
        assert_eq!(
            out,
            SymExpr::binary(
                BinOp::Gt,
                SymExpr::binary(BinOp::Add, SymExpr::int(5), SymExpr::var(&y)),
                SymExpr::int(0),
            )
        );
    }

    #[test]
    fn folds_through_smart_constructors() {
        let mut pool = VarPool::new();
        let x = pool.fresh("X", SymTy::Int);
        // X > 0 with X := 3 folds to the constant true, exactly as the
        // evaluator would have folded it.
        let expr = SymExpr::binary(BinOp::Gt, SymExpr::var(&x), SymExpr::int(0));
        let mut map = BTreeMap::new();
        map.insert(x.id(), SymExpr::int(3));
        assert_eq!(substitute(&expr, &map), SymExpr::Bool(true));
    }

    #[test]
    fn empty_map_is_identity() {
        let mut pool = VarPool::new();
        let x = pool.fresh("X", SymTy::Int);
        let expr = SymExpr::binary(BinOp::Le, SymExpr::var(&x), SymExpr::int(7));
        assert_eq!(substitute(&expr, &BTreeMap::new()), expr);
    }
}
