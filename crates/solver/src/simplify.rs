//! Path-condition simplification by bound subsumption.
//!
//! Symbolic execution accumulates one conjunct per branch, so loop-heavy
//! paths produce chains like `0 < N && 1 < N && … && 12 < N && 13 >= N`.
//! [`simplify_pc`] drops conjuncts implied by the rest:
//!
//! * per variable, only the tightest single-variable lower and upper bound
//!   survive (an equality pins both);
//! * detected single-variable contradictions collapse the whole condition
//!   to `false`;
//! * multi-variable and non-linear conjuncts are kept untouched (they may
//!   carry information no bound summarizes).
//!
//! The result is logically equivalent over the integers to the input. The
//! executor keeps the *raw* path condition (the golden traces compare
//! against the paper's accumulation order); simplification is a display /
//! reporting convenience.

use std::collections::BTreeMap;

use crate::constraint::PathCondition;
use crate::linear::linearize;
use crate::sym::{BinOp, SymExpr};

/// Per-variable bounds gathered from single-variable conjuncts.
#[derive(Debug, Clone, Copy, Default)]
struct Bounds {
    /// Tightest `v >= lo` seen, with the index of the conjunct providing it.
    lo: Option<(i128, usize)>,
    /// Tightest `v <= hi` seen, with the index of the conjunct providing it.
    hi: Option<(i128, usize)>,
}

/// Returns an equivalent path condition with subsumed single-variable
/// bounds removed.
///
/// # Examples
///
/// ```
/// use dise_solver::simplify::simplify_pc;
/// use dise_solver::{PathCondition, SymExpr, SymTy, VarPool};
///
/// let mut pool = VarPool::new();
/// let n = pool.fresh("N", SymTy::Int);
/// let pc: PathCondition = (0..5)
///     .map(|k| SymExpr::lt(SymExpr::int(k), SymExpr::var(&n)))
///     .collect();
/// assert_eq!(simplify_pc(&pc).to_string(), "4 < N");
/// ```
pub fn simplify_pc(pc: &PathCondition) -> PathCondition {
    // Classify every conjunct. For single-variable linear atoms
    // `c·v + k ⋈ 0`, fold into the per-variable bounds.
    let mut bounds: BTreeMap<u32, Bounds> = BTreeMap::new();
    let mut keep: Vec<bool> = vec![true; pc.len()];

    for (index, conjunct) in pc.conjuncts().iter().enumerate() {
        let Some((var, lo, hi)) = single_var_bounds(conjunct) else {
            continue;
        };
        keep[index] = false; // representable as bounds; re-emitted below
        let entry = bounds.entry(var).or_default();
        if let Some(lo) = lo {
            if entry.lo.is_none_or(|(best, _)| lo > best) {
                entry.lo = Some((lo, index));
            }
        }
        if let Some(hi) = hi {
            if entry.hi.is_none_or(|(best, _)| hi < best) {
                entry.hi = Some((hi, index));
            }
        }
    }

    // Contradiction: empty interval.
    for info in bounds.values() {
        if let (Some((lo, _)), Some((hi, _))) = (info.lo, info.hi) {
            if lo > hi {
                let mut out = PathCondition::new();
                out.push(SymExpr::boolean(false));
                return out;
            }
        }
    }

    // Re-emit: surviving bound conjuncts keep their original positions so
    // the output reads in accumulation order.
    for info in bounds.values() {
        if let Some((_, index)) = info.lo {
            keep[index] = true;
        }
        if let Some((_, index)) = info.hi {
            keep[index] = true;
        }
    }
    pc.conjuncts()
        .iter()
        .enumerate()
        .filter(|(i, _)| keep[*i])
        .map(|(_, c)| c.clone())
        .collect()
}

/// If `conjunct` is a single-variable linear comparison, returns
/// `(variable id, implied lower bound, implied upper bound)`.
fn single_var_bounds(conjunct: &SymExpr) -> Option<(u32, Option<i128>, Option<i128>)> {
    let SymExpr::Binary { op, lhs, rhs } = conjunct else {
        return None;
    };
    if !(op.is_ordering() || *op == BinOp::Eq) {
        return None;
    }
    let diff = linearize(lhs)?.checked_sub(&linearize(rhs)?)?;
    let mut terms = diff.terms();
    let (var, coeff) = terms.next()?;
    if terms.next().is_some() {
        return None; // multi-variable
    }
    drop(terms);
    let k = diff.constant();
    // c·v + k ⋈ 0  ⇔  v ⋈' -k/c (integer-rounded; sign of c flips order).
    let bound_le = |c: i128, k: i128| (-k).div_euclid(c); // v <= floor(-k/c), c > 0
    Some(match (op, coeff > 0) {
        // c·v + k <= 0
        (BinOp::Le, true) => (var, None, Some(bound_le(coeff, k))),
        // c < 0: v >= ceil(-k/c); `div_euclid` by a negative divisor leaves
        // a non-negative remainder, so its quotient is exactly the ceiling.
        (BinOp::Le, false) => (var, Some((-k).div_euclid(coeff)), None),
        // c·v + k < 0  ⇔  c·v + k + 1 <= 0 over the integers
        (BinOp::Lt, true) => (var, None, Some(bound_le(coeff, k + 1))),
        (BinOp::Lt, false) => (var, Some((-(k + 1)).div_euclid(coeff)), None),
        // c·v + k >= 0  ⇔  -c·v - k <= 0
        (BinOp::Ge, true) => (var, Some(k_div_ceil(-k, coeff)), None),
        (BinOp::Ge, false) => (var, None, Some(bound_le(-coeff, -k))),
        // c·v + k > 0
        (BinOp::Gt, true) => (var, Some(k_div_ceil(-k + 1, coeff)), None),
        (BinOp::Gt, false) => (var, None, Some(bound_le(-coeff, -(k - 1)))),
        // c·v + k == 0: pins v when divisible, else contradiction.
        (BinOp::Eq, _) => {
            if (-k).rem_euclid(coeff.abs()) == 0 {
                let v = (-k).div_euclid(coeff);
                (var, Some(v), Some(v))
            } else {
                // No integer solution: lo > hi forces `false` upstream.
                (var, Some(1), Some(0))
            }
        }
        _ => return None,
    })
}

/// `ceil(a / b)` for `b > 0`.
fn k_div_ceil(a: i128, b: i128) -> i128 {
    debug_assert!(b > 0);
    a.div_euclid(b) + if a.rem_euclid(b) != 0 { 1 } else { 0 }
}

/// Convenience: simplified display strings for a set of path conditions.
pub fn simplify_pc_strings<'a>(pcs: impl IntoIterator<Item = &'a PathCondition>) -> Vec<String> {
    pcs.into_iter()
        .map(|pc| simplify_pc(pc).to_string())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sym::{SymTy, SymVar, VarPool};
    use crate::Solver;

    fn var() -> (VarPool, SymVar) {
        let mut pool = VarPool::new();
        let n = pool.fresh("N", SymTy::Int);
        (pool, n)
    }

    #[test]
    fn loop_chain_collapses_to_tightest_bounds() {
        let (_, n) = var();
        let mut pc = PathCondition::new();
        for k in 0..13 {
            pc.push(SymExpr::lt(SymExpr::int(k), SymExpr::var(&n)));
        }
        pc.push(SymExpr::ge(SymExpr::int(13), SymExpr::var(&n)));
        let simplified = simplify_pc(&pc);
        assert_eq!(simplified.to_string(), "12 < N && 13 >= N");
    }

    #[test]
    fn equality_pins_and_subsumes() {
        let (_, n) = var();
        let pc = PathCondition::new()
            .and(SymExpr::gt(SymExpr::var(&n), SymExpr::int(0)))
            .and(SymExpr::eq(SymExpr::var(&n), SymExpr::int(5)))
            .and(SymExpr::le(SymExpr::var(&n), SymExpr::int(100)));
        let simplified = simplify_pc(&pc);
        assert_eq!(simplified.to_string(), "N == 5");
    }

    #[test]
    fn contradictions_collapse_to_false() {
        let (_, n) = var();
        let pc = PathCondition::new()
            .and(SymExpr::gt(SymExpr::var(&n), SymExpr::int(9)))
            .and(SymExpr::lt(SymExpr::var(&n), SymExpr::int(3)));
        assert_eq!(simplify_pc(&pc).to_string(), "false");
    }

    #[test]
    fn multi_variable_conjuncts_are_preserved() {
        let mut pool = VarPool::new();
        let a = pool.fresh("A", SymTy::Int);
        let b = pool.fresh("B", SymTy::Int);
        let cross = SymExpr::lt(SymExpr::var(&a), SymExpr::var(&b));
        let pc = PathCondition::new()
            .and(SymExpr::gt(SymExpr::var(&a), SymExpr::int(0)))
            .and(SymExpr::gt(SymExpr::var(&a), SymExpr::int(2)))
            .and(cross.clone());
        let simplified = simplify_pc(&pc);
        assert_eq!(simplified.to_string(), "A > 2 && A < B");
    }

    #[test]
    fn scaled_coefficients_round_correctly() {
        let (_, n) = var();
        // 2N > 7 ⇔ N >= 4; 2N <= 9 ⇔ N <= 4.
        let pc = PathCondition::new()
            .and(SymExpr::gt(
                SymExpr::mul(SymExpr::int(2), SymExpr::var(&n)),
                SymExpr::int(7),
            ))
            .and(SymExpr::le(
                SymExpr::mul(SymExpr::int(2), SymExpr::var(&n)),
                SymExpr::int(9),
            ));
        let simplified = simplify_pc(&pc);
        // Both conjuncts survive (each provides one side), none are
        // contradictory.
        assert_eq!(simplified.len(), 2);
    }

    #[test]
    fn simplification_preserves_satisfiability() {
        // Equivalence spot-check via the solver on a mixed condition.
        let mut pool = VarPool::new();
        let x = pool.fresh("X", SymTy::Int);
        let y = pool.fresh("Y", SymTy::Int);
        let pc = PathCondition::new()
            .and(SymExpr::gt(SymExpr::var(&x), SymExpr::int(0)))
            .and(SymExpr::gt(SymExpr::var(&x), SymExpr::int(5)))
            .and(SymExpr::le(
                SymExpr::add(SymExpr::var(&x), SymExpr::var(&y)),
                SymExpr::int(20),
            ));
        let simplified = simplify_pc(&pc);
        let mut solver = Solver::new();
        let original = solver.check_pc(&pc);
        let reduced = solver.check_pc(&simplified);
        assert_eq!(original.result(), reduced.result());
        // The simplified model satisfies the original constraints.
        let model = reduced.model().unwrap();
        assert!(pc.conjuncts().iter().all(|c| model.satisfies(c)));
    }

    #[test]
    fn trivial_conditions_pass_through() {
        assert_eq!(simplify_pc(&PathCondition::new()).to_string(), "true");
        let mut pool = VarPool::new();
        let b = pool.fresh("B", SymTy::Bool);
        let pc = PathCondition::new().and(SymExpr::var(&b));
        assert_eq!(simplify_pc(&pc).to_string(), "B");
    }

    #[test]
    fn unsatisfiable_equality_is_detected() {
        let (_, n) = var();
        // 2N == 7 has no integer solution.
        let pc = PathCondition::new().and(SymExpr::eq(
            SymExpr::mul(SymExpr::int(2), SymExpr::var(&n)),
            SymExpr::int(7),
        ));
        assert_eq!(simplify_pc(&pc).to_string(), "false");
    }
}
