//! Path conditions.
//!
//! A [`PathCondition`] is the conjunction of branch constraints accumulated
//! along one symbolic execution path, exactly as in §2.1 of the paper. It
//! prints the way the paper writes them (`X > 0 && !(Y <= 3)`), and its
//! canonical string form is what the regression-testing application
//! compares.

use std::fmt;

use crate::sym::SymExpr;

/// A conjunction of boolean symbolic expressions.
///
/// The empty conjunction is `true` (the initial path condition).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct PathCondition {
    conjuncts: Vec<SymExpr>,
}

impl PathCondition {
    /// The initial path condition `true`.
    pub fn new() -> Self {
        PathCondition::default()
    }

    /// Returns a new path condition extended with `constraint`.
    ///
    /// Constant `true` conjuncts are dropped; everything else is appended
    /// in order (order is part of the canonical display).
    pub fn and(&self, constraint: SymExpr) -> PathCondition {
        let mut extended = self.clone();
        extended.push(constraint);
        extended
    }

    /// Appends `constraint` in place (same normalization as [`Self::and`]).
    pub fn push(&mut self, constraint: SymExpr) {
        if constraint.as_bool() == Some(true) {
            return;
        }
        self.conjuncts.push(constraint);
    }

    /// The conjuncts, in accumulation order.
    pub fn conjuncts(&self) -> &[SymExpr] {
        &self.conjuncts
    }

    /// Number of conjuncts.
    pub fn len(&self) -> usize {
        self.conjuncts.len()
    }

    /// Returns `true` for the trivial path condition `true`.
    pub fn is_empty(&self) -> bool {
        self.conjuncts.is_empty()
    }

    /// Returns `true` if some conjunct is the constant `false`.
    pub fn has_false(&self) -> bool {
        self.conjuncts.iter().any(|c| c.as_bool() == Some(false))
    }
}

impl fmt::Display for PathCondition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.conjuncts.is_empty() {
            return f.write_str("true");
        }
        for (i, conjunct) in self.conjuncts.iter().enumerate() {
            if i > 0 {
                f.write_str(" && ")?;
            }
            // Parenthesize nested disjunctions for unambiguous reading.
            match conjunct {
                SymExpr::Binary { op, .. } if op.is_logical() => {
                    write!(f, "({conjunct})")?;
                }
                _ => write!(f, "{conjunct}")?,
            }
        }
        Ok(())
    }
}

impl FromIterator<SymExpr> for PathCondition {
    fn from_iter<T: IntoIterator<Item = SymExpr>>(iter: T) -> Self {
        let mut pc = PathCondition::new();
        for c in iter {
            pc.push(c);
        }
        pc
    }
}

impl Extend<SymExpr> for PathCondition {
    fn extend<T: IntoIterator<Item = SymExpr>>(&mut self, iter: T) {
        for c in iter {
            self.push(c);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sym::{SymTy, VarPool};

    #[test]
    fn empty_pc_displays_true() {
        assert_eq!(PathCondition::new().to_string(), "true");
        assert!(PathCondition::new().is_empty());
    }

    #[test]
    fn and_accumulates_in_order() {
        let mut pool = VarPool::new();
        let x = pool.fresh("X", SymTy::Int);
        let pc = PathCondition::new()
            .and(SymExpr::gt(SymExpr::var(&x), SymExpr::int(0)))
            .and(SymExpr::le(SymExpr::var(&x), SymExpr::int(9)));
        assert_eq!(pc.len(), 2);
        assert_eq!(pc.to_string(), "X > 0 && X <= 9");
    }

    #[test]
    fn true_conjuncts_are_dropped() {
        let pc = PathCondition::new().and(SymExpr::boolean(true));
        assert!(pc.is_empty());
    }

    #[test]
    fn false_is_detected() {
        let pc = PathCondition::new().and(SymExpr::boolean(false));
        assert!(pc.has_false());
        assert_eq!(pc.to_string(), "false");
    }

    #[test]
    fn nested_disjunction_is_parenthesized() {
        let mut pool = VarPool::new();
        let a = pool.fresh("A", SymTy::Bool);
        let b = pool.fresh("B", SymTy::Bool);
        let pc = PathCondition::new().and(SymExpr::or(SymExpr::var(&a), SymExpr::var(&b)));
        assert_eq!(pc.to_string(), "(A || B)");
    }

    #[test]
    fn collects_from_iterator() {
        let mut pool = VarPool::new();
        let x = pool.fresh("X", SymTy::Int);
        let pc: PathCondition = vec![
            SymExpr::boolean(true),
            SymExpr::ge(SymExpr::var(&x), SymExpr::int(1)),
        ]
        .into_iter()
        .collect();
        assert_eq!(pc.len(), 1);
        let mut pc2 = PathCondition::new();
        pc2.extend([SymExpr::ge(SymExpr::var(&x), SymExpr::int(1))]);
        assert_eq!(pc, pc2);
    }
}
