//! Portable snapshots of the incremental solver's warm state.
//!
//! A [`TrieSnapshot`] is the serializable image of an
//! [`crate::IncrementalSolver`]'s hash-consed interner and prefix-trie
//! verdict cache: the full term table (children before parents, exactly
//! the interner's insertion order) plus one [`TrieEntry`] per trie edge
//! that leads to a decided prefix. Edges are keyed by *canonical term
//! indices into the snapshot's own table*, never by live
//! [`TermId`](crate::intern::TermId)s — importing re-interns every term,
//! so a snapshot taken by one process warm-starts a solver in another
//! process (or a later run over a different program version) with the
//! same ids only where the structures actually coincide.
//!
//! Restoring a snapshot is sound for the same reason cross-worker
//! [`crate::SharedTrie`] reuse is: a verdict (and its verified model and
//! interval fixed point) is a deterministic function of the literal
//! sequence alone — the decision pipeline never consults anything else —
//! so a restored entry is byte-for-byte what the fresh run would have
//! computed for that prefix. The only reuse gate is the solver
//! *configuration* (case budgets change `Unknown` verdicts), which
//! callers compare via [`crate::SolverConfig::cache_key`].
//!
//! `dise-store` serializes snapshots to disk with an integrity header;
//! this module stays I/O-free.

use crate::intern::Term;
use crate::model::Model;
use crate::shared_trie::Bounds;
use crate::solve::SatResult;
use crate::sym::{SymExpr, SymTy, SymVar};

/// One trie edge of a [`TrieSnapshot`]: the parent node, the literal term
/// labelling the edge, and the decision memoized at the child (if any —
/// interior edges on the way to a decided descendant carry `None`).
#[derive(Debug, Clone, PartialEq)]
pub struct TrieEntry {
    /// Parent node: `0` is the root (empty path); `k > 0` refers to
    /// `entries[k - 1]` of the same snapshot.
    pub parent: u32,
    /// Index into [`TrieSnapshot::terms`] of the edge's literal.
    pub term: u32,
    /// The memoized verdict at this prefix, if one was computed.
    pub verdict: Option<SatResult>,
    /// The verified model (present when the verdict is SAT).
    pub model: Option<Model>,
    /// The interval fixed point at this depth, if any.
    pub bounds: Option<Bounds>,
}

/// A portable image of an incremental solver's interner and prefix trie.
/// Produced by [`crate::IncrementalSolver::export_trie`], consumed by
/// [`crate::IncrementalSolver::import_trie`]. See the [module
/// docs](self).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TrieSnapshot {
    /// The hash-consed term table, in interner insertion order (every
    /// term's children precede it).
    pub terms: Vec<Term>,
    /// The trie edges, parents before children.
    pub entries: Vec<TrieEntry>,
}

impl TrieSnapshot {
    /// Number of decided prefixes in the snapshot (entries carrying a
    /// verdict; interior edges are not counted).
    pub fn decided(&self) -> usize {
        self.entries.iter().filter(|e| e.verdict.is_some()).count()
    }

    /// Returns `true` when the snapshot holds no trie edges at all.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Structural well-formedness: every term references only earlier
    /// terms, every entry references an in-range term and an
    /// earlier-or-root parent. Import refuses snapshots that fail this
    /// (a checksum-valid but logically corrupt file must never poison a
    /// solver).
    pub fn validate(&self) -> bool {
        for (i, term) in self.terms.iter().enumerate() {
            let ok = match term {
                Term::Int(_) | Term::Bool(_) | Term::Var { .. } => true,
                Term::Unary { arg, .. } => arg.index() < i,
                Term::Binary { lhs, rhs, .. } => lhs.index() < i && rhs.index() < i,
            };
            if !ok {
                return false;
            }
        }
        for (i, entry) in self.entries.iter().enumerate() {
            if entry.parent as usize > i || entry.term as usize >= self.terms.len() {
                return false;
            }
        }
        true
    }
}

/// One explored path of a summarized procedure: the branch guards taken
/// (over the formal/global entry variables of [`SummarySnapshot`]), the
/// terminal outcome, the procedure's effect on every global, and a witness
/// model satisfying the guards (used by the instantiation fast path to
/// re-validate feasibility at a call site without solving).
#[derive(Debug, Clone, PartialEq)]
pub struct SummaryPathSnapshot {
    /// Branch literals in DFS push order, exactly as the serial inlined
    /// exploration would have pushed them inside the callee.
    pub guards: Vec<SymExpr>,
    /// `Some(message)` when the path ends in an `error` statement;
    /// `None` for a completed path.
    pub error: Option<String>,
    /// Final symbolic value of every global, over the same entry
    /// variables as the guards. Identity entries (global unchanged) are
    /// included — they substitute to a no-op.
    pub effects: Vec<(String, SymExpr)>,
    /// A model of the guard conjunction, when one was found.
    pub witness: Option<Model>,
}

/// A portable procedure summary: every feasible path of one callee,
/// explored once over fresh entry variables, ready to be instantiated at
/// any call site by substituting actuals for formals and the caller's
/// global values for the globals' entry variables.
///
/// Reuse gates mirror [`TrieSnapshot`]'s: the summary is a deterministic
/// function of the callee's flattened body (`fingerprint`, computed over
/// the callee with its own callees inlined) and the solver configuration
/// (`solver_key`); either changing invalidates the entry.
#[derive(Debug, Clone, PartialEq)]
pub struct SummarySnapshot {
    /// The summarized procedure's name.
    pub proc_name: String,
    /// Fingerprint of the callee's *flattened* body (its transitive
    /// callees inlined), so a change anywhere beneath the callee
    /// invalidates the summary.
    pub fingerprint: u64,
    /// [`crate::SolverConfig::cache_key`] of the solver that explored the
    /// callee (case budgets change `Unknown` verdicts, hence path sets).
    pub solver_key: u64,
    /// Formal parameters in declaration order, with the entry variable
    /// each one was bound to during summarization.
    pub formals: Vec<(String, SymVar)>,
    /// Globals with their entry variables (the callee sees every global
    /// symbolically; unread globals simply don't occur in any guard or
    /// effect).
    pub globals: Vec<(String, SymVar)>,
    /// Explored paths in serial DFS emission order — instantiation
    /// preserves this order so caller path emission matches the inlined
    /// run's.
    pub paths: Vec<SummaryPathSnapshot>,
}

impl SummarySnapshot {
    /// Structural well-formedness: guard expressions must be boolean and
    /// every variable mentioned anywhere must be one of the declared
    /// entry variables. Import refuses summaries that fail this.
    pub fn validate(&self) -> bool {
        let declared: std::collections::BTreeSet<u32> = self
            .formals
            .iter()
            .chain(self.globals.iter())
            .map(|(_, v)| v.id())
            .collect();
        let vars_ok = |expr: &SymExpr| {
            let mut vars = std::collections::BTreeMap::new();
            expr.collect_vars(&mut vars);
            vars.keys().all(|id| declared.contains(id))
        };
        self.paths.iter().all(|path| {
            path.guards
                .iter()
                .all(|g| g.ty() == SymTy::Bool && vars_ok(g))
                && path.effects.iter().all(|(_, e)| vars_ok(e))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::intern::TermId;
    use crate::sym::UnOp;

    fn entry(parent: u32, term: u32) -> TrieEntry {
        TrieEntry {
            parent,
            term,
            verdict: Some(SatResult::Sat),
            model: None,
            bounds: None,
        }
    }

    #[test]
    fn empty_snapshot_is_valid() {
        let snapshot = TrieSnapshot::default();
        assert!(snapshot.validate());
        assert!(snapshot.is_empty());
        assert_eq!(snapshot.decided(), 0);
    }

    #[test]
    fn forward_term_references_are_rejected() {
        let snapshot = TrieSnapshot {
            terms: vec![Term::Unary {
                op: UnOp::Not,
                arg: TermId::from_index(5),
            }],
            entries: Vec::new(),
        };
        assert!(!snapshot.validate());
    }

    #[test]
    fn out_of_range_entries_are_rejected() {
        let base = TrieSnapshot {
            terms: vec![Term::Bool(true)],
            entries: vec![entry(0, 0)],
        };
        assert!(base.validate());
        let bad_term = TrieSnapshot {
            entries: vec![entry(0, 3)],
            ..base.clone()
        };
        assert!(!bad_term.validate());
        let forward_parent = TrieSnapshot {
            entries: vec![entry(2, 0)],
            ..base
        };
        assert!(!forward_parent.validate());
    }
}
