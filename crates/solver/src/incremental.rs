//! The incremental solver — the *fast tier* of the two-tier architecture.
//!
//! [`IncrementalSolver`] mirrors the symbolic executor's DFS stack with a
//! `push(literal)` / `pop()` / `check()` API. Where the monolithic
//! [`Solver`] re-runs the whole pipeline (NNF, DNF split, interval
//! propagation, Fourier–Motzkin, model search) over the full path
//! condition on every query, the incremental solver retains derived state
//! per stack frame and only processes the newly pushed branch literal:
//!
//! * **Hash-consed literals** — every pushed literal is interned to a
//!   [`TermId`], so prefix identity is a sequence of integers, not trees.
//! * **Per-frame derived state** — flattened linear atoms, residual
//!   (non-linear) atoms, boolean assignments, and the interval fixed point
//!   are kept on a shared undo stack; a `pop` truncates in O(frame size).
//! * **Model reuse** — the common DFS step extends a known-SAT prefix by
//!   one literal. If the parent frame's verified model already satisfies
//!   the new literal, `check` answers SAT with zero search.
//! * **Prefix trie** — verdicts are memoized in a trie keyed by the
//!   `TermId` path. A re-checked prefix is answered without solving, and
//!   an UNSAT ancestor kills every extension instantly.
//! * **Monolithic fallback** — a pushed literal that needs case splitting
//!   (disjunction, integer disequality) flips the current path into
//!   fallback mode: `check` delegates to the inner [`Solver`] (which has
//!   its own bounded result cache) until that literal is popped.
//!
//! Soundness mirrors the monolithic contract: `Unsat` only when provable,
//! `Sat` only with a model verified against every pushed literal,
//! `Unknown` otherwise (budgets, overflow). The same `case_budget = 0`
//! starvation semantics apply: any non-empty query returns `Unknown`.

use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

use crate::intern::TermId;
use crate::linear::LinAtom;
use crate::model::{Model, Value};
use crate::shared_trie::SharedTrie;
use crate::snapshot::{TrieEntry, TrieSnapshot};
use crate::solve::{
    classify, decide_conjunction, flatten_conjunct, nnf, split_alternatives, CaseVerdict,
    Classified, SatResult, Solver, SolverConfig, SolverStats,
};
use crate::sym::{SymExpr, SymTy, SymVar};
use crate::Interval;

/// One node of the prefix trie: verdicts memoized per `TermId` path.
#[derive(Debug, Clone, Default)]
struct TrieNode {
    children: HashMap<TermId, usize>,
    verdict: Option<SatResult>,
    model: Option<Model>,
    bounds: Option<BTreeMap<u32, Interval>>,
}

/// One frame of the solver stack: the pushed literal plus the undo
/// information and memoized results for this depth.
#[derive(Debug, Clone)]
struct Frame {
    /// Trie node for this prefix (`None` once the trie hit capacity).
    trie_node: Option<usize>,
    /// Node id of this prefix in the attached [`SharedTrie`] (`None` when
    /// no trie is attached, or it is at capacity, or an ancestor fell off).
    shared_node: Option<u64>,
    /// Length of the shared `lin` vector before this frame's additions.
    lin_len: usize,
    /// Length of the shared `residuals` vector before this frame.
    residual_len: usize,
    /// Variable ids first seen in this frame (removed on pop).
    new_vars: Vec<u32>,
    /// All variable ids mentioned by this frame's literal (drives the
    /// pinned partial search: everything else keeps the parent's value).
    lit_vars: Vec<u32>,
    /// Boolean assignments made by this frame: `(id, previous value)`.
    bool_undo: Vec<(u32, Option<bool>)>,
    /// The literal requires case splitting — this path runs in fallback
    /// mode while the frame is on the stack.
    complex: bool,
    /// The literal (or a boolean conflict) is a contradiction.
    contradiction: bool,
    /// Verdict computed at this depth, if `check` ran.
    verdict: Option<SatResult>,
    /// Verified model at this depth (present when the verdict is SAT).
    model: Option<Model>,
    /// Interval fixed point at this depth (seeds the child's propagation).
    bounds: Option<BTreeMap<u32, Interval>>,
}

/// Incremental path-condition solver with push/pop/check and a prefix
/// trie. See the [module documentation](self).
#[derive(Debug, Clone)]
pub struct IncrementalSolver {
    inner: Solver,
    frames: Vec<Frame>,
    /// All pushed literals, in push order (the current path condition).
    lits: Vec<SymExpr>,
    /// Shared derived state, truncated on pop via per-frame lengths.
    lin: Vec<LinAtom>,
    residuals: Vec<SymExpr>,
    bools: BTreeMap<u32, bool>,
    vars: BTreeMap<u32, SymVar>,
    trie: Vec<TrieNode>,
    /// Cross-worker verdict cache (parallel frontier), when attached.
    shared: Option<Arc<SharedTrie>>,
    /// Number of frames currently in fallback (case-splitting) mode.
    complex_frames: usize,
    /// Shallowest frame known to be UNSAT (contradiction or verdict).
    unsat_depth: Option<usize>,
    /// Incremental-tier counters (merged with the inner solver's by
    /// [`Self::stats`]).
    local: SolverStats,
}

impl Default for IncrementalSolver {
    fn default() -> Self {
        IncrementalSolver::new()
    }
}

impl IncrementalSolver {
    /// Creates an incremental solver with default configuration.
    pub fn new() -> IncrementalSolver {
        IncrementalSolver::with_config(SolverConfig::default())
    }

    /// Creates an incremental solver with explicit configuration.
    pub fn with_config(config: SolverConfig) -> IncrementalSolver {
        IncrementalSolver {
            inner: Solver::with_config(config),
            frames: Vec::new(),
            lits: Vec::new(),
            lin: Vec::new(),
            residuals: Vec::new(),
            bools: BTreeMap::new(),
            vars: BTreeMap::new(),
            trie: vec![TrieNode::default()],
            shared: None,
            complex_frames: 0,
            unsat_depth: None,
            local: SolverStats::default(),
        }
    }

    /// Current stack depth (number of pushed literals).
    pub fn depth(&self) -> usize {
        self.frames.len()
    }

    /// The pushed literals, bottom of the stack first.
    pub fn literals(&self) -> &[SymExpr] {
        &self.lits
    }

    /// Combined activity counters: the monolithic fallback tier's plus the
    /// incremental tier's.
    pub fn stats(&self) -> SolverStats {
        let mut merged = *self.inner.stats();
        merged.merge(&self.local);
        merged
    }

    /// The verified model at the current depth, when the last `check` at
    /// this depth answered SAT.
    pub fn model(&self) -> Option<&Model> {
        match self.frames.last() {
            Some(frame) => frame.model.as_ref(),
            None => None,
        }
    }

    /// Attaches a cross-worker verdict cache. Only frames pushed *after*
    /// the attach participate; attach on an empty stack. The caller must
    /// respect the determinism contract documented on [`SharedTrie`]:
    /// checks are performed root-contiguously, so published entries are
    /// exactly what a fresh serial computation of the same path yields.
    pub fn attach_shared_trie(&mut self, trie: Arc<SharedTrie>) {
        self.shared = Some(trie);
    }

    /// Detaches the cross-worker cache (no-op when none is attached).
    pub fn detach_shared_trie(&mut self) {
        self.shared = None;
    }

    /// The attached cross-worker cache, if any.
    pub fn shared_trie(&self) -> Option<&Arc<SharedTrie>> {
        self.shared.as_ref()
    }

    /// Pops every frame (the stack returns to the empty path condition
    /// `true`). The prefix trie and caches are retained.
    pub fn reset(&mut self) {
        while !self.frames.is_empty() {
            self.pop();
        }
    }

    /// Pushes one branch literal onto the path.
    pub fn push(&mut self, lit: SymExpr) {
        let term = self.inner.interner.intern(&lit);
        let trie_node = self.trie_child(term);
        let shared_node = match &self.shared {
            Some(shared) => {
                let parent = match self.frames.last() {
                    Some(frame) => frame.shared_node,
                    None => Some(SharedTrie::ROOT),
                };
                parent.and_then(|p| shared.child(p, &lit))
            }
            None => None,
        };
        let mut frame = Frame {
            trie_node,
            shared_node,
            lin_len: self.lin.len(),
            residual_len: self.residuals.len(),
            new_vars: Vec::new(),
            lit_vars: Vec::new(),
            bool_undo: Vec::new(),
            complex: false,
            contradiction: false,
            verdict: None,
            model: None,
            bounds: None,
        };

        // Normalize exactly like the monolithic front end: NNF, then
        // conjunction flattening.
        let mut conjuncts = Vec::new();
        if !flatten_conjunct(&nnf(&lit, true), &mut conjuncts) {
            frame.contradiction = true;
        }
        for conjunct in &conjuncts {
            if frame.contradiction || frame.complex {
                break;
            }
            if split_alternatives(conjunct).len() > 1 {
                // Disjunction or integer disequality: needs DNF case
                // splitting, which only the monolithic tier does.
                frame.complex = true;
                break;
            }
            let mut frame_vars = BTreeMap::new();
            conjunct.collect_vars(&mut frame_vars);
            for (id, var) in frame_vars {
                if !frame.lit_vars.contains(&id) {
                    frame.lit_vars.push(id);
                }
                if let std::collections::btree_map::Entry::Vacant(entry) = self.vars.entry(id) {
                    entry.insert(var);
                    frame.new_vars.push(id);
                }
            }
            match classify(conjunct) {
                Classified::True => {}
                Classified::False => frame.contradiction = true,
                Classified::BoolAssign(var, value) => match self.bools.get(&var.id()) {
                    Some(&existing) if existing != value => frame.contradiction = true,
                    Some(_) => {}
                    None => {
                        frame.bool_undo.push((var.id(), None));
                        self.bools.insert(var.id(), value);
                    }
                },
                Classified::Linear(atom) => self.lin.push(atom),
                Classified::Residual(expr) => self.residuals.push(expr),
            }
        }

        if frame.complex {
            self.complex_frames += 1;
        }
        if frame.contradiction && self.unsat_depth.is_none() {
            self.unsat_depth = Some(self.frames.len());
        }
        self.lits.push(lit);
        self.frames.push(frame);
    }

    /// Pops the most recently pushed literal, restoring all derived state.
    /// No-op on an empty stack.
    pub fn pop(&mut self) {
        let Some(frame) = self.frames.pop() else {
            return;
        };
        self.lits.pop();
        self.lin.truncate(frame.lin_len);
        self.residuals.truncate(frame.residual_len);
        for id in &frame.new_vars {
            self.vars.remove(id);
        }
        for (id, previous) in frame.bool_undo.iter().rev() {
            match previous {
                Some(value) => {
                    self.bools.insert(*id, *value);
                }
                None => {
                    self.bools.remove(id);
                }
            }
        }
        if frame.complex {
            self.complex_frames -= 1;
        }
        if self.unsat_depth == Some(self.frames.len()) {
            self.unsat_depth = None;
        }
    }

    /// Pushes `lit` and, when `model` satisfies *every* literal on the
    /// extended stack by direct evaluation, records a verified SAT verdict
    /// at the new depth without running any decision pipeline — the trie
    /// still learns the verdict, so later re-checks of this prefix are
    /// ordinary prefix hits.
    ///
    /// This is the summary-instantiation fast path: a procedure summary
    /// carries a witness model for each of its paths, and substituting the
    /// caller's actuals usually keeps the witness valid, turning a call
    /// site's guard pushes into pure evaluations.
    ///
    /// Returns `false` (leaving the literal pushed but undecided, exactly
    /// as a plain [`push`](Self::push) would) when the model does not
    /// verify or the stack is already contradictory; the caller should run
    /// [`check`](Self::check) as usual.
    pub fn push_verified(&mut self, lit: SymExpr, model: &Model) -> bool {
        self.push(lit);
        let top = self.frames.len() - 1;
        if self.frames[top].contradiction
            || self.unsat_depth.is_some()
            || !self.lits.iter().all(|l| model.satisfies(l))
        {
            return false;
        }
        self.local.assumed_sat += 1;
        self.conclude(top, SatResult::Sat, Some(model.clone()), None);
        true
    }

    /// Decides the conjunction of all pushed literals.
    pub fn check(&mut self) -> SatResult {
        self.local.checks += 1;
        if self.frames.is_empty() {
            self.local.sat += 1;
            return SatResult::Sat;
        }
        let top = self.frames.len() - 1;

        // A memoized verdict at this exact depth (repeated check without
        // an intervening push/pop).
        if let Some(verdict) = self.frames[top].verdict {
            self.local.prefix_cache_hits += 1;
            self.tally(verdict);
            return verdict;
        }

        // An UNSAT ancestor (or an UNSAT literal at the top) kills the
        // whole extension: conjunctions only ever get stronger.
        if let Some(depth) = self.unsat_depth {
            if depth < top {
                self.local.prefix_unsat_kills += 1;
            }
            return self.conclude(top, SatResult::Unsat, None, None);
        }

        // Prefix trie: this exact literal sequence was decided before
        // (divergent-branch re-exploration, repeated runs).
        if let Some(node) = self.frames[top].trie_node {
            if let Some(verdict) = self.trie[node].verdict {
                self.local.prefix_cache_hits += 1;
                let model = self.trie[node].model.clone();
                let bounds = self.trie[node].bounds.clone();
                self.frames[top].verdict = Some(verdict);
                self.frames[top].model = model;
                self.frames[top].bounds = bounds;
                self.note_unsat(top, verdict);
                self.tally(verdict);
                return verdict;
            }
        }

        // Cross-worker shared trie: another worker already decided this
        // exact prefix. The restored model and bounds are what this solver
        // would have computed itself (see the determinism contract on
        // [`SharedTrie`]), so downstream frames behave identically either
        // way.
        if self.frames[top].shared_node.is_some() {
            let parent = match top {
                0 => SharedTrie::ROOT,
                _ => self.frames[top - 1]
                    .shared_node
                    .expect("a shared child implies a shared parent"),
            };
            let hit = self
                .shared
                .as_ref()
                .and_then(|shared| shared.verdict(parent, &self.lits[top]));
            if let Some(hit) = hit {
                self.local.shared_trie_hits += 1;
                self.frames[top].verdict = Some(hit.verdict);
                self.frames[top].model = hit.model.clone();
                self.frames[top].bounds = hit.bounds.clone();
                // Memoize locally so later re-checks stay lock-free.
                if let Some(node) = self.frames[top].trie_node {
                    self.trie[node].verdict = Some(hit.verdict);
                    self.trie[node].model = hit.model;
                    self.trie[node].bounds = hit.bounds;
                }
                self.note_unsat(top, hit.verdict);
                self.tally(hit.verdict);
                return hit.verdict;
            }
        }

        // Fallback mode: some literal on the stack needs case splitting.
        if self.complex_frames > 0 {
            self.local.fallback_checks += 1;
            let outcome = self.inner.check(&self.lits);
            let verdict = outcome.result();
            let model = outcome.model().cloned();
            // The inner solver already tallied sat/unsat/unknown.
            self.frames[top].verdict = Some(verdict);
            self.frames[top].model = model.clone();
            self.note_unsat(top, verdict);
            self.store_trie(top, verdict, model, None);
            return verdict;
        }

        self.local.incremental_checks += 1;

        // Starvation semantics: a zero case budget answers Unknown for any
        // non-empty query, exactly like the monolithic tier.
        if self.inner.config().case_budget == 0 {
            return self.conclude(top, SatResult::Unknown, None, None);
        }

        // Model reuse: does the parent's verified model (extended with
        // defaults for this frame's fresh variables) already satisfy the
        // whole path? This is the common DFS step — a SAT prefix extended
        // by a literal the old model happens to satisfy.
        if let Some(candidate) = self.reuse_candidate(top) {
            if self.lits.iter().all(|lit| candidate.satisfies(lit)) {
                self.local.model_reuse_hits += 1;
                return self.conclude(top, SatResult::Sat, Some(candidate), None);
            }
        }

        // Full per-frame decision, seeded with the parent's interval fixed
        // point (sound: the parent's bounds over-approximate the prefix's
        // solutions and this system only adds constraints).
        let parent_bounds = match top {
            0 => BTreeMap::new(),
            _ => self.frames[top - 1].bounds.clone().unwrap_or_default(),
        };
        let fixed = self.fixed_model();

        // Partial reuse: pin every variable this frame's literal does not
        // mention to the parent model's value, so the search only explores
        // the literal's own variables. UNSAT from this attempt is sound
        // (propagation and Fourier–Motzkin ignore the pins); only an
        // Unknown forces the unpinned retry — the pins may simply have
        // been an unlucky choice.
        let pinned = self.pinned_fixed(top, &fixed);
        let mut decision = decide_conjunction(
            &self.lin,
            &self.residuals,
            &self.vars,
            pinned.as_ref().unwrap_or(&fixed),
            &parent_bounds,
            &self.lits,
            self.inner.config(),
            &mut self.local,
        );
        if pinned.is_some() && matches!(decision.0, CaseVerdict::Unknown) {
            decision = decide_conjunction(
                &self.lin,
                &self.residuals,
                &self.vars,
                &fixed,
                &parent_bounds,
                &self.lits,
                self.inner.config(),
                &mut self.local,
            );
        }
        let (verdict, bounds) = decision;
        match verdict {
            CaseVerdict::Sat(model) => self.conclude(top, SatResult::Sat, Some(model), bounds),
            CaseVerdict::Unsat => self.conclude(top, SatResult::Unsat, None, None),
            CaseVerdict::Unknown => self.conclude(top, SatResult::Unknown, None, bounds),
        }
    }

    /// Records a verdict at depth `top` (frame, trie, tallies).
    fn conclude(
        &mut self,
        top: usize,
        verdict: SatResult,
        model: Option<Model>,
        bounds: Option<BTreeMap<u32, Interval>>,
    ) -> SatResult {
        self.note_unsat(top, verdict);
        self.frames[top].verdict = Some(verdict);
        self.frames[top].model = model.clone();
        self.frames[top].bounds = bounds.clone();
        self.store_trie(top, verdict, model, bounds);
        self.tally(verdict);
        verdict
    }

    /// Records an UNSAT verdict at `depth` so later extensions die by the
    /// instant prefix kill instead of re-running any pipeline. Every path
    /// that produces a verdict (pipeline, trie restore, fallback) must
    /// route through this to keep the "UNSAT ancestor kills extensions"
    /// invariant.
    fn note_unsat(&mut self, depth: usize, verdict: SatResult) {
        if verdict == SatResult::Unsat && self.unsat_depth.is_none() {
            self.unsat_depth = Some(depth);
        }
    }

    fn tally(&mut self, verdict: SatResult) {
        match verdict {
            SatResult::Sat => self.local.sat += 1,
            SatResult::Unsat => self.local.unsat += 1,
            SatResult::Unknown => self.local.unknown += 1,
        }
    }

    fn store_trie(
        &mut self,
        top: usize,
        verdict: SatResult,
        model: Option<Model>,
        bounds: Option<BTreeMap<u32, Interval>>,
    ) {
        if let Some(node) = self.frames[top].trie_node {
            self.trie[node].verdict = Some(verdict);
            self.trie[node].model = model.clone();
            self.trie[node].bounds = bounds.clone();
        }
        if self.frames[top].shared_node.is_some() {
            if let Some(shared) = &self.shared {
                let parent = match top {
                    0 => SharedTrie::ROOT,
                    _ => self.frames[top - 1]
                        .shared_node
                        .expect("a shared child implies a shared parent"),
                };
                shared.publish(parent, &self.lits[top], verdict, model, bounds);
            }
        }
    }

    /// The trie node for the current prefix extended by `term`, creating
    /// it if capacity allows. `None` when the parent fell off the trie or
    /// the trie is full.
    fn trie_child(&mut self, term: TermId) -> Option<usize> {
        let parent = match self.frames.last() {
            Some(frame) => frame.trie_node?,
            None => 0,
        };
        self.trie_child_of(parent, term)
    }

    /// The trie node for the prefix at `parent` extended by `term`,
    /// creating it if capacity allows.
    fn trie_child_of(&mut self, parent: usize, term: TermId) -> Option<usize> {
        if let Some(&child) = self.trie[parent].children.get(&term) {
            return Some(child);
        }
        if self.trie.len() >= self.inner.config().prefix_trie_capacity {
            return None;
        }
        let child = self.trie.len();
        self.trie.push(TrieNode::default());
        self.trie[parent].children.insert(term, child);
        Some(child)
    }

    /// Exports the interner and prefix trie as a portable
    /// [`TrieSnapshot`] — the persisted warm state of `dise store`
    /// directories. Undecided subtrees (no verdict anywhere below) are
    /// pruned; edge order is deterministic (ascending creation order,
    /// children keys visited in [`TermId`] order).
    pub fn export_trie(&self) -> TrieSnapshot {
        // Children are always created after their parent, so a single
        // reverse index sweep computes "subtree holds a verdict".
        let mut parent_of: Vec<Option<(usize, TermId)>> = vec![None; self.trie.len()];
        for (i, node) in self.trie.iter().enumerate() {
            for (&term, &child) in &node.children {
                parent_of[child] = Some((i, term));
            }
        }
        let mut keep: Vec<bool> = self
            .trie
            .iter()
            .map(|node| node.verdict.is_some())
            .collect();
        for i in (1..self.trie.len()).rev() {
            if keep[i] {
                if let Some((parent, _)) = parent_of[i] {
                    keep[parent] = true;
                }
            }
        }

        let mut entries = Vec::new();
        // Snapshot index of each kept trie node (root maps to 0; entry k
        // maps to k + 1).
        let mut mapped: Vec<Option<u32>> = vec![None; self.trie.len()];
        mapped[0] = Some(0);
        for i in 1..self.trie.len() {
            if !keep[i] {
                continue;
            }
            let (parent, term) = parent_of[i].expect("non-root trie nodes have parents");
            let Some(parent_idx) = mapped[parent] else {
                continue; // parent was dropped (capacity races cannot occur here)
            };
            let node = &self.trie[i];
            entries.push(TrieEntry {
                parent: parent_idx,
                term: term.index() as u32,
                verdict: node.verdict,
                model: node.model.clone(),
                bounds: node.bounds.clone(),
            });
            mapped[i] = Some(entries.len() as u32);
        }
        TrieSnapshot {
            terms: self.inner.interner.terms().to_vec(),
            entries,
        }
    }

    /// Seeds the interner and prefix trie from a snapshot produced by
    /// [`IncrementalSolver::export_trie`] (possibly in another process —
    /// every term is re-interned, so snapshot ids and live ids need not
    /// coincide). Returns the number of decided prefixes restored.
    ///
    /// Only legal on an empty stack; a non-empty stack, an invalid
    /// snapshot ([`TrieSnapshot::validate`]), or a full trie restore
    /// nothing (`0`) — a warm start must never poison a solver. Existing
    /// verdicts are never overwritten.
    ///
    /// Soundness matches [`SharedTrie`] reuse: verdict, model, and bounds
    /// are deterministic functions of the literal path, so a restored
    /// entry is exactly what this solver would have computed — *provided
    /// the solver configuration matches* (case budgets flip `Unknown`s);
    /// gate reuse on [`crate::SolverConfig::cache_key`].
    pub fn import_trie(&mut self, snapshot: &TrieSnapshot) -> usize {
        if !self.frames.is_empty() || !snapshot.validate() {
            return 0;
        }
        let mut ids: Vec<TermId> = Vec::with_capacity(snapshot.terms.len());
        for term in &snapshot.terms {
            let mapped = match term {
                crate::intern::Term::Unary { op, arg } => crate::intern::Term::Unary {
                    op: *op,
                    arg: ids[arg.index()],
                },
                crate::intern::Term::Binary { op, lhs, rhs } => crate::intern::Term::Binary {
                    op: *op,
                    lhs: ids[lhs.index()],
                    rhs: ids[rhs.index()],
                },
                other => other.clone(),
            };
            ids.push(self.inner.interner.intern_term(mapped));
        }
        let mut imported = 0;
        // Local node behind each snapshot index (0 = root).
        let mut nodes: Vec<Option<usize>> = vec![Some(0)];
        for entry in &snapshot.entries {
            let child = nodes[entry.parent as usize]
                .and_then(|parent| self.trie_child_of(parent, ids[entry.term as usize]));
            if let Some(node) = child {
                if self.trie[node].verdict.is_none() {
                    if let Some(verdict) = entry.verdict {
                        self.trie[node].verdict = Some(verdict);
                        self.trie[node].model = entry.model.clone();
                        self.trie[node].bounds = entry.bounds.clone();
                        imported += 1;
                    }
                }
            }
            nodes.push(child);
        }
        imported
    }

    /// Builds the reuse candidate: the parent frame's verified model,
    /// extended with defaults for this frame's fresh variables and with
    /// this frame's boolean literal assignments.
    fn reuse_candidate(&self, top: usize) -> Option<Model> {
        let mut candidate = if top == 0 {
            Model::new()
        } else {
            match self.frames[top - 1].verdict {
                Some(SatResult::Sat) => self.frames[top - 1].model.clone()?,
                _ => return None,
            }
        };
        let frame = &self.frames[top];
        for id in &frame.new_vars {
            let var = self.vars.get(id)?;
            match var.ty() {
                SymTy::Int => candidate.set(*id, Value::Int(0)),
                SymTy::Bool => candidate.set(*id, Value::Bool(false)),
            }
        }
        for (id, _) in &frame.bool_undo {
            let value = *self.bools.get(id)?;
            candidate.set(*id, Value::Bool(value));
        }
        Some(candidate)
    }

    /// The pinned `fixed` seed for the partial search: the parent model's
    /// values for every variable the top frame's literal does not mention,
    /// overlaid with the hard boolean assignments. `None` when there is no
    /// SAT parent model to pin from.
    fn pinned_fixed(&self, top: usize, fixed: &Model) -> Option<Model> {
        if top == 0 {
            return None;
        }
        let parent = &self.frames[top - 1];
        if parent.verdict != Some(SatResult::Sat) {
            return None;
        }
        let parent_model = parent.model.as_ref()?;
        let lit_vars = &self.frames[top].lit_vars;
        let mut pinned = Model::new();
        for (id, value) in parent_model.iter() {
            if !lit_vars.contains(&id) {
                pinned.set(id, value);
            }
        }
        for (id, value) in fixed.iter() {
            pinned.set(id, value);
        }
        Some(pinned)
    }

    /// The boolean literal assignments as a [`Model`] (what the shared
    /// decision core expects as `fixed`).
    fn fixed_model(&self) -> Model {
        let mut fixed = Model::new();
        for (&id, &value) in &self.bools {
            fixed.set(id, Value::Bool(value));
        }
        fixed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sym::{BinOp, VarPool};

    fn setup() -> (VarPool, SymVar, SymVar, SymVar) {
        let mut pool = VarPool::new();
        let x = pool.fresh("X", SymTy::Int);
        let y = pool.fresh("Y", SymTy::Int);
        let b = pool.fresh("B", SymTy::Bool);
        (pool, x, y, b)
    }

    #[test]
    fn empty_stack_is_sat() {
        let mut solver = IncrementalSolver::new();
        assert_eq!(solver.check(), SatResult::Sat);
        assert_eq!(solver.depth(), 0);
    }

    #[test]
    fn push_check_pop_roundtrip() {
        let (_, x, _, _) = setup();
        let mut solver = IncrementalSolver::new();
        solver.push(SymExpr::gt(SymExpr::var(&x), SymExpr::int(0)));
        assert_eq!(solver.check(), SatResult::Sat);
        let model = solver.model().expect("sat has a model");
        assert!(model.int_value(&x).unwrap() > 0);
        solver.push(SymExpr::lt(SymExpr::var(&x), SymExpr::int(0)));
        assert_eq!(solver.check(), SatResult::Unsat);
        solver.pop();
        assert_eq!(solver.check(), SatResult::Sat);
        solver.pop();
        assert_eq!(solver.depth(), 0);
    }

    #[test]
    fn unsat_prefix_kills_extensions() {
        let (_, x, y, _) = setup();
        let mut solver = IncrementalSolver::new();
        solver.push(SymExpr::gt(SymExpr::var(&x), SymExpr::int(5)));
        solver.push(SymExpr::lt(SymExpr::var(&x), SymExpr::int(5)));
        assert_eq!(solver.check(), SatResult::Unsat);
        // Any extension of an UNSAT prefix is UNSAT without solving.
        solver.push(SymExpr::gt(SymExpr::var(&y), SymExpr::int(0)));
        let before = solver.stats();
        assert_eq!(solver.check(), SatResult::Unsat);
        let after = solver.stats();
        assert_eq!(after.prefix_unsat_kills, before.prefix_unsat_kills + 1);
        assert_eq!(after.model_searches, before.model_searches);
        // Popping back above the conflict restores satisfiability.
        solver.pop();
        solver.pop();
        assert_eq!(solver.check(), SatResult::Sat);
    }

    #[test]
    fn trie_restored_unsat_still_kills_extensions() {
        let (_, x, y, _) = setup();
        let mut solver = IncrementalSolver::new();
        let conflict = [
            SymExpr::gt(SymExpr::var(&x), SymExpr::int(5)),
            SymExpr::lt(SymExpr::var(&x), SymExpr::int(5)),
        ];
        for lit in &conflict {
            solver.push(lit.clone());
        }
        assert_eq!(solver.check(), SatResult::Unsat);
        solver.reset();
        // Replaying the prefix restores UNSAT from the trie; an extension
        // must then die by the instant prefix kill, not re-run a pipeline.
        for lit in &conflict {
            solver.push(lit.clone());
        }
        assert_eq!(solver.check(), SatResult::Unsat);
        solver.push(SymExpr::gt(SymExpr::var(&y), SymExpr::int(0)));
        let before = solver.stats();
        assert_eq!(solver.check(), SatResult::Unsat);
        let after = solver.stats();
        assert_eq!(after.prefix_unsat_kills, before.prefix_unsat_kills + 1);
        assert_eq!(after.model_searches, before.model_searches);
        assert_eq!(after.fm_runs, before.fm_runs);
    }

    #[test]
    fn fallback_unsat_still_kills_extensions() {
        let (_, x, y, _) = setup();
        let mut solver = IncrementalSolver::new();
        // A complex (disjunctive) literal that is UNSAT together with its
        // companion: x ∈ (-∞,-5)∪(5,∞) ∧ x = 0.
        solver.push(SymExpr::or(
            SymExpr::lt(SymExpr::var(&x), SymExpr::int(-5)),
            SymExpr::gt(SymExpr::var(&x), SymExpr::int(5)),
        ));
        solver.push(SymExpr::eq(SymExpr::var(&x), SymExpr::int(0)));
        assert_eq!(solver.check(), SatResult::Unsat);
        solver.push(SymExpr::gt(SymExpr::var(&y), SymExpr::int(0)));
        let before = solver.stats();
        assert_eq!(solver.check(), SatResult::Unsat);
        let after = solver.stats();
        assert_eq!(after.prefix_unsat_kills, before.prefix_unsat_kills + 1);
        // No monolithic re-expansion for the extension.
        assert_eq!(after.fallback_checks, before.fallback_checks);
    }

    #[test]
    fn model_reuse_answers_compatible_extensions() {
        let (_, x, y, _) = setup();
        let mut solver = IncrementalSolver::new();
        solver.push(SymExpr::gt(SymExpr::var(&x), SymExpr::int(0)));
        assert_eq!(solver.check(), SatResult::Sat);
        // A constraint on a fresh variable that the default fill satisfies:
        // y <= 100 holds for y = 0.
        solver.push(SymExpr::le(SymExpr::var(&y), SymExpr::int(100)));
        let before = solver.stats();
        assert_eq!(solver.check(), SatResult::Sat);
        let after = solver.stats();
        assert_eq!(after.model_reuse_hits, before.model_reuse_hits + 1);
        assert_eq!(after.model_searches, before.model_searches);
    }

    #[test]
    fn prefix_trie_answers_repeated_prefixes() {
        let (_, x, _, _) = setup();
        let lit = SymExpr::gt(SymExpr::var(&x), SymExpr::int(0));
        let mut solver = IncrementalSolver::new();
        solver.push(lit.clone());
        assert_eq!(solver.check(), SatResult::Sat);
        solver.pop();
        // Re-pushing the same literal is a trie hit: no pipeline runs.
        solver.push(lit);
        let before = solver.stats();
        assert_eq!(solver.check(), SatResult::Sat);
        let after = solver.stats();
        assert_eq!(after.prefix_cache_hits, before.prefix_cache_hits + 1);
        assert_eq!(after.model_searches, before.model_searches);
        assert_eq!(after.incremental_checks, before.incremental_checks);
    }

    #[test]
    fn disjunctions_fall_back_to_monolithic() {
        let (_, x, _, _) = setup();
        let mut solver = IncrementalSolver::new();
        solver.push(SymExpr::or(
            SymExpr::lt(SymExpr::var(&x), SymExpr::int(-5)),
            SymExpr::gt(SymExpr::var(&x), SymExpr::int(5)),
        ));
        solver.push(SymExpr::ge(SymExpr::var(&x), SymExpr::int(0)));
        assert_eq!(solver.check(), SatResult::Sat);
        assert!(solver.stats().fallback_checks >= 1);
        assert!(solver.model().unwrap().int_value(&x).unwrap() > 5);
        // Popping the disjunction leaves the path incremental again.
        solver.pop();
        solver.pop();
        solver.push(SymExpr::ge(SymExpr::var(&x), SymExpr::int(0)));
        let before = solver.stats();
        assert_eq!(solver.check(), SatResult::Sat);
        assert_eq!(solver.stats().fallback_checks, before.fallback_checks);
    }

    #[test]
    fn integer_disequalities_fall_back() {
        let (_, x, _, _) = setup();
        let mut solver = IncrementalSolver::new();
        solver.push(SymExpr::Binary {
            op: BinOp::Ne,
            lhs: SymExpr::var(&x).into(),
            rhs: SymExpr::int(0).into(),
        });
        solver.push(SymExpr::ge(SymExpr::var(&x), SymExpr::int(0)));
        assert_eq!(solver.check(), SatResult::Sat);
        assert!(solver.stats().fallback_checks >= 1);
        assert!(solver.model().unwrap().int_value(&x).unwrap() > 0);
    }

    #[test]
    fn boolean_literals_and_conflicts() {
        let (_, _, _, b) = setup();
        let mut solver = IncrementalSolver::new();
        solver.push(SymExpr::var(&b));
        assert_eq!(solver.check(), SatResult::Sat);
        assert_eq!(solver.model().unwrap().bool_value(&b), Some(true));
        solver.push(SymExpr::not(SymExpr::var(&b)));
        assert_eq!(solver.check(), SatResult::Unsat);
        solver.pop();
        assert_eq!(solver.check(), SatResult::Sat);
    }

    #[test]
    fn equality_chains_decide_incrementally() {
        let (_, x, y, _) = setup();
        let mut solver = IncrementalSolver::new();
        solver.push(SymExpr::eq(
            SymExpr::add(SymExpr::var(&x), SymExpr::var(&y)),
            SymExpr::int(10),
        ));
        assert_eq!(solver.check(), SatResult::Sat);
        solver.push(SymExpr::eq(
            SymExpr::sub(SymExpr::var(&x), SymExpr::var(&y)),
            SymExpr::int(4),
        ));
        assert_eq!(solver.check(), SatResult::Sat);
        let model = solver.model().unwrap();
        assert_eq!(model.int_value(&x), Some(7));
        assert_eq!(model.int_value(&y), Some(3));
        // x - y = 5 on top of x - y = 4 is a contradiction FM must find.
        solver.push(SymExpr::eq(
            SymExpr::sub(SymExpr::var(&x), SymExpr::var(&y)),
            SymExpr::int(5),
        ));
        assert_eq!(solver.check(), SatResult::Unsat);
    }

    #[test]
    fn starved_budget_answers_unknown() {
        let (_, x, _, _) = setup();
        let config = SolverConfig {
            case_budget: 0,
            ..SolverConfig::default()
        };
        let mut solver = IncrementalSolver::with_config(config);
        assert_eq!(solver.check(), SatResult::Sat); // empty query stays SAT
        solver.push(SymExpr::gt(SymExpr::var(&x), SymExpr::int(0)));
        assert_eq!(solver.check(), SatResult::Unknown);
    }

    #[test]
    fn nonlinear_residuals_are_searched() {
        let (_, x, y, _) = setup();
        let mut solver = IncrementalSolver::new();
        solver.push(SymExpr::ge(SymExpr::var(&x), SymExpr::int(1)));
        solver.push(SymExpr::le(SymExpr::var(&x), SymExpr::int(6)));
        solver.push(SymExpr::ge(SymExpr::var(&y), SymExpr::int(1)));
        solver.push(SymExpr::le(SymExpr::var(&y), SymExpr::int(6)));
        assert_eq!(solver.check(), SatResult::Sat);
        solver.push(SymExpr::Binary {
            op: BinOp::Eq,
            lhs: SymExpr::Binary {
                op: BinOp::Mul,
                lhs: SymExpr::var(&x).into(),
                rhs: SymExpr::var(&y).into(),
            }
            .into(),
            rhs: SymExpr::int(6).into(),
        });
        assert_eq!(solver.check(), SatResult::Sat);
        let m = solver.model().unwrap();
        assert_eq!(m.int_value(&x).unwrap() * m.int_value(&y).unwrap(), 6);
    }

    #[test]
    fn divergent_branches_via_pop_then_push() {
        let (_, x, _, _) = setup();
        let mut solver = IncrementalSolver::new();
        let cond = SymExpr::gt(SymExpr::var(&x), SymExpr::int(0));
        solver.push(cond.clone());
        assert_eq!(solver.check(), SatResult::Sat);
        solver.pop();
        solver.push(SymExpr::not(cond));
        assert_eq!(solver.check(), SatResult::Sat);
        assert!(solver.model().unwrap().int_value(&x).unwrap() <= 0);
    }

    #[test]
    fn reset_clears_the_stack_but_keeps_the_trie() {
        let (_, x, _, _) = setup();
        let lit = SymExpr::gt(SymExpr::var(&x), SymExpr::int(0));
        let mut solver = IncrementalSolver::new();
        solver.push(lit.clone());
        solver.push(SymExpr::lt(SymExpr::var(&x), SymExpr::int(10)));
        assert_eq!(solver.check(), SatResult::Sat);
        solver.reset();
        assert_eq!(solver.depth(), 0);
        solver.push(lit);
        let before = solver.stats();
        assert_eq!(solver.check(), SatResult::Sat);
        // First-depth literal was never checked directly before… but it
        // was recorded as a trie node; only its verdict may be absent.
        let after = solver.stats();
        assert!(after.checks == before.checks + 1);
    }

    #[test]
    fn shared_trie_answers_across_solvers() {
        let (_, x, y, _) = setup();
        let shared = Arc::new(SharedTrie::new(1 << 12));
        let chain = [
            SymExpr::gt(SymExpr::var(&x), SymExpr::int(0)),
            SymExpr::lt(SymExpr::var(&y), SymExpr::var(&x)),
        ];

        let mut producer = IncrementalSolver::new();
        producer.attach_shared_trie(Arc::clone(&shared));
        for lit in &chain {
            producer.push(lit.clone());
            assert_eq!(producer.check(), SatResult::Sat);
        }
        let producer_model = producer.model().cloned().unwrap();
        assert!(shared.publishes() >= 2);

        // A second solver replaying the same chain answers every depth
        // from the shared trie — and restores the *same* model, so any
        // deeper exploration behaves identically to the producer's.
        let mut consumer = IncrementalSolver::new();
        consumer.attach_shared_trie(Arc::clone(&shared));
        for lit in &chain {
            consumer.push(lit.clone());
            assert_eq!(consumer.check(), SatResult::Sat);
        }
        let stats = consumer.stats();
        assert_eq!(stats.shared_trie_hits, 2, "{stats:?}");
        assert_eq!(stats.model_searches, 0);
        assert_eq!(stats.fm_runs, 0);
        assert_eq!(consumer.model().cloned().unwrap(), producer_model);
    }

    #[test]
    fn shared_trie_unsat_restores_the_prefix_kill() {
        let (_, x, y, _) = setup();
        let shared = Arc::new(SharedTrie::new(1 << 12));
        let conflict = [
            SymExpr::gt(SymExpr::var(&x), SymExpr::int(5)),
            SymExpr::lt(SymExpr::var(&x), SymExpr::int(5)),
        ];
        let mut producer = IncrementalSolver::new();
        producer.attach_shared_trie(Arc::clone(&shared));
        for lit in &conflict {
            producer.push(lit.clone());
        }
        assert_eq!(producer.check(), SatResult::Unsat);

        let mut consumer = IncrementalSolver::new();
        consumer.attach_shared_trie(Arc::clone(&shared));
        for lit in &conflict {
            consumer.push(lit.clone());
        }
        assert_eq!(consumer.check(), SatResult::Unsat);
        // The restored UNSAT must kill extensions exactly like a computed
        // one.
        consumer.push(SymExpr::gt(SymExpr::var(&y), SymExpr::int(0)));
        let before = consumer.stats();
        assert_eq!(consumer.check(), SatResult::Unsat);
        let after = consumer.stats();
        assert_eq!(after.prefix_unsat_kills, before.prefix_unsat_kills + 1);
    }

    #[test]
    fn detached_solver_ignores_the_shared_trie() {
        let (_, x, _, _) = setup();
        let shared = Arc::new(SharedTrie::new(1 << 12));
        let lit = SymExpr::gt(SymExpr::var(&x), SymExpr::int(0));
        let mut solver = IncrementalSolver::new();
        solver.attach_shared_trie(Arc::clone(&shared));
        solver.detach_shared_trie();
        solver.push(lit);
        assert_eq!(solver.check(), SatResult::Sat);
        assert_eq!(shared.len(), 0);
        assert_eq!(solver.stats().shared_trie_hits, 0);
    }

    #[test]
    fn snapshot_roundtrip_answers_without_solving() {
        let (_, x, y, _) = setup();
        let chain = [
            SymExpr::gt(SymExpr::var(&x), SymExpr::int(0)),
            SymExpr::lt(SymExpr::var(&y), SymExpr::var(&x)),
        ];
        let mut producer = IncrementalSolver::new();
        for lit in &chain {
            producer.push(lit.clone());
            assert_eq!(producer.check(), SatResult::Sat);
        }
        let producer_model = producer.model().cloned().unwrap();
        producer.reset();
        let snapshot = producer.export_trie();
        assert!(snapshot.validate());
        assert_eq!(snapshot.decided(), 2);

        // A *fresh* solver (fresh interner, fresh everything) warm-started
        // from the snapshot answers the same chain from its trie — and
        // restores the identical model, so deeper exploration behaves
        // exactly like the producer's.
        let mut consumer = IncrementalSolver::new();
        assert_eq!(consumer.import_trie(&snapshot), 2);
        for lit in &chain {
            consumer.push(lit.clone());
            assert_eq!(consumer.check(), SatResult::Sat);
        }
        let stats = consumer.stats();
        assert_eq!(stats.prefix_cache_hits, 2, "{stats:?}");
        assert_eq!(stats.model_searches, 0);
        assert_eq!(stats.fm_runs, 0);
        assert_eq!(consumer.model().cloned().unwrap(), producer_model);
    }

    #[test]
    fn snapshot_restores_unsat_prefix_kills() {
        let (_, x, y, _) = setup();
        let conflict = [
            SymExpr::gt(SymExpr::var(&x), SymExpr::int(5)),
            SymExpr::lt(SymExpr::var(&x), SymExpr::int(5)),
        ];
        let mut producer = IncrementalSolver::new();
        for lit in &conflict {
            producer.push(lit.clone());
        }
        assert_eq!(producer.check(), SatResult::Unsat);
        producer.reset();
        let snapshot = producer.export_trie();

        let mut consumer = IncrementalSolver::new();
        assert!(consumer.import_trie(&snapshot) >= 1);
        for lit in &conflict {
            consumer.push(lit.clone());
        }
        assert_eq!(consumer.check(), SatResult::Unsat);
        consumer.push(SymExpr::gt(SymExpr::var(&y), SymExpr::int(0)));
        let before = consumer.stats();
        assert_eq!(consumer.check(), SatResult::Unsat);
        let after = consumer.stats();
        assert_eq!(after.prefix_unsat_kills, before.prefix_unsat_kills + 1);
        assert_eq!(after.model_searches, before.model_searches);
    }

    #[test]
    fn export_prunes_undecided_subtrees() {
        let (_, x, _, _) = setup();
        let mut solver = IncrementalSolver::new();
        // Pushed but never checked: the prefix has a trie node with no
        // verdict anywhere below, so the snapshot drops it.
        solver.push(SymExpr::gt(SymExpr::var(&x), SymExpr::int(0)));
        solver.reset();
        let snapshot = solver.export_trie();
        assert!(snapshot.is_empty());
        // Decided prefixes survive.
        solver.push(SymExpr::gt(SymExpr::var(&x), SymExpr::int(0)));
        solver.check();
        solver.reset();
        let snapshot = solver.export_trie();
        assert_eq!(snapshot.entries.len(), 1);
        assert_eq!(snapshot.decided(), 1);
    }

    #[test]
    fn import_refuses_nonempty_stacks_and_invalid_snapshots() {
        let (_, x, _, _) = setup();
        let mut producer = IncrementalSolver::new();
        producer.push(SymExpr::gt(SymExpr::var(&x), SymExpr::int(0)));
        producer.check();
        producer.reset();
        let snapshot = producer.export_trie();

        let mut busy = IncrementalSolver::new();
        busy.push(SymExpr::gt(SymExpr::var(&x), SymExpr::int(1)));
        assert_eq!(busy.import_trie(&snapshot), 0);

        let mut corrupt = snapshot.clone();
        corrupt.entries[0].term = 999;
        let mut fresh = IncrementalSolver::new();
        assert_eq!(fresh.import_trie(&corrupt), 0);
    }

    #[test]
    fn import_is_idempotent_and_respects_existing_verdicts() {
        let (_, x, _, _) = setup();
        let lit = SymExpr::gt(SymExpr::var(&x), SymExpr::int(0));
        let mut producer = IncrementalSolver::new();
        producer.push(lit.clone());
        producer.check();
        producer.reset();
        let snapshot = producer.export_trie();

        let mut consumer = IncrementalSolver::new();
        assert_eq!(consumer.import_trie(&snapshot), 1);
        // A second import finds every verdict already present.
        assert_eq!(consumer.import_trie(&snapshot), 0);
        consumer.push(lit);
        assert_eq!(consumer.check(), SatResult::Sat);
    }

    #[test]
    fn stats_merge_inner_and_incremental_tiers() {
        let (_, x, _, _) = setup();
        let mut solver = IncrementalSolver::new();
        // Incremental check.
        solver.push(SymExpr::gt(SymExpr::var(&x), SymExpr::int(0)));
        assert_eq!(solver.check(), SatResult::Sat);
        // Fallback check (disjunction).
        solver.push(SymExpr::or(
            SymExpr::lt(SymExpr::var(&x), SymExpr::int(-5)),
            SymExpr::gt(SymExpr::var(&x), SymExpr::int(5)),
        ));
        assert_eq!(solver.check(), SatResult::Sat);
        let stats = solver.stats();
        assert_eq!(stats.checks, 3); // 2 incremental-tier + 1 inner
        assert_eq!(stats.incremental_checks, 1);
        assert_eq!(stats.fallback_checks, 1);
        // Each logical query tallies one verdict: the fallback check's SAT
        // is counted by the inner tier, not double-counted locally.
        assert_eq!(stats.sat, 2);
    }
}
