//! Models (satisfying assignments) and bounded model search.
//!
//! A [`Model`] maps symbolic-variable ids to concrete values. The search
//! procedure assigns variables one at a time — most-constrained first —
//! drawing candidate values from the propagated intervals, re-propagating
//! after every assignment, and verifying residual (non-linear) atoms by
//! evaluation once they become ground. Search is deterministic: the
//! "random" probes come from a fixed xorshift sequence, so identical
//! queries yield identical models (important for reproducible test
//! generation).

use std::collections::BTreeMap;

use crate::interval::{propagate, Interval, PropagationResult};
use crate::linear::{LinAtom, LinExpr};
use crate::sym::{BinOp, SymExpr, SymTy, SymVar, UnOp};

/// A concrete value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Value {
    /// An integer.
    Int(i64),
    /// A boolean.
    Bool(bool),
}

impl std::fmt::Display for Value {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Value::Int(v) => write!(f, "{v}"),
            Value::Bool(b) => write!(f, "{b}"),
        }
    }
}

/// A (possibly partial) assignment of symbolic variables to values.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Model {
    values: BTreeMap<u32, Value>,
}

impl Model {
    /// The empty model.
    pub fn new() -> Model {
        Model::default()
    }

    /// Sets the value of a variable id.
    pub fn set(&mut self, id: u32, value: Value) {
        self.values.insert(id, value);
    }

    /// The value of `var`, if assigned.
    pub fn value(&self, var: &SymVar) -> Option<Value> {
        self.values.get(&var.id()).copied()
    }

    /// The integer value of `var`, if assigned an integer.
    pub fn int_value(&self, var: &SymVar) -> Option<i64> {
        match self.value(var)? {
            Value::Int(v) => Some(v),
            Value::Bool(_) => None,
        }
    }

    /// The boolean value of `var`, if assigned a boolean.
    pub fn bool_value(&self, var: &SymVar) -> Option<bool> {
        match self.value(var)? {
            Value::Bool(b) => Some(b),
            Value::Int(_) => None,
        }
    }

    /// Iterates over `(id, value)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (u32, Value)> + '_ {
        self.values.iter().map(|(&id, &v)| (id, v))
    }

    /// Number of assigned variables.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Returns `true` if nothing is assigned.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Evaluates `expr` under this model. Returns `None` when a variable is
    /// unassigned, on arithmetic overflow, or on division by zero — callers
    /// treat `None` as "candidate rejected".
    pub fn eval(&self, expr: &SymExpr) -> Option<Value> {
        match expr {
            SymExpr::Int(v) => Some(Value::Int(*v)),
            SymExpr::Bool(b) => Some(Value::Bool(*b)),
            SymExpr::Var(v) => self.values.get(&v.id()).copied(),
            SymExpr::Unary { op, arg } => {
                let inner = self.eval(arg)?;
                match (op, inner) {
                    (UnOp::Neg, Value::Int(v)) => v.checked_neg().map(Value::Int),
                    (UnOp::Not, Value::Bool(b)) => Some(Value::Bool(!b)),
                    _ => None,
                }
            }
            SymExpr::Binary { op, lhs, rhs } => {
                // Short-circuit booleans first.
                if *op == BinOp::And || *op == BinOp::Or {
                    let Value::Bool(l) = self.eval(lhs)? else {
                        return None;
                    };
                    if *op == BinOp::And && !l {
                        return Some(Value::Bool(false));
                    }
                    if *op == BinOp::Or && l {
                        return Some(Value::Bool(true));
                    }
                    let Value::Bool(r) = self.eval(rhs)? else {
                        return None;
                    };
                    return Some(Value::Bool(r));
                }
                let l = self.eval(lhs)?;
                let r = self.eval(rhs)?;
                match (l, r) {
                    (Value::Int(a), Value::Int(b)) => match op {
                        BinOp::Add => a.checked_add(b).map(Value::Int),
                        BinOp::Sub => a.checked_sub(b).map(Value::Int),
                        BinOp::Mul => a.checked_mul(b).map(Value::Int),
                        BinOp::Div => a.checked_div(b).map(Value::Int),
                        BinOp::Rem => a.checked_rem(b).map(Value::Int),
                        BinOp::Eq => Some(Value::Bool(a == b)),
                        BinOp::Ne => Some(Value::Bool(a != b)),
                        BinOp::Lt => Some(Value::Bool(a < b)),
                        BinOp::Le => Some(Value::Bool(a <= b)),
                        BinOp::Gt => Some(Value::Bool(a > b)),
                        BinOp::Ge => Some(Value::Bool(a >= b)),
                        BinOp::And | BinOp::Or => None,
                    },
                    (Value::Bool(a), Value::Bool(b)) => match op {
                        BinOp::Eq => Some(Value::Bool(a == b)),
                        BinOp::Ne => Some(Value::Bool(a != b)),
                        _ => None,
                    },
                    _ => None,
                }
            }
        }
    }

    /// Evaluates a boolean expression to `true` under this model.
    pub fn satisfies(&self, constraint: &SymExpr) -> bool {
        self.eval(constraint) == Some(Value::Bool(true))
    }
}

/// Tuning knobs for [`search_model`].
#[derive(Debug, Clone, Copy)]
pub struct SearchConfig {
    /// Maximum assignments tried before giving up.
    pub node_budget: usize,
    /// Default bounds substituted for unbounded intervals.
    pub default_bound: i64,
    /// Values enumerated exhaustively when an interval is at most this wide.
    pub enumerate_width: u64,
    /// Seed of the deterministic probe sequence.
    pub seed: u64,
}

impl Default for SearchConfig {
    fn default() -> Self {
        SearchConfig {
            node_budget: 20_000,
            default_bound: 1_000_000,
            enumerate_width: 32,
            seed: 0x5eed_cafe_f00d_0001,
        }
    }
}

/// Deterministic xorshift64* probe generator.
struct Probe(u64);

impl Probe {
    fn next_in(&mut self, lo: i64, hi: i64) -> i64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        let span = (hi as i128 - lo as i128 + 1) as u128;
        let offset = (self.0 as u128) % span;
        (lo as i128 + offset as i128) as i64
    }
}

/// Searches for an integer/boolean model of
/// `lin_atoms ∧ residuals ∧ bool_fixed`, starting from `bounds`.
///
/// * `lin_atoms` — linear atoms (checked incrementally and by propagation);
/// * `residuals` — arbitrary boolean [`SymExpr`]s (non-linear leftovers),
///   verified once ground;
/// * `vars` — every variable that needs a value, keyed by id;
/// * `fixed` — pre-assigned values (e.g. boolean literals from the case
///   split).
///
/// Returns a model satisfying *all* inputs, or `None` if the budget is
/// exhausted (never a wrong model: everything is re-verified).
pub fn search_model(
    lin_atoms: &[LinAtom],
    residuals: &[SymExpr],
    vars: &BTreeMap<u32, SymVar>,
    bounds: &BTreeMap<u32, Interval>,
    fixed: &Model,
    config: &SearchConfig,
) -> Option<Model> {
    let mut searcher = Searcher {
        residuals,
        vars,
        config,
        probe: Probe(config.seed | 1),
        nodes: 0,
    };
    let mut model = fixed.clone();
    // Specialize the linear atoms with the fixed assignments, then tighten
    // the starting intervals (callers may pass no bounds at all).
    let atoms = specialize(lin_atoms, fixed)?;
    let bounds = match propagate(&atoms, bounds) {
        PropagationResult::Empty => return None,
        PropagationResult::Bounds(b) => b,
    };
    let result = searcher.assign(&atoms, bounds, &mut model);
    result.filter(|m| {
        lin_atoms.iter().all(|a| {
            let assignment = int_assignment(m);
            a.eval(&assignment).unwrap_or(false)
        }) && residuals.iter().all(|r| m.satisfies(r))
    })
}

fn int_assignment(model: &Model) -> BTreeMap<u32, i64> {
    model
        .iter()
        .filter_map(|(id, v)| match v {
            Value::Int(i) => Some((id, i)),
            Value::Bool(_) => None,
        })
        .collect()
}

/// Folds assigned variables into the atoms' constants; `None` if an atom
/// becomes constant-false.
fn specialize(atoms: &[LinAtom], model: &Model) -> Option<Vec<LinAtom>> {
    let mut out = Vec::new();
    for atom in atoms {
        let mut expr = atom.expr.clone();
        let mut constant: i128 = expr.constant();
        let mut ok = true;
        for (id, c) in atom.expr.terms() {
            if let Some(Value::Int(v)) = model.values.get(&id).copied() {
                expr.remove_var(id);
                match c
                    .checked_mul(v as i128)
                    .and_then(|t| constant.checked_add(t))
                {
                    Some(next) => constant = next,
                    None => {
                        ok = false;
                        break;
                    }
                }
            }
        }
        if !ok {
            return None;
        }
        let rebuilt = {
            let mut e = LinExpr::constant_expr(constant);
            for (id, c) in expr.terms() {
                let var_term = LinExpr::variable(id).checked_scale(c)?;
                e = e.checked_add(&var_term)?;
            }
            e
        };
        let specialized = LinAtom {
            expr: rebuilt,
            rel: atom.rel,
        };
        match specialized.constant_truth() {
            Some(false) => return None,
            Some(true) => {}
            None => out.push(specialized),
        }
    }
    Some(out)
}

struct Searcher<'a> {
    residuals: &'a [SymExpr],
    vars: &'a BTreeMap<u32, SymVar>,
    config: &'a SearchConfig,
    probe: Probe,
    nodes: usize,
}

impl Searcher<'_> {
    fn assign(
        &mut self,
        atoms: &[LinAtom],
        bounds: BTreeMap<u32, Interval>,
        model: &mut Model,
    ) -> Option<Model> {
        self.nodes += 1;
        if self.nodes > self.config.node_budget {
            return None;
        }
        // Next unassigned variable: most constrained (narrowest interval)
        // first; booleans count as width 1.
        let next = self
            .vars
            .values()
            .filter(|v| model.value(v).is_none())
            .min_by_key(|v| match v.ty() {
                SymTy::Bool => 1,
                SymTy::Int => bounds
                    .get(&v.id())
                    .and_then(|iv| iv.width())
                    .unwrap_or(u64::MAX),
            });
        let Some(var) = next.cloned() else {
            // Everything assigned: verify residuals.
            if self.residuals.iter().all(|r| model.satisfies(r)) {
                return Some(model.clone());
            }
            return None;
        };

        match var.ty() {
            SymTy::Bool => {
                for candidate in [true, false] {
                    model.set(var.id(), Value::Bool(candidate));
                    if let Some(found) = self.assign(atoms, bounds.clone(), model) {
                        return Some(found);
                    }
                }
                self.unset(model, var.id());
                None
            }
            SymTy::Int => {
                let iv = bounds.get(&var.id()).copied().unwrap_or_default();
                let lo = iv.lo.unwrap_or(-self.config.default_bound);
                let hi = iv.hi.unwrap_or(self.config.default_bound);
                if lo > hi {
                    return None;
                }
                for candidate in self.candidates(lo, hi) {
                    model.set(var.id(), Value::Int(candidate));
                    // Re-propagate with the candidate pinned.
                    let Some(specialized) = specialize(atoms, model) else {
                        continue;
                    };
                    let mut pinned = bounds.clone();
                    pinned.insert(var.id(), Interval::point(candidate));
                    match propagate(&specialized, &pinned) {
                        PropagationResult::Empty => continue,
                        PropagationResult::Bounds(next_bounds) => {
                            if let Some(found) = self.assign(&specialized, next_bounds, model) {
                                return Some(found);
                            }
                        }
                    }
                }
                self.unset(model, var.id());
                None
            }
        }
    }

    fn unset(&self, model: &mut Model, id: u32) {
        model.values.remove(&id);
    }

    /// Candidate values for an integer variable in `[lo, hi]`.
    fn candidates(&mut self, lo: i64, hi: i64) -> Vec<i64> {
        let width = (hi as i128 - lo as i128) as u128;
        if width <= self.config.enumerate_width as u128 {
            // Small interval: enumerate from a "nice" order — zero and the
            // boundaries first.
            let mut all: Vec<i64> = (lo..=hi).collect();
            all.sort_by_key(|&v| (v != 0, v.unsigned_abs()));
            return all;
        }
        let mut picks = vec![lo, hi, 0, 1, -1, 2, -2, lo + 1, hi - 1];
        let mid = ((lo as i128 + hi as i128) / 2) as i64;
        picks.push(mid);
        for _ in 0..6 {
            picks.push(self.probe.next_in(lo, hi));
        }
        picks.retain(|&v| lo <= v && v <= hi);
        picks.sort_by_key(|&v| (v != 0, v.unsigned_abs()));
        picks.dedup();
        // Restore preference order after dedup (dedup needs sorted input,
        // and the sort above groups by magnitude which is what we want).
        picks
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linear::atomize_cmp;
    use crate::sym::VarPool;

    fn int_vars(n: usize) -> (VarPool, Vec<SymVar>) {
        let mut pool = VarPool::new();
        let vars = (0..n)
            .map(|i| pool.fresh(format!("X{i}"), SymTy::Int))
            .collect();
        (pool, vars)
    }

    fn atom(op: BinOp, lhs: SymExpr, rhs: SymExpr) -> LinAtom {
        atomize_cmp(op, &lhs, &rhs).unwrap()
    }

    fn var_map(vars: &[SymVar]) -> BTreeMap<u32, SymVar> {
        vars.iter().map(|v| (v.id(), v.clone())).collect()
    }

    #[test]
    fn model_eval_arithmetic() {
        let (_, vars) = int_vars(2);
        let mut m = Model::new();
        m.set(vars[0].id(), Value::Int(3));
        m.set(vars[1].id(), Value::Int(4));
        let e = SymExpr::Binary {
            op: BinOp::Mul,
            lhs: SymExpr::var(&vars[0]).into(),
            rhs: SymExpr::var(&vars[1]).into(),
        };
        assert_eq!(m.eval(&e), Some(Value::Int(12)));
        assert_eq!(m.int_value(&vars[0]), Some(3));
    }

    #[test]
    fn eval_division_by_zero_is_none() {
        let (_, vars) = int_vars(1);
        let mut m = Model::new();
        m.set(vars[0].id(), Value::Int(0));
        let e = SymExpr::Binary {
            op: BinOp::Div,
            lhs: SymExpr::int(1).into(),
            rhs: SymExpr::var(&vars[0]).into(),
        };
        assert_eq!(m.eval(&e), None);
    }

    #[test]
    fn eval_short_circuits() {
        let mut pool = VarPool::new();
        let b = pool.fresh("B", SymTy::Bool);
        let unassigned = pool.fresh("U", SymTy::Bool);
        let mut m = Model::new();
        m.set(b.id(), Value::Bool(false));
        // false && U evaluates without U.
        let e = SymExpr::Binary {
            op: BinOp::And,
            lhs: SymExpr::var(&b).into(),
            rhs: SymExpr::var(&unassigned).into(),
        };
        assert_eq!(m.eval(&e), Some(Value::Bool(false)));
    }

    #[test]
    fn search_finds_range_model() {
        let (_, vars) = int_vars(1);
        let atoms = vec![
            atom(BinOp::Gt, SymExpr::var(&vars[0]), SymExpr::int(5)),
            atom(BinOp::Lt, SymExpr::var(&vars[0]), SymExpr::int(100)),
        ];
        let m = search_model(
            &atoms,
            &[],
            &var_map(&vars),
            &BTreeMap::new(),
            &Model::new(),
            &SearchConfig::default(),
        )
        .unwrap();
        let v = m.int_value(&vars[0]).unwrap();
        assert!(v > 5 && v < 100);
    }

    #[test]
    fn search_solves_coupled_equalities() {
        let (_, vars) = int_vars(3);
        // x + y = 10, y = z, z ≥ 4, x ≥ 0
        let atoms = vec![
            atom(
                BinOp::Eq,
                SymExpr::add(SymExpr::var(&vars[0]), SymExpr::var(&vars[1])),
                SymExpr::int(10),
            ),
            atom(BinOp::Eq, SymExpr::var(&vars[1]), SymExpr::var(&vars[2])),
            atom(BinOp::Ge, SymExpr::var(&vars[2]), SymExpr::int(4)),
            atom(BinOp::Ge, SymExpr::var(&vars[0]), SymExpr::int(0)),
        ];
        let m = search_model(
            &atoms,
            &[],
            &var_map(&vars),
            &BTreeMap::new(),
            &Model::new(),
            &SearchConfig::default(),
        )
        .unwrap();
        let (x, y, z) = (
            m.int_value(&vars[0]).unwrap(),
            m.int_value(&vars[1]).unwrap(),
            m.int_value(&vars[2]).unwrap(),
        );
        assert_eq!(x + y, 10);
        assert_eq!(y, z);
        assert!(z >= 4 && x >= 0);
    }

    #[test]
    fn search_verifies_nonlinear_residuals() {
        let (_, vars) = int_vars(2);
        // x * y == 12 ∧ 1 ≤ x ≤ 12 ∧ 1 ≤ y ≤ 12 (nonlinear: residual only)
        let residual = SymExpr::Binary {
            op: BinOp::Eq,
            lhs: SymExpr::Binary {
                op: BinOp::Mul,
                lhs: SymExpr::var(&vars[0]).into(),
                rhs: SymExpr::var(&vars[1]).into(),
            }
            .into(),
            rhs: SymExpr::int(12).into(),
        };
        let atoms = vec![
            atom(BinOp::Ge, SymExpr::var(&vars[0]), SymExpr::int(1)),
            atom(BinOp::Le, SymExpr::var(&vars[0]), SymExpr::int(12)),
            atom(BinOp::Ge, SymExpr::var(&vars[1]), SymExpr::int(1)),
            atom(BinOp::Le, SymExpr::var(&vars[1]), SymExpr::int(12)),
        ];
        let m = search_model(
            &atoms,
            std::slice::from_ref(&residual),
            &var_map(&vars),
            &BTreeMap::new(),
            &Model::new(),
            &SearchConfig::default(),
        )
        .unwrap();
        assert!(m.satisfies(&residual));
    }

    #[test]
    fn search_respects_fixed_assignments() {
        let mut pool = VarPool::new();
        let b = pool.fresh("B", SymTy::Bool);
        let x = pool.fresh("X", SymTy::Int);
        let mut fixed = Model::new();
        fixed.set(b.id(), Value::Bool(true));
        let atoms = vec![atom(BinOp::Eq, SymExpr::var(&x), SymExpr::int(3))];
        let mut vars = BTreeMap::new();
        vars.insert(b.id(), b.clone());
        vars.insert(x.id(), x.clone());
        let m = search_model(
            &atoms,
            &[],
            &vars,
            &BTreeMap::new(),
            &fixed,
            &SearchConfig::default(),
        )
        .unwrap();
        assert_eq!(m.bool_value(&b), Some(true));
        assert_eq!(m.int_value(&x), Some(3));
    }

    #[test]
    fn search_fails_on_unsatisfiable_ground_atoms() {
        let (_, vars) = int_vars(1);
        let atoms = vec![
            atom(BinOp::Ge, SymExpr::var(&vars[0]), SymExpr::int(5)),
            atom(BinOp::Le, SymExpr::var(&vars[0]), SymExpr::int(4)),
        ];
        assert!(search_model(
            &atoms,
            &[],
            &var_map(&vars),
            &BTreeMap::new(),
            &Model::new(),
            &SearchConfig::default(),
        )
        .is_none());
    }

    #[test]
    fn search_is_deterministic() {
        let (_, vars) = int_vars(2);
        let atoms = vec![
            atom(
                BinOp::Le,
                SymExpr::add(SymExpr::var(&vars[0]), SymExpr::var(&vars[1])),
                SymExpr::int(100),
            ),
            atom(BinOp::Ge, SymExpr::var(&vars[0]), SymExpr::int(-50)),
            atom(BinOp::Ge, SymExpr::var(&vars[1]), SymExpr::int(-50)),
        ];
        let run = || {
            search_model(
                &atoms,
                &[],
                &var_map(&vars),
                &BTreeMap::new(),
                &Model::new(),
                &SearchConfig::default(),
            )
            .unwrap()
        };
        assert_eq!(run(), run());
    }
}
