//! Symbolic expressions.
//!
//! A [`SymExpr`] is an expression over typed symbolic variables
//! ([`SymVar`]) and constants — the values the symbolic executor stores for
//! program variables, and the atoms path conditions are made of. Smart
//! constructors fold constants eagerly (`X + 0` ⇒ `X`, `3 < 5` ⇒ `true`),
//! keeping path conditions small without a separate simplification pass.
//!
//! Sub-expressions are shared via [`Arc`], so cloning an environment during
//! symbolic execution is cheap.

use std::fmt;
use std::sync::Arc;

pub use dise_ir::ast::{BinOp, UnOp};

/// The type of a symbolic variable or expression.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SymTy {
    /// 64-bit signed integer.
    Int,
    /// Boolean.
    Bool,
}

impl fmt::Display for SymTy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SymTy::Int => f.write_str("int"),
            SymTy::Bool => f.write_str("bool"),
        }
    }
}

/// A symbolic variable: a fresh unknown introduced for a program input.
///
/// Identity is the numeric `id`; the name is carried for display only (the
/// paper writes the symbolic input for parameter `x` as `X`).
#[derive(Debug, Clone)]
pub struct SymVar {
    id: u32,
    name: Arc<str>,
    ty: SymTy,
}

impl SymVar {
    /// The unique id within the owning [`VarPool`].
    pub fn id(&self) -> u32 {
        self.id
    }

    /// The display name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The variable's type.
    pub fn ty(&self) -> SymTy {
        self.ty
    }

    /// Reconstructs a variable from its raw parts. This exists for
    /// snapshot import paths that round-trip variables through
    /// serialization ([`crate::SummarySnapshot`]); the caller is
    /// responsible for keeping ids consistent within the expression space
    /// the variable participates in — two distinct variables sharing an id
    /// would compare equal.
    pub fn from_raw(id: u32, name: impl Into<Arc<str>>, ty: SymTy) -> SymVar {
        SymVar {
            id,
            name: name.into(),
            ty,
        }
    }
}

impl PartialEq for SymVar {
    fn eq(&self, other: &Self) -> bool {
        self.id == other.id
    }
}

impl Eq for SymVar {}

impl std::hash::Hash for SymVar {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.id.hash(state);
    }
}

impl fmt::Display for SymVar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name)
    }
}

/// Allocator for [`SymVar`]s with unique ids.
#[derive(Debug, Clone, Default)]
pub struct VarPool {
    vars: Vec<SymVar>,
}

impl VarPool {
    /// Creates an empty pool.
    pub fn new() -> Self {
        VarPool::default()
    }

    /// Allocates a fresh variable. Names need not be unique (ids are).
    pub fn fresh(&mut self, name: impl Into<String>, ty: SymTy) -> SymVar {
        let var = SymVar {
            id: u32::try_from(self.vars.len()).expect("too many symbolic variables"),
            name: Arc::from(name.into().as_str()),
            ty,
        };
        self.vars.push(var.clone());
        var
    }

    /// Number of variables allocated so far.
    pub fn len(&self) -> usize {
        self.vars.len()
    }

    /// Returns `true` if no variables were allocated.
    pub fn is_empty(&self) -> bool {
        self.vars.is_empty()
    }

    /// Looks a variable up by id.
    pub fn get(&self, id: u32) -> Option<&SymVar> {
        self.vars.get(id as usize)
    }

    /// Iterates over all allocated variables.
    pub fn iter(&self) -> impl Iterator<Item = &SymVar> {
        self.vars.iter()
    }
}

/// A symbolic expression.
///
/// Construct these with the associated smart constructors ([`SymExpr::add`],
/// [`SymExpr::lt`], …), which fold constants. The raw enum is exposed for
/// pattern matching in the decision procedures.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum SymExpr {
    /// Integer constant.
    Int(i64),
    /// Boolean constant.
    Bool(bool),
    /// Symbolic variable.
    Var(SymVar),
    /// Unary operation.
    Unary {
        /// The operator.
        op: UnOp,
        /// The operand.
        arg: Arc<SymExpr>,
    },
    /// Binary operation.
    Binary {
        /// The operator.
        op: BinOp,
        /// Left operand.
        lhs: Arc<SymExpr>,
        /// Right operand.
        rhs: Arc<SymExpr>,
    },
}

impl SymExpr {
    /// Integer constant.
    pub fn int(value: i64) -> SymExpr {
        SymExpr::Int(value)
    }

    /// Boolean constant.
    pub fn boolean(value: bool) -> SymExpr {
        SymExpr::Bool(value)
    }

    /// Variable reference.
    pub fn var(v: &SymVar) -> SymExpr {
        SymExpr::Var(v.clone())
    }

    /// The expression's type. Assumes well-typed construction (guaranteed
    /// when built from type-checked MJ programs).
    pub fn ty(&self) -> SymTy {
        match self {
            SymExpr::Int(_) => SymTy::Int,
            SymExpr::Bool(_) => SymTy::Bool,
            SymExpr::Var(v) => v.ty(),
            SymExpr::Unary { op, .. } => match op {
                UnOp::Neg => SymTy::Int,
                UnOp::Not => SymTy::Bool,
            },
            SymExpr::Binary { op, .. } => {
                if op.is_arithmetic() {
                    SymTy::Int
                } else {
                    SymTy::Bool
                }
            }
        }
    }

    /// Returns the constant integer value, if this is an integer literal.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            SymExpr::Int(v) => Some(*v),
            _ => None,
        }
    }

    /// Returns the constant boolean value, if this is a boolean literal.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            SymExpr::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Returns `true` if the expression contains no variables.
    pub fn is_concrete(&self) -> bool {
        match self {
            SymExpr::Int(_) | SymExpr::Bool(_) => true,
            SymExpr::Var(_) => false,
            SymExpr::Unary { arg, .. } => arg.is_concrete(),
            SymExpr::Binary { lhs, rhs, .. } => lhs.is_concrete() && rhs.is_concrete(),
        }
    }

    /// Collects the distinct variables of the expression into `out`.
    pub fn collect_vars(&self, out: &mut std::collections::BTreeMap<u32, SymVar>) {
        match self {
            SymExpr::Int(_) | SymExpr::Bool(_) => {}
            SymExpr::Var(v) => {
                out.insert(v.id(), v.clone());
            }
            SymExpr::Unary { arg, .. } => arg.collect_vars(out),
            SymExpr::Binary { lhs, rhs, .. } => {
                lhs.collect_vars(out);
                rhs.collect_vars(out);
            }
        }
    }

    /// Generic binary smart constructor with constant folding.
    pub fn binary(op: BinOp, lhs: SymExpr, rhs: SymExpr) -> SymExpr {
        // Fold constant operands.
        match (&lhs, &rhs) {
            (SymExpr::Int(a), SymExpr::Int(b)) => {
                if let Some(folded) = fold_int(op, *a, *b) {
                    return folded;
                }
            }
            (SymExpr::Bool(a), SymExpr::Bool(b)) => {
                if let Some(folded) = fold_bool(op, *a, *b) {
                    return folded;
                }
            }
            _ => {}
        }
        // Algebraic identities.
        match (op, &lhs, &rhs) {
            (BinOp::Add, e, SymExpr::Int(0)) | (BinOp::Sub, e, SymExpr::Int(0)) => {
                return e.clone()
            }
            (BinOp::Add, SymExpr::Int(0), e) => return e.clone(),
            (BinOp::Mul, e, SymExpr::Int(1)) | (BinOp::Mul, SymExpr::Int(1), e) => {
                return e.clone()
            }
            (BinOp::Mul, _, SymExpr::Int(0)) | (BinOp::Mul, SymExpr::Int(0), _) => {
                return SymExpr::Int(0)
            }
            (BinOp::And, e, SymExpr::Bool(true)) | (BinOp::And, SymExpr::Bool(true), e) => {
                return e.clone()
            }
            (BinOp::And, _, SymExpr::Bool(false)) | (BinOp::And, SymExpr::Bool(false), _) => {
                return SymExpr::Bool(false)
            }
            (BinOp::Or, e, SymExpr::Bool(false)) | (BinOp::Or, SymExpr::Bool(false), e) => {
                return e.clone()
            }
            (BinOp::Or, _, SymExpr::Bool(true)) | (BinOp::Or, SymExpr::Bool(true), _) => {
                return SymExpr::Bool(true)
            }
            _ => {}
        }
        // Syntactically identical operands.
        if lhs == rhs {
            match op {
                BinOp::Eq | BinOp::Le | BinOp::Ge => return SymExpr::Bool(true),
                BinOp::Ne | BinOp::Lt | BinOp::Gt => return SymExpr::Bool(false),
                BinOp::Sub => return SymExpr::Int(0),
                BinOp::And | BinOp::Or => return lhs,
                _ => {}
            }
        }
        SymExpr::Binary {
            op,
            lhs: Arc::new(lhs),
            rhs: Arc::new(rhs),
        }
    }

    /// Generic unary smart constructor with constant folding.
    pub fn unary(op: UnOp, arg: SymExpr) -> SymExpr {
        match (op, &arg) {
            (UnOp::Neg, SymExpr::Int(v)) => {
                if let Some(neg) = v.checked_neg() {
                    return SymExpr::Int(neg);
                }
            }
            (UnOp::Not, SymExpr::Bool(b)) => return SymExpr::Bool(!b),
            // Double negation.
            (
                UnOp::Neg,
                SymExpr::Unary {
                    op: UnOp::Neg,
                    arg: inner,
                },
            )
            | (
                UnOp::Not,
                SymExpr::Unary {
                    op: UnOp::Not,
                    arg: inner,
                },
            ) => return (**inner).clone(),
            // `!(a ⋈ b)` ⇒ flipped comparison, keeping conditions in atom
            // form for the decision procedures.
            (UnOp::Not, SymExpr::Binary { op, lhs, rhs }) => {
                if let Some(flipped) = negate_cmp(*op) {
                    return SymExpr::Binary {
                        op: flipped,
                        lhs: lhs.clone(),
                        rhs: rhs.clone(),
                    };
                }
            }
            _ => {}
        }
        SymExpr::Unary {
            op,
            arg: Arc::new(arg),
        }
    }

    /// Builds `!expr`.
    // Associated function (no receiver) — `std::ops::Not` is not an
    // alternative spelling.
    #[allow(clippy::should_implement_trait)]
    pub fn not(expr: SymExpr) -> SymExpr {
        SymExpr::unary(UnOp::Not, expr)
    }

    /// Builds `-expr`.
    // Associated function (no receiver) — `std::ops::Neg` is not an
    // alternative spelling.
    #[allow(clippy::should_implement_trait)]
    pub fn neg(expr: SymExpr) -> SymExpr {
        SymExpr::unary(UnOp::Neg, expr)
    }
}

macro_rules! binop_ctors {
    ($(#[$doc:meta] $name:ident => $op:ident),* $(,)?) => {
        // These are associated *functions* (no receiver), so the std ops
        // traits (which take `self`) are not an alternative spelling.
        #[allow(clippy::should_implement_trait)]
        impl SymExpr {
            $(
                #[$doc]
                pub fn $name(lhs: SymExpr, rhs: SymExpr) -> SymExpr {
                    SymExpr::binary(BinOp::$op, lhs, rhs)
                }
            )*
        }
    };
}

binop_ctors! {
    /// Builds `lhs + rhs` with folding.
    add => Add,
    /// Builds `lhs - rhs` with folding.
    sub => Sub,
    /// Builds `lhs * rhs` with folding.
    mul => Mul,
    /// Builds `lhs / rhs` (truncating) with folding.
    div => Div,
    /// Builds `lhs % rhs` with folding.
    rem => Rem,
    /// Builds `lhs == rhs` with folding.
    eq => Eq,
    /// Builds `lhs != rhs` with folding.
    ne => Ne,
    /// Builds `lhs < rhs` with folding.
    lt => Lt,
    /// Builds `lhs <= rhs` with folding.
    le => Le,
    /// Builds `lhs > rhs` with folding.
    gt => Gt,
    /// Builds `lhs >= rhs` with folding.
    ge => Ge,
    /// Builds `lhs && rhs` with folding.
    and => And,
    /// Builds `lhs || rhs` with folding.
    or => Or,
}

fn fold_int(op: BinOp, a: i64, b: i64) -> Option<SymExpr> {
    Some(match op {
        BinOp::Add => SymExpr::Int(a.checked_add(b)?),
        BinOp::Sub => SymExpr::Int(a.checked_sub(b)?),
        BinOp::Mul => SymExpr::Int(a.checked_mul(b)?),
        BinOp::Div => SymExpr::Int(a.checked_div(b)?),
        BinOp::Rem => SymExpr::Int(a.checked_rem(b)?),
        BinOp::Eq => SymExpr::Bool(a == b),
        BinOp::Ne => SymExpr::Bool(a != b),
        BinOp::Lt => SymExpr::Bool(a < b),
        BinOp::Le => SymExpr::Bool(a <= b),
        BinOp::Gt => SymExpr::Bool(a > b),
        BinOp::Ge => SymExpr::Bool(a >= b),
        BinOp::And | BinOp::Or => return None,
    })
}

fn fold_bool(op: BinOp, a: bool, b: bool) -> Option<SymExpr> {
    Some(match op {
        BinOp::And => SymExpr::Bool(a && b),
        BinOp::Or => SymExpr::Bool(a || b),
        BinOp::Eq => SymExpr::Bool(a == b),
        BinOp::Ne => SymExpr::Bool(a != b),
        _ => return None,
    })
}

/// Returns the comparison operator equivalent to `!(a op b)`, if any.
pub(crate) fn negate_cmp(op: BinOp) -> Option<BinOp> {
    Some(match op {
        BinOp::Eq => BinOp::Ne,
        BinOp::Ne => BinOp::Eq,
        BinOp::Lt => BinOp::Ge,
        BinOp::Le => BinOp::Gt,
        BinOp::Gt => BinOp::Le,
        BinOp::Ge => BinOp::Lt,
        _ => return None,
    })
}

impl fmt::Display for SymExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write_prec(self, 0, f)
    }
}

fn prec_of(op: BinOp) -> u8 {
    match op {
        BinOp::Or => 1,
        BinOp::And => 2,
        BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => 3,
        BinOp::Add | BinOp::Sub => 4,
        BinOp::Mul | BinOp::Div | BinOp::Rem => 5,
    }
}

fn write_prec(expr: &SymExpr, min: u8, f: &mut fmt::Formatter<'_>) -> fmt::Result {
    match expr {
        SymExpr::Int(v) => write!(f, "{v}"),
        SymExpr::Bool(b) => write!(f, "{b}"),
        SymExpr::Var(v) => write!(f, "{v}"),
        SymExpr::Unary { op, arg } => {
            match op {
                UnOp::Neg => write!(f, "-")?,
                UnOp::Not => write!(f, "!")?,
            }
            write_prec(arg, 6, f)
        }
        SymExpr::Binary { op, lhs, rhs } => {
            let p = prec_of(*op);
            if p < min {
                write!(f, "(")?;
            }
            let (lmin, rmin) = if op.is_equality() || op.is_ordering() {
                (p + 1, p + 1)
            } else {
                (p, p + 1)
            };
            write_prec(lhs, lmin, f)?;
            write!(f, " {op} ")?;
            write_prec(rhs, rmin, f)?;
            if p < min {
                write!(f, ")")?;
            }
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool2() -> (VarPool, SymVar, SymVar) {
        let mut pool = VarPool::new();
        let x = pool.fresh("X", SymTy::Int);
        let y = pool.fresh("Y", SymTy::Int);
        (pool, x, y)
    }

    #[test]
    fn constants_fold() {
        assert_eq!(
            SymExpr::add(SymExpr::int(2), SymExpr::int(3)),
            SymExpr::Int(5)
        );
        assert_eq!(
            SymExpr::lt(SymExpr::int(2), SymExpr::int(3)),
            SymExpr::Bool(true)
        );
        assert_eq!(
            SymExpr::div(SymExpr::int(1), SymExpr::int(4)),
            SymExpr::Int(0) // truncating, like Java
        );
        assert_eq!(
            SymExpr::rem(SymExpr::int(7), SymExpr::int(3)),
            SymExpr::Int(1)
        );
    }

    #[test]
    fn division_by_zero_is_not_folded() {
        let e = SymExpr::div(SymExpr::int(1), SymExpr::int(0));
        assert!(matches!(e, SymExpr::Binary { .. }));
    }

    #[test]
    fn overflow_is_not_folded() {
        let e = SymExpr::add(SymExpr::int(i64::MAX), SymExpr::int(1));
        assert!(matches!(e, SymExpr::Binary { .. }));
    }

    #[test]
    fn identities_simplify() {
        let (_, x, _) = pool2();
        let xv = SymExpr::var(&x);
        assert_eq!(SymExpr::add(xv.clone(), SymExpr::int(0)), xv);
        assert_eq!(SymExpr::mul(xv.clone(), SymExpr::int(1)), xv);
        assert_eq!(SymExpr::mul(xv.clone(), SymExpr::int(0)), SymExpr::Int(0));
        assert_eq!(
            SymExpr::and(
                SymExpr::boolean(true),
                SymExpr::gt(xv.clone(), SymExpr::int(0))
            ),
            SymExpr::gt(xv.clone(), SymExpr::int(0))
        );
        assert_eq!(
            SymExpr::or(
                SymExpr::boolean(true),
                SymExpr::gt(xv.clone(), SymExpr::int(0))
            ),
            SymExpr::Bool(true)
        );
    }

    #[test]
    fn identical_operands_simplify() {
        let (_, x, _) = pool2();
        let xv = SymExpr::var(&x);
        assert_eq!(SymExpr::eq(xv.clone(), xv.clone()), SymExpr::Bool(true));
        assert_eq!(SymExpr::ne(xv.clone(), xv.clone()), SymExpr::Bool(false));
        assert_eq!(SymExpr::lt(xv.clone(), xv.clone()), SymExpr::Bool(false));
        assert_eq!(SymExpr::sub(xv.clone(), xv.clone()), SymExpr::Int(0));
    }

    #[test]
    fn negated_comparison_flips() {
        let (_, x, _) = pool2();
        let cond = SymExpr::gt(SymExpr::var(&x), SymExpr::int(0));
        let negated = SymExpr::not(cond);
        assert_eq!(negated, SymExpr::le(SymExpr::var(&x), SymExpr::int(0)));
    }

    #[test]
    fn double_negation_cancels() {
        let (_, x, _) = pool2();
        let e = SymExpr::neg(SymExpr::neg(SymExpr::var(&x)));
        assert_eq!(e, SymExpr::var(&x));
    }

    #[test]
    fn var_identity_is_by_id() {
        let mut pool = VarPool::new();
        let a = pool.fresh("X", SymTy::Int);
        let b = pool.fresh("X", SymTy::Int);
        assert_ne!(a, b);
        assert_eq!(a, a.clone());
        assert_eq!(pool.len(), 2);
        assert_eq!(pool.get(0).unwrap().name(), "X");
    }

    #[test]
    fn display_matches_paper_style() {
        let (_, x, y) = pool2();
        let e = SymExpr::add(SymExpr::var(&y), SymExpr::var(&x));
        assert_eq!(e.to_string(), "Y + X");
        let c = SymExpr::gt(SymExpr::var(&x), SymExpr::int(0));
        assert_eq!(c.to_string(), "X > 0");
        let n = SymExpr::Unary {
            op: UnOp::Not,
            arg: Arc::new(c),
        };
        assert_eq!(n.to_string(), "!(X > 0)");
    }

    #[test]
    fn collect_vars_dedups() {
        let (_, x, y) = pool2();
        let e = SymExpr::add(
            SymExpr::var(&x),
            SymExpr::mul(SymExpr::var(&y), SymExpr::var(&x)),
        );
        let mut vars = std::collections::BTreeMap::new();
        e.collect_vars(&mut vars);
        assert_eq!(vars.len(), 2);
    }

    #[test]
    fn ty_of_expressions() {
        let (_, x, _) = pool2();
        assert_eq!(SymExpr::var(&x).ty(), SymTy::Int);
        assert_eq!(
            SymExpr::lt(SymExpr::var(&x), SymExpr::int(3)).ty(),
            SymTy::Bool
        );
        assert_eq!(SymExpr::neg(SymExpr::var(&x)).ty(), SymTy::Int);
    }

    #[test]
    fn is_concrete() {
        let (_, x, _) = pool2();
        assert!(SymExpr::int(4).is_concrete());
        assert!(!SymExpr::var(&x).is_concrete());
        assert!(!SymExpr::add(SymExpr::int(1), SymExpr::var(&x)).is_concrete());
    }
}
