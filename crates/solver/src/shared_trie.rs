//! A concurrent prefix-trie verdict cache shared between solvers.
//!
//! The parallel frontier engine runs one [`crate::IncrementalSolver`] per
//! worker; each worker explores a different segment of the DFS tree, but
//! the segments share long literal prefixes (everything above the fork
//! point) and stolen tasks re-check prefixes their victim already decided.
//! [`SharedTrie`] lets every worker publish and consume those verdicts:
//! it maps a *path* of pushed literals to the verdict, verified model, and
//! interval fixed point computed at that depth.
//!
//! Per-worker [`crate::intern::TermId`]s are private to each worker's
//! interner, so the shared trie cannot key on them. Instead an edge is
//! keyed by `(parent node id, literal)` where the literal is the
//! structural [`SymExpr`] itself (hash-consed `Arc` subtrees make the
//! clone cheap and `Eq`/`Hash` are structural with id-based variable
//! identity). Node ids are allocated from an atomic counter; the root
//! (empty path) is [`SharedTrie::ROOT`].
//!
//! The map is **sharded**: each `(parent, literal)` pair hashes to one of
//! `SHARDS` (64) independently locked hash maps, so concurrent workers on
//! different prefixes rarely contend.
//!
//! # Determinism contract
//!
//! Callers must only publish verdicts computed by a *root-contiguous*
//! chain of checks — i.e. the frame state (model, bounds) at every
//! ancestor depth was itself produced by checking that ancestor's path.
//! The incremental pipeline is deterministic given that chain, so any two
//! workers publishing the same path publish identical verdicts, models,
//! and bounds, and a reader restoring an entry observes exactly the state
//! it would have computed itself. This is what lets the parallel frontier
//! guarantee byte-identical summaries to a serial run.

use std::collections::{BTreeMap, HashMap};
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;

use crate::interval::Interval;
use crate::model::Model;
use crate::solve::SatResult;
use crate::sym::SymExpr;

/// Interval fixed point at a depth (the incremental solver seeds a child
/// frame's propagation with its parent's).
pub type Bounds = BTreeMap<u32, Interval>;

/// Number of independently locked shards. A power of two so the shard
/// index is a mask of the hash.
const SHARDS: usize = 64;

/// A decided entry restored from the trie.
#[derive(Debug, Clone)]
pub struct SharedVerdict {
    /// The memoized verdict.
    pub verdict: SatResult,
    /// The verified model (present when the verdict is SAT).
    pub model: Option<Model>,
    /// The interval fixed point computed at this depth, if any.
    pub bounds: Option<Bounds>,
}

#[derive(Debug)]
struct Entry {
    /// This edge's own node id (the parent id for one-deeper lookups).
    id: u64,
    /// The decision, once published.
    decided: Option<SharedVerdict>,
}

/// Lock-sharded concurrent prefix trie. See the [module docs](self).
#[derive(Debug)]
pub struct SharedTrie {
    shards: Vec<Mutex<HashMap<(u64, SymExpr), Entry>>>,
    next_id: AtomicU64,
    len: AtomicUsize,
    capacity: usize,
    hits: AtomicU64,
    publishes: AtomicU64,
    /// Hits recorded after [`SharedTrie::begin_consume_phase`] — answers
    /// served to the authoritative consumer rather than between producers.
    consumed: AtomicU64,
    consume_phase: AtomicBool,
}

impl SharedTrie {
    /// The node id of the empty path.
    pub const ROOT: u64 = 0;

    /// Creates a trie bounded to `capacity` edges; beyond it, new prefixes
    /// are no longer memoized (lookups and publishes on existing edges
    /// keep working).
    pub fn new(capacity: usize) -> SharedTrie {
        SharedTrie {
            shards: (0..SHARDS).map(|_| Mutex::new(HashMap::new())).collect(),
            next_id: AtomicU64::new(Self::ROOT + 1),
            len: AtomicUsize::new(0),
            capacity,
            hits: AtomicU64::new(0),
            publishes: AtomicU64::new(0),
            consumed: AtomicU64::new(0),
            consume_phase: AtomicBool::new(false),
        }
    }

    fn shard(&self, parent: u64, lit: &SymExpr) -> &Mutex<HashMap<(u64, SymExpr), Entry>> {
        let mut hasher = std::collections::hash_map::DefaultHasher::new();
        parent.hash(&mut hasher);
        lit.hash(&mut hasher);
        &self.shards[(hasher.finish() as usize) & (SHARDS - 1)]
    }

    /// The node id for `parent` extended by `lit`, creating the edge if
    /// capacity allows. `None` once the trie is full and the edge is new.
    pub fn child(&self, parent: u64, lit: &SymExpr) -> Option<u64> {
        let shard = self.shard(parent, lit);
        let mut map = shard.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(entry) = map.get(&(parent, lit.clone())) {
            return Some(entry.id);
        }
        if self.len.load(Ordering::Relaxed) >= self.capacity {
            return None;
        }
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        map.insert((parent, lit.clone()), Entry { id, decided: None });
        self.len.fetch_add(1, Ordering::Relaxed);
        Some(id)
    }

    /// The published decision on the edge `parent --lit-->`, if any.
    pub fn verdict(&self, parent: u64, lit: &SymExpr) -> Option<SharedVerdict> {
        let shard = self.shard(parent, lit);
        let map = shard.lock().unwrap_or_else(|e| e.into_inner());
        let decided = map.get(&(parent, lit.clone()))?.decided.clone()?;
        self.hits.fetch_add(1, Ordering::Relaxed);
        if self.consume_phase.load(Ordering::Relaxed) {
            self.consumed.fetch_add(1, Ordering::Relaxed);
        }
        Some(decided)
    }

    /// Publishes a decision on the edge `parent --lit-->`. Concurrent
    /// publishers of the same root-contiguous path write identical data
    /// (see the module docs), so last-write-wins is benign. No-op when the
    /// edge was never created (capacity).
    pub fn publish(
        &self,
        parent: u64,
        lit: &SymExpr,
        verdict: SatResult,
        model: Option<Model>,
        bounds: Option<Bounds>,
    ) {
        let shard = self.shard(parent, lit);
        let mut map = shard.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(entry) = map.get_mut(&(parent, lit.clone())) {
            entry.decided = Some(SharedVerdict {
                verdict,
                model,
                bounds,
            });
            self.publishes.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Number of edges currently stored.
    pub fn len(&self) -> usize {
        self.len.load(Ordering::Relaxed)
    }

    /// Returns `true` when no edge was stored yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lookups answered with a published decision.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Decisions published so far (republished edges count again).
    pub fn publishes(&self) -> u64 {
        self.publishes.load(Ordering::Relaxed)
    }

    /// Starts the consume phase: hits from now on also count as
    /// *consumed* answers. The parallel frontier's speculative mode calls
    /// this between the sweep (producers filling the trie) and the
    /// authoritative serial replay (the consumer), so
    /// [`SharedTrie::consumed`] reports how much of the speculative work
    /// the real run actually used — the budget controller's hit-rate
    /// feedback is measured, not guessed.
    pub fn begin_consume_phase(&self) {
        self.consume_phase.store(true, Ordering::Relaxed);
    }

    /// Hits recorded during the consume phase (answers the authoritative
    /// pass took from the trie). Zero until
    /// [`SharedTrie::begin_consume_phase`] is called.
    pub fn consumed(&self) -> u64 {
        self.consumed.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sym::{SymTy, VarPool};
    use std::sync::Arc;

    fn lits(n: usize) -> Vec<SymExpr> {
        let mut pool = VarPool::new();
        let x = pool.fresh("X", SymTy::Int);
        (0..n)
            .map(|i| SymExpr::gt(SymExpr::var(&x), SymExpr::int(i as i64)))
            .collect()
    }

    #[test]
    fn child_ids_are_stable() {
        let trie = SharedTrie::new(1024);
        let ls = lits(2);
        let a = trie.child(SharedTrie::ROOT, &ls[0]).unwrap();
        let b = trie.child(SharedTrie::ROOT, &ls[0]).unwrap();
        assert_eq!(a, b);
        let c = trie.child(a, &ls[1]).unwrap();
        assert_ne!(a, c);
        assert_eq!(trie.len(), 2);
    }

    #[test]
    fn publish_then_lookup_roundtrips() {
        let trie = SharedTrie::new(1024);
        let ls = lits(1);
        trie.child(SharedTrie::ROOT, &ls[0]).unwrap();
        assert!(trie.verdict(SharedTrie::ROOT, &ls[0]).is_none());
        trie.publish(SharedTrie::ROOT, &ls[0], SatResult::Unsat, None, None);
        let hit = trie.verdict(SharedTrie::ROOT, &ls[0]).unwrap();
        assert_eq!(hit.verdict, SatResult::Unsat);
        assert_eq!(trie.hits(), 1);
        assert_eq!(trie.publishes(), 1);
    }

    #[test]
    fn capacity_stops_growth_but_not_existing_edges() {
        let trie = SharedTrie::new(1);
        let ls = lits(2);
        let a = trie.child(SharedTrie::ROOT, &ls[0]).unwrap();
        assert_eq!(trie.child(SharedTrie::ROOT, &ls[1]), None);
        // The existing edge still resolves and accepts publishes.
        assert_eq!(trie.child(SharedTrie::ROOT, &ls[0]), Some(a));
        trie.publish(SharedTrie::ROOT, &ls[0], SatResult::Sat, None, None);
        assert!(trie.verdict(SharedTrie::ROOT, &ls[0]).is_some());
        // Publishing on the never-created edge is a no-op.
        trie.publish(SharedTrie::ROOT, &ls[1], SatResult::Sat, None, None);
        assert!(trie.verdict(SharedTrie::ROOT, &ls[1]).is_none());
    }

    #[test]
    fn consume_phase_splits_producer_and_consumer_hits() {
        let trie = SharedTrie::new(1024);
        let ls = lits(1);
        trie.child(SharedTrie::ROOT, &ls[0]).unwrap();
        trie.publish(SharedTrie::ROOT, &ls[0], SatResult::Sat, None, None);
        // Producer-side hit: counted as a hit, not as consumption.
        assert!(trie.verdict(SharedTrie::ROOT, &ls[0]).is_some());
        assert_eq!(trie.hits(), 1);
        assert_eq!(trie.consumed(), 0);
        // Consumer-side hit: counted as both.
        trie.begin_consume_phase();
        assert!(trie.verdict(SharedTrie::ROOT, &ls[0]).is_some());
        assert_eq!(trie.hits(), 2);
        assert_eq!(trie.consumed(), 1);
    }

    #[test]
    fn concurrent_same_path_interning_agrees() {
        // Hammer the same chain from several threads: every thread must
        // observe the same node id per depth.
        let trie = Arc::new(SharedTrie::new(1 << 12));
        let ls = Arc::new(lits(16));
        let ids: Vec<Vec<u64>> = std::thread::scope(|scope| {
            (0..4)
                .map(|_| {
                    let trie = Arc::clone(&trie);
                    let ls = Arc::clone(&ls);
                    scope.spawn(move || {
                        let mut parent = SharedTrie::ROOT;
                        let mut path = Vec::new();
                        for lit in ls.iter() {
                            parent = trie.child(parent, lit).unwrap();
                            path.push(parent);
                        }
                        path
                    })
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().unwrap())
                .collect()
        });
        for other in &ids[1..] {
            assert_eq!(&ids[0], other);
        }
        assert_eq!(trie.len(), 16);
    }
}
