//! Store error taxonomy.
//!
//! Every variant except [`StoreError::Io`] describes a *rejected file*:
//! the caller falls back to a cold run (and typically rewrites the entry
//! after it), so a damaged store can degrade performance but never
//! results.

use std::fmt;

/// Why a store operation failed. `load` failures are recoverable by
/// design — the driver treats any of them as "no warm state".
#[derive(Debug)]
pub enum StoreError {
    /// Filesystem-level failure (permissions, disk full, …).
    Io(std::io::Error),
    /// The file does not start with the `DISESTOR` magic.
    BadMagic,
    /// The file's format version is not one this build reads.
    UnsupportedVersion(u32),
    /// The file ends before its declared payload does.
    Truncated,
    /// The payload bytes do not match the header's checksum.
    ChecksumMismatch,
    /// The payload decoded but violates a structural invariant.
    Corrupt(&'static str),
    /// Another live process holds the store's advisory writer lock.
    /// Saves fail with this; the caller degrades to a read-only run
    /// (warm start intact, nothing recorded) with a warning.
    Locked(u32),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "i/o error: {e}"),
            StoreError::BadMagic => f.write_str("not a dise store file (bad magic)"),
            StoreError::UnsupportedVersion(v) => {
                write!(f, "unsupported store format version {v}")
            }
            StoreError::Truncated => f.write_str("truncated store file"),
            StoreError::ChecksumMismatch => f.write_str("store checksum mismatch"),
            StoreError::Corrupt(what) => write!(f, "corrupt store entry ({what})"),
            StoreError::Locked(pid) => {
                write!(f, "store locked by process {pid}; ran read-only")
            }
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError::Io(e)
    }
}
