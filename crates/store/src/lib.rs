//! # dise-store — the persistent cross-version analysis store
//!
//! DiSE's promise is that analyzing program version *N* costs only what
//! changed since *N−1* — but every piece of incrementality built so far
//! (the hash-consed interner, the prefix-trie verdict cache, the measured
//! sweep-consumption ratio) lived in process memory and died with the
//! run. This crate persists that warm state on disk, one file per
//! analyzed procedure, so a later `dise run` — same version re-analyzed,
//! or the *next* version of the program — starts with every previously
//! decided path-condition prefix already memoized.
//!
//! A store directory holds one [`ProcEntry`] per procedure:
//!
//! * the solver's [`TrieSnapshot`] — interner terms plus per-prefix
//!   verdict/model/bounds, keyed by canonical term indices so they
//!   survive re-interning in another process (see
//!   [`dise_solver::snapshot`]);
//! * the content fingerprints of the analyzed `(base, modified)` program
//!   pair plus the raw affected node sets, so a re-run of the *same* pair
//!   can skip the affected-location fixpoint entirely;
//! * the measured sweep-consumption ratio, so one-shot runs get the
//!   feedback-scaled `Auto` sweep budget previously reserved for reused
//!   executors;
//! * bookkeeping (run count, path-condition count, summary digest) for
//!   `dise store stat`.
//!
//! ## Integrity and determinism contract
//!
//! Files are framed with a magic, format version, payload length, and an
//! FNV-1a checksum ([`format`](mod@format)); loads verify all four
//! before decoding,
//! and decoded snapshots are structurally validated again at import time.
//! Any failure is reported as a typed [`StoreError`] and treated by
//! callers as "no warm state": a damaged store degrades speed, never
//! results. Warm-started runs are byte-identical to cold runs because
//! every restored verdict is a deterministic function of its literal
//! path (the [`dise_solver::SharedTrie`] argument), gated on the solver
//! configuration via [`dise_solver::SolverConfig::cache_key`].

pub mod error;
pub mod format;

use std::path::{Path, PathBuf};

use dise_solver::model::{Model, Value};
use dise_solver::snapshot::{SummaryPathSnapshot, SummarySnapshot, TrieEntry, TrieSnapshot};
use dise_solver::sym::{BinOp, SymExpr, SymTy, SymVar, UnOp};
use dise_solver::{Bounds, Interval, SatResult, TermId};

pub use error::StoreError;
pub use format::FORMAT_VERSION;

use dise_solver::intern::Term;
use format::{Reader, Writer};

/// The persisted affected-location result for one `(base, modified)`
/// fingerprint pair: raw CFG node indices, reconstructed into
/// `AffectedSets` by `dise-core` when the fingerprints still match.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct StoredAffected {
    /// Opaque tag of the data-flow precision mode the sets were computed
    /// under (`dise-core`'s `DataflowPrecision`); reuse requires an exact
    /// match — the `--reaching-defs` ablation produces strictly smaller
    /// sets than the paper's `CfgPath` premise.
    pub precision: u8,
    /// Changed CFG nodes of the diff (Table 2's "Changed" column).
    pub changed_nodes: u64,
    /// Affected conditional nodes (`ACN`), as CFG node indices.
    pub acn: Vec<u32>,
    /// Affected write nodes (`AWN`), as CFG node indices.
    pub awn: Vec<u32>,
}

/// Everything the store knows about one analyzed procedure.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ProcEntry {
    /// The analyzed procedure's name (also the file key).
    pub proc_name: String,
    /// [`dise_solver::SolverConfig::cache_key`] of the producing run;
    /// trie reuse requires an exact match (budgets flip `Unknown`s).
    pub solver_key: u64,
    /// Content fingerprint of the base program version.
    pub base_fingerprint: u64,
    /// Content fingerprint of the modified program version.
    pub mod_fingerprint: u64,
    /// Completed runs recorded into this entry.
    pub runs: u64,
    /// Path conditions of the last recorded run.
    pub pc_count: u64,
    /// Digest of the last run's summary (CI byte-identity checks).
    pub summary_digest: u64,
    /// Measured trie-consumption ratio of the last speculative sweep.
    pub sweep_feedback: Option<f64>,
    /// The heuristic weight vector the last run scored speculative
    /// branch arms with, as `(distance, uncovered, cone, trie)` — the
    /// field order of `dise-symexec`'s `HeuristicWeights`, kept as a
    /// plain array so the store stays solver-layer only. Warm runs
    /// whose config leaves the heuristic unset inherit these weights.
    pub heuristic: Option<[f64; 4]>,
    /// Affected sets of the `(base, modified)` fingerprint pair.
    pub affected: Option<StoredAffected>,
    /// The solver's warm state.
    pub trie: TrieSnapshot,
    /// Procedure summaries built while analyzing this procedure, one per
    /// summarized callee, each keyed by the callee's flattened-body
    /// fingerprint (`SummarySnapshot::fingerprint`). A loaded summary is
    /// reused only when that fingerprint — and the summary's
    /// `solver_key` — still match the current run.
    pub summaries: Vec<SummarySnapshot>,
}

impl ProcEntry {
    /// The kinds of warm state this entry carries, as a `+`-joined list
    /// (`trie`, `summary`, `feedback`, `heuristic`, `affected`), or
    /// `empty`. Printed by `dise store stat`.
    pub fn kinds(&self) -> String {
        let mut kinds = Vec::new();
        if !self.trie.entries.is_empty() {
            kinds.push("trie");
        }
        if !self.summaries.is_empty() {
            kinds.push("summary");
        }
        if self.sweep_feedback.is_some() {
            kinds.push("feedback");
        }
        if self.heuristic.is_some() {
            kinds.push("heuristic");
        }
        if self.affected.is_some() {
            kinds.push("affected");
        }
        if kinds.is_empty() {
            "empty".to_string()
        } else {
            kinds.join("+")
        }
    }
}

/// File name of the advisory writer lock inside a store directory.
const LOCK_FILE: &str = "store.lock";

/// How many times [`Store::save`] retries a contended advisory lock
/// before degrading, and how long it sleeps between attempts. The
/// window (~400 ms) comfortably covers another process's save — saves
/// are one buffered write plus a rename — without stalling a
/// degraded run noticeably.
const LOCK_ATTEMPTS: u32 = 50;
const LOCK_RETRY: std::time::Duration = std::time::Duration::from_millis(8);

/// A held advisory writer lock on a store directory; dropping it
/// releases the lock (removes the lock file).
#[derive(Debug)]
pub struct StoreLock {
    path: PathBuf,
}

impl Drop for StoreLock {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.path);
    }
}

/// Whether the process named in a lock file is still alive. On Linux
/// `/proc/<pid>` is authoritative; elsewhere a lock older than five
/// minutes is presumed abandoned (saves hold it for milliseconds).
fn lock_is_stale(path: &Path) -> bool {
    let holder = std::fs::read_to_string(path)
        .ok()
        .and_then(|s| s.trim().parse::<u32>().ok());
    if let Some(pid) = holder {
        if Path::new("/proc").is_dir() {
            return !Path::new(&format!("/proc/{pid}")).exists();
        }
    }
    match std::fs::metadata(path).and_then(|m| m.modified()) {
        Ok(modified) => matches!(modified.elapsed(), Ok(age) if age.as_secs() > 300),
        Err(_) => true,
    }
}

/// The pid recorded in a lock file, for diagnostics (0 if unreadable).
fn lock_holder(path: &Path) -> u32 {
    std::fs::read_to_string(path)
        .ok()
        .and_then(|s| s.trim().parse::<u32>().ok())
        .unwrap_or(0)
}

/// One store directory. Opening never touches the filesystem; the
/// directory is created on the first [`Store::save`].
#[derive(Debug, Clone)]
pub struct Store {
    dir: PathBuf,
}

impl Store {
    /// A handle on `dir` (which need not exist yet).
    pub fn open(dir: impl Into<PathBuf>) -> Store {
        Store { dir: dir.into() }
    }

    /// The store directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The advisory writer-lock path for this store.
    pub fn lock_path(&self) -> PathBuf {
        self.dir.join(LOCK_FILE)
    }

    /// Tries once to take the advisory writer lock. `Ok(None)` means
    /// another live process holds it. A lock left behind by a dead
    /// process is reclaimed transparently.
    pub fn try_lock(&self) -> Result<Option<StoreLock>, StoreError> {
        use std::io::Write as _;
        std::fs::create_dir_all(&self.dir)?;
        let path = self.lock_path();
        loop {
            match std::fs::OpenOptions::new()
                .write(true)
                .create_new(true)
                .open(&path)
            {
                Ok(mut file) => {
                    let _ = write!(file, "{}", std::process::id());
                    return Ok(Some(StoreLock { path }));
                }
                Err(e) if e.kind() == std::io::ErrorKind::AlreadyExists => {
                    if lock_is_stale(&path) {
                        // Reclaim and retry the create; a racing
                        // reclaimer simply loses the next create_new.
                        let _ = std::fs::remove_file(&path);
                        continue;
                    }
                    return Ok(None);
                }
                Err(e) => return Err(StoreError::Io(e)),
            }
        }
    }

    /// Takes the advisory writer lock, retrying a contended one for
    /// ~400 ms before giving up with [`StoreError::Locked`].
    fn acquire_lock(&self) -> Result<StoreLock, StoreError> {
        for attempt in 0..LOCK_ATTEMPTS {
            if let Some(lock) = self.try_lock()? {
                return Ok(lock);
            }
            if attempt + 1 < LOCK_ATTEMPTS {
                std::thread::sleep(LOCK_RETRY);
            }
        }
        Err(StoreError::Locked(lock_holder(&self.lock_path())))
    }

    /// The entry file name for `proc_name` (without its shard
    /// directory).
    fn entry_file(proc_name: &str) -> String {
        let sanitized: String = proc_name
            .chars()
            .map(|c| {
                if c.is_ascii_alphanumeric() || c == '_' {
                    c
                } else {
                    '_'
                }
            })
            .collect();
        format!(
            "{sanitized}-{:016x}.dise",
            format::fnv1a(proc_name.as_bytes())
        )
    }

    /// The shard subdirectory for `proc_name`: two hex digits of the
    /// name hash, so concurrent savers of different procedures touch
    /// different directories and listings stay cheap at corpus scale.
    fn shard(proc_name: &str) -> String {
        format!("{:02x}", format::fnv1a(proc_name.as_bytes()) & 0xff)
    }

    /// The file path for `proc_name`'s entry (sharded layout).
    pub fn entry_path(&self, proc_name: &str) -> PathBuf {
        self.dir
            .join(Self::shard(proc_name))
            .join(Self::entry_file(proc_name))
    }

    /// The pre-sharding flat path for `proc_name`'s entry; still read
    /// (and cleaned up on save) so stores written by older builds warm
    /// newer ones.
    fn legacy_entry_path(&self, proc_name: &str) -> PathBuf {
        self.dir.join(Self::entry_file(proc_name))
    }

    /// Loads an entry with the pipeline's degradation contract applied:
    /// every [`Store::load`] failure becomes `(None, Some(one-line
    /// warning))` instead of an error, because a damaged store must never
    /// change — or block — analysis results. The caller runs cold and
    /// reports the warning.
    pub fn load_warm(&self, proc_name: &str) -> (Option<ProcEntry>, Option<String>) {
        match self.load(proc_name) {
            Ok(entry) => (entry, None),
            Err(e) => (None, Some(format!("analysis store: {e}; running cold"))),
        }
    }

    /// Loads the entry for `proc_name`. `Ok(None)` when no entry exists;
    /// every integrity failure is a typed error the caller downgrades to
    /// a cold run.
    pub fn load(&self, proc_name: &str) -> Result<Option<ProcEntry>, StoreError> {
        let mut bytes = None;
        for path in [
            self.entry_path(proc_name),
            self.legacy_entry_path(proc_name),
        ] {
            match std::fs::read(&path) {
                Ok(b) => {
                    bytes = Some(b);
                    break;
                }
                Err(e) if e.kind() == std::io::ErrorKind::NotFound => continue,
                Err(e) => return Err(StoreError::Io(e)),
            }
        }
        let Some(bytes) = bytes else { return Ok(None) };
        let entry = decode_entry(format::unframe(&bytes)?)?;
        if entry.proc_name != proc_name {
            return Err(StoreError::Corrupt("entry names a different procedure"));
        }
        Ok(Some(entry))
    }

    /// Persists `entry`, creating the directory (and its shard) if
    /// needed. Writes go through a process-unique temporary file and a
    /// rename, so a crash mid-save leaves a complete entry in place,
    /// never a torn file; the whole write additionally holds the
    /// store's advisory lock, so two *processes* (say, a resident
    /// `dise serve` and a one-shot CLI run sharing `--store`) can
    /// never interleave their saves. A lock still contended after
    /// ~400 ms fails with [`StoreError::Locked`], which callers treat
    /// as a read-only run — warm start intact, nothing recorded.
    pub fn save(&self, entry: &ProcEntry) -> Result<(), StoreError> {
        use std::sync::atomic::{AtomicU64, Ordering};
        use std::sync::Mutex;
        static SAVES: AtomicU64 = AtomicU64::new(0);
        // Saves within one process (serve worker threads finalizing
        // concurrently) serialize here; the file lock below only ever
        // mediates between processes, whose liveness it can check.
        static SAVE_GUARD: Mutex<()> = Mutex::new(());
        let _process_guard = SAVE_GUARD.lock().unwrap_or_else(|e| e.into_inner());
        let _lock = self.acquire_lock()?;
        let path = self.entry_path(&entry.proc_name);
        std::fs::create_dir_all(path.parent().expect("entry path has a shard dir"))?;
        let bytes = format::frame(&encode_entry(entry));
        let tmp = path.with_extension(format!(
            "tmp-{}-{}",
            std::process::id(),
            SAVES.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::write(&tmp, &bytes)?;
        std::fs::rename(&tmp, &path)?;
        // A successful sharded save supersedes any flat-layout entry a
        // pre-sharding build left behind (load prefers the shard).
        let legacy = self.legacy_entry_path(&entry.proc_name);
        if legacy.exists() {
            let _ = std::fs::remove_file(&legacy);
        }
        Ok(())
    }

    /// Every `.dise` entry file under the store — shard subdirectories
    /// plus any flat legacy files — as paths relative to the store
    /// directory. An absent directory is an empty store.
    fn entry_files(&self) -> Result<Vec<String>, StoreError> {
        let mut out = Vec::new();
        let dir = match std::fs::read_dir(&self.dir) {
            Ok(dir) => dir,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(out),
            Err(e) => return Err(StoreError::Io(e)),
        };
        let mut push = |path: &Path, prefix: &str| {
            if path.extension().and_then(|e| e.to_str()) != Some("dise") {
                return;
            }
            let name = path
                .file_name()
                .and_then(|n| n.to_str())
                .unwrap_or("<non-utf8>");
            out.push(format!("{prefix}{name}"));
        };
        for item in dir {
            let path = item?.path();
            if path.is_dir() {
                let shard = path
                    .file_name()
                    .and_then(|n| n.to_str())
                    .unwrap_or("<non-utf8>")
                    .to_string();
                for item in std::fs::read_dir(&path)? {
                    push(&item?.path(), &format!("{shard}/"));
                }
            } else {
                push(&path, "");
            }
        }
        out.sort();
        Ok(out)
    }

    /// Every entry in the directory, with per-file decode outcomes so
    /// `dise store stat` can flag damage without hiding healthy entries.
    /// Names are paths relative to the store directory (`a3/f-….dise`).
    /// An absent directory is an empty store.
    #[allow(clippy::type_complexity)]
    pub fn entries(&self) -> Result<Vec<(String, Result<ProcEntry, StoreError>)>, StoreError> {
        let mut out = Vec::new();
        for name in self.entry_files()? {
            let outcome = std::fs::read(self.dir.join(&name))
                .map_err(StoreError::Io)
                .and_then(|bytes| format::unframe(&bytes).and_then(decode_entry));
            out.push((name, outcome));
        }
        Ok(out)
    }

    /// Deletes every entry file; returns how many were removed. An
    /// absent directory counts as already clear. The advisory lock
    /// file, if present, is left alone.
    pub fn clear(&self) -> Result<usize, StoreError> {
        let mut removed = 0;
        for name in self.entry_files()? {
            std::fs::remove_file(self.dir.join(&name))?;
            removed += 1;
        }
        Ok(removed)
    }
}

fn encode_entry(entry: &ProcEntry) -> Vec<u8> {
    let mut w = Writer::new();
    w.str(&entry.proc_name);
    w.u64(entry.solver_key);
    w.u64(entry.base_fingerprint);
    w.u64(entry.mod_fingerprint);
    w.u64(entry.runs);
    w.u64(entry.pc_count);
    w.u64(entry.summary_digest);
    w.opt_f64(entry.sweep_feedback);
    match &entry.heuristic {
        None => w.u8(0),
        Some(weights) => {
            w.u8(1);
            for &weight in weights {
                w.f64(weight);
            }
        }
    }
    match &entry.affected {
        None => w.u8(0),
        Some(affected) => {
            w.u8(1);
            w.u8(affected.precision);
            w.u64(affected.changed_nodes);
            w.u32(affected.acn.len() as u32);
            for &node in &affected.acn {
                w.u32(node);
            }
            w.u32(affected.awn.len() as u32);
            for &node in &affected.awn {
                w.u32(node);
            }
        }
    }
    w.u32(entry.trie.terms.len() as u32);
    for term in &entry.trie.terms {
        encode_term(&mut w, term);
    }
    w.u32(entry.trie.entries.len() as u32);
    for edge in &entry.trie.entries {
        encode_edge(&mut w, edge);
    }
    w.u32(entry.summaries.len() as u32);
    for summary in &entry.summaries {
        encode_summary(&mut w, summary);
    }
    w.finish()
}

fn decode_entry(payload: &[u8]) -> Result<ProcEntry, StoreError> {
    let mut r = Reader::new(payload);
    let proc_name = r.str()?;
    let solver_key = r.u64()?;
    let base_fingerprint = r.u64()?;
    let mod_fingerprint = r.u64()?;
    let runs = r.u64()?;
    let pc_count = r.u64()?;
    let summary_digest = r.u64()?;
    let sweep_feedback = r.opt_f64()?;
    let heuristic = match r.u8()? {
        0 => None,
        1 => Some([r.f64()?, r.f64()?, r.f64()?, r.f64()?]),
        _ => return Err(StoreError::Corrupt("heuristic tag")),
    };
    let affected = match r.u8()? {
        0 => None,
        1 => {
            let precision = r.u8()?;
            let changed_nodes = r.u64()?;
            let acn_len = r.u32()?;
            let mut acn = Vec::new();
            for _ in 0..acn_len {
                acn.push(r.u32()?);
            }
            let awn_len = r.u32()?;
            let mut awn = Vec::new();
            for _ in 0..awn_len {
                awn.push(r.u32()?);
            }
            Some(StoredAffected {
                precision,
                changed_nodes,
                acn,
                awn,
            })
        }
        _ => return Err(StoreError::Corrupt("affected tag")),
    };
    let term_count = r.u32()?;
    let mut terms = Vec::new();
    for _ in 0..term_count {
        terms.push(decode_term(&mut r)?);
    }
    let edge_count = r.u32()?;
    let mut entries = Vec::new();
    for _ in 0..edge_count {
        entries.push(decode_edge(&mut r)?);
    }
    let summary_count = r.u32()?;
    let mut summaries = Vec::new();
    for _ in 0..summary_count {
        let summary = decode_summary(&mut r)?;
        if !summary.validate() {
            return Err(StoreError::Corrupt("summary snapshot fails validation"));
        }
        summaries.push(summary);
    }
    if !r.is_at_end() {
        return Err(StoreError::Corrupt("trailing payload bytes"));
    }
    let trie = TrieSnapshot { terms, entries };
    if !trie.validate() {
        return Err(StoreError::Corrupt("trie snapshot fails validation"));
    }
    Ok(ProcEntry {
        proc_name,
        solver_key,
        base_fingerprint,
        mod_fingerprint,
        runs,
        pc_count,
        summary_digest,
        sweep_feedback,
        heuristic,
        affected,
        trie,
        summaries,
    })
}

fn encode_vars(w: &mut Writer, vars: &[(String, SymVar)]) {
    w.u32(vars.len() as u32);
    for (name, var) in vars {
        w.str(name);
        w.u32(var.id());
        w.str(var.name());
        w.u8(encode_ty(var.ty()));
    }
}

fn decode_vars(r: &mut Reader) -> Result<Vec<(String, SymVar)>, StoreError> {
    let len = r.u32()?;
    let mut out = Vec::new();
    for _ in 0..len {
        let name = r.str()?;
        let id = r.u32()?;
        let var_name = r.str()?;
        let ty = decode_ty(r.u8()?)?;
        out.push((name, SymVar::from_raw(id, var_name, ty)));
    }
    Ok(out)
}

fn encode_model(w: &mut Writer, model: &Model) {
    w.u32(model.len() as u32);
    for (id, value) in model.iter() {
        w.u32(id);
        match value {
            Value::Int(v) => {
                w.u8(0);
                w.i64(v);
            }
            Value::Bool(b) => {
                w.u8(1);
                w.bool(b);
            }
        }
    }
}

fn decode_model(r: &mut Reader) -> Result<Model, StoreError> {
    let len = r.u32()?;
    let mut model = Model::new();
    for _ in 0..len {
        let id = r.u32()?;
        let value = match r.u8()? {
            0 => Value::Int(r.i64()?),
            1 => Value::Bool(r.bool()?),
            _ => return Err(StoreError::Corrupt("value tag")),
        };
        model.set(id, value);
    }
    Ok(model)
}

/// Recursive structural expression encoding — summary guards and effects
/// are free-standing [`SymExpr`] trees, unlike the trie's interned terms.
fn encode_expr(w: &mut Writer, expr: &SymExpr) {
    match expr {
        SymExpr::Int(v) => {
            w.u8(0);
            w.i64(*v);
        }
        SymExpr::Bool(b) => {
            w.u8(1);
            w.bool(*b);
        }
        SymExpr::Var(var) => {
            w.u8(2);
            w.u32(var.id());
            w.str(var.name());
            w.u8(encode_ty(var.ty()));
        }
        SymExpr::Unary { op, arg } => {
            w.u8(3);
            w.u8(encode_unop(*op));
            encode_expr(w, arg.as_ref());
        }
        SymExpr::Binary { op, lhs, rhs } => {
            w.u8(4);
            w.u8(encode_binop(*op));
            encode_expr(w, lhs.as_ref());
            encode_expr(w, rhs.as_ref());
        }
    }
}

fn decode_expr(r: &mut Reader, depth: u32) -> Result<SymExpr, StoreError> {
    if depth > 10_000 {
        return Err(StoreError::Corrupt("expression nests too deep"));
    }
    Ok(match r.u8()? {
        0 => SymExpr::Int(r.i64()?),
        1 => SymExpr::Bool(r.bool()?),
        2 => {
            let id = r.u32()?;
            let name = r.str()?;
            let ty = decode_ty(r.u8()?)?;
            SymExpr::Var(SymVar::from_raw(id, name, ty))
        }
        3 => {
            let op = decode_unop(r.u8()?)?;
            let arg = decode_expr(r, depth + 1)?;
            SymExpr::Unary {
                op,
                arg: std::sync::Arc::new(arg),
            }
        }
        4 => {
            let op = decode_binop(r.u8()?)?;
            let lhs = decode_expr(r, depth + 1)?;
            let rhs = decode_expr(r, depth + 1)?;
            SymExpr::Binary {
                op,
                lhs: std::sync::Arc::new(lhs),
                rhs: std::sync::Arc::new(rhs),
            }
        }
        _ => return Err(StoreError::Corrupt("expression tag")),
    })
}

fn encode_summary(w: &mut Writer, summary: &SummarySnapshot) {
    w.str(&summary.proc_name);
    w.u64(summary.fingerprint);
    w.u64(summary.solver_key);
    encode_vars(w, &summary.formals);
    encode_vars(w, &summary.globals);
    w.u32(summary.paths.len() as u32);
    for path in &summary.paths {
        w.u32(path.guards.len() as u32);
        for guard in &path.guards {
            encode_expr(w, guard);
        }
        match &path.error {
            None => w.u8(0),
            Some(message) => {
                w.u8(1);
                w.str(message);
            }
        }
        w.u32(path.effects.len() as u32);
        for (name, effect) in &path.effects {
            w.str(name);
            encode_expr(w, effect);
        }
        match &path.witness {
            None => w.u8(0),
            Some(model) => {
                w.u8(1);
                encode_model(w, model);
            }
        }
    }
}

fn decode_summary(r: &mut Reader) -> Result<SummarySnapshot, StoreError> {
    let proc_name = r.str()?;
    let fingerprint = r.u64()?;
    let solver_key = r.u64()?;
    let formals = decode_vars(r)?;
    let globals = decode_vars(r)?;
    let path_count = r.u32()?;
    let mut paths = Vec::new();
    for _ in 0..path_count {
        let guard_count = r.u32()?;
        let mut guards = Vec::new();
        for _ in 0..guard_count {
            guards.push(decode_expr(r, 0)?);
        }
        let error = match r.u8()? {
            0 => None,
            1 => Some(r.str()?),
            _ => return Err(StoreError::Corrupt("summary error tag")),
        };
        let effect_count = r.u32()?;
        let mut effects = Vec::new();
        for _ in 0..effect_count {
            let name = r.str()?;
            effects.push((name, decode_expr(r, 0)?));
        }
        let witness = match r.u8()? {
            0 => None,
            1 => Some(decode_model(r)?),
            _ => return Err(StoreError::Corrupt("summary witness tag")),
        };
        paths.push(SummaryPathSnapshot {
            guards,
            error,
            effects,
            witness,
        });
    }
    Ok(SummarySnapshot {
        proc_name,
        fingerprint,
        solver_key,
        formals,
        globals,
        paths,
    })
}

fn encode_term(w: &mut Writer, term: &Term) {
    match term {
        Term::Int(v) => {
            w.u8(0);
            w.i64(*v);
        }
        Term::Bool(b) => {
            w.u8(1);
            w.bool(*b);
        }
        Term::Var { id, ty } => {
            w.u8(2);
            w.u32(*id);
            w.u8(encode_ty(*ty));
        }
        Term::Unary { op, arg } => {
            w.u8(3);
            w.u8(encode_unop(*op));
            w.u32(arg.index() as u32);
        }
        Term::Binary { op, lhs, rhs } => {
            w.u8(4);
            w.u8(encode_binop(*op));
            w.u32(lhs.index() as u32);
            w.u32(rhs.index() as u32);
        }
    }
}

fn decode_term(r: &mut Reader) -> Result<Term, StoreError> {
    Ok(match r.u8()? {
        0 => Term::Int(r.i64()?),
        1 => Term::Bool(r.bool()?),
        2 => Term::Var {
            id: r.u32()?,
            ty: decode_ty(r.u8()?)?,
        },
        3 => Term::Unary {
            op: decode_unop(r.u8()?)?,
            arg: TermId::from_index(r.u32()? as usize),
        },
        4 => Term::Binary {
            op: decode_binop(r.u8()?)?,
            lhs: TermId::from_index(r.u32()? as usize),
            rhs: TermId::from_index(r.u32()? as usize),
        },
        _ => return Err(StoreError::Corrupt("term tag")),
    })
}

fn encode_edge(w: &mut Writer, edge: &TrieEntry) {
    w.u32(edge.parent);
    w.u32(edge.term);
    w.u8(match edge.verdict {
        None => 0,
        Some(SatResult::Sat) => 1,
        Some(SatResult::Unsat) => 2,
        Some(SatResult::Unknown) => 3,
    });
    match &edge.model {
        None => w.u8(0),
        Some(model) => {
            w.u8(1);
            w.u32(model.len() as u32);
            for (id, value) in model.iter() {
                w.u32(id);
                match value {
                    Value::Int(v) => {
                        w.u8(0);
                        w.i64(v);
                    }
                    Value::Bool(b) => {
                        w.u8(1);
                        w.bool(b);
                    }
                }
            }
        }
    }
    match &edge.bounds {
        None => w.u8(0),
        Some(bounds) => {
            w.u8(1);
            w.u32(bounds.len() as u32);
            for (&id, interval) in bounds {
                w.u32(id);
                w.opt_i64(interval.lo);
                w.opt_i64(interval.hi);
            }
        }
    }
}

fn decode_edge(r: &mut Reader) -> Result<TrieEntry, StoreError> {
    let parent = r.u32()?;
    let term = r.u32()?;
    let verdict = match r.u8()? {
        0 => None,
        1 => Some(SatResult::Sat),
        2 => Some(SatResult::Unsat),
        3 => Some(SatResult::Unknown),
        _ => return Err(StoreError::Corrupt("verdict tag")),
    };
    let model = match r.u8()? {
        0 => None,
        1 => {
            let len = r.u32()?;
            let mut model = Model::new();
            for _ in 0..len {
                let id = r.u32()?;
                let value = match r.u8()? {
                    0 => Value::Int(r.i64()?),
                    1 => Value::Bool(r.bool()?),
                    _ => return Err(StoreError::Corrupt("value tag")),
                };
                model.set(id, value);
            }
            Some(model)
        }
        _ => return Err(StoreError::Corrupt("model tag")),
    };
    let bounds = match r.u8()? {
        0 => None,
        1 => {
            let len = r.u32()?;
            let mut bounds = Bounds::new();
            for _ in 0..len {
                let id = r.u32()?;
                let lo = r.opt_i64()?;
                let hi = r.opt_i64()?;
                bounds.insert(id, Interval { lo, hi });
            }
            Some(bounds)
        }
        _ => return Err(StoreError::Corrupt("bounds tag")),
    };
    Ok(TrieEntry {
        parent,
        term,
        verdict,
        model,
        bounds,
    })
}

fn encode_ty(ty: SymTy) -> u8 {
    match ty {
        SymTy::Int => 0,
        SymTy::Bool => 1,
    }
}

fn decode_ty(tag: u8) -> Result<SymTy, StoreError> {
    match tag {
        0 => Ok(SymTy::Int),
        1 => Ok(SymTy::Bool),
        _ => Err(StoreError::Corrupt("type tag")),
    }
}

fn encode_unop(op: UnOp) -> u8 {
    match op {
        UnOp::Neg => 0,
        UnOp::Not => 1,
    }
}

fn decode_unop(tag: u8) -> Result<UnOp, StoreError> {
    match tag {
        0 => Ok(UnOp::Neg),
        1 => Ok(UnOp::Not),
        _ => Err(StoreError::Corrupt("unary operator tag")),
    }
}

fn encode_binop(op: BinOp) -> u8 {
    match op {
        BinOp::Add => 0,
        BinOp::Sub => 1,
        BinOp::Mul => 2,
        BinOp::Div => 3,
        BinOp::Rem => 4,
        BinOp::Eq => 5,
        BinOp::Ne => 6,
        BinOp::Lt => 7,
        BinOp::Le => 8,
        BinOp::Gt => 9,
        BinOp::Ge => 10,
        BinOp::And => 11,
        BinOp::Or => 12,
    }
}

fn decode_binop(tag: u8) -> Result<BinOp, StoreError> {
    Ok(match tag {
        0 => BinOp::Add,
        1 => BinOp::Sub,
        2 => BinOp::Mul,
        3 => BinOp::Div,
        4 => BinOp::Rem,
        5 => BinOp::Eq,
        6 => BinOp::Ne,
        7 => BinOp::Lt,
        8 => BinOp::Le,
        9 => BinOp::Gt,
        10 => BinOp::Ge,
        11 => BinOp::And,
        12 => BinOp::Or,
        _ => return Err(StoreError::Corrupt("binary operator tag")),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dise_solver::{IncrementalSolver, SymExpr, VarPool};
    use std::sync::atomic::{AtomicU64, Ordering};

    fn temp_store() -> (Store, PathBuf) {
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "dise-store-test-{}-{}",
            std::process::id(),
            COUNTER.fetch_add(1, Ordering::Relaxed)
        ));
        (Store::open(&dir), dir)
    }

    fn sample_entry() -> ProcEntry {
        let mut pool = VarPool::new();
        let x = pool.fresh("X", SymTy::Int);
        let y = pool.fresh("Y", SymTy::Int);
        let mut solver = IncrementalSolver::new();
        solver.push(SymExpr::gt(SymExpr::var(&x), SymExpr::int(0)));
        solver.check();
        solver.push(SymExpr::lt(SymExpr::var(&y), SymExpr::var(&x)));
        solver.check();
        solver.pop();
        solver.push(SymExpr::not(SymExpr::gt(SymExpr::var(&x), SymExpr::int(3))));
        solver.check();
        solver.reset();
        ProcEntry {
            proc_name: "update".into(),
            solver_key: 0x1234,
            base_fingerprint: 11,
            mod_fingerprint: 22,
            runs: 3,
            pc_count: 7,
            summary_digest: 0xfeed,
            sweep_feedback: Some(0.625),
            heuristic: Some([1.0, 0.25, -0.5, 0.125]),
            affected: Some(StoredAffected {
                precision: 1,
                changed_nodes: 1,
                acn: vec![2, 5],
                awn: vec![3],
            }),
            trie: solver.export_trie(),
            summaries: Vec::new(),
        }
    }

    #[test]
    fn save_load_roundtrips() {
        let (store, dir) = temp_store();
        let entry = sample_entry();
        assert!(store.load("update").unwrap().is_none());
        store.save(&entry).unwrap();
        let loaded = store.load("update").unwrap().expect("entry exists");
        assert_eq!(loaded, entry);
        // The snapshot actually warm-starts a solver.
        let mut solver = IncrementalSolver::new();
        assert!(solver.import_trie(&loaded.trie) >= 3);
        std::fs::remove_dir_all(dir).ok();
    }

    fn sample_summary() -> SummarySnapshot {
        let mut pool = VarPool::new();
        let amount = pool.fresh("Amount", SymTy::Int);
        let total = pool.fresh("Total", SymTy::Int);
        let guard = SymExpr::gt(SymExpr::var(&amount), SymExpr::int(10));
        let mut witness = Model::new();
        witness.set(amount.id(), Value::Int(11));
        SummarySnapshot {
            proc_name: "clamp".into(),
            fingerprint: 0xabcd,
            solver_key: 0x1234,
            formals: vec![("amount".into(), amount)],
            globals: vec![("total".into(), total.clone())],
            paths: vec![SummaryPathSnapshot {
                guards: vec![guard],
                error: Some("assertion failed: amount >= 0".into()),
                effects: vec![(
                    "total".into(),
                    SymExpr::add(SymExpr::var(&total), SymExpr::int(10)),
                )],
                witness: Some(witness),
            }],
        }
    }

    #[test]
    fn summaries_roundtrip_with_the_entry() {
        let (store, dir) = temp_store();
        let mut entry = sample_entry();
        entry.summaries = vec![sample_summary()];
        store.save(&entry).unwrap();
        let loaded = store.load("update").unwrap().expect("entry exists");
        assert_eq!(loaded, entry);
        assert_eq!(loaded.summaries[0].paths[0].guards.len(), 1);
        assert_eq!(
            loaded.kinds(),
            "trie+summary+feedback+heuristic+affected",
            "stat kinds reflect the stored payloads"
        );
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn invalid_summary_snapshots_are_corruption() {
        let (store, dir) = temp_store();
        let mut entry = sample_entry();
        let mut summary = sample_summary();
        // A guard over a variable that is neither a formal nor a global
        // fails SummarySnapshot::validate on load.
        let mut pool = VarPool::new();
        let _ = pool.fresh("Amount", SymTy::Int);
        let _ = pool.fresh("Total", SymTy::Int);
        let stray = pool.fresh("Stray", SymTy::Bool);
        summary.paths[0].guards.push(SymExpr::var(&stray));
        entry.summaries = vec![summary];
        store.save(&entry).unwrap();
        assert!(matches!(store.load("update"), Err(StoreError::Corrupt(_))));
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn truncated_files_are_rejected() {
        let (store, dir) = temp_store();
        let entry = sample_entry();
        store.save(&entry).unwrap();
        let path = store.entry_path("update");
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();
        assert!(matches!(
            store.load("update"),
            Err(StoreError::Truncated) | Err(StoreError::ChecksumMismatch)
        ));
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn version_skew_is_rejected() {
        let (store, dir) = temp_store();
        store.save(&sample_entry()).unwrap();
        let path = store.entry_path("update");
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[8..12].copy_from_slice(&(FORMAT_VERSION + 1).to_le_bytes());
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            store.load("update"),
            Err(StoreError::UnsupportedVersion(_))
        ));
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn bit_flips_fail_the_checksum() {
        let (store, dir) = temp_store();
        store.save(&sample_entry()).unwrap();
        let path = store.entry_path("update");
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = format::HEADER_LEN + (bytes.len() - format::HEADER_LEN) / 2;
        bytes[mid] ^= 0x40;
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            store.load("update"),
            Err(StoreError::ChecksumMismatch)
        ));
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn entries_and_clear_cover_the_directory() {
        let (store, dir) = temp_store();
        assert!(store.entries().unwrap().is_empty());
        assert_eq!(store.clear().unwrap(), 0);
        let mut entry = sample_entry();
        store.save(&entry).unwrap();
        entry.proc_name = "other".into();
        store.save(&entry).unwrap();
        let listed = store.entries().unwrap();
        assert_eq!(listed.len(), 2);
        assert!(listed.iter().all(|(_, outcome)| outcome.is_ok()));
        assert_eq!(store.clear().unwrap(), 2);
        assert!(store.entries().unwrap().is_empty());
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn entry_name_mismatch_is_corruption() {
        let (store, dir) = temp_store();
        let entry = sample_entry();
        store.save(&entry).unwrap();
        // Copy `update`'s file onto the slot another procedure would use.
        let source = store.entry_path("update");
        let target = store.entry_path("elsewhere");
        std::fs::create_dir_all(target.parent().unwrap()).unwrap();
        std::fs::copy(&source, &target).unwrap();
        assert!(matches!(
            store.load("elsewhere"),
            Err(StoreError::Corrupt(_))
        ));
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn entries_are_sharded_by_name_hash() {
        let (store, dir) = temp_store();
        store.save(&sample_entry()).unwrap();
        let path = store.entry_path("update");
        assert!(path.exists());
        let shard = path
            .parent()
            .and_then(|p| p.file_name())
            .and_then(|n| n.to_str())
            .expect("entry lives in a shard directory");
        assert_eq!(shard.len(), 2, "shard is two hex digits, got {shard:?}");
        assert!(shard.chars().all(|c| c.is_ascii_hexdigit()));
        let listed = store.entries().unwrap();
        assert_eq!(listed.len(), 1);
        assert!(
            listed[0].0.starts_with(&format!("{shard}/")),
            "listing names are shard-relative paths"
        );
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn legacy_flat_entries_load_and_migrate_on_save() {
        let (store, dir) = temp_store();
        let entry = sample_entry();
        // Write the pre-sharding flat layout by hand.
        std::fs::create_dir_all(store.dir()).unwrap();
        let flat = store.legacy_entry_path("update");
        std::fs::write(&flat, format::frame(&encode_entry(&entry))).unwrap();
        assert_eq!(
            store.load("update").unwrap().expect("flat entry loads"),
            entry
        );
        assert_eq!(store.entries().unwrap().len(), 1);
        // A save migrates the entry into its shard and drops the flat file.
        store.save(&entry).unwrap();
        assert!(!flat.exists(), "save removes the superseded flat file");
        assert!(store.entry_path("update").exists());
        assert_eq!(store.entries().unwrap().len(), 1);
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn a_held_lock_fails_saves_with_locked() {
        let (store, dir) = temp_store();
        std::fs::create_dir_all(store.dir()).unwrap();
        // A live holder: our own pid (the test thread never releases it).
        std::fs::write(store.lock_path(), format!("{}", std::process::id())).unwrap();
        match store.save(&sample_entry()) {
            Err(StoreError::Locked(pid)) => assert_eq!(pid, std::process::id()),
            other => panic!("expected Locked, got {other:?}"),
        }
        // Loads are lock-free: reads see whole files thanks to the
        // tmp+rename protocol and must keep working under a held lock.
        assert!(store.load("update").unwrap().is_none());
        // Releasing the lock makes the next save succeed.
        std::fs::remove_file(store.lock_path()).unwrap();
        store.save(&sample_entry()).unwrap();
        assert!(store.load("update").unwrap().is_some());
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn stale_locks_are_reclaimed() {
        let (store, dir) = temp_store();
        std::fs::create_dir_all(store.dir()).unwrap();
        // Pid u32::MAX is far beyond any live process on Linux
        // (pid_max caps at 2^22), so the lock reads as abandoned.
        std::fs::write(store.lock_path(), format!("{}", u32::MAX)).unwrap();
        store.save(&sample_entry()).unwrap();
        assert!(store.load("update").unwrap().is_some());
        assert!(
            !store.lock_path().exists(),
            "a completed save releases the lock"
        );
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn try_lock_reports_contention_without_blocking() {
        let (store, dir) = temp_store();
        let held = store.try_lock().unwrap().expect("uncontended lock");
        assert!(store.try_lock().unwrap().is_none(), "second taker loses");
        drop(held);
        assert!(
            store.try_lock().unwrap().is_some(),
            "drop releases the lock"
        );
        std::fs::remove_dir_all(dir).ok();
    }
}
