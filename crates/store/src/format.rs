//! The store's binary wire format.
//!
//! Every store file is `header ‖ payload`:
//!
//! ```text
//! magic            8 bytes   b"DISESTOR"
//! format_version   u32 LE    FORMAT_VERSION
//! payload_len      u64 LE    exact payload byte count
//! payload_fnv1a    u64 LE    FNV-1a 64 over the payload bytes
//! payload          ...       field stream (see dise-store's entry codec)
//! ```
//!
//! The header is verified *before* any payload byte is interpreted, so a
//! truncated, version-skewed, or bit-flipped file is rejected as a typed
//! [`StoreError`] and the caller falls back to a cold run. All integers
//! are little-endian; strings are length-prefixed UTF-8; `Option`s are a
//! one-byte tag followed by the value.

use crate::error::StoreError;

/// The on-disk magic.
pub const MAGIC: [u8; 8] = *b"DISESTOR";

/// Current format version. Bump on any payload layout change — old
/// readers reject new files (and vice versa) instead of misparsing them.
pub const FORMAT_VERSION: u32 = 3;

/// Header length in bytes (magic + version + length + checksum).
pub const HEADER_LEN: usize = 8 + 4 + 8 + 8;

/// FNV-1a 64-bit over `bytes` — the payload integrity checksum. Stable
/// across processes and platforms (unlike `DefaultHasher`).
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &byte in bytes {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Frames `payload` with the integrity header.
pub fn frame(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(&fnv1a(payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Verifies the header of `bytes` and returns the payload slice.
pub fn unframe(bytes: &[u8]) -> Result<&[u8], StoreError> {
    if bytes.len() < HEADER_LEN {
        if bytes.len() >= 8 && bytes[..8] != MAGIC {
            return Err(StoreError::BadMagic);
        }
        return Err(StoreError::Truncated);
    }
    if bytes[..8] != MAGIC {
        return Err(StoreError::BadMagic);
    }
    let version = u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes"));
    if version != FORMAT_VERSION {
        return Err(StoreError::UnsupportedVersion(version));
    }
    let len = u64::from_le_bytes(bytes[12..20].try_into().expect("8 bytes"));
    let checksum = u64::from_le_bytes(bytes[20..28].try_into().expect("8 bytes"));
    let payload = &bytes[HEADER_LEN..];
    if (payload.len() as u64) < len {
        return Err(StoreError::Truncated);
    }
    if (payload.len() as u64) > len {
        return Err(StoreError::Corrupt("trailing bytes after payload"));
    }
    if fnv1a(payload) != checksum {
        return Err(StoreError::ChecksumMismatch);
    }
    Ok(payload)
}

/// Append-only payload encoder.
#[derive(Debug, Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// An empty payload.
    pub fn new() -> Writer {
        Writer::default()
    }

    /// The encoded payload bytes.
    pub fn finish(self) -> Vec<u8> {
        self.buf
    }

    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    pub fn bool(&mut self, v: bool) {
        self.u8(u8::from(v));
    }

    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// IEEE-754 bit pattern — exact round-trips, no text formatting.
    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    pub fn str(&mut self, v: &str) {
        self.u32(v.len() as u32);
        self.buf.extend_from_slice(v.as_bytes());
    }

    pub fn opt_i64(&mut self, v: Option<i64>) {
        match v {
            None => self.u8(0),
            Some(v) => {
                self.u8(1);
                self.i64(v);
            }
        }
    }

    pub fn opt_f64(&mut self, v: Option<f64>) {
        match v {
            None => self.u8(0),
            Some(v) => {
                self.u8(1);
                self.f64(v);
            }
        }
    }
}

/// Cursor-based payload decoder; every read is bounds-checked and
/// answers [`StoreError::Truncated`] past the end.
#[derive(Debug)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// A cursor at the start of `buf`.
    pub fn new(buf: &'a [u8]) -> Reader<'a> {
        Reader { buf, pos: 0 }
    }

    /// Returns `true` once every byte was consumed.
    pub fn is_at_end(&self) -> bool {
        self.pos == self.buf.len()
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], StoreError> {
        let end = self.pos.checked_add(n).ok_or(StoreError::Truncated)?;
        if end > self.buf.len() {
            return Err(StoreError::Truncated);
        }
        let slice = &self.buf[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    pub fn u8(&mut self) -> Result<u8, StoreError> {
        Ok(self.take(1)?[0])
    }

    pub fn bool(&mut self) -> Result<bool, StoreError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(StoreError::Corrupt("boolean tag")),
        }
    }

    pub fn u32(&mut self) -> Result<u32, StoreError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4")))
    }

    pub fn u64(&mut self) -> Result<u64, StoreError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8")))
    }

    pub fn i64(&mut self) -> Result<i64, StoreError> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().expect("8")))
    }

    pub fn f64(&mut self) -> Result<f64, StoreError> {
        Ok(f64::from_bits(self.u64()?))
    }

    pub fn str(&mut self) -> Result<String, StoreError> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| StoreError::Corrupt("non-UTF-8 string"))
    }

    pub fn opt_i64(&mut self) -> Result<Option<i64>, StoreError> {
        match self.u8()? {
            0 => Ok(None),
            1 => Ok(Some(self.i64()?)),
            _ => Err(StoreError::Corrupt("option tag")),
        }
    }

    pub fn opt_f64(&mut self) -> Result<Option<f64>, StoreError> {
        match self.u8()? {
            0 => Ok(None),
            1 => Ok(Some(self.f64()?)),
            _ => Err(StoreError::Corrupt("option tag")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        let mut w = Writer::new();
        w.u8(7);
        w.bool(true);
        w.u32(0xDEAD_BEEF);
        w.u64(u64::MAX);
        w.i64(-42);
        w.f64(0.25);
        w.str("hello");
        w.opt_i64(None);
        w.opt_i64(Some(i64::MIN));
        w.opt_f64(Some(1.5));
        let bytes = w.finish();
        let mut r = Reader::new(&bytes);
        assert_eq!(r.u8().unwrap(), 7);
        assert!(r.bool().unwrap());
        assert_eq!(r.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.u64().unwrap(), u64::MAX);
        assert_eq!(r.i64().unwrap(), -42);
        assert_eq!(r.f64().unwrap(), 0.25);
        assert_eq!(r.str().unwrap(), "hello");
        assert_eq!(r.opt_i64().unwrap(), None);
        assert_eq!(r.opt_i64().unwrap(), Some(i64::MIN));
        assert_eq!(r.opt_f64().unwrap(), Some(1.5));
        assert!(r.is_at_end());
    }

    #[test]
    fn reads_past_the_end_are_truncation_errors() {
        let mut r = Reader::new(&[1, 2]);
        assert!(matches!(r.u64(), Err(StoreError::Truncated)));
        // A huge string length cannot wrap into a bogus read.
        let mut w = Writer::new();
        w.u32(u32::MAX);
        let bytes = w.finish();
        let mut r = Reader::new(&bytes);
        assert!(matches!(r.str(), Err(StoreError::Truncated)));
    }

    #[test]
    fn frame_roundtrips_and_header_is_verified() {
        let payload = b"some payload bytes".to_vec();
        let framed = frame(&payload);
        assert_eq!(unframe(&framed).unwrap(), payload.as_slice());

        // Bad magic.
        let mut bad = framed.clone();
        bad[0] ^= 0xFF;
        assert!(matches!(unframe(&bad), Err(StoreError::BadMagic)));

        // Future format version.
        let mut future = framed.clone();
        future[8..12].copy_from_slice(&99u32.to_le_bytes());
        assert!(matches!(
            unframe(&future),
            Err(StoreError::UnsupportedVersion(99))
        ));

        // Truncated payload.
        let truncated = &framed[..framed.len() - 3];
        assert!(matches!(unframe(truncated), Err(StoreError::Truncated)));

        // Header-only truncation.
        assert!(matches!(unframe(&framed[..10]), Err(StoreError::Truncated)));

        // Flipped payload bit.
        let mut flipped = framed.clone();
        let last = flipped.len() - 1;
        flipped[last] ^= 0x01;
        assert!(matches!(
            unframe(&flipped),
            Err(StoreError::ChecksumMismatch)
        ));

        // Trailing garbage.
        let mut trailing = framed;
        trailing.push(0);
        assert!(matches!(unframe(&trailing), Err(StoreError::Corrupt(_))));
    }

    #[test]
    fn fnv_is_stable() {
        // Pinned reference values: the checksum is part of the on-disk
        // contract, so it must never drift between builds.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
    }
}
