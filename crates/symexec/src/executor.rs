//! The symbolic execution engine.
//!
//! See the [crate documentation](crate) for the SPF-equivalence notes. The
//! engine walks the CFG depth-first with explicit frames that mimic the
//! recursion of the paper's Fig. 6, so [`Strategy`] hook side effects are
//! observed in exactly the pseudocode's order.

use std::time::{Duration, Instant};

use dise_cfg::{build_cfg, build_cfg_with_calls, Cfg, NodeKind};
use dise_ir::ast::Program;
use dise_solver::{
    IncrementalSolver, Model, PathCondition, SatResult, SolverConfig, SolverStats, SymExpr, SymTy,
    SymVar, TrieSnapshot, VarPool,
};

use crate::env::Env;
use crate::eval::{eval_symbolic, EvalError};
use crate::state::SymState;
use crate::summary::{SummaryMode, SummaryStats, SummaryTable};
use crate::tree::ExecTree;
use dise_cfg::NodeId;
use std::sync::Arc;

/// Exploration hooks. The trivial implementation ([`FullExploration`])
/// yields standard full symbolic execution; `dise-core` provides the
/// directed strategy of Fig. 6.
pub trait Strategy {
    /// Called when a state is entered (the paper's `UpdateExploredSet`,
    /// Fig. 6 line 7).
    fn on_enter(&mut self, node: NodeId) {
        let _ = node;
    }

    /// Decides whether a feasible successor state at `node` should be
    /// explored (the paper's `AffectedLocIsReachable`, Fig. 6 line 9).
    /// May mutate strategy state (the reset of explored sets happens inside
    /// this check in the paper's pseudocode).
    fn should_explore(&mut self, node: NodeId) -> bool {
        let _ = node;
        true
    }

    /// Called when the search backtracks past a state (its subtree is
    /// complete). Purely observational — used by trace renderers.
    fn on_leave(&mut self, node: NodeId) {
        let _ = node;
    }

    /// Clones this strategy for a parallel frontier worker, or `None` when
    /// the strategy cannot be forked.
    ///
    /// Forking is only sound for strategies whose `should_explore`
    /// decisions are independent of global exploration order (stateless
    /// filters, static node predicates). Strategies with order-dependent
    /// global state — like the paper's directed strategy, whose
    /// explored-set resets depend on which sibling subtree ran first —
    /// must return `None`; the frontier then runs a speculative parallel
    /// solver sweep and replays the strategy serially (see
    /// [`crate::frontier`]), which preserves byte-identical summaries.
    fn fork(&self) -> Option<Box<dyn Strategy + Send>> {
        None
    }

    /// A *static over-approximation* of [`Strategy::should_explore`]: may
    /// return `true` for nodes the dynamic filter would reject, but must
    /// never return `false` for a node it could accept at any point of any
    /// serial run. Used to bound the speculative sweep of non-forkable
    /// strategies; the default (everything reachable) is always sound.
    fn speculation_hint(&self, node: NodeId) -> bool {
        let _ = node;
        true
    }

    /// The score model pricing the speculative sweep (see
    /// [`crate::frontier::budget`] and [`crate::heuristic`]): per-node
    /// feature maps dotted with the run's heuristic weights, plus the
    /// total affected-node count that sizes the
    /// [`SweepBudget::Auto`](crate::SweepBudget::Auto) token grant. The
    /// default (`None`) leaves the sweep unbudgeted and unordered under
    /// `Auto`; strategies that know their target set — the directed
    /// strategy in `dise-core` — should return one.
    fn speculation_cost(&self) -> Option<crate::heuristic::ScoreModel> {
        None
    }
}

/// An executor's transferable warm state: the decided prefix trie plus
/// the measured sweep-consumption ratio, tagged with the producing
/// solver's [`SolverConfig::cache_key`]. Produced by
/// [`Executor::warm_handoff`], consumed by [`Executor::warm_start_from`].
#[derive(Debug, Clone)]
pub struct WarmHandoff {
    trie: TrieSnapshot,
    sweep_feedback: Option<f64>,
    solver_key: u64,
}

impl WarmHandoff {
    /// The measured sweep-consumption ratio carried by this handoff, if
    /// the producing run's speculative sweep measured one.
    pub fn sweep_feedback(&self) -> Option<f64> {
        self.sweep_feedback
    }

    /// Number of decided path-condition prefixes the handoff carries.
    pub fn decided(&self) -> usize {
        self.trie.decided()
    }
}

/// Standard full symbolic execution: explore every feasible successor.
#[derive(Debug, Clone, Copy, Default)]
pub struct FullExploration;

impl Strategy for FullExploration {
    fn fork(&self) -> Option<Box<dyn Strategy + Send>> {
        Some(Box::new(FullExploration))
    }
}

/// Which successors are submitted to [`Strategy::should_explore`].
///
/// The paper's prototype lives inside Symbolic PathFinder, where symbolic
/// states exist only at *choice generators* — symbolic branches with more
/// than one feasible outcome. Straight-line code and branches whose
/// condition is concrete never create states, so the
/// `AffectedLocIsReachable` filter of Fig. 6 is only ever consulted at
/// choice points. [`FilterScope::ChoicePoints`] reproduces that behaviour
/// and is the default; [`FilterScope::AllStates`] applies the filter at
/// every CFG node (the literal reading of the pseudocode, kept for the
/// fidelity comparison in DESIGN.md).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FilterScope {
    /// Filter only successors produced by a symbolic two-way fork
    /// (SPF-faithful; the default).
    #[default]
    ChoicePoints,
    /// Filter every successor state.
    AllStates,
}

/// Configuration of an execution run.
#[derive(Debug, Clone)]
pub struct ExecConfig {
    /// Maximum path depth (states along one path); `None` = unbounded,
    /// like the paper's loop-free case studies.
    pub depth_bound: Option<u32>,
    /// Treat [`SatResult::Unknown`] as feasible. Default `false`, matching
    /// SPF's "solver timeout ⇒ unsatisfiable" rule (§4.1).
    pub unknown_is_sat: bool,
    /// Abort after this many states (safety valve). `None` = unbounded.
    pub max_states: Option<u64>,
    /// Record the node trace of every path (needed by the regression
    /// application and the Table 1 renderer; costs memory on huge runs).
    pub record_traces: bool,
    /// Record strategy-pruned path prefixes as [`PathOutcome::Pruned`]
    /// entries (used by the Theorem 3.10 checker; they never contribute
    /// path conditions).
    pub record_pruned: bool,
    /// Capture the full symbolic execution tree (Fig. 1 rendering).
    pub record_tree: bool,
    /// Which successors the strategy filter applies to.
    pub filter_scope: FilterScope,
    /// Worker threads for frontier exploration. `1` (the default) is the
    /// serial DFS; `N > 1` enables the work-stealing parallel frontier
    /// (see [`crate::frontier`]), which produces byte-identical paths,
    /// path conditions, and outcomes for non-truncated runs. The default
    /// honors the `DISE_JOBS` environment variable (the CI race matrix).
    /// [`ExecConfig::record_tree`] forces serial execution.
    pub jobs: usize,
    /// Token budget for the speculative sweep of non-forkable strategies
    /// (directed runs with `jobs > 1`; see [`crate::frontier::budget`]).
    /// One token admits one speculative state. The default honors the
    /// `DISE_SWEEP_BUDGET` environment variable (`auto`, `unlimited`, or
    /// a count), falling back to
    /// [`SweepBudget::Auto`](crate::SweepBudget::Auto). Has no effect on
    /// serial runs or forkable (full-exploration) strategies.
    pub sweep_budget: crate::frontier::SweepBudget,
    /// Whether full explorations of call-bearing programs route calls
    /// through procedure summaries instead of inlining (see
    /// [`crate::summary`]). The executor itself only honors an attached
    /// [`SummaryTable`] ([`Executor::with_summaries`]); this knob is the
    /// *policy* consulted by `dise-core` when deciding whether to attach
    /// one. The default honors the `DISE_SUMMARIES` environment variable
    /// (`on`, `off`, or `auto`), falling back to
    /// [`SummaryMode::Auto`].
    pub summaries: SummaryMode,
    /// Which heuristic weight vector scores speculative branch arms (see
    /// [`crate::heuristic`]). The default honors the `DISE_HEURISTIC`
    /// environment variable (`distance`, `tuned`, or a weights-file
    /// path), falling back to
    /// [`HeuristicChoice::Inherit`](crate::heuristic::HeuristicChoice::Inherit),
    /// which adopts store-recorded weights on warm runs and otherwise
    /// behaves exactly like `distance`. Affects only the speculative
    /// sweep's arm ordering — recorded verdicts are byte-identical under
    /// any choice.
    pub heuristic: crate::heuristic::HeuristicChoice,
    /// Constraint-solver tuning.
    pub solver: SolverConfig,
    /// Observability hook: when set, pipeline stages, frontier workers,
    /// and summary builds record hierarchical spans through this handle
    /// (see `dise-trace`). Layers re-parent the handle before passing the
    /// config down, which is how worker spans nest under their stage.
    /// `None` (the default) records nothing and costs nothing.
    pub tracer: Option<dise_trace::TraceHandle>,
}

/// The `DISE_JOBS` default, read once per process.
fn default_jobs() -> usize {
    static JOBS: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    *JOBS.get_or_init(|| {
        std::env::var("DISE_JOBS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&n| n >= 1)
            .unwrap_or(1)
    })
}

/// The `DISE_SWEEP_BUDGET` default, read once per process.
fn default_sweep_budget() -> crate::frontier::SweepBudget {
    static BUDGET: std::sync::OnceLock<crate::frontier::SweepBudget> = std::sync::OnceLock::new();
    *BUDGET.get_or_init(|| {
        std::env::var("DISE_SWEEP_BUDGET")
            .ok()
            .and_then(|v| crate::frontier::SweepBudget::parse(&v))
            .unwrap_or_default()
    })
}

/// The `DISE_HEURISTIC` default, read once per process. A malformed
/// value falls back to [`HeuristicChoice::Inherit`] silently — the CLI
/// reports parse errors on its own explicit flag, and an env var should
/// never abort library consumers.
fn default_heuristic() -> crate::heuristic::HeuristicChoice {
    static CHOICE: std::sync::OnceLock<crate::heuristic::HeuristicChoice> =
        std::sync::OnceLock::new();
    *CHOICE.get_or_init(|| {
        std::env::var("DISE_HEURISTIC")
            .ok()
            .and_then(|v| crate::heuristic::HeuristicChoice::parse_spec(&v).ok())
            .unwrap_or_default()
    })
}

/// The `DISE_SUMMARIES` default, read once per process.
fn default_summaries() -> SummaryMode {
    static MODE: std::sync::OnceLock<SummaryMode> = std::sync::OnceLock::new();
    *MODE.get_or_init(|| {
        std::env::var("DISE_SUMMARIES")
            .ok()
            .and_then(|v| SummaryMode::parse(&v))
            .unwrap_or_default()
    })
}

impl Default for ExecConfig {
    fn default() -> Self {
        ExecConfig {
            depth_bound: None,
            unknown_is_sat: false,
            max_states: None,
            record_traces: true,
            record_pruned: false,
            record_tree: false,
            filter_scope: FilterScope::default(),
            jobs: default_jobs(),
            sweep_budget: default_sweep_budget(),
            summaries: default_summaries(),
            heuristic: default_heuristic(),
            solver: SolverConfig::default(),
            tracer: None,
        }
    }
}

/// Errors constructing an executor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExecError {
    /// The program has no procedure with the requested name.
    MissingProcedure(String),
    /// The procedure contains procedure calls; inline them first
    /// ([`dise_ir::inline::inline_program`]).
    ContainsCalls(String),
    /// Summary-mode construction found a call to a procedure the supplied
    /// [`SummaryTable`] has no entry for.
    MissingSummary(String),
    /// Evaluating a global initializer failed (unchecked program).
    Eval(EvalError),
}

impl std::fmt::Display for ExecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecError::MissingProcedure(name) => {
                write!(f, "procedure `{name}` not found")
            }
            ExecError::ContainsCalls(name) => write!(
                f,
                "procedure `{name}` contains calls; inline first (dise_ir::inline)"
            ),
            ExecError::MissingSummary(name) => {
                write!(f, "no summary for callee `{name}` in the supplied table")
            }
            ExecError::Eval(e) => write!(f, "evaluation error: {e}"),
        }
    }
}

impl std::error::Error for ExecError {}

impl From<EvalError> for ExecError {
    fn from(e: EvalError) -> Self {
        ExecError::Eval(e)
    }
}

/// How a recorded path ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PathOutcome {
    /// Reached the procedure exit.
    Completed,
    /// Reached an error node (failed assertion).
    Error(String),
    /// Stopped by the depth bound.
    DepthBounded,
    /// Rejected by the exploration strategy (DiSE pruning); the recorded
    /// path is the prefix up to and including the rejected successor.
    Pruned,
}

/// One explored execution path.
#[derive(Debug, Clone)]
pub struct PathSummary {
    /// The path condition characterizing the path.
    pub pc: PathCondition,
    /// How the path ended.
    pub outcome: PathOutcome,
    /// Symbolic values of all variables at the end of the path.
    pub final_env: Env,
    /// The CFG nodes visited, in order (empty when trace recording is
    /// disabled).
    pub trace: Vec<NodeId>,
}

/// Counters for one execution run (the dependent variables of §4.2.2).
#[derive(Debug, Clone, Default)]
pub struct ExecStats {
    /// Symbolic states entered (the paper's "states explored").
    pub states_explored: u64,
    /// Paths that reached the exit node.
    pub paths_completed: u64,
    /// Paths that reached an error node.
    pub paths_error: u64,
    /// Paths cut off by the depth bound.
    pub paths_depth_bounded: u64,
    /// Successors discarded as infeasible by the solver.
    pub infeasible: u64,
    /// Successors discarded by the strategy (DiSE pruning).
    pub pruned: u64,
    /// `true` if `max_states` stopped the run early.
    pub truncated: bool,
    /// Wall-clock time of the exploration.
    pub elapsed: Duration,
    /// Solver activity during the run.
    pub solver: SolverStats,
    /// Parallel-frontier activity (all zero on serial runs).
    pub frontier: crate::frontier::FrontierStats,
    /// Summary-instantiation activity (all zero on inlined runs).
    pub summary: SummaryStats,
}

/// The result of a run: "a symbolic summary … made up of path conditions
/// that represent the feasible execution paths" (§2.1).
#[derive(Debug, Clone)]
pub struct SymbolicSummary {
    pub(crate) proc_name: String,
    pub(crate) inputs: Vec<(String, SymVar)>,
    pub(crate) paths: Vec<PathSummary>,
    pub(crate) stats: ExecStats,
    pub(crate) tree: Option<ExecTree>,
}

impl SymbolicSummary {
    /// The analyzed procedure's name.
    pub fn proc_name(&self) -> &str {
        &self.proc_name
    }

    /// The symbolic inputs: `(program variable, symbolic variable)` for
    /// every parameter and uninitialized global, in declaration order
    /// (parameters first).
    pub fn inputs(&self) -> &[(String, SymVar)] {
        &self.inputs
    }

    /// All recorded paths.
    pub fn paths(&self) -> &[PathSummary] {
        &self.paths
    }

    /// The path conditions of *terminated* paths (completed or error) —
    /// what the paper counts as "path conditions generated".
    pub fn path_conditions(&self) -> impl Iterator<Item = &PathCondition> {
        self.paths
            .iter()
            .filter(|p| !matches!(p.outcome, PathOutcome::DepthBounded | PathOutcome::Pruned))
            .map(|p| &p.pc)
    }

    /// Number of generated path conditions.
    pub fn pc_count(&self) -> usize {
        self.path_conditions().count()
    }

    /// Execution counters.
    pub fn stats(&self) -> &ExecStats {
        &self.stats
    }

    /// The captured execution tree, when [`ExecConfig::record_tree`] was
    /// set.
    pub fn tree(&self) -> Option<&ExecTree> {
        self.tree.as_ref()
    }
}

/// The symbolic executor for one procedure of one program.
///
/// The executor owns an [`IncrementalSolver`] whose push/pop stack mirrors
/// the DFS: each branch literal is pushed exactly once per tree edge and
/// popped on backtrack, so feasibility checks reuse the prefix's solver
/// state instead of re-submitting the whole path condition. The solver
/// (and its prefix trie) persists across [`Executor::explore`] calls, so
/// repeated explorations answer repeated prefixes from the trie.
#[derive(Debug, Clone)]
pub struct Executor {
    pub(crate) proc_name: String,
    pub(crate) cfg: Cfg,
    pub(crate) init_env: Env,
    pub(crate) inputs: Vec<(String, SymVar)>,
    pool: VarPool,
    pub(crate) config: ExecConfig,
    pub(crate) solver: IncrementalSolver,
    /// Measured trie-consumption ratio (answers consumed per speculative
    /// state) of this executor's most recent speculative sweep; scales the
    /// next sweep's [`SweepBudget::Auto`](crate::SweepBudget) grant.
    pub(crate) sweep_feedback: Option<f64>,
    /// Decided prefixes restored by [`Executor::warm_start`] (reported as
    /// [`crate::FrontierStats::warm_trie_entries`]).
    warm_trie_entries: u64,
    /// Procedure summaries for call-node dispatch. `None` for inlined
    /// (call-free) executors; `Some` only via
    /// [`Executor::with_summaries`].
    pub(crate) summaries: Option<Arc<SummaryTable>>,
}

impl Executor {
    /// Prepares symbolic execution of `proc_name` in `program`: builds the
    /// CFG and the initial environment (parameters and uninitialized
    /// globals become symbolic inputs; initialized globals start concrete).
    ///
    /// # Errors
    ///
    /// [`ExecError::MissingProcedure`] if the procedure does not exist;
    /// [`ExecError::Eval`] if a global initializer is unevaluable.
    pub fn new(
        program: &Program,
        proc_name: &str,
        config: ExecConfig,
    ) -> Result<Executor, ExecError> {
        let procedure = program
            .proc(proc_name)
            .ok_or_else(|| ExecError::MissingProcedure(proc_name.to_string()))?;
        if dise_ir::inline::contains_calls(program, proc_name) {
            return Err(ExecError::ContainsCalls(proc_name.to_string()));
        }
        let cfg = build_cfg(procedure);
        let (env, inputs, pool) = toplevel_env(program, procedure)?;
        Ok(Executor::from_parts(
            proc_name.to_string(),
            cfg,
            env,
            inputs,
            pool,
            config,
        ))
    }

    /// Prepares *compositional* symbolic execution of `proc_name`: calls
    /// are kept as opaque CFG nodes and dispatched to the supplied
    /// [`SummaryTable`] during exploration instead of being inlined. The
    /// initial environment is built exactly as [`Executor::new`] builds it
    /// for the flattened program, so the two modes explore from identical
    /// starting states.
    ///
    /// # Errors
    ///
    /// Everything [`Executor::new`] reports, plus
    /// [`ExecError::MissingSummary`] when the body calls a procedure the
    /// table has no entry for (recursion, failed builds — the caller
    /// should fall back to the inlining pipeline).
    pub fn with_summaries(
        program: &Program,
        proc_name: &str,
        config: ExecConfig,
        summaries: Arc<SummaryTable>,
    ) -> Result<Executor, ExecError> {
        let procedure = program
            .proc(proc_name)
            .ok_or_else(|| ExecError::MissingProcedure(proc_name.to_string()))?;
        let cfg = build_cfg_with_calls(procedure);
        for id in cfg.node_ids() {
            if let NodeKind::Call { callee, .. } = &cfg.node(id).kind {
                if summaries.get(callee).is_none() {
                    return Err(ExecError::MissingSummary(callee.clone()));
                }
            }
        }
        let (env, inputs, pool) = toplevel_env(program, procedure)?;
        let mut executor =
            Executor::from_parts(proc_name.to_string(), cfg, env, inputs, pool, config);
        executor.summaries = Some(summaries);
        Ok(executor)
    }

    /// Assembles an executor from pre-built parts (summary builds use a
    /// custom all-symbolic entry environment that [`Executor::new`] does
    /// not produce).
    pub(crate) fn from_parts(
        proc_name: String,
        cfg: Cfg,
        init_env: Env,
        inputs: Vec<(String, SymVar)>,
        pool: VarPool,
        config: ExecConfig,
    ) -> Executor {
        let solver = IncrementalSolver::with_config(config.solver);
        Executor {
            proc_name,
            cfg,
            init_env,
            inputs,
            pool,
            config,
            solver,
            sweep_feedback: None,
            warm_trie_entries: 0,
            summaries: None,
        }
    }

    /// Warm-starts this executor from persisted state: seeds the
    /// incremental solver's interner and prefix trie from `snapshot`
    /// (terms are re-interned, so snapshots survive process boundaries)
    /// and primes the sweep-feedback ratio that scales the speculative
    /// sweep's [`SweepBudget::Auto`](crate::SweepBudget) grant. Returns
    /// the number of decided prefixes restored.
    ///
    /// Restored verdicts are byte-for-byte what this executor would have
    /// computed itself (the [`dise_solver::SharedTrie`] determinism
    /// argument), **provided the snapshot was produced under the same
    /// solver configuration** — callers gate on
    /// [`SolverConfig::cache_key`]. Call before the first
    /// [`Executor::explore`]; an invalid snapshot restores nothing.
    pub fn warm_start(&mut self, snapshot: &TrieSnapshot, sweep_feedback: Option<f64>) -> u64 {
        let imported = self.solver.import_trie(snapshot) as u64;
        self.warm_trie_entries += imported;
        if sweep_feedback.is_some() {
            self.sweep_feedback = sweep_feedback;
        }
        imported
    }

    /// Exports the solver's warm state (interner + decided prefix-trie
    /// entries) for persistence — the payload of a `dise --store`
    /// directory entry.
    pub fn trie_snapshot(&self) -> TrieSnapshot {
        self.solver.export_trie()
    }

    /// Packages this executor's warm state for an in-process handoff to
    /// the executor of a *later pipeline stage or version hop*: the trie
    /// snapshot, the measured sweep-consumption ratio, and the solver
    /// cache key the state was produced under. The in-memory analogue of
    /// a store round-trip, used by `dise-core`'s `AnalysisSession` to
    /// chain multi-version runs without touching disk.
    pub fn warm_handoff(&self) -> WarmHandoff {
        WarmHandoff {
            trie: self.trie_snapshot(),
            sweep_feedback: self.sweep_feedback,
            solver_key: self.config.solver.cache_key(),
        }
    }

    /// Warm-starts this executor from a [`WarmHandoff`]. Returns the
    /// number of decided prefixes restored, or `None` (restoring nothing)
    /// when the handoff was produced under a different solver
    /// configuration — differently budgeted solvers must not share
    /// verdicts.
    pub fn warm_start_from(&mut self, handoff: &WarmHandoff) -> Option<u64> {
        if handoff.solver_key != self.config.solver.cache_key() {
            return None;
        }
        Some(self.warm_start(&handoff.trie, handoff.sweep_feedback))
    }

    /// The measured trie-consumption ratio of the most recent speculative
    /// sweep (answers the authoritative pass consumed per speculative
    /// state), if one ran — persisted so later one-shot runs size their
    /// automatic sweep budget from measurement instead of the
    /// proportional default.
    pub fn sweep_feedback(&self) -> Option<f64> {
        self.sweep_feedback
    }

    /// The CFG being executed (shared with the static analyses in
    /// `dise-core`).
    pub fn cfg(&self) -> &Cfg {
        &self.cfg
    }

    /// The symbolic-variable pool (for callers that need fresh variables
    /// consistent with this run).
    pub fn pool(&self) -> &VarPool {
        &self.pool
    }

    /// The initial symbolic environment: parameters and uninitialized
    /// globals bound to fresh symbolic variables, initialized globals bound
    /// to their concrete initial values.
    pub fn init_env(&self) -> &Env {
        &self.init_env
    }

    /// The symbolic inputs: `(program variable, symbolic variable)` in
    /// declaration order (parameters first), same shape as
    /// [`SymbolicSummary::inputs`].
    pub fn inputs(&self) -> &[(String, SymVar)] {
        &self.inputs
    }

    /// Runs the exploration with the given strategy.
    ///
    /// With [`ExecConfig::jobs`] > 1 the work-stealing parallel frontier
    /// takes over (unless [`ExecConfig::record_tree`] is set, which only
    /// the serial engine supports); the resulting paths, path conditions,
    /// and outcomes are byte-identical to the serial run's for
    /// non-truncated explorations — only timing- and cache-dependent
    /// counters differ. See [`crate::frontier`].
    ///
    /// The reported [`ExecStats::solver`] counters cover this run only,
    /// even though the solver itself (with its prefix trie and caches)
    /// persists across runs of the same executor.
    pub fn explore(&mut self, strategy: &mut dyn Strategy) -> SymbolicSummary {
        let mut summary = if self.config.jobs > 1 && !self.config.record_tree {
            crate::frontier::explore_parallel(self, strategy)
        } else {
            self.explore_serial(strategy)
        };
        summary.stats.frontier.warm_trie_entries = self.warm_trie_entries;
        summary
    }

    /// The serial depth-first engine (also the authoritative replay pass
    /// of the parallel frontier's speculative mode).
    pub(crate) fn explore_serial(&mut self, strategy: &mut dyn Strategy) -> SymbolicSummary {
        let start = Instant::now();
        let solver_before = self.solver.stats();
        let mut run = Run {
            cfg: &self.cfg,
            config: &self.config,
            solver: &mut self.solver,
            strategy,
            paths: Vec::new(),
            stats: ExecStats::default(),
            tree: if self.config.record_tree {
                Some(ExecTree::new())
            } else {
                None
            },
            trace: Vec::new(),
            summaries: self.summaries.as_deref(),
        };
        let initial = SymState::initial(self.cfg.begin(), self.init_env.clone());
        run.dfs(initial);
        let mut stats = run.stats;
        let paths = run.paths;
        let tree = run.tree;
        // Unwind anything a truncated run left on the solver stack.
        self.solver.reset();
        stats.elapsed = start.elapsed();
        stats.solver = self.solver.stats().delta_since(&solver_before);
        SymbolicSummary {
            proc_name: self.proc_name.clone(),
            inputs: self.inputs.clone(),
            paths,
            stats,
            tree,
        }
    }
}

/// The entry environment, the named symbolic inputs, and the pool that
/// minted them.
type EntryEnv = (Env, Vec<(String, SymVar)>, VarPool);

/// Builds the top-level entry environment shared by [`Executor::new`] and
/// [`Executor::with_summaries`]: parameters and uninitialized globals get
/// fresh symbolic variables, initialized globals their concrete values.
fn toplevel_env(program: &Program, procedure: &dise_ir::Procedure) -> Result<EntryEnv, ExecError> {
    let mut pool = VarPool::new();
    let mut env = Env::new();
    let mut inputs = Vec::new();
    for param in &procedure.params {
        let ty = match param.ty {
            dise_ir::Type::Int => SymTy::Int,
            dise_ir::Type::Bool => SymTy::Bool,
        };
        let var = pool.fresh(symbolic_name(&param.name), ty);
        env.bind(&param.name, SymExpr::var(&var));
        inputs.push((param.name.clone(), var));
    }
    for global in &program.globals {
        match &global.init {
            Some(init) => {
                let value = eval_symbolic(init, &Env::new())?;
                env.bind(&global.name, value);
            }
            None => {
                let ty = match global.ty {
                    dise_ir::Type::Int => SymTy::Int,
                    dise_ir::Type::Bool => SymTy::Bool,
                };
                let var = pool.fresh(symbolic_name(&global.name), ty);
                env.bind(&global.name, SymExpr::var(&var));
                inputs.push((global.name.clone(), var));
            }
        }
    }
    Ok((env, inputs, pool))
}

/// The symbolic-input naming convention: the paper writes the symbolic
/// value of variable `x` as `X`.
pub(crate) fn symbolic_name(program_name: &str) -> String {
    let mut chars = program_name.chars();
    match chars.next() {
        Some(first) => first.to_uppercase().chain(chars).collect(),
        None => String::new(),
    }
}

/// A successor candidate: the state, the branch literals it adds to the
/// path condition (pushed onto the incremental solver before the
/// feasibility check — branches and symbolic assumes contribute exactly
/// one, instantiated summary paths zero or more), and whether it came
/// from a symbolic fork (a choice point).
pub(crate) struct Succ {
    pub(crate) state: SymState,
    pub(crate) lits: Vec<SymExpr>,
    /// A witness model for `lits` recorded when the summary was built,
    /// translated to caller variables. When it checks out against the
    /// whole solver stack by evaluation, the feasibility checks are
    /// answered without any solver pipeline work.
    pub(crate) hint: Option<Model>,
    pub(crate) forked: bool,
    /// Whether this candidate came from a summary instantiation (for
    /// [`SummaryStats`] attribution).
    pub(crate) from_call: bool,
}

impl Succ {
    fn plain(state: SymState) -> Succ {
        Succ {
            state,
            lits: Vec::new(),
            hint: None,
            forked: false,
            from_call: false,
        }
    }

    fn with_lit(state: SymState, lit: SymExpr, forked: bool) -> Succ {
        Succ {
            state,
            lits: vec![lit],
            hint: None,
            forked,
            from_call: false,
        }
    }
}

/// Outcome of pushing a successor's literals onto the solver.
pub(crate) struct PushResult {
    /// How many literals are now on the stack (all of them when feasible;
    /// the prefix up to and including the failing one when not — the
    /// caller pops exactly this many).
    pub(crate) pushed: usize,
    pub(crate) feasible: bool,
    /// Whether every literal was discharged through the witness-hint fast
    /// path (no solver pipeline work at all).
    pub(crate) hint_verified: bool,
    /// Solver pipeline checks (incremental + fallback) spent on these
    /// literals.
    pub(crate) checks: u64,
}

/// Pushes a successor's literals, answering feasibility via the witness
/// hint when possible. The hint candidate is the solver's current model
/// overlaid with the hint's assignments (hint wins); if it satisfies every
/// literal already on the stack plus all new ones by direct evaluation,
/// each literal is recorded as SAT with that model (and learned by the
/// prefix trie) without touching the solver pipeline. Any miss falls back
/// to the ordinary push + check sequence for the remaining literals.
pub(crate) fn push_succ_lits(
    solver: &mut IncrementalSolver,
    lits: Vec<SymExpr>,
    hint: Option<&Model>,
    unknown_is_sat: bool,
) -> PushResult {
    if lits.is_empty() {
        return PushResult {
            pushed: 0,
            feasible: true,
            hint_verified: false,
            checks: 0,
        };
    }
    let candidate = hint.map(|hint| {
        let mut model = solver.model().cloned().unwrap_or_default();
        for (id, value) in hint.iter() {
            model.set(id, value);
        }
        model
    });
    let before = solver.stats();
    let mut pushed = 0;
    let mut hint_verified = candidate.is_some();
    for lit in lits {
        let verified = match &candidate {
            Some(model) if hint_verified => solver.push_verified(lit, model),
            _ => {
                solver.push(lit);
                false
            }
        };
        pushed += 1;
        if !verified {
            hint_verified = false;
            let feasible = match solver.check() {
                SatResult::Sat => true,
                SatResult::Unsat => false,
                SatResult::Unknown => unknown_is_sat,
            };
            if !feasible {
                let delta = solver.stats().delta_since(&before);
                return PushResult {
                    pushed,
                    feasible: false,
                    hint_verified: false,
                    checks: delta.pipeline_checks(),
                };
            }
        }
    }
    let delta = solver.stats().delta_since(&before);
    PushResult {
        pushed,
        feasible: true,
        hint_verified,
        checks: delta.pipeline_checks(),
    }
}

/// How a just-entered state is classified, in the order Fig. 6 fixes:
/// error and depth-bound terminate *before* the strategy is notified
/// (line 5), the exit node notifies and completes, everything else is an
/// interior state with successors. Shared by the serial DFS and the
/// parallel frontier workers so the two engines classify states
/// identically by construction.
pub(crate) enum EntryKind {
    /// A failed assertion: terminate, never notify the strategy.
    Error(String),
    /// The depth bound cut the path off: terminate, never notify.
    DepthBounded,
    /// The procedure exit: notify, then complete the path.
    Completed,
    /// An interior state: notify, then generate successors.
    Interior,
}

/// Classifies a just-entered state. See [`EntryKind`].
pub(crate) fn classify_entry(cfg: &Cfg, config: &ExecConfig, state: &SymState) -> EntryKind {
    // An error inherited from an instantiated summary path terminates the
    // state exactly as the callee's own error node would have under
    // inlining.
    if let Some(message) = &state.pending_error {
        return EntryKind::Error(message.clone());
    }
    let node = cfg.node(state.node);
    if let NodeKind::Error { message } = &node.kind {
        return EntryKind::Error(message.clone());
    }
    if let Some(bound) = config.depth_bound {
        if state.depth >= bound && !matches!(node.kind, NodeKind::End) {
            return EntryKind::DepthBounded;
        }
    }
    if matches!(node.kind, NodeKind::End) {
        return EntryKind::Completed;
    }
    EntryKind::Interior
}

/// The feasible-successor candidates of `state`, in the order Fig. 6
/// explores them (true branch before false branch). Shared by the serial
/// DFS and the parallel frontier workers so both step states identically.
/// `infeasible` is bumped when a concretely false `assume` kills the path.
pub(crate) fn successor_candidates(
    cfg: &Cfg,
    state: &SymState,
    infeasible: &mut u64,
    summaries: Option<&SummaryTable>,
    sstats: &mut SummaryStats,
) -> Vec<Succ> {
    let plain = Succ::plain;
    let node = cfg.node(state.node);
    match &node.kind {
        NodeKind::Begin | NodeKind::Nop => cfg
            .succs(state.node)
            .iter()
            .map(|&(succ, _)| plain(state.step_to(succ)))
            .collect(),
        NodeKind::Assign { var, value } => {
            let value = eval_symbolic(value, &state.env)
                .expect("type-checked program has no unbound variables");
            let succ = cfg.succs(state.node)[0].0;
            let mut next = state.step_to(succ);
            next.env = state.env.with(var.clone(), value);
            vec![plain(next)]
        }
        NodeKind::Assume { cond } => {
            let cond = eval_symbolic(cond, &state.env)
                .expect("type-checked program has no unbound variables");
            match cond.as_bool() {
                Some(true) => {
                    let succ = cfg.succs(state.node)[0].0;
                    vec![plain(state.step_to(succ))]
                }
                Some(false) => {
                    *infeasible += 1;
                    Vec::new()
                }
                None => {
                    let succ = cfg.succs(state.node)[0].0;
                    let mut next = state.step_to(succ);
                    next.pc = state.pc.and(cond.clone());
                    vec![Succ::with_lit(next, cond, false)]
                }
            }
        }
        NodeKind::Branch { cond } => {
            let cond = eval_symbolic(cond, &state.env)
                .expect("type-checked program has no unbound variables");
            let true_succ = cfg.true_succ(state.node);
            let false_succ = cfg.false_succ(state.node);
            match cond.as_bool() {
                // A concrete condition is not a choice point: SPF
                // would simply continue executing.
                Some(true) => vec![plain(state.step_to(true_succ))],
                Some(false) => vec![plain(state.step_to(false_succ))],
                None => {
                    let negated = SymExpr::not(cond.clone());
                    let mut taken = state.step_to(true_succ);
                    taken.pc = state.pc.and(cond.clone());
                    let mut not_taken = state.step_to(false_succ);
                    not_taken.pc = state.pc.and(negated.clone());
                    vec![
                        Succ::with_lit(taken, cond, true),
                        Succ::with_lit(not_taken, negated, true),
                    ]
                }
            }
        }
        NodeKind::Call { callee, args } => {
            let summary = summaries
                .and_then(|table| table.get(callee))
                .expect("call node reached without a summary: with_summaries validates the table");
            sstats.call_sites += 1;
            let succ_node = cfg.succs(state.node)[0].0;
            let paths = crate::summary::instantiate(summary, args, &state.env);
            let mut out = Vec::new();
            for path in paths {
                sstats.paths_instantiated += 1;
                let mut next = state.step_to(succ_node);
                next.env = path.env;
                for lit in &path.lits {
                    next.pc = next.pc.and(lit.clone());
                }
                next.pending_error = path.error;
                out.push(Succ {
                    state: next,
                    lits: path.lits,
                    hint: path.hint,
                    forked: false,
                    from_call: true,
                });
            }
            // Multiple feasible summary paths are a choice point exactly
            // like a symbolic branch inside the inlined callee.
            if out.len() > 1 {
                for succ in &mut out {
                    succ.forked = true;
                }
            }
            out
        }
        NodeKind::End | NodeKind::Error { .. } => Vec::new(),
    }
}

struct Frame {
    node: NodeId,
    /// Remaining successors, in *reverse* exploration order — the next
    /// candidate is `successors.pop()`, which hands out ownership without
    /// cloning the state.
    successors: Vec<Succ>,
    tree_index: Option<usize>,
    /// Whether [`Strategy::on_enter`] ran for this state (Fig. 6 line 5
    /// returns *before* `UpdateExploredSet` for depth-bounded and error
    /// states, so those never notify the strategy).
    notified: bool,
    /// How many of this state's branch literals are on the solver stack
    /// (popped when the frame completes). Branches push one; instantiated
    /// summary paths can push several.
    pushed: usize,
}

struct Run<'a> {
    cfg: &'a Cfg,
    config: &'a ExecConfig,
    solver: &'a mut IncrementalSolver,
    strategy: &'a mut dyn Strategy,
    paths: Vec<PathSummary>,
    stats: ExecStats,
    tree: Option<ExecTree>,
    trace: Vec<NodeId>,
    summaries: Option<&'a SummaryTable>,
}

impl Run<'_> {
    fn dfs(&mut self, initial: SymState) {
        let mut stack: Vec<Frame> = Vec::new();
        let root = self.enter(initial, None);
        stack.push(root);
        while let Some(top) = stack.last_mut() {
            if self.stats.truncated {
                break;
            }
            let Some(succ) = top.successors.pop() else {
                let node = top.node;
                let notified = top.notified;
                let pushed = top.pushed;
                stack.pop();
                for _ in 0..pushed {
                    self.solver.pop();
                }
                if notified {
                    self.strategy.on_leave(node);
                }
                if self.config.record_traces {
                    self.trace.pop();
                }
                continue;
            };
            let parent_tree = top.tree_index;
            let Succ {
                state: succ,
                lits,
                hint,
                forked,
                from_call,
            } = succ;
            // Push the branch literals and check the extended prefix; the
            // solver only processes the delta. Summary-path literals carry
            // a witness hint that usually answers the checks by evaluation.
            let had_lits = !lits.is_empty();
            let result =
                push_succ_lits(self.solver, lits, hint.as_ref(), self.config.unknown_is_sat);
            if from_call && had_lits {
                if result.hint_verified {
                    self.stats.summary.hint_verified += 1;
                }
                self.stats.summary.fallback_checks += result.checks;
            }
            let pushed = result.pushed;
            if !result.feasible {
                self.stats.infeasible += 1;
                for _ in 0..pushed {
                    self.solver.pop();
                }
                continue;
            }
            let filtered = match self.config.filter_scope {
                FilterScope::AllStates => true,
                FilterScope::ChoicePoints => forked,
            };
            if filtered && !self.strategy.should_explore(succ.node) {
                self.stats.pruned += 1;
                if self.config.record_pruned {
                    let mut trace = self.trace.clone();
                    trace.push(succ.node);
                    self.paths.push(PathSummary {
                        pc: succ.pc,
                        outcome: PathOutcome::Pruned,
                        final_env: succ.env,
                        trace,
                    });
                }
                for _ in 0..pushed {
                    self.solver.pop();
                }
                continue;
            }
            let mut frame = self.enter(succ, parent_tree);
            frame.pushed = pushed;
            stack.push(frame);
        }
        // Unwind any remaining trace entries (possible after truncation;
        // the caller resets the solver stack).
        self.trace.clear();
    }

    /// State entry: counting, hooks, terminal detection, successor
    /// generation. Returns the frame to push.
    fn enter(&mut self, state: SymState, parent_tree: Option<usize>) -> Frame {
        self.stats.states_explored += 1;
        if let Some(max) = self.config.max_states {
            if self.stats.states_explored >= max {
                self.stats.truncated = true;
            }
        }
        if self.config.record_traces {
            self.trace.push(state.node);
        }
        let tree_index = self
            .tree
            .as_mut()
            .map(|tree| tree.record(parent_tree, &state, self.cfg));

        // Fig. 6 line 5: depth-bounded and error states return *before*
        // `UpdateExploredSet` runs — they never notify the strategy.
        match classify_entry(self.cfg, self.config, &state) {
            EntryKind::Error(message) => {
                self.stats.paths_error += 1;
                self.record_path(&state, PathOutcome::Error(message));
                return Frame {
                    node: state.node,
                    successors: Vec::new(),
                    tree_index,
                    notified: false,
                    pushed: 0,
                };
            }
            EntryKind::DepthBounded => {
                self.stats.paths_depth_bounded += 1;
                self.record_path(&state, PathOutcome::DepthBounded);
                return Frame {
                    node: state.node,
                    successors: Vec::new(),
                    tree_index,
                    notified: false,
                    pushed: 0,
                };
            }
            EntryKind::Completed => {
                self.strategy.on_enter(state.node);
                self.stats.paths_completed += 1;
                self.record_path(&state, PathOutcome::Completed);
                return Frame {
                    node: state.node,
                    successors: Vec::new(),
                    tree_index,
                    notified: true,
                    pushed: 0,
                };
            }
            EntryKind::Interior => {}
        }
        self.strategy.on_enter(state.node);

        // Successors are stored reversed so the DFS can take ownership of
        // the next candidate with a pop() instead of a clone.
        let mut successors = self.successors(&state);
        successors.reverse();
        Frame {
            node: state.node,
            successors,
            tree_index,
            notified: true,
            pushed: 0,
        }
    }

    fn record_path(&mut self, state: &SymState, outcome: PathOutcome) {
        self.paths.push(PathSummary {
            pc: state.pc.clone(),
            outcome,
            final_env: state.env.clone(),
            trace: if self.config.record_traces {
                self.trace.clone()
            } else {
                Vec::new()
            },
        });
    }

    /// The feasible-successor candidates of a state, in the order Fig. 6
    /// explores them (true branch before false branch).
    fn successors(&mut self, state: &SymState) -> Vec<Succ> {
        successor_candidates(
            self.cfg,
            state,
            &mut self.stats.infeasible,
            self.summaries,
            &mut self.stats.summary,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dise_ir::parse_program;

    fn run_full(src: &str, proc: &str) -> SymbolicSummary {
        let program = parse_program(src).unwrap();
        dise_ir::check_program(&program).unwrap();
        let mut executor = Executor::new(&program, proc, ExecConfig::default()).unwrap();
        executor.explore(&mut FullExploration)
    }

    #[test]
    fn figure1_testx_has_two_paths() {
        let summary = run_full(
            "int y;
             proc testX(int x) {
               if (x > 0) { y = y + x; } else { y = y - x; }
             }",
            "testX",
        );
        assert_eq!(summary.pc_count(), 2);
        let pcs: Vec<String> = summary.path_conditions().map(|pc| pc.to_string()).collect();
        assert_eq!(pcs, vec!["X > 0", "X <= 0"]);
        // Final env on the first path: y = Y + X (Fig. 1).
        let first = &summary.paths()[0];
        assert_eq!(first.final_env.get("y").unwrap().to_string(), "Y + X");
        assert_eq!(
            summary.paths()[1].final_env.get("y").unwrap().to_string(),
            "Y - X"
        );
    }

    #[test]
    fn infeasible_paths_are_dropped() {
        let summary = run_full(
            "proc f(int x) {
               if (x > 5) {
                 if (x < 3) { x = 1; } else { x = 2; }
               }
             }",
            "f",
        );
        // Feasible paths: x>5 (inner else) and x≤5; x>5 ∧ x<3 is pruned.
        assert_eq!(summary.pc_count(), 2);
        assert!(summary.stats().infeasible >= 1);
    }

    #[test]
    fn nested_branching_multiplies_paths() {
        let summary = run_full(
            "proc f(int a, int b, int c) {
               if (a > 0) { skip; }
               if (b > 0) { skip; }
               if (c > 0) { skip; }
             }",
            "f",
        );
        assert_eq!(summary.pc_count(), 8);
    }

    #[test]
    fn concrete_branches_do_not_fork() {
        let summary = run_full(
            "proc f(int x) {
               int t = 3;
               if (t > 0) { x = 1; } else { x = 2; }
             }",
            "f",
        );
        // `t > 0` folds to true: one path, no solver involvement.
        assert_eq!(summary.pc_count(), 1);
        assert_eq!(summary.stats().solver.checks, 0);
    }

    #[test]
    fn assertion_failure_produces_error_path() {
        let summary = run_full(
            "proc f(int x) {
               assert(x > 0);
               x = x + 1;
             }",
            "f",
        );
        assert_eq!(summary.stats().paths_error, 1);
        assert_eq!(summary.stats().paths_completed, 1);
        assert_eq!(summary.pc_count(), 2);
        let error_path = summary
            .paths()
            .iter()
            .find(|p| matches!(p.outcome, PathOutcome::Error(_)))
            .unwrap();
        assert_eq!(error_path.pc.to_string(), "X <= 0");
    }

    #[test]
    fn assume_prunes_half_the_space() {
        let summary = run_full(
            "proc f(int x) {
               assume(x > 0);
               if (x > 10) { skip; }
             }",
            "f",
        );
        assert_eq!(summary.pc_count(), 2);
        for pc in summary.path_conditions() {
            assert!(pc.to_string().starts_with("X > 0"));
        }
    }

    #[test]
    fn loop_requires_depth_bound() {
        let program = parse_program(
            "proc f(int x) {
               while (x > 0) { x = x - 1; }
             }",
        )
        .unwrap();
        let config = ExecConfig {
            depth_bound: Some(12),
            ..ExecConfig::default()
        };
        let mut executor = Executor::new(&program, "f", config).unwrap();
        let summary = executor.explore(&mut FullExploration);
        // Some paths complete (x ≤ 0, x = 1, …); at least one hits the bound.
        assert!(summary.stats().paths_completed > 0);
        assert!(summary.stats().paths_depth_bounded > 0);
        // Depth-bounded paths do not contribute path conditions.
        assert_eq!(
            summary.pc_count() as u64,
            summary.stats().paths_completed + summary.stats().paths_error
        );
    }

    #[test]
    fn loop_unrolls_within_bound() {
        let program = parse_program(
            "proc f(int x) {
               int n = 0;
               while (n < x) { n = n + 1; }
             }",
        )
        .unwrap();
        let config = ExecConfig {
            depth_bound: Some(50),
            ..ExecConfig::default()
        };
        let mut executor = Executor::new(&program, "f", config).unwrap();
        let summary = executor.explore(&mut FullExploration);
        // Completed paths: x ≤ 0 (no iterations), x = 1, x = 2, …
        assert!(summary.stats().paths_completed >= 5);
        // The zero-iteration path is among them (DFS takes the true branch
        // first, so it is the last completed path, not the first).
        assert!(summary
            .paths()
            .iter()
            .any(|p| p.outcome == PathOutcome::Completed && p.pc.to_string() == "0 >= X"));
    }

    #[test]
    fn initialized_globals_start_concrete() {
        let summary = run_full(
            "int g = 7;
             proc f(int x) {
               if (g > 0) { x = 1; } else { x = 2; }
             }",
            "f",
        );
        // g is concrete ⇒ no branching on it.
        assert_eq!(summary.pc_count(), 1);
        assert_eq!(summary.inputs().len(), 1); // only x
    }

    #[test]
    fn uninitialized_globals_are_symbolic_inputs() {
        let summary = run_full(
            "int g;
             proc f(int x) {
               if (g > x) { skip; }
             }",
            "f",
        );
        assert_eq!(summary.pc_count(), 2);
        let names: Vec<&str> = summary.inputs().iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, vec!["x", "g"]);
    }

    #[test]
    fn max_states_truncates() {
        let program = parse_program("proc f(int x) { while (x > 0) { x = x - 1; } }").unwrap();
        let config = ExecConfig {
            depth_bound: Some(1000),
            max_states: Some(20),
            ..ExecConfig::default()
        };
        let mut executor = Executor::new(&program, "f", config).unwrap();
        let summary = executor.explore(&mut FullExploration);
        assert!(summary.stats().truncated);
        assert!(summary.stats().states_explored <= 21);
    }

    #[test]
    fn missing_procedure_errors() {
        let program = parse_program("proc f() { skip; }").unwrap();
        assert_eq!(
            Executor::new(&program, "g", ExecConfig::default()).unwrap_err(),
            ExecError::MissingProcedure("g".into())
        );
    }

    #[test]
    fn traces_follow_cfg_paths() {
        let summary = run_full(
            "proc f(int x) { if (x > 0) { x = 1; } else { x = 2; } }",
            "f",
        );
        for path in summary.paths() {
            let trace = &path.trace;
            assert!(!trace.is_empty());
            // Each consecutive pair is a CFG edge.
            for pair in trace.windows(2) {
                let program =
                    parse_program("proc f(int x) { if (x > 0) { x = 1; } else { x = 2; } }")
                        .unwrap();
                let cfg = build_cfg(program.proc("f").unwrap());
                assert!(
                    cfg.succs(pair[0]).iter().any(|&(s, _)| s == pair[1]),
                    "{} -> {} is not an edge",
                    pair[0],
                    pair[1]
                );
            }
        }
    }

    #[test]
    fn pruning_strategy_cuts_exploration() {
        struct PruneEverything;
        impl Strategy for PruneEverything {
            fn should_explore(&mut self, _node: NodeId) -> bool {
                false
            }
        }
        let program =
            parse_program("proc f(int x) { if (x > 0) { x = 1; } else { x = 2; } }").unwrap();
        let mut executor = Executor::new(&program, "f", ExecConfig::default()).unwrap();
        let summary = executor.explore(&mut PruneEverything);
        // Under the default ChoicePoints scope the straight-line prefix
        // (begin + the branch node) is entered, then both symbolic arms
        // are pruned.
        assert_eq!(summary.stats().states_explored, 2);
        assert_eq!(summary.pc_count(), 0);
        assert_eq!(summary.stats().pruned, 2);

        // The literal AllStates scope filters the very first successor.
        let config = ExecConfig {
            filter_scope: FilterScope::AllStates,
            ..ExecConfig::default()
        };
        let mut executor = Executor::new(&program, "f", config).unwrap();
        let summary = executor.explore(&mut PruneEverything);
        assert_eq!(summary.stats().states_explored, 1);
        assert_eq!(summary.pc_count(), 0);
    }

    #[test]
    fn solver_stats_expose_incremental_activity() {
        // Pinned to the serial engine: these counters describe the serial
        // check sequence (parallel workers add replay checks).
        let program = parse_program(
            "proc f(int x, int y) {
               if (x > 0) { skip; }
               if (y > 0) { skip; }
             }",
        )
        .unwrap();
        dise_ir::check_program(&program).unwrap();
        let config = ExecConfig {
            jobs: 1,
            ..ExecConfig::default()
        };
        let mut executor = Executor::new(&program, "f", config).unwrap();
        let summary = executor.explore(&mut FullExploration);
        let solver = &summary.stats().solver;
        // Every feasibility check went through the incremental tier; there
        // is nothing disjunctive here, so no monolithic fallback.
        assert_eq!(solver.checks, solver.incremental_checks);
        assert_eq!(solver.fallback_checks, 0);
        // Extending a SAT prefix with an independent branch literal is the
        // model-reuse case.
        assert!(solver.model_reuse_hits > 0, "{solver:?}");
    }

    #[test]
    fn repeated_exploration_answers_from_the_prefix_trie() {
        let program = parse_program(
            "proc f(int x, int y) {
               if (x > 0) { skip; }
               if (y > x) { skip; }
             }",
        )
        .unwrap();
        // Pinned to the serial engine: the cross-run trie arithmetic below
        // describes the serial check sequence.
        let config = ExecConfig {
            jobs: 1,
            ..ExecConfig::default()
        };
        let mut executor = Executor::new(&program, "f", config).unwrap();
        let first = executor.explore(&mut FullExploration);
        let second = executor.explore(&mut FullExploration);
        assert_eq!(second.pc_count(), first.pc_count());
        let solver = &second.stats().solver;
        // The solver (and its prefix trie) persists across runs: every
        // re-checked prefix is answered from the trie, with no pipeline
        // activity at all.
        assert_eq!(solver.checks, first.stats().solver.checks);
        assert!(solver.prefix_cache_hits > 0, "{solver:?}");
        assert_eq!(solver.model_searches, 0, "{solver:?}");
        assert_eq!(solver.fm_runs, 0, "{solver:?}");
    }

    #[test]
    fn strategy_hooks_fire_in_dfs_order() {
        #[derive(Default)]
        struct Recorder {
            entered: Vec<NodeId>,
        }
        impl Strategy for Recorder {
            fn on_enter(&mut self, node: NodeId) {
                self.entered.push(node);
            }
        }
        let program =
            parse_program("proc f(int x) { if (x > 0) { x = 1; } else { x = 2; } }").unwrap();
        let mut executor = Executor::new(&program, "f", ExecConfig::default()).unwrap();
        let cfg_len = executor.cfg().len();
        let mut recorder = Recorder::default();
        let summary = executor.explore(&mut recorder);
        assert_eq!(
            recorder.entered.len() as u64,
            summary.stats().states_explored
        );
        // Every CFG node is visited at least once in this tiny program;
        // the join (end) twice.
        assert!(recorder.entered.len() > cfg_len - 2);
    }
}
