//! The symbolic environment: program variables → symbolic expressions.

use std::collections::BTreeMap;
use std::fmt;

use dise_solver::SymExpr;

/// An immutable-by-convention map from program-variable names to their
/// current symbolic values. Cloning is cheap: values share sub-expressions
/// via `Arc`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Env {
    bindings: BTreeMap<String, SymExpr>,
}

impl Env {
    /// The empty environment.
    pub fn new() -> Env {
        Env::default()
    }

    /// The symbolic value of `name`, if bound.
    pub fn get(&self, name: &str) -> Option<&SymExpr> {
        self.bindings.get(name)
    }

    /// Binds (or rebinds) `name` in place.
    pub fn bind(&mut self, name: impl Into<String>, value: SymExpr) {
        self.bindings.insert(name.into(), value);
    }

    /// Returns a copy with `name` rebound — the successor environment of
    /// an assignment.
    pub fn with(&self, name: impl Into<String>, value: SymExpr) -> Env {
        let mut next = self.clone();
        next.bind(name, value);
        next
    }

    /// Iterates over `(name, value)` in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &SymExpr)> {
        self.bindings.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Number of bindings.
    pub fn len(&self) -> usize {
        self.bindings.len()
    }

    /// Returns `true` if no variable is bound.
    pub fn is_empty(&self) -> bool {
        self.bindings.is_empty()
    }
}

impl fmt::Display for Env {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for (name, value) in &self.bindings {
            if !first {
                f.write_str(", ")?;
            }
            write!(f, "{name}: {value}")?;
            first = false;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dise_solver::{SymTy, VarPool};

    #[test]
    fn bind_and_get() {
        let mut pool = VarPool::new();
        let x = pool.fresh("X", SymTy::Int);
        let mut env = Env::new();
        env.bind("x", SymExpr::var(&x));
        assert_eq!(env.get("x"), Some(&SymExpr::var(&x)));
        assert_eq!(env.get("y"), None);
        assert_eq!(env.len(), 1);
    }

    #[test]
    fn with_does_not_mutate_original() {
        let mut env = Env::new();
        env.bind("x", SymExpr::int(1));
        let next = env.with("x", SymExpr::int(2));
        assert_eq!(env.get("x"), Some(&SymExpr::int(1)));
        assert_eq!(next.get("x"), Some(&SymExpr::int(2)));
    }

    #[test]
    fn display_matches_paper_style() {
        let mut pool = VarPool::new();
        let x = pool.fresh("X", SymTy::Int);
        let y = pool.fresh("Y", SymTy::Int);
        let mut env = Env::new();
        env.bind("x", SymExpr::var(&x));
        env.bind("y", SymExpr::add(SymExpr::var(&y), SymExpr::var(&x)));
        assert_eq!(env.to_string(), "x: X, y: Y + X");
    }

    #[test]
    fn empty_env() {
        let env = Env::new();
        assert!(env.is_empty());
        assert_eq!(env.to_string(), "");
    }
}
