//! Concolic (concrete-input-directed) single-path symbolic execution.
//!
//! Runs the procedure *symbolically* — building a path condition and
//! symbolic variable values exactly like the full engine — but resolves
//! every branch by evaluating its condition on a *concrete* input, so
//! exactly one path is explored: the path the concrete input drives.
//!
//! The result pairs the concrete run's data (trace, decisions, concrete
//! final values) with the symbolic characterization of that path (path
//! condition, symbolic final environment). The differential application
//! uses this to compare *what two program versions compute* on a common
//! input region: run both versions concolically on the same input, then
//! ask the solver whether the symbolic effects can differ anywhere in the
//! intersection of the two path conditions — a lightweight form of the
//! differential symbolic execution the paper cites as \[27\].
//!
//! Constraint collection mirrors [`crate::Executor`] exactly: branch
//! conditions that fold to a constant add no constraint, symbolic
//! conditions add `cond` / `!cond` according to the direction taken, and
//! symbolic `assume` conditions are added as constraints. Consequently the
//! concolic path condition of input *i* equals the path condition the full
//! engine generates for the path containing *i*.
//!
//! # Examples
//!
//! ```
//! use dise_ir::parse_program;
//! use dise_solver::model::Value;
//! use dise_symexec::concolic::ConcolicExecutor;
//! use dise_symexec::concrete::ConcreteConfig;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let program = parse_program(
//!     "int y;
//!      proc testX(int x) {
//!        if (x > 0) { y = y + x; } else { y = y - x; }
//!      }",
//! )?;
//! let executor = ConcolicExecutor::new(&program, "testX", ConcreteConfig::default())?;
//! let run = executor.run(&[("x".into(), Value::Int(3))].into());
//! assert_eq!(run.pc.to_string(), "X > 0");
//! assert_eq!(run.final_env.get("y").unwrap().to_string(), "Y + X");
//! # Ok(())
//! # }
//! ```

use dise_cfg::{Cfg, NodeId, NodeKind};
use dise_ir::ast::Program;
use dise_solver::{PathCondition, SymExpr, SymVar};

use crate::concrete::{
    eval_concrete, ConcreteConfig, ConcreteEvalError, ConcreteExecutor, ConcreteOutcome, ValueEnv,
};
use crate::env::Env;
use crate::eval::eval_symbolic;
use crate::executor::{ExecConfig, ExecError, Executor};

/// The record of one concolic execution: one concrete path with its
/// symbolic characterization.
#[derive(Debug, Clone)]
pub struct ConcolicRun {
    /// How the run ended (same vocabulary as a concrete run).
    pub outcome: ConcreteOutcome,
    /// The path condition of the executed path — the constraints any input
    /// must satisfy to follow the same path.
    pub pc: PathCondition,
    /// Symbolic values of all variables when the run ended.
    pub final_env: Env,
    /// Concrete values of all variables when the run ended.
    pub final_values: ValueEnv,
    /// Every CFG node visited, in order.
    pub trace: Vec<NodeId>,
    /// The decision taken at each symbolic branch, in order.
    pub decisions: Vec<(NodeId, bool)>,
}

/// Concolic executor for one procedure of one program.
#[derive(Debug, Clone)]
pub struct ConcolicExecutor {
    concrete: ConcreteExecutor,
    /// Initial symbolic environment and inputs, built by the symbolic
    /// engine's own setup so naming and symbolic-variable allocation are
    /// identical to a full symbolic run.
    init_env: Env,
    inputs: Vec<(String, SymVar)>,
    config: ConcreteConfig,
}

impl ConcolicExecutor {
    /// Prepares concolic execution of `proc_name` in `program`.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Executor::new`]: [`ExecError::MissingProcedure`]
    /// and [`ExecError::ContainsCalls`].
    pub fn new(
        program: &Program,
        proc_name: &str,
        config: ConcreteConfig,
    ) -> Result<ConcolicExecutor, ExecError> {
        let symbolic = Executor::new(program, proc_name, ExecConfig::default())?;
        let concrete = ConcreteExecutor::new(program, proc_name, config)?;
        let init_env = symbolic.init_env().clone();
        let inputs = symbolic.inputs().to_vec();
        Ok(ConcolicExecutor {
            concrete,
            init_env,
            inputs,
            config,
        })
    }

    /// The CFG being executed.
    pub fn cfg(&self) -> &Cfg {
        self.concrete.cfg()
    }

    /// The symbolic inputs: `(program variable, symbolic variable)`, same
    /// shape as [`crate::SymbolicSummary::inputs`].
    pub fn inputs(&self) -> &[(String, SymVar)] {
        &self.inputs
    }

    /// Runs the procedure concolically on `input`. Inputs missing from the
    /// map default to `0` / `false`.
    pub fn run(&self, input: &ValueEnv) -> ConcolicRun {
        // Build the aligned initial environments.
        let mut values = ValueEnv::new();
        let mut env = self.init_env.clone();
        for (name, kind) in self.init_pairs() {
            values.insert(name.to_string(), kind);
        }
        for (name, _) in &self.inputs {
            let concrete = input
                .get(name)
                .copied()
                .unwrap_or_else(|| default_value(&self.init_env, name));
            values.insert(name.clone(), concrete);
        }
        // Symbolic inputs stay symbolic in `env`; initialized globals are
        // already concrete there.
        let cfg = self.concrete.cfg();
        let mut pc = PathCondition::new();
        let mut trace = Vec::new();
        let mut decisions = Vec::new();
        let mut steps: u64 = 0;
        let mut node = cfg.begin();
        let outcome = loop {
            steps += 1;
            trace.push(node);
            if steps > self.config.fuel {
                break ConcreteOutcome::FuelExhausted;
            }
            match &cfg.node(node).kind {
                NodeKind::End => break ConcreteOutcome::Completed,
                NodeKind::Error { message } => {
                    break ConcreteOutcome::AssertionFailure(message.clone())
                }
                NodeKind::Begin | NodeKind::Nop => node = cfg.succs(node)[0].0,
                NodeKind::Assign { var, value } => {
                    match eval_concrete(value, &values) {
                        Ok(v) => {
                            values.insert(var.clone(), v);
                        }
                        Err(e) => break stuck(e),
                    }
                    let sym = eval_symbolic(value, &env)
                        .expect("concrete evaluation succeeded, so all variables are bound");
                    env.bind(var.clone(), sym);
                    node = cfg.succs(node)[0].0;
                }
                NodeKind::Branch { cond } => {
                    let taken = match eval_concrete(cond, &values) {
                        Ok(dise_solver::model::Value::Bool(b)) => b,
                        Ok(_) => break stuck(ConcreteEvalError::TypeMismatch),
                        Err(e) => break stuck(e),
                    };
                    let sym = eval_symbolic(cond, &env)
                        .expect("concrete evaluation succeeded, so all variables are bound");
                    // Mirror the full engine: concrete conditions are not
                    // choice points and add no constraint.
                    if sym.as_bool().is_none() {
                        pc.push(if taken { sym } else { SymExpr::not(sym) });
                        decisions.push((node, taken));
                    }
                    node = if taken {
                        cfg.true_succ(node)
                    } else {
                        cfg.false_succ(node)
                    };
                }
                NodeKind::Assume { cond } => {
                    match eval_concrete(cond, &values) {
                        Ok(dise_solver::model::Value::Bool(true)) => {}
                        Ok(dise_solver::model::Value::Bool(false)) => {
                            break ConcreteOutcome::AssumeViolated
                        }
                        Ok(_) => break stuck(ConcreteEvalError::TypeMismatch),
                        Err(e) => break stuck(e),
                    }
                    let sym = eval_symbolic(cond, &env)
                        .expect("concrete evaluation succeeded, so all variables are bound");
                    if sym.as_bool().is_none() {
                        pc.push(sym);
                    }
                    node = cfg.succs(node)[0].0;
                }
                NodeKind::Call { callee, .. } => panic!(
                    "concolic execution reached a call node for `{callee}`; \
                     replay runs over flattened (call-free) CFGs"
                ),
            }
        };
        ConcolicRun {
            outcome,
            pc,
            final_env: env,
            final_values: values,
            trace,
            decisions,
        }
    }

    /// Initialized-global `(name, value)` pairs, concretely evaluated.
    fn init_pairs(&self) -> Vec<(&str, dise_solver::model::Value)> {
        self.init_env
            .iter()
            .filter_map(|(name, sym)| {
                let value = match sym {
                    SymExpr::Int(v) => dise_solver::model::Value::Int(*v),
                    SymExpr::Bool(b) => dise_solver::model::Value::Bool(*b),
                    _ => return None, // symbolic input, handled separately
                };
                Some((name, value))
            })
            .collect()
    }
}

fn default_value(env: &Env, name: &str) -> dise_solver::model::Value {
    // A symbolic input's type determines its default.
    match env.get(name) {
        Some(SymExpr::Var(var)) if var.ty() == dise_solver::SymTy::Bool => {
            dise_solver::model::Value::Bool(false)
        }
        _ => dise_solver::model::Value::Int(0),
    }
}

fn stuck(e: ConcreteEvalError) -> ConcreteOutcome {
    match e {
        ConcreteEvalError::Arith(arith) => ConcreteOutcome::ArithmeticError(arith),
        other => ConcreteOutcome::EvalStuck(other.to_string()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dise_ir::parse_program;
    use dise_solver::model::Value;
    use dise_solver::Solver;

    use crate::executor::FullExploration;

    fn concolic(src: &str, proc: &str) -> ConcolicExecutor {
        let program = parse_program(src).unwrap();
        dise_ir::check_program(&program).unwrap();
        ConcolicExecutor::new(&program, proc, ConcreteConfig::default()).unwrap()
    }

    fn env(pairs: &[(&str, Value)]) -> ValueEnv {
        pairs
            .iter()
            .map(|(name, value)| (name.to_string(), *value))
            .collect()
    }

    #[test]
    fn testx_positive_path() {
        let executor = concolic(
            "int y;
             proc testX(int x) {
               if (x > 0) { y = y + x; } else { y = y - x; }
             }",
            "testX",
        );
        let run = executor.run(&env(&[("x", Value::Int(3)), ("y", Value::Int(10))]));
        assert_eq!(run.outcome, ConcreteOutcome::Completed);
        assert_eq!(run.pc.to_string(), "X > 0");
        assert_eq!(run.final_env.get("y").unwrap().to_string(), "Y + X");
        assert_eq!(run.final_values.get("y"), Some(&Value::Int(13)));
    }

    #[test]
    fn input_satisfies_its_own_path_condition() {
        let executor = concolic(
            "proc f(int x, int y) {
               if (x + y > 10) {
                 if (x < 3) { x = 0; } else { y = 0; }
               }
             }",
            "f",
        );
        let input = env(&[("x", Value::Int(2)), ("y", Value::Int(20))]);
        let run = executor.run(&input);
        assert_eq!(run.pc.len(), 2);
        // Re-solve the path condition: the original input must satisfy it.
        let mut model = dise_solver::Model::new();
        for (name, var) in executor.inputs() {
            if let Some(v) = input.get(name) {
                model.set(var.id(), *v);
            }
        }
        for conjunct in run.pc.conjuncts() {
            assert!(model.satisfies(conjunct), "input violates {conjunct}");
        }
    }

    #[test]
    fn concolic_pc_matches_full_engine_pc() {
        let src = "int g;
             proc f(int x) {
               if (x > 5) { g = g + 1; } else { g = g - 1; }
               if (g == 0) { g = 42; }
             }";
        let program = parse_program(src).unwrap();
        let executor = concolic(src, "f");
        let run = executor.run(&env(&[("x", Value::Int(9)), ("g", Value::Int(-1))]));

        // Find the matching path in the full engine's summary.
        let mut full = Executor::new(&program, "f", ExecConfig::default()).unwrap();
        let summary = full.explore(&mut FullExploration);
        let rendered = run.pc.to_string();
        assert!(
            summary
                .path_conditions()
                .any(|pc| pc.to_string() == rendered),
            "concolic PC {rendered:?} not among full-engine PCs"
        );
    }

    #[test]
    fn concrete_conditions_add_no_constraints() {
        // `g` is initialized, so the first branch folds concretely.
        let executor = concolic(
            "int g = 5;
             proc f(int x) {
               if (g > 0) { g = 1; }
               if (x > 0) { g = 2; }
             }",
            "f",
        );
        let run = executor.run(&env(&[("x", Value::Int(1))]));
        assert_eq!(run.pc.to_string(), "X > 0");
        assert_eq!(run.decisions.len(), 1);
    }

    #[test]
    fn assertion_failure_keeps_partial_pc() {
        let executor = concolic(
            "proc f(int x) {
               if (x > 0) { assert(x < 5); }
             }",
            "f",
        );
        let run = executor.run(&env(&[("x", Value::Int(9))]));
        assert!(matches!(run.outcome, ConcreteOutcome::AssertionFailure(_)));
        // PC records both the branch and the failed assertion's negation.
        assert_eq!(run.pc.to_string(), "X > 0 && X >= 5");
    }

    #[test]
    fn symbolic_assume_extends_pc() {
        let executor = concolic("proc f(int x) { assume(x > 3); x = x + 1; }", "f");
        let run = executor.run(&env(&[("x", Value::Int(10))]));
        assert_eq!(run.outcome, ConcreteOutcome::Completed);
        assert_eq!(run.pc.to_string(), "X > 3");
        let violated = executor.run(&env(&[("x", Value::Int(0))]));
        assert_eq!(violated.outcome, ConcreteOutcome::AssumeViolated);
    }

    #[test]
    fn loop_paths_unroll_in_pc() {
        let executor = concolic(
            "proc f(int n) {
               int i = 0;
               while (i < n) { i = i + 1; }
             }",
            "f",
        );
        let run = executor.run(&env(&[("n", Value::Int(2))]));
        assert_eq!(run.outcome, ConcreteOutcome::Completed);
        // i starts concrete, so each header test is `k < N`.
        assert_eq!(run.pc.to_string(), "0 < N && 1 < N && 2 >= N");
        // The PC must be satisfiable and pin n = 2.
        let mut solver = Solver::new();
        let outcome = solver.check(run.pc.conjuncts());
        let model = outcome.model().expect("loop PC is satisfiable");
        let n_var = &executor.inputs()[0].1;
        assert_eq!(model.int_value(n_var), Some(2));
    }
}
