//! # Work-stealing parallel frontier exploration
//!
//! The executor spends nearly all of its time deciding path-condition
//! prefixes; PR 1's [`IncrementalSolver`] keeps its derived state in
//! per-frame stack entries precisely so that state can be *forked* at a
//! branch. This module is the engine that exploits it: an opt-in parallel
//! mode ([`ExecConfig::jobs`] > 1, CLI `--jobs N`) that explores branch
//! arms on worker threads and still returns a summary whose paths, path
//! conditions, and outcomes are **byte-identical** to the serial run's.
//!
//! ## Fork mode (forkable strategies)
//!
//! For strategies whose decisions are independent of global exploration
//! order ([`Strategy::fork`] returns a clone — e.g. full exploration),
//! the tree itself is partitioned:
//!
//! * every worker owns a **cloned [`IncrementalSolver`]** (inheriting the
//!   executor's warm prefix trie) and walks depth-first *spines*: at each
//!   node with several successor candidates it continues with the first
//!   and enqueues the rest on its own deque;
//! * **idle workers steal** the shallowest pending arm from a victim's
//!   deque (the `pool` scheduler) and rebuild their solver stack by replaying the
//!   arm's literal prefix — push + check per literal, almost always
//!   answered by a trie;
//! * verdicts flow into a **shared concurrent prefix trie**
//!   ([`dise_solver::SharedTrie`], lock-sharded), so a prefix decided by
//!   any worker is never solved twice;
//! * every recorded path carries its successor-index position; a final
//!   **deterministic merge** sorts by position, which is exactly the
//!   serial engine's emission order. Feasibility verdicts are
//!   deterministic (each check runs on a root-contiguous frame chain, see
//!   the [`dise_solver::SharedTrie`] determinism contract), so the merged
//!   summary is byte-identical to serial for non-truncated runs.
//!
//! ## Speculative mode (order-dependent strategies)
//!
//! The paper's directed strategy mutates global explored sets whose
//! resets depend on which sibling subtree ran first — its decisions
//! cannot be forked without changing the result. For such strategies
//! ([`Strategy::fork`] = `None`) the frontier runs **two phases**:
//!
//! 1. a parallel *speculative sweep* — the same work-stealing machinery,
//!    but with a static filter built from [`Strategy::speculation_hint`]
//!    (for the directed strategy: nodes that can still reach an affected
//!    location, a sound superset of anything the dynamic filter accepts)
//!    and no path materialization. Its only product is the shared trie
//!    full of prefix verdicts;
//! 2. the unchanged *serial authoritative pass* with the real strategy,
//!    whose solver answers from the shared trie. Identical algorithm ⇒
//!    identical summary; the solver work was done in parallel.
//!
//! The sweep is **admission-controlled** ([`budget`]): a global token
//! budget — by default proportional to the affected-node count
//! ([`SweepBudget::Auto`]), overridable via
//! [`ExecConfig::sweep_budget`] / `--sweep-budget` /
//! `DISE_SWEEP_BUDGET` — is charged one token per speculative state,
//! and workers spend it on the branch arms the run's heuristic score
//! model ([`crate::heuristic`]) ranks cheapest (by default: closest to
//! the affected region). The serial pass records which trie answers it actually
//! consumed ([`dise_solver::SharedTrie::consumed`]); that measured
//! ratio scales the next run's automatic grant. Budgeting changes only
//! how warm the trie is, never the summary — a drained budget means the
//! serial pass solves more itself.
//!
//! ## What parallel mode does *not* change
//!
//! Structural counters (states, path outcomes, infeasible, pruned) match
//! the serial run exactly on non-truncated runs; solver counters and
//! timing necessarily differ (cache hits land on different workers), and
//! [`ExecStats::frontier`] reports scheduler activity. `max_states` is
//! enforced by a global atomic budget with the serial semantics (the
//! cap-reaching state is still entered), but *which* states are in the
//! truncated summary depends on scheduling. Execution-tree capture
//! ([`ExecConfig::record_tree`]) forces the serial engine.
//!
//! [`IncrementalSolver`]: dise_solver::IncrementalSolver
//! [`ExecConfig::jobs`]: crate::ExecConfig::jobs
//! [`ExecConfig::sweep_budget`]: crate::ExecConfig::sweep_budget
//! [`ExecConfig::record_tree`]: crate::ExecConfig::record_tree
//! [`ExecStats::frontier`]: crate::ExecStats
//! [`Strategy::fork`]: crate::Strategy::fork
//! [`Strategy::speculation_hint`]: crate::Strategy::speculation_hint

pub mod budget;
pub(crate) mod pool;
pub(crate) mod worker;

use std::sync::{Arc, Mutex};
use std::time::Instant;

use dise_cfg::NodeId;
use dise_solver::SharedTrie;

use crate::executor::{ExecStats, Executor, PathSummary, Strategy, SymbolicSummary};
use crate::state::SymState;
use budget::BudgetController;
pub use budget::{SweepBudget, TOKENS_PER_AFFECTED_NODE};
use pool::{Pool, Task};
use worker::{Worker, WorkerOutcome};

/// Scheduler counters for one parallel run (all zero on serial runs).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FrontierStats {
    /// Worker threads used (0 on serial runs).
    pub workers: u64,
    /// Tasks (branch arms) scheduled.
    pub tasks: u64,
    /// Tasks taken from another worker's deque.
    pub steals: u64,
    /// Literals replayed to rebuild solver stacks for taken tasks.
    pub replayed_literals: u64,
    /// States entered by the speculative sweep (speculative mode only).
    pub speculative_states: u64,
    /// Feasibility checks the sweep decided by actually running a solver
    /// pipeline (incremental or fallback; cache/trie hits excluded) — the
    /// "speculative subtree solves" the budget exists to bound.
    pub speculative_solves: u64,
    /// Shared-trie answers consumed by the authoritative serial pass (how
    /// much of the speculative work the real run used).
    pub trie_answers_consumed: u64,
    /// Token budget granted to the sweep (`u64::MAX` = unlimited; `0` on
    /// serial, fork-mode, and sweep-disabled runs).
    pub sweep_budget: u64,
    /// Whether the sweep ran out of budget before draining its cone.
    pub sweep_exhausted: bool,
    /// Branch arms the sweep's heuristic score model ranked (speculative
    /// mode with a score model only).
    pub heuristic_arms_scored: u64,
    /// Ranked arms whose position changed relative to the CFG's stable
    /// successor order — how often the heuristic actually disagreed with
    /// naive ordering.
    pub heuristic_arms_displaced: u64,
    /// Speculative states admitted before the sweep first touched a
    /// distance-0 (affected) node; `None` when the sweep never reached
    /// the affected region (or did not run).
    pub sweep_states_to_affected: Option<u64>,
    /// Edges in the shared prefix trie at the end of the run.
    pub shared_trie_entries: u64,
    /// Decided prefixes seeded from a persistent store before the run
    /// ([`crate::Executor::warm_start`]; zero on cold runs).
    pub warm_trie_entries: u64,
}

/// Entry point from [`Executor::explore`] when `jobs > 1`.
pub(crate) fn explore_parallel(
    exec: &mut Executor,
    strategy: &mut dyn Strategy,
) -> SymbolicSummary {
    let start = Instant::now();
    let jobs = exec.config.jobs;
    let shared = Arc::new(SharedTrie::new(exec.config.solver.prefix_trie_capacity));

    if strategy.fork().is_some() {
        // Fork mode: partition the tree itself.
        let forks: Vec<Box<dyn Strategy + Send>> = (0..jobs)
            .map(|_| strategy.fork().expect("fork() must be stable"))
            .collect();
        let run = run_pool(exec, forks, &shared, true, None);
        let mut stats = run.stats;
        stats.elapsed = start.elapsed();
        stats.frontier.shared_trie_entries = shared.len() as u64;
        SymbolicSummary {
            proc_name: exec.proc_name.clone(),
            inputs: exec.inputs.clone(),
            paths: run.paths,
            stats,
            tree: None,
        }
    } else {
        // Speculative mode: parallel solver sweep under an admission
        // budget, then the serial authoritative replay.
        let controller = BudgetController::new(
            exec.config.sweep_budget,
            strategy.speculation_cost(),
            exec.sweep_feedback,
        );
        if !controller.sweep_enabled() {
            // A zero grant (explicit `--sweep-budget 0`, or Auto with an
            // empty affected cone) skips the sweep entirely: the serial
            // pass runs alone, byte-identical by construction.
            let mut summary = exec.explore_serial(strategy);
            summary.stats.elapsed = start.elapsed();
            return summary;
        }
        let hint = SpeculationFilter::from_strategy(exec, strategy);
        let forks: Vec<Box<dyn Strategy + Send>> = (0..jobs)
            .map(|_| hint.fork().expect("the filter forks"))
            .collect();
        let tracer = exec.config.tracer.clone();
        let sweep_span = tracer.as_ref().map(|h| h.begin("frontier.sweep"));
        let sweep = run_pool(exec, forks, &shared, false, Some(&controller));
        let speculative_solves = sweep.stats.solver.pipeline_checks();
        let (arms_scored, arms_displaced) = controller.arm_stats();
        let states_to_affected = controller.states_to_affected();
        if let (Some(h), Some(span)) = (&tracer, sweep_span) {
            h.end_with(
                span,
                vec![
                    (
                        "speculative_states".to_string(),
                        sweep.stats.states_explored,
                    ),
                    ("speculative_solves".to_string(), speculative_solves),
                    ("heuristic.arms_scored".to_string(), arms_scored),
                    ("heuristic.arms_displaced".to_string(), arms_displaced),
                    (
                        "heuristic.states_to_affected".to_string(),
                        states_to_affected.unwrap_or(0),
                    ),
                ],
            );
        }

        // From here on, trie hits are the authoritative pass consuming
        // the sweep's work — the measured signal behind Auto's sizing.
        shared.begin_consume_phase();
        exec.solver.attach_shared_trie(Arc::clone(&shared));
        let auth_span = tracer.as_ref().map(|h| h.begin("frontier.authoritative"));
        let mut summary = exec.explore_serial(strategy);
        exec.solver.detach_shared_trie();
        if let (Some(h), Some(span)) = (&tracer, auth_span) {
            h.end_with(
                span,
                vec![
                    ("solver.checks".to_string(), summary.stats.solver.checks),
                    (
                        "solver.pipeline_checks".to_string(),
                        summary.stats.solver.pipeline_checks(),
                    ),
                    ("trie_answers_consumed".to_string(), shared.consumed()),
                ],
            );
        }

        summary.stats.elapsed = start.elapsed();
        // Aggregate: the authoritative pass's solver delta plus every
        // sweep worker's.
        summary.stats.solver.merge(&sweep.stats.solver);
        summary.stats.frontier = sweep.stats.frontier;
        summary.stats.frontier.speculative_states = sweep.stats.states_explored;
        summary.stats.frontier.speculative_solves = speculative_solves;
        summary.stats.frontier.trie_answers_consumed = shared.consumed();
        summary.stats.frontier.sweep_budget = controller.granted();
        summary.stats.frontier.sweep_exhausted = controller.exhausted();
        summary.stats.frontier.heuristic_arms_scored = arms_scored;
        summary.stats.frontier.heuristic_arms_displaced = arms_displaced;
        summary.stats.frontier.sweep_states_to_affected = states_to_affected;
        summary.stats.frontier.shared_trie_entries = shared.len() as u64;
        if sweep.stats.states_explored > 0 {
            exec.sweep_feedback =
                Some(shared.consumed() as f64 / sweep.stats.states_explored as f64);
        }
        summary
    }
}

/// The static cone filter driving the speculative sweep: a per-node
/// snapshot of [`Strategy::speculation_hint`].
#[derive(Debug, Clone)]
struct SpeculationFilter {
    allow: Arc<Vec<bool>>,
}

impl SpeculationFilter {
    fn from_strategy(exec: &Executor, strategy: &dyn Strategy) -> SpeculationFilter {
        let allow = exec
            .cfg
            .node_ids()
            .map(|n| strategy.speculation_hint(n))
            .collect();
        SpeculationFilter {
            allow: Arc::new(allow),
        }
    }
}

impl Strategy for SpeculationFilter {
    fn should_explore(&mut self, node: NodeId) -> bool {
        self.allow.get(node.index()).copied().unwrap_or(true)
    }

    fn fork(&self) -> Option<Box<dyn Strategy + Send>> {
        Some(Box::new(self.clone()))
    }
}

struct PoolRun {
    paths: Vec<PathSummary>,
    stats: ExecStats,
}

/// Runs the work-stealing pool to completion: seeds the root task, spawns
/// one thread per forked strategy, merges worker outcomes, and (in
/// collect mode) assembles paths in serial order. `budget` is the sweep's
/// admission controller (`None` in fork mode — real exploration is never
/// budgeted).
fn run_pool(
    exec: &Executor,
    forks: Vec<Box<dyn Strategy + Send>>,
    shared: &Arc<SharedTrie>,
    collect: bool,
    budget: Option<&BudgetController>,
) -> PoolRun {
    let jobs = forks.len();
    let pool = Pool::new(jobs, exec.config.max_states);
    pool.spawn(
        0,
        Task {
            pos: Vec::new(),
            state: SymState::initial(exec.cfg.begin(), exec.init_env.clone()),
            lits: Vec::new(),
            hint: None,
            forked: false,
            from_call: false,
            prefix: Vec::new(),
            trace: Vec::new(),
            root: true,
        },
    );
    let results = Mutex::new(Vec::new());
    let solver_before = exec.solver.stats();

    let outcomes: Vec<WorkerOutcome> = std::thread::scope(|scope| {
        let handles: Vec<_> = forks
            .into_iter()
            .enumerate()
            .map(|(me, strategy)| {
                let mut solver = exec.solver.clone();
                solver.attach_shared_trie(Arc::clone(shared));
                let pool = &pool;
                let results = &results;
                let cfg = &exec.cfg;
                let config = &exec.config;
                let summaries = exec.summaries.as_deref();
                let tracer = exec.config.tracer.clone();
                scope.spawn(move || {
                    let span = tracer
                        .as_ref()
                        .map(|h| h.begin_on(&format!("worker.{me}"), (me + 1) as u32));
                    let outcome = Worker {
                        me,
                        cfg,
                        config,
                        solver,
                        strategy,
                        pool,
                        results: collect.then_some(results),
                        budget,
                        summaries,
                        stats: ExecStats::default(),
                        replayed: 0,
                    }
                    .run(&solver_before);
                    if let (Some(h), Some(span)) = (&tracer, span) {
                        h.end_with(
                            span,
                            vec![
                                ("states".to_string(), outcome.stats.states_explored),
                                ("solver.checks".to_string(), outcome.solver.checks),
                                (
                                    "solver.pipeline_checks".to_string(),
                                    outcome.solver.pipeline_checks(),
                                ),
                                ("replayed_literals".to_string(), outcome.replayed),
                            ],
                        );
                    }
                    outcome
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|handle| handle.join().expect("frontier worker panicked"))
            .collect()
    });

    let mut stats = ExecStats::default();
    for outcome in outcomes {
        stats.states_explored += outcome.stats.states_explored;
        stats.paths_completed += outcome.stats.paths_completed;
        stats.paths_error += outcome.stats.paths_error;
        stats.paths_depth_bounded += outcome.stats.paths_depth_bounded;
        stats.infeasible += outcome.stats.infeasible;
        stats.pruned += outcome.stats.pruned;
        stats.solver.merge(&outcome.solver);
        stats.summary.merge(&outcome.stats.summary);
        stats.frontier.replayed_literals += outcome.replayed;
    }
    stats.truncated = pool.truncated();
    stats.frontier.workers = jobs as u64;
    stats.frontier.tasks = pool.tasks_created();
    stats.frontier.steals = pool.steals();

    let mut recorded = results.into_inner().unwrap_or_else(|e| e.into_inner());
    recorded.sort_by(|a, b| a.0.cmp(&b.0));
    PoolRun {
        paths: recorded.into_iter().map(|(_, path)| path).collect(),
        stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::{ExecConfig, FullExploration, PathOutcome};
    use dise_ir::parse_program;

    fn summaries(src: &str, proc: &str, config: ExecConfig) -> (SymbolicSummary, SymbolicSummary) {
        let program = parse_program(src).unwrap();
        dise_ir::check_program(&program).unwrap();
        let serial_config = ExecConfig {
            jobs: 1,
            ..config.clone()
        };
        let parallel_config = ExecConfig { jobs: 4, ..config };
        let mut serial_exec = Executor::new(&program, proc, serial_config).unwrap();
        let serial = serial_exec.explore(&mut FullExploration);
        let mut parallel_exec = Executor::new(&program, proc, parallel_config).unwrap();
        let parallel = parallel_exec.explore(&mut FullExploration);
        (serial, parallel)
    }

    fn assert_identical(serial: &SymbolicSummary, parallel: &SymbolicSummary) {
        assert_eq!(serial.paths().len(), parallel.paths().len());
        for (a, b) in serial.paths().iter().zip(parallel.paths()) {
            assert_eq!(a.pc, b.pc);
            assert_eq!(a.outcome, b.outcome);
            assert_eq!(a.final_env, b.final_env);
            assert_eq!(a.trace, b.trace);
        }
        let (s, p) = (serial.stats(), parallel.stats());
        assert_eq!(s.states_explored, p.states_explored);
        assert_eq!(s.paths_completed, p.paths_completed);
        assert_eq!(s.paths_error, p.paths_error);
        assert_eq!(s.paths_depth_bounded, p.paths_depth_bounded);
        assert_eq!(s.infeasible, p.infeasible);
        assert_eq!(s.pruned, p.pruned);
        assert_eq!(s.truncated, p.truncated);
    }

    const WIDE: &str = "int g;
proc f(int a, int b, int c, int d) {
  if (a > 0) { g = g + a; } else { g = g - 1; }
  if (b > a) { g = g + b; }
  if (c > b) { g = g + c; } else { g = g - c; }
  if (d > c) { g = g + d; }
  if (a + b > c + d) { g = 0; }
}";

    #[test]
    fn parallel_full_exploration_is_byte_identical() {
        let (serial, parallel) = summaries(WIDE, "f", ExecConfig::default());
        assert!(serial.pc_count() > 8, "workload must branch");
        assert_identical(&serial, &parallel);
        let frontier = &parallel.stats().frontier;
        assert_eq!(frontier.workers, 4);
        assert!(frontier.tasks > 0);
    }

    #[test]
    fn parallel_handles_infeasible_and_error_paths() {
        let src = "proc f(int x) {
  assume(x > 0);
  if (x > 10) {
    if (x < 5) { x = 1; }
    assert(x > 10);
  } else {
    assert(x <= 10);
  }
}";
        let (serial, parallel) = summaries(src, "f", ExecConfig::default());
        assert!(serial.stats().infeasible > 0);
        assert_identical(&serial, &parallel);
    }

    #[test]
    fn parallel_loops_respect_depth_bounds() {
        let src = "proc f(int x) {
  int n = 0;
  while (n < x) { n = n + 1; }
}";
        let config = ExecConfig {
            depth_bound: Some(30),
            ..ExecConfig::default()
        };
        let (serial, parallel) = summaries(src, "f", config);
        assert!(serial.stats().paths_depth_bounded > 0);
        assert_identical(&serial, &parallel);
    }

    #[test]
    fn parallel_truncation_respects_the_global_budget() {
        let src = "proc f(int x) { while (x > 0) { x = x - 1; } }";
        let config = ExecConfig {
            depth_bound: Some(1000),
            max_states: Some(20),
            jobs: 4,
            ..ExecConfig::default()
        };
        let program = parse_program(src).unwrap();
        let mut exec = Executor::new(&program, "f", config).unwrap();
        let summary = exec.explore(&mut FullExploration);
        assert!(summary.stats().truncated);
        assert!(summary.stats().states_explored <= 20);
    }

    #[test]
    fn speculative_mode_replays_order_dependent_strategies_exactly() {
        // A deliberately order-dependent strategy: explores the first K
        // filtered successors, prunes the rest. Not forkable, so jobs > 1
        // must take the speculative path and reproduce the serial result.
        struct FirstK {
            left: u32,
        }
        impl Strategy for FirstK {
            fn should_explore(&mut self, _node: dise_cfg::NodeId) -> bool {
                if self.left == 0 {
                    return false;
                }
                self.left -= 1;
                true
            }
        }
        let program = parse_program(WIDE).unwrap();
        let mut serial_exec = Executor::new(
            &program,
            "f",
            ExecConfig {
                jobs: 1,
                ..ExecConfig::default()
            },
        )
        .unwrap();
        let serial = serial_exec.explore(&mut FirstK { left: 9 });
        let mut parallel_exec = Executor::new(
            &program,
            "f",
            ExecConfig {
                jobs: 4,
                ..ExecConfig::default()
            },
        )
        .unwrap();
        let parallel = parallel_exec.explore(&mut FirstK { left: 9 });
        assert!(serial.stats().pruned > 0, "the strategy must bite");
        assert_identical(&serial, &parallel);
        assert!(parallel.stats().frontier.speculative_states > 0);
        // The authoritative pass answers its checks from the sweep's
        // shared trie.
        assert!(parallel.stats().solver.shared_trie_hits > 0);
    }

    #[test]
    fn sweep_feedback_shrinks_the_next_auto_grant() {
        // An order-dependent strategy with a cost model whose speculative
        // work is almost entirely unconsumed (it prunes every choice
        // point): the measured consumption ratio of the first run must
        // shrink the second run's automatic token grant.
        #[derive(Clone)]
        struct PrunesEverythingWithModel;
        impl Strategy for PrunesEverythingWithModel {
            fn should_explore(&mut self, _node: dise_cfg::NodeId) -> bool {
                false
            }
            fn speculation_cost(&self) -> Option<crate::heuristic::ScoreModel> {
                Some(crate::heuristic::ScoreModel::new(
                    crate::heuristic::HeuristicWeights::default(),
                    Arc::new(crate::heuristic::FeatureMaps {
                        distance: Vec::new(),
                        uncovered: Vec::new(),
                        cone: Vec::new(),
                        trie_depth: Vec::new(),
                        affected_total: 4,
                    }),
                ))
            }
        }
        let program = parse_program(WIDE).unwrap();
        let mut exec = Executor::new(
            &program,
            "f",
            ExecConfig {
                jobs: 4,
                sweep_budget: crate::frontier::SweepBudget::Auto,
                ..ExecConfig::default()
            },
        )
        .unwrap();
        let first = exec.explore(&mut PrunesEverythingWithModel);
        let first_grant = first.stats().frontier.sweep_budget;
        assert_eq!(
            first_grant,
            4 * crate::frontier::budget::TOKENS_PER_AFFECTED_NODE,
            "first grant is the unscaled proportional default"
        );
        assert!(first.stats().frontier.speculative_states > 0);
        let second = exec.explore(&mut PrunesEverythingWithModel);
        let second_grant = second.stats().frontier.sweep_budget;
        assert!(
            second_grant < first_grant,
            "low measured consumption ({} of {} states) must shrink the \
             grant, got {second_grant} after {first_grant}",
            first.stats().frontier.trie_answers_consumed,
            first.stats().frontier.speculative_states,
        );
    }

    #[test]
    fn parallel_pruned_paths_are_recorded_when_requested() {
        struct PruneDeep;
        impl Strategy for PruneDeep {
            fn should_explore(&mut self, node: dise_cfg::NodeId) -> bool {
                node.index().is_multiple_of(2)
            }
            fn fork(&self) -> Option<Box<dyn Strategy + Send>> {
                Some(Box::new(PruneDeep))
            }
        }
        let config = ExecConfig {
            record_pruned: true,
            ..ExecConfig::default()
        };
        let program = parse_program(WIDE).unwrap();
        let mut serial_exec = Executor::new(
            &program,
            "f",
            ExecConfig {
                jobs: 1,
                ..config.clone()
            },
        )
        .unwrap();
        let serial = serial_exec.explore(&mut PruneDeep);
        let mut parallel_exec =
            Executor::new(&program, "f", ExecConfig { jobs: 4, ..config }).unwrap();
        let parallel = parallel_exec.explore(&mut PruneDeep);
        assert_identical(&serial, &parallel);
        if serial.stats().pruned > 0 {
            assert!(serial
                .paths()
                .iter()
                .any(|p| p.outcome == PathOutcome::Pruned));
        }
    }

    #[test]
    fn two_workers_also_match() {
        let program = parse_program(WIDE).unwrap();
        let mut serial_exec = Executor::new(
            &program,
            "f",
            ExecConfig {
                jobs: 1,
                ..ExecConfig::default()
            },
        )
        .unwrap();
        let serial = serial_exec.explore(&mut FullExploration);
        let mut exec = Executor::new(
            &program,
            "f",
            ExecConfig {
                jobs: 2,
                ..ExecConfig::default()
            },
        )
        .unwrap();
        let parallel = exec.explore(&mut FullExploration);
        assert_identical(&serial, &parallel);
    }
}
