//! The work-stealing scheduler substrate: per-worker deques of pending
//! branch arms, a global outstanding-task count for termination, and the
//! shared state budget that implements [`ExecConfig::max_states`] across
//! workers.
//!
//! Each worker owns one deque. It pushes newly discovered branch arms to
//! the *back* and pops its own work from the back (LIFO — depth-first, so
//! the owner keeps long common solver prefixes with its next task). Idle
//! workers steal from the *front* of a victim's deque (FIFO — the
//! shallowest pending arm, which roots the largest unexplored subtree and
//! amortizes the thief's prefix replay).
//!
//! [`ExecConfig::max_states`]: crate::ExecConfig::max_states

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};
use std::time::Duration;

use dise_cfg::NodeId;
use dise_solver::{Model, SymExpr};

use crate::state::SymState;

/// One pending branch arm: everything a (possibly different) worker needs
/// to continue the exploration from this point.
pub(crate) struct Task {
    /// Successor-index path from the exploration root to this arm; sorting
    /// recorded paths by this key reconstructs the serial emission order.
    pub pos: Vec<u32>,
    /// The successor state to enter (environment and path condition
    /// already extended).
    pub state: SymState,
    /// The branch literals this arm adds (pushed and checked before entry;
    /// one for branches and symbolic assumes, possibly several for an
    /// instantiated summary path).
    pub lits: Vec<SymExpr>,
    /// Witness hint for `lits` (summary arms only); see
    /// [`crate::executor::push_succ_lits`].
    pub hint: Option<Model>,
    /// Whether the arm came from a symbolic two-way fork (a choice point);
    /// drives [`FilterScope::ChoicePoints`](crate::FilterScope).
    pub forked: bool,
    /// Whether the arm is an instantiated summary path (stats
    /// attribution).
    pub from_call: bool,
    /// The literals on the path *above* this arm, root-first. A thief
    /// replays them (push + check, mostly trie hits) to rebuild its solver
    /// stack.
    pub prefix: Vec<SymExpr>,
    /// Node trace up to but excluding `state` (empty when tracing is off).
    pub trace: Vec<NodeId>,
    /// True only for the initial task: the root state is entered
    /// unconditionally, exactly like the serial engine's.
    pub root: bool,
}

/// The shared scheduler state. See the [module docs](self).
pub(crate) struct Pool {
    queues: Vec<Mutex<VecDeque<Task>>>,
    /// Tasks enqueued or executing, not yet finished; zero ⇒ done.
    outstanding: AtomicUsize,
    /// Set when the global state budget is exhausted: workers drain out.
    truncated: AtomicBool,
    /// States entered across all workers.
    states: AtomicU64,
    max_states: Option<u64>,
    sleep: Mutex<()>,
    wake: Condvar,
    tasks_created: AtomicU64,
    steals: AtomicU64,
}

impl Pool {
    pub fn new(workers: usize, max_states: Option<u64>) -> Pool {
        Pool {
            queues: (0..workers).map(|_| Mutex::new(VecDeque::new())).collect(),
            outstanding: AtomicUsize::new(0),
            truncated: AtomicBool::new(false),
            states: AtomicU64::new(0),
            max_states,
            sleep: Mutex::new(()),
            wake: Condvar::new(),
            tasks_created: AtomicU64::new(0),
            steals: AtomicU64::new(0),
        }
    }

    /// Enqueues `task` on `owner`'s deque.
    pub fn spawn(&self, owner: usize, task: Task) {
        self.tasks_created.fetch_add(1, Ordering::Relaxed);
        self.outstanding.fetch_add(1, Ordering::SeqCst);
        self.queues[owner]
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push_back(task);
        self.wake.notify_one();
    }

    /// Marks one task finished (its spine completed or was aborted).
    pub fn finish(&self) {
        if self.outstanding.fetch_sub(1, Ordering::SeqCst) == 1 {
            self.wake.notify_all();
        }
    }

    /// The next task for worker `me`: own deque first (LIFO), then a
    /// round-robin steal (FIFO). Returns `None` when the exploration is
    /// complete or aborted.
    pub fn next(&self, me: usize) -> Option<Task> {
        loop {
            if self.truncated.load(Ordering::Relaxed) {
                return None;
            }
            if let Some(task) = self.queues[me]
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .pop_back()
            {
                return Some(task);
            }
            let n = self.queues.len();
            for offset in 1..n {
                let victim = (me + offset) % n;
                if let Some(task) = self.queues[victim]
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .pop_front()
                {
                    self.steals.fetch_add(1, Ordering::Relaxed);
                    return Some(task);
                }
            }
            if self.outstanding.load(Ordering::SeqCst) == 0 {
                return None;
            }
            // Bounded wait instead of a bare condvar wait: no missed-wakeup
            // hazard, and the timeout doubles as the poll interval for
            // work that appears between the scan and the sleep.
            let guard = self.sleep.lock().unwrap_or_else(|e| e.into_inner());
            match self.wake.wait_timeout(guard, Duration::from_micros(200)) {
                Ok((guard, _)) => drop(guard),
                Err(poisoned) => drop(poisoned.into_inner()),
            }
        }
    }

    /// Acquires one unit of the global state budget. Mirrors the serial
    /// semantics: the state that *reaches* the cap is still entered (and
    /// flags truncation); states beyond it are refused.
    pub fn try_enter_state(&self) -> bool {
        let entered = self.states.fetch_add(1, Ordering::Relaxed) + 1;
        if let Some(max) = self.max_states {
            if entered >= max {
                self.truncated.store(true, Ordering::Relaxed);
                self.wake.notify_all();
            }
            if entered > max {
                return false;
            }
        }
        true
    }

    /// Whether the state budget aborted the exploration.
    pub fn truncated(&self) -> bool {
        self.truncated.load(Ordering::Relaxed)
    }

    pub fn tasks_created(&self) -> u64 {
        self.tasks_created.load(Ordering::Relaxed)
    }

    pub fn steals(&self) -> u64 {
        self.steals.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::Env;

    fn dummy_task(pos: Vec<u32>) -> Task {
        Task {
            pos,
            state: SymState::initial(NodeId(0), Env::new()),
            lits: Vec::new(),
            hint: None,
            forked: false,
            from_call: false,
            prefix: Vec::new(),
            trace: Vec::new(),
            root: false,
        }
    }

    #[test]
    fn owner_pops_lifo_thief_steals_fifo() {
        let pool = Pool::new(2, None);
        pool.spawn(0, dummy_task(vec![1]));
        pool.spawn(0, dummy_task(vec![2]));
        pool.spawn(0, dummy_task(vec![3]));
        // Owner takes the most recent (deepest) arm.
        assert_eq!(pool.next(0).unwrap().pos, vec![3]);
        // A thief takes the oldest (shallowest) arm.
        assert_eq!(pool.next(1).unwrap().pos, vec![1]);
        assert_eq!(pool.steals(), 1);
        assert_eq!(pool.next(0).unwrap().pos, vec![2]);
        // All three still outstanding until finished.
        pool.finish();
        pool.finish();
        pool.finish();
        assert!(pool.next(0).is_none());
        assert!(pool.next(1).is_none());
    }

    #[test]
    fn state_budget_mirrors_serial_truncation() {
        let pool = Pool::new(1, Some(3));
        assert!(pool.try_enter_state());
        assert!(pool.try_enter_state());
        assert!(!pool.truncated());
        // The third state reaches the cap: entered, but truncation flags.
        assert!(pool.try_enter_state());
        assert!(pool.truncated());
        // Beyond the cap: refused.
        assert!(!pool.try_enter_state());
        // A truncated pool hands out no more work.
        pool.spawn(0, dummy_task(vec![0]));
        assert!(pool.next(0).is_none());
    }

    #[test]
    fn unbounded_budget_never_truncates() {
        let pool = Pool::new(1, None);
        for _ in 0..100 {
            assert!(pool.try_enter_state());
        }
        assert!(!pool.truncated());
    }
}
