//! One frontier worker: a cloned [`IncrementalSolver`], a forked
//! [`Strategy`], and a depth-first *spine* walk.
//!
//! A worker repeatedly takes a pending branch arm from the scheduler,
//! rebuilds its solver stack for the arm's literal prefix (pop to the
//! common prefix, then push + check the rest — replay checks are mostly
//! trie hits, and they keep the root-contiguous determinism chain intact:
//! every frame's model/bounds is exactly what a serial run computes), and
//! then walks the arm's subtree depth-first. At every node with several
//! successor candidates it continues with the first and enqueues the rest
//! as stealable tasks, so a task's own walk is a single spine producing at
//! most one recorded path.

use dise_cfg::Cfg;
use dise_solver::{IncrementalSolver, SolverStats, SymExpr};

use crate::executor::{
    classify_entry, push_succ_lits, successor_candidates, EntryKind, ExecConfig, ExecStats,
    FilterScope, PathOutcome, PathSummary, Strategy, Succ,
};
use crate::frontier::budget::BudgetController;
use crate::frontier::pool::{Pool, Task};
use crate::state::SymState;
use crate::summary::SummaryTable;

use std::sync::Mutex;

/// A recorded path tagged with its successor-index position; the final
/// merge sorts by the position to reconstruct serial emission order.
pub(crate) type PositionedPath = (Vec<u32>, PathSummary);

/// What a worker thread hands back when the pool drains.
pub(crate) struct WorkerOutcome {
    /// Structural counters (states, paths, infeasible, pruned).
    pub stats: ExecStats,
    /// This worker's solver activity for the run.
    pub solver: SolverStats,
    /// Literals replayed while rebuilding prefixes for taken tasks.
    pub replayed: u64,
}

pub(crate) struct Worker<'a> {
    pub me: usize,
    pub cfg: &'a Cfg,
    pub config: &'a ExecConfig,
    pub solver: IncrementalSolver,
    pub strategy: Box<dyn Strategy + Send>,
    pub pool: &'a Pool,
    /// `None` in the speculative sweep: paths are not materialized at all.
    pub results: Option<&'a Mutex<Vec<PositionedPath>>>,
    /// The sweep's admission controller (`None` in fork mode).
    pub budget: Option<&'a BudgetController>,
    /// Procedure summaries for call-node dispatch (`None` on inlined
    /// CFGs).
    pub summaries: Option<&'a SummaryTable>,
    pub stats: ExecStats,
    pub replayed: u64,
}

impl Worker<'_> {
    /// Drains the pool. Called once per worker thread.
    pub fn run(mut self, solver_before: &SolverStats) -> WorkerOutcome {
        while let Some(task) = self.pool.next(self.me) {
            // An exhausted sweep budget drains remaining tasks unrun (the
            // outstanding count still has to reach zero for termination).
            if self.budget.is_none_or(|b| !b.exhausted()) {
                self.run_task(task);
            }
            self.pool.finish();
        }
        let solver = self.solver.stats().delta_since(solver_before);
        WorkerOutcome {
            stats: self.stats,
            solver,
            replayed: self.replayed,
        }
    }

    /// Rebuilds the solver stack for `prefix`: pop to the common prefix
    /// with the current stack, then push + check the remainder.
    fn sync_solver(&mut self, prefix: &[SymExpr]) {
        let common = {
            let current = self.solver.literals();
            let mut n = 0;
            while n < current.len() && n < prefix.len() && current[n] == prefix[n] {
                n += 1;
            }
            n
        };
        while self.solver.depth() > common {
            self.solver.pop();
        }
        for lit in &prefix[common..] {
            self.solver.push(lit.clone());
            // The verdict is already known feasible (the producer checked
            // it before descending past this literal); the check re-runs
            // purely to restore this depth's frame state — almost always
            // a trie hit.
            let _ = self.solver.check();
            self.replayed += 1;
        }
    }

    /// Whether path recording is active (the speculative sweep records
    /// nothing).
    fn recording(&self) -> bool {
        self.results.is_some()
    }

    fn record(
        &mut self,
        pos: &[u32],
        state: &SymState,
        outcome: PathOutcome,
        trace: &[dise_cfg::NodeId],
    ) {
        let Some(results) = self.results else {
            return;
        };
        let summary = PathSummary {
            pc: state.pc.clone(),
            outcome,
            final_env: state.env.clone(),
            trace: trace.to_vec(),
        };
        results
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push((pos.to_vec(), summary));
    }

    /// Executes one task: replay the prefix, then walk the spine. Mirrors
    /// the serial engine's per-successor sequence exactly — feasibility,
    /// strategy filter, entry bookkeeping, terminal handling — so the
    /// recorded paths are byte-identical to the serial run's.
    fn run_task(&mut self, task: Task) {
        self.sync_solver(&task.prefix);
        let mut pos = task.pos;
        let mut trace = task.trace;
        let mut entered: Vec<dise_cfg::NodeId> = Vec::new();
        let mut root = task.root;
        let mut next = Some((
            task.state,
            task.lits,
            task.hint,
            task.forked,
            task.from_call,
        ));

        while let Some((state, lits, hint, forked, from_call)) = next.take() {
            if self.pool.truncated() {
                break;
            }
            let had_lits = !lits.is_empty();
            let result = push_succ_lits(
                &mut self.solver,
                lits,
                hint.as_ref(),
                self.config.unknown_is_sat,
            );
            if from_call && had_lits {
                if result.hint_verified {
                    self.stats.summary.hint_verified += 1;
                }
                self.stats.summary.fallback_checks += result.checks;
            }
            if !result.feasible {
                self.stats.infeasible += 1;
                // No pop: the next task's sync_solver rebuilds the stack.
                break;
            }
            let filtered = match self.config.filter_scope {
                FilterScope::AllStates => !root,
                FilterScope::ChoicePoints => forked,
            };
            root = false;
            if filtered && !self.strategy.should_explore(state.node) {
                self.stats.pruned += 1;
                if self.recording() && self.config.record_pruned {
                    let mut pruned_trace = trace.clone();
                    pruned_trace.push(state.node);
                    self.record(&pos, &state, PathOutcome::Pruned, &pruned_trace);
                }
                break;
            }

            // Entry (the serial engine's `enter`). Speculative states
            // additionally charge the sweep's token budget; a dry pool
            // ends the spine (and `run` drains the rest of the deques).
            if let Some(budget) = self.budget {
                if !budget.try_charge() {
                    break;
                }
                budget.note_state(state.node.index());
            }
            if !self.pool.try_enter_state() {
                break;
            }
            self.stats.states_explored += 1;
            if self.recording() && self.config.record_traces {
                trace.push(state.node);
            }
            // Terminal classification shared with the serial engine
            // (error/depth-bound never notify the strategy; End does).
            match classify_entry(self.cfg, self.config, &state) {
                EntryKind::Error(message) => {
                    self.stats.paths_error += 1;
                    self.record(&pos, &state, PathOutcome::Error(message), &trace);
                    break;
                }
                EntryKind::DepthBounded => {
                    self.stats.paths_depth_bounded += 1;
                    self.record(&pos, &state, PathOutcome::DepthBounded, &trace);
                    break;
                }
                EntryKind::Completed => {
                    self.strategy.on_enter(state.node);
                    entered.push(state.node);
                    self.stats.paths_completed += 1;
                    self.record(&pos, &state, PathOutcome::Completed, &trace);
                    break;
                }
                EntryKind::Interior => {}
            }
            self.strategy.on_enter(state.node);
            entered.push(state.node);

            let mut succs = successor_candidates(
                self.cfg,
                &state,
                &mut self.stats.infeasible,
                self.summaries,
                &mut self.stats.summary,
            );
            if succs.is_empty() {
                break;
            }
            // On the sweep nothing is recorded, so candidate order is free:
            // spend budget on arms near the affected region first.
            if !self.recording() {
                if let Some(budget) = self.budget {
                    budget.order_arms(&mut succs);
                }
            }
            // Offload every candidate but the first; the prefix snapshot
            // is the current solver stack (root-contiguous by
            // construction).
            if succs.len() > 1 {
                let prefix = self.solver.literals().to_vec();
                let rest: Vec<Succ> = succs.drain(1..).collect();
                for (i, sibling) in rest.into_iter().enumerate() {
                    let mut child_pos = pos.clone();
                    child_pos.push((i + 1) as u32);
                    self.pool.spawn(
                        self.me,
                        Task {
                            pos: child_pos,
                            state: sibling.state,
                            lits: sibling.lits,
                            hint: sibling.hint,
                            forked: sibling.forked,
                            from_call: sibling.from_call,
                            prefix: prefix.clone(),
                            trace: trace.clone(),
                            root: false,
                        },
                    );
                }
            }
            let first = succs.pop().expect("at least one candidate");
            pos.push(0);
            next = Some((
                first.state,
                first.lits,
                first.hint,
                first.forked,
                first.from_call,
            ));
        }

        // Unwind the strategy hooks for this spine (serial order within
        // the subtree; forkable strategies are order-independent by
        // contract).
        for node in entered.into_iter().rev() {
            self.strategy.on_leave(node);
        }
    }
}
