//! Cost-model-driven admission control for the speculative sweep.
//!
//! The speculative mode of the parallel frontier (see [`crate::frontier`])
//! runs a parallel sweep whose only product is a warm shared verdict trie
//! for the serial authoritative pass. PR 2 bounded that sweep only by the
//! strategy's *static* cone ([`Strategy::speculation_hint`]), so on
//! heavily-pruned changes — e.g. a leaf write the directed pass certifies
//! after a handful of paths — the sweep burned workers on subtrees whose
//! verdicts the authoritative pass never consults. This module turns the
//! all-or-nothing sweep into an admission-controlled one:
//!
//! * a [`ScoreModel`] built by the strategy (for the directed strategy:
//!   the feature maps of [`crate::heuristic`] — affected distance, md2u,
//!   cone size, trie-prefix depth — dotted with the run's
//!   [`HeuristicWeights`]) prices every branch arm;
//! * a global token budget ([`SweepBudget`], default
//!   [`SweepBudget::Auto`] — proportional to the affected-node count,
//!   scaled by the *measured* trie-consumption ratio of earlier runs of
//!   the same executor) is charged one token per speculative state; when
//!   it runs out the sweep drains and the serial pass proceeds with
//!   whatever the trie holds;
//! * while the budget has headroom, workers spend it on the best-scored
//!   arms first (`BudgetController::order_arms`), because those arms'
//!   prefix verdicts are the ones the authoritative pass is most likely
//!   to consume.
//!
//! Budgeting never changes results: the sweep's only observable effect is
//! the shared trie, and a colder trie just means the serial pass solves
//! more itself. `tests/sweep_budget.rs` pins byte-identical summaries at
//! every budget, including `0` (sweep disabled entirely), and the
//! `dise-gen` property suite pins byte-identical verdicts under arbitrary
//! weight vectors.
//!
//! [`Strategy::speculation_hint`]: crate::Strategy::speculation_hint
//! [`HeuristicWeights`]: crate::heuristic::HeuristicWeights

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use crate::executor::Succ;
use crate::heuristic::ScoreModel;

/// Tokens granted per affected node by [`SweepBudget::Auto`]. One token
/// admits one speculative state, so the default sweep is a small constant
/// factor of the affected-set size — not of the (potentially exponential)
/// static cone.
pub const TOKENS_PER_AFFECTED_NODE: u64 = 8;

/// How the speculative sweep of directed (non-forkable) strategies is
/// budgeted. Configured via [`ExecConfig::sweep_budget`], CLI
/// `--sweep-budget`, or the `DISE_SWEEP_BUDGET` environment variable.
///
/// [`ExecConfig::sweep_budget`]: crate::ExecConfig::sweep_budget
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SweepBudget {
    /// Cost-model default: [`TOKENS_PER_AFFECTED_NODE`] tokens per
    /// affected node, scaled down when earlier runs of the same executor
    /// measured a low trie-consumption ratio. Falls back to
    /// [`SweepBudget::Unlimited`] for strategies without a cost model.
    #[default]
    Auto,
    /// No admission control: the sweep explores the whole static cone.
    Unlimited,
    /// An explicit token count (speculative states); `0` disables the
    /// sweep entirely — the authoritative pass runs alone.
    Tokens(u64),
}

impl SweepBudget {
    /// Parses a budget spec: `auto`, `unlimited`, or a token count.
    pub fn parse(spec: &str) -> Option<SweepBudget> {
        let spec = spec.trim();
        if spec.eq_ignore_ascii_case("auto") {
            Some(SweepBudget::Auto)
        } else if spec.eq_ignore_ascii_case("unlimited") {
            Some(SweepBudget::Unlimited)
        } else {
            spec.parse::<u64>().ok().map(SweepBudget::Tokens)
        }
    }
}

impl std::fmt::Display for SweepBudget {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SweepBudget::Auto => f.write_str("auto"),
            SweepBudget::Unlimited => f.write_str("unlimited"),
            SweepBudget::Tokens(n) => write!(f, "{n}"),
        }
    }
}

/// The shared admission controller for one speculative sweep: the granted
/// token pool plus the score model used for arm ordering.
#[derive(Debug)]
pub(crate) struct BudgetController {
    granted: u64,
    remaining: AtomicU64,
    exhausted: AtomicBool,
    model: Option<ScoreModel>,
    /// Arms passed through [`BudgetController::order_arms`].
    arms_scored: AtomicU64,
    /// Arms the score moved away from their stable successor position.
    arms_displaced: AtomicU64,
    /// Speculative states admitted before the first affected-region state
    /// (`u64::MAX` until latched) — the sweep-side "states to affected
    /// region" the tuner scores.
    states_to_affected: AtomicU64,
    states_admitted: AtomicU64,
}

impl BudgetController {
    /// Resolves `budget` against the strategy's score model and the
    /// measured consumption ratio of earlier runs (`feedback`, in
    /// `[0, 1]`: trie answers consumed per speculative state).
    pub fn new(
        budget: SweepBudget,
        model: Option<ScoreModel>,
        feedback: Option<f64>,
    ) -> BudgetController {
        let granted = match (budget, &model) {
            (SweepBudget::Unlimited, _) => u64::MAX,
            (SweepBudget::Tokens(n), _) => n,
            // Auto without a score model cannot size anything: behave like
            // the unbudgeted PR 2 sweep.
            (SweepBudget::Auto, None) => u64::MAX,
            (SweepBudget::Auto, Some(model)) => auto_tokens(model.affected_total(), feedback),
        };
        BudgetController {
            granted,
            remaining: AtomicU64::new(granted),
            exhausted: AtomicBool::new(false),
            model,
            arms_scored: AtomicU64::new(0),
            arms_displaced: AtomicU64::new(0),
            states_to_affected: AtomicU64::new(u64::MAX),
            states_admitted: AtomicU64::new(0),
        }
    }

    /// The token pool granted to this sweep (`u64::MAX` = unlimited).
    pub fn granted(&self) -> u64 {
        self.granted
    }

    /// Whether the sweep should run at all (a zero grant disables it).
    pub fn sweep_enabled(&self) -> bool {
        self.granted > 0
    }

    /// Charges one token for a speculative state. Returns `false` — and
    /// latches [`BudgetController::exhausted`] — once the pool is dry.
    pub fn try_charge(&self) -> bool {
        if self.granted == u64::MAX {
            return true;
        }
        let mut current = self.remaining.load(Ordering::Relaxed);
        loop {
            if current == 0 {
                self.exhausted.store(true, Ordering::Relaxed);
                return false;
            }
            match self.remaining.compare_exchange_weak(
                current,
                current - 1,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return true,
                Err(observed) => current = observed,
            }
        }
    }

    /// Whether the token pool ran dry at any point.
    pub fn exhausted(&self) -> bool {
        self.exhausted.load(Ordering::Relaxed)
    }

    /// Notes one admitted speculative state, latching the
    /// states-to-affected counter the first time a state *in* the
    /// affected region (distance 0) is seen.
    pub fn note_state(&self, node_index: usize) {
        let seen = self.states_admitted.fetch_add(1, Ordering::Relaxed);
        if let Some(model) = &self.model {
            if model.distance(node_index) == 0 {
                // Keep the first (smallest) latch; racing workers may both
                // try, the min wins.
                self.states_to_affected.fetch_min(seen, Ordering::Relaxed);
            }
        }
    }

    /// Speculative states admitted before the first affected-region state
    /// was reached (`None` when the sweep never got there).
    pub fn states_to_affected(&self) -> Option<u64> {
        match self.states_to_affected.load(Ordering::Relaxed) {
            u64::MAX => None,
            n => Some(n),
        }
    }

    /// `(arms scored, arms displaced)` by [`BudgetController::order_arms`]
    /// over the whole sweep.
    pub fn arm_stats(&self) -> (u64, u64) {
        (
            self.arms_scored.load(Ordering::Relaxed),
            self.arms_displaced.load(Ordering::Relaxed),
        )
    }

    /// Orders sibling branch arms so budget is spent where the
    /// authoritative pass will look first: the best-scored arm (ascending
    /// [`ScoreModel::score`], ties by descending affected-cone size and
    /// then by stable successor index) comes first — the worker continues
    /// with it — and the remaining arms are left worst-to-best, because
    /// the worker enqueues them in order and pops its own deque LIFO.
    /// Only called on the sweep (nothing is recorded there, so candidate
    /// order is free to change); a no-op without a score model.
    pub fn order_arms(&self, succs: &mut [Succ]) {
        let Some(model) = &self.model else {
            return;
        };
        let nodes: Vec<usize> = succs.iter().map(|s| s.state.node.index()).collect();
        let order = model.ranked(&nodes);
        let displaced = order
            .iter()
            .enumerate()
            .filter(|(to, &from)| *to != from)
            .count();
        self.arms_scored
            .fetch_add(succs.len() as u64, Ordering::Relaxed);
        self.arms_displaced
            .fetch_add(displaced as u64, Ordering::Relaxed);
        apply_permutation(succs, order);
        if succs.len() > 2 {
            succs[1..].reverse();
        }
    }
}

/// Rearranges `items` so that `items[i]` becomes the element previously at
/// `order[i]` — in place, by cycle-walking swaps (the elements are not
/// `Clone`). Consumes `order` as the visited marking.
fn apply_permutation<T>(items: &mut [T], mut order: Vec<usize>) {
    for i in 0..items.len() {
        let mut current = i;
        loop {
            let next = order[current];
            order[current] = current;
            if order[next] == next {
                break;
            }
            items.swap(current, next);
            current = next;
        }
    }
}

/// The [`SweepBudget::Auto`] sizing rule: a per-affected-node grant,
/// scaled by measured consumption. A ratio of ≥ 0.5 consumed answers per
/// speculative state keeps the full grant; lower ratios shrink it
/// linearly, floored at a quarter — the sweep stays warm enough to
/// re-measure, but stops flooding a trie nobody reads.
fn auto_tokens(affected_total: u32, feedback: Option<f64>) -> u64 {
    let base = u64::from(affected_total) * TOKENS_PER_AFFECTED_NODE;
    match feedback {
        None => base,
        Some(ratio) => {
            let scale = (2.0 * ratio).clamp(0.25, 1.0);
            let scaled = (base as f64 * scale).round() as u64;
            scaled.max(TOKENS_PER_AFFECTED_NODE.min(base))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::SymState;
    use crate::Env;
    use dise_cfg::NodeId;

    #[test]
    fn parse_accepts_the_three_forms() {
        assert_eq!(SweepBudget::parse("auto"), Some(SweepBudget::Auto));
        assert_eq!(SweepBudget::parse("AUTO"), Some(SweepBudget::Auto));
        assert_eq!(
            SweepBudget::parse("unlimited"),
            Some(SweepBudget::Unlimited)
        );
        assert_eq!(SweepBudget::parse("0"), Some(SweepBudget::Tokens(0)));
        assert_eq!(SweepBudget::parse(" 42 "), Some(SweepBudget::Tokens(42)));
        assert_eq!(SweepBudget::parse("-3"), None);
        assert_eq!(SweepBudget::parse("lots"), None);
    }

    #[test]
    fn display_roundtrips_through_parse() {
        for budget in [
            SweepBudget::Auto,
            SweepBudget::Unlimited,
            SweepBudget::Tokens(17),
        ] {
            assert_eq!(SweepBudget::parse(&budget.to_string()), Some(budget));
        }
    }

    fn model(affected_total: u32) -> ScoreModel {
        model_with(
            affected_total,
            crate::heuristic::HeuristicWeights::DISTANCE_ONLY,
        )
    }

    fn model_with(affected_total: u32, weights: crate::heuristic::HeuristicWeights) -> ScoreModel {
        ScoreModel::new(
            weights,
            std::sync::Arc::new(crate::heuristic::FeatureMaps {
                distance: vec![1, 0, ScoreModel::UNREACHABLE],
                uncovered: vec![0, 2, 1],
                cone: vec![2, 1, 0],
                trie_depth: vec![1, 1, 1],
                affected_total,
            }),
        )
    }

    #[test]
    fn tokens_charge_down_to_exhaustion() {
        let controller = BudgetController::new(SweepBudget::Tokens(2), None, None);
        assert!(controller.sweep_enabled());
        assert!(controller.try_charge());
        assert!(controller.try_charge());
        assert!(!controller.exhausted());
        assert!(!controller.try_charge());
        assert!(controller.exhausted());
        assert_eq!(controller.granted(), 2);
    }

    #[test]
    fn zero_tokens_disable_the_sweep() {
        let controller = BudgetController::new(SweepBudget::Tokens(0), None, None);
        assert!(!controller.sweep_enabled());
    }

    #[test]
    fn unlimited_never_exhausts() {
        let controller = BudgetController::new(SweepBudget::Unlimited, Some(model(1)), None);
        for _ in 0..10_000 {
            assert!(controller.try_charge());
        }
        assert!(!controller.exhausted());
    }

    #[test]
    fn auto_is_proportional_to_the_affected_count() {
        let controller = BudgetController::new(SweepBudget::Auto, Some(model(5)), None);
        assert_eq!(controller.granted(), 5 * TOKENS_PER_AFFECTED_NODE);
        // An empty affected set grants nothing: the sweep is skipped.
        let empty = BudgetController::new(SweepBudget::Auto, Some(model(0)), None);
        assert!(!empty.sweep_enabled());
        // Without a cost model, Auto cannot size and stays unbudgeted.
        let unsized_ = BudgetController::new(SweepBudget::Auto, None, None);
        assert_eq!(unsized_.granted(), u64::MAX);
    }

    #[test]
    fn feedback_scales_the_auto_grant() {
        let full = BudgetController::new(SweepBudget::Auto, Some(model(10)), Some(0.9));
        assert_eq!(full.granted(), 10 * TOKENS_PER_AFFECTED_NODE);
        let quarter = BudgetController::new(SweepBudget::Auto, Some(model(10)), Some(0.0));
        assert_eq!(quarter.granted(), 10 * TOKENS_PER_AFFECTED_NODE / 4);
        let half = BudgetController::new(SweepBudget::Auto, Some(model(10)), Some(0.25));
        assert_eq!(half.granted(), 10 * TOKENS_PER_AFFECTED_NODE / 2);
    }

    fn succ_at(node: u32) -> Succ {
        Succ {
            state: SymState::initial(NodeId(node), Env::new()),
            lits: Vec::new(),
            hint: None,
            forked: false,
            from_call: false,
        }
    }

    #[test]
    fn arms_order_by_distance_then_cone() {
        let controller = BudgetController::new(SweepBudget::Auto, Some(model(3)), None);
        let mut succs = vec![succ_at(2), succ_at(0), succ_at(1)];
        controller.order_arms(&mut succs);
        let order: Vec<u32> = succs.iter().map(|s| s.state.node.0).collect();
        // Nearest arm (node 1, distance 0) is continued directly; the
        // remaining arms sit worst-first so the owner's LIFO pop takes
        // node 0 (distance 1) before node 2 (unreachable).
        assert_eq!(order, vec![1, 2, 0]);
        // Without a score model the order is untouched.
        let plain = BudgetController::new(SweepBudget::Unlimited, None, None);
        let mut succs = vec![succ_at(2), succ_at(0)];
        plain.order_arms(&mut succs);
        let order: Vec<u32> = succs.iter().map(|s| s.state.node.0).collect();
        assert_eq!(order, vec![2, 0]);
    }

    #[test]
    fn order_arms_counts_scored_and_displaced_arms() {
        let controller = BudgetController::new(SweepBudget::Auto, Some(model(3)), None);
        let mut succs = vec![succ_at(2), succ_at(0), succ_at(1)];
        controller.order_arms(&mut succs);
        let (scored, displaced) = controller.arm_stats();
        assert_eq!(scored, 3);
        // Score order swaps the first and last arms; the middle one keeps
        // its position (the LIFO reverse afterwards is arrangement, not
        // scoring).
        assert_eq!(displaced, 2);
        // Already-ordered input displaces nothing further.
        let mut sorted = vec![succ_at(1), succ_at(0)];
        controller.order_arms(&mut sorted);
        assert_eq!(controller.arm_stats(), (5, 2));
    }

    #[test]
    fn custom_weights_change_the_sweep_order_only() {
        // Negative cone weight with zero distance weight: the
        // affected-heaviest arm (node 0, cone 2) is continued first.
        let weights = crate::heuristic::HeuristicWeights {
            distance: 0.0,
            uncovered: 0.0,
            cone: -1.0,
            trie: 0.0,
        };
        let controller =
            BudgetController::new(SweepBudget::Auto, Some(model_with(3, weights)), None);
        let mut succs = vec![succ_at(2), succ_at(0), succ_at(1)];
        controller.order_arms(&mut succs);
        let order: Vec<u32> = succs.iter().map(|s| s.state.node.0).collect();
        // Score order is [0, 1, 2]; the tail flips worst-first for the
        // owner's LIFO pop.
        assert_eq!(order, vec![0, 2, 1]);
    }

    #[test]
    fn note_state_latches_states_to_affected() {
        let controller = BudgetController::new(SweepBudget::Auto, Some(model(3)), None);
        assert_eq!(controller.states_to_affected(), None);
        controller.note_state(0); // distance 1
        controller.note_state(2); // unreachable
        controller.note_state(1); // distance 0: latch at 2 prior states
        controller.note_state(1); // later hits keep the first latch
        assert_eq!(controller.states_to_affected(), Some(2));
    }

    #[test]
    fn apply_permutation_matches_indexing() {
        let cases: [&[usize]; 5] = [&[], &[0], &[1, 0], &[2, 0, 1], &[3, 1, 0, 2]];
        for order in cases {
            let items: Vec<usize> = (0..order.len()).collect();
            let expected: Vec<usize> = order.to_vec();
            let mut actual = items.clone();
            apply_permutation(&mut actual, order.to_vec());
            assert_eq!(actual, expected, "permutation {order:?}");
        }
    }
}
