//! Symbolic execution tree capture and rendering (Fig. 1).
//!
//! When [`crate::ExecConfig::record_tree`] is set, the executor records
//! every entered state with its parent link; [`ExecTree::render`] prints
//! the tree in the style of the paper's Fig. 1 ("Loc: …, x: X, y: Y + X,
//! PC: X > 0").

use dise_cfg::Cfg;

use crate::state::SymState;

/// One recorded state.
#[derive(Debug, Clone)]
pub struct TreeNode {
    /// Index of the parent state in the tree, `None` for the root.
    pub parent: Option<usize>,
    /// Pretty label: location, environment, and path condition.
    pub label: String,
    /// The CFG node's display label (statement text).
    pub node_label: String,
}

/// A captured symbolic execution tree.
#[derive(Debug, Clone, Default)]
pub struct ExecTree {
    nodes: Vec<TreeNode>,
}

impl ExecTree {
    /// An empty tree.
    pub fn new() -> ExecTree {
        ExecTree::default()
    }

    /// Records a state; returns its index for child links.
    pub fn record(&mut self, parent: Option<usize>, state: &SymState, cfg: &Cfg) -> usize {
        let index = self.nodes.len();
        self.nodes.push(TreeNode {
            parent,
            label: format!("{state}"),
            node_label: cfg.label(state.node),
        });
        index
    }

    /// The recorded states in visit order.
    pub fn nodes(&self) -> &[TreeNode] {
        &self.nodes
    }

    /// Number of recorded states.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Returns `true` if nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Renders the tree with box-drawing characters, one state per line.
    ///
    /// ```text
    /// Loc: n0, x: X, y: Y, PC: true
    /// ├─ Loc: n1, x: X, y: Y, PC: X > 0
    /// │  └─ ...
    /// └─ Loc: n2, x: X, y: Y, PC: !(X > 0)
    /// ```
    pub fn render(&self) -> String {
        let mut children: Vec<Vec<usize>> = vec![Vec::new(); self.nodes.len()];
        let mut roots = Vec::new();
        for (i, node) in self.nodes.iter().enumerate() {
            match node.parent {
                Some(p) => children[p].push(i),
                None => roots.push(i),
            }
        }
        let mut out = String::new();
        for &root in &roots {
            self.render_node(root, "", true, true, &children, &mut out);
        }
        out
    }

    fn render_node(
        &self,
        index: usize,
        prefix: &str,
        is_last: bool,
        is_root: bool,
        children: &[Vec<usize>],
        out: &mut String,
    ) {
        let node = &self.nodes[index];
        if is_root {
            out.push_str(&node.label);
            out.push('\n');
        } else {
            out.push_str(prefix);
            out.push_str(if is_last { "└─ " } else { "├─ " });
            out.push_str(&node.label);
            out.push('\n');
        }
        let child_prefix = if is_root {
            prefix.to_string()
        } else if is_last {
            format!("{prefix}   ")
        } else {
            format!("{prefix}│  ")
        };
        let kids = &children[index];
        for (pos, &child) in kids.iter().enumerate() {
            self.render_node(
                child,
                &child_prefix,
                pos + 1 == kids.len(),
                false,
                children,
                out,
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::{ExecConfig, Executor, FullExploration};
    use dise_ir::parse_program;

    fn captured_tree(src: &str, proc: &str) -> ExecTree {
        let program = parse_program(src).unwrap();
        let config = ExecConfig {
            record_tree: true,
            ..ExecConfig::default()
        };
        let mut executor = Executor::new(&program, proc, config).unwrap();
        let summary = executor.explore(&mut FullExploration);
        summary.tree().unwrap().clone()
    }

    #[test]
    fn tree_matches_states_explored() {
        let tree = captured_tree(
            "int y;
             proc testX(int x) {
               if (x > 0) { y = y + x; } else { y = y - x; }
             }",
            "testX",
        );
        // begin, branch, two assignment states, two end states = 6.
        assert_eq!(tree.len(), 6);
    }

    #[test]
    fn render_contains_figure1_labels() {
        let tree = captured_tree(
            "int y;
             proc testX(int x) {
               if (x > 0) { y = y + x; } else { y = y - x; }
             }",
            "testX",
        );
        let rendered = tree.render();
        assert!(rendered.contains("PC: X > 0"));
        assert!(rendered.contains("PC: X <= 0"));
        assert!(rendered.contains("y: Y + X"));
        assert!(rendered.contains("y: Y - X"));
        assert!(rendered.contains("├─") || rendered.contains("└─"));
    }

    #[test]
    fn straight_line_renders_as_chain() {
        let tree = captured_tree("proc f(int x) { x = 1; }", "f");
        let rendered = tree.render();
        // begin, assign, end: three lines, no branch glyphs beyond └─.
        assert_eq!(rendered.lines().count(), 3);
        assert!(!rendered.contains("├─"));
    }

    #[test]
    fn empty_tree_renders_empty() {
        assert!(ExecTree::new().render().is_empty());
        assert!(ExecTree::new().is_empty());
    }
}
