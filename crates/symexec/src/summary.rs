//! Procedure summaries: explore each callee once, instantiate everywhere.
//!
//! The inlining pipeline pays for a call by re-descending into the callee
//! body on every caller path, every version, every call site. A
//! [`ProcSummary`] is the compositional alternative: the callee is
//! explored *once* over fresh entry variables (its formals and every
//! global), producing one `(guards, effects, witness)` triple per path.
//! At a call site the executor instantiates the summary instead of
//! descending: substitute the actuals for the formals and the caller's
//! current global values for the globals' entry variables
//! ([`dise_solver::substitute`]), conjoin the substituted guards onto the
//! path condition, and apply the substituted effects to the caller's
//! environment.
//!
//! # Determinism contract
//!
//! Summary-instantiated exploration emits *byte-identical* verdicts to
//! inlined exploration: the same path conditions (substitution rebuilds
//! through the same folding smart constructors the evaluator uses, so the
//! two pipelines produce literally equal expression trees), the same
//! outcomes, and the same final environments modulo the `__`-prefixed
//! α-renamed callee temporaries that only the inlined run materializes.
//! Summary paths are instantiated in the callee's serial DFS order, so the
//! caller's path emission order matches the inlined run's depth-first
//! product order.
//!
//! Structural counters (`states_explored`, `infeasible`) are *not* part of
//! the contract — the two modes take different numbers of steps by design.
//!
//! # Fallback rules
//!
//! Summaries are only used when they are provably equivalent to inlining.
//! [`build_summary`] refuses (and the caller falls back to the inlining
//! pipeline) when:
//!
//! * the call graph is recursive ([`InlineError::Recursive`] — MJ rejects
//!   this everywhere, but the gate is re-checked here);
//! * the callee's exploration was depth-bounded or truncated (a bound
//!   measured from the callee's entry is not the bound the inlined run
//!   would apply at the call site's depth);
//! * a callee path ends in a depth-bound or pruned outcome for any other
//!   reason.
//!
//! The executor-level gates (`depth_bound`/`max_states` must be unset,
//! the strategy must be a full exploration) live in `dise-core`, which
//! decides per run whether to route through summaries.
//!
//! # The witness fast path
//!
//! Each summary path carries a witness model of its guards. At a call
//! site the witness is translated through the substitution (entries whose
//! substituted image is a plain caller variable carry over) and overlaid
//! on the parent frame's model; if the combined candidate satisfies the
//! whole solver stack plus the new guards by direct evaluation, the
//! literals are admitted via
//! [`IncrementalSolver::push_verified`](dise_solver::IncrementalSolver::push_verified)
//! — zero decision-pipeline work, while the solver's trie still learns
//! the verdicts for future runs.

use std::collections::BTreeMap;
use std::sync::Arc;

use dise_ir::ast::{Expr, Program};
use dise_ir::inline::{contains_calls, inline_program, InlineError};
use dise_solver::{
    substitute, Model, SolverStats, SummaryPathSnapshot, SummarySnapshot, SymExpr, SymTy,
};

use crate::env::Env;
use crate::eval::eval_symbolic;
use crate::executor::{ExecConfig, ExecError, Executor, FullExploration, PathOutcome};

/// Per-run counters for summary instantiation, folded into
/// [`crate::ExecStats`]. All zero when the run used no summaries.
#[derive(Debug, Clone, Copy, Default)]
pub struct SummaryStats {
    /// Call-node entries dispatched to a summary.
    pub call_sites: u64,
    /// Summary paths turned into successor candidates (feasible after
    /// substitution; concretely-false guards drop the path before this
    /// count).
    pub paths_instantiated: u64,
    /// Instantiated successors admitted entirely through the witness fast
    /// path (`push_verified`) — no decision pipeline ran.
    pub hint_verified: u64,
    /// Decision-pipeline `check` calls spent on instantiated successors
    /// whose witness did not verify. The cross-version benchmark's
    /// "zero solver calls at unchanged call sites" criterion is this
    /// counter staying zero.
    pub fallback_checks: u64,
}

impl SummaryStats {
    /// Adds every counter of `other` into `self` (parallel-frontier
    /// worker merge).
    pub fn merge(&mut self, other: &SummaryStats) {
        self.call_sites += other.call_sites;
        self.paths_instantiated += other.paths_instantiated;
        self.hint_verified += other.hint_verified;
        self.fallback_checks += other.fallback_checks;
    }
}

/// Whether full explorations route calls through procedure summaries.
/// Parsed from `--summaries on|off|auto` / `DISE_SUMMARIES`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SummaryMode {
    /// Never summarize; always inline.
    Off,
    /// Summarize every full exploration of a call-bearing program,
    /// falling back to inlining per run when a gate refuses (recursion,
    /// depth bound, state cap, non-full strategy).
    On,
    /// Like `On`, but framed as a policy default: summaries apply exactly
    /// when the configuration guarantees byte-identical verdicts. The
    /// default.
    #[default]
    Auto,
}

impl SummaryMode {
    /// Parses `on`/`off`/`auto` (case-insensitive).
    pub fn parse(s: &str) -> Option<SummaryMode> {
        match s.to_ascii_lowercase().as_str() {
            "on" => Some(SummaryMode::On),
            "off" => Some(SummaryMode::Off),
            "auto" => Some(SummaryMode::Auto),
            _ => None,
        }
    }

    /// Whether this mode permits summary use at all.
    pub fn enabled(self) -> bool {
        !matches!(self, SummaryMode::Off)
    }
}

impl std::fmt::Display for SummaryMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SummaryMode::Off => f.write_str("off"),
            SummaryMode::On => f.write_str("on"),
            SummaryMode::Auto => f.write_str("auto"),
        }
    }
}

/// One procedure's summary: the portable snapshot (paths, entry
/// variables, invalidation keys) plus what it cost to build — reported
/// once per build, amortized over every instantiation.
#[derive(Debug, Clone)]
pub struct ProcSummary {
    /// The portable payload (also what the store persists).
    pub snap: SummarySnapshot,
    /// Solver activity spent exploring the callee and deriving witnesses.
    /// Zero for summaries loaded from a store.
    pub build_stats: SolverStats,
}

/// The summaries available to one executor, keyed by callee name. Shared
/// (via [`Arc`]) between the serial engine and every frontier worker, and
/// carried across version hops by `dise-core`'s session.
#[derive(Debug, Clone, Default)]
pub struct SummaryTable {
    entries: BTreeMap<String, Arc<ProcSummary>>,
}

impl SummaryTable {
    /// An empty table.
    pub fn new() -> SummaryTable {
        SummaryTable::default()
    }

    /// The summary for `callee`, if present.
    pub fn get(&self, callee: &str) -> Option<&Arc<ProcSummary>> {
        self.entries.get(callee)
    }

    /// Inserts (or replaces) the summary for its procedure.
    pub fn insert(&mut self, summary: Arc<ProcSummary>) {
        self.entries.insert(summary.snap.proc_name.clone(), summary);
    }

    /// The fingerprint the stored summary for `callee` was built against.
    pub fn fingerprint_of(&self, callee: &str) -> Option<u64> {
        self.entries.get(callee).map(|s| s.snap.fingerprint)
    }

    /// Drops every entry whose callee is *not* listed in `fresh` with a
    /// matching fingerprint — the cross-hop invalidation step: an
    /// unchanged callee survives the hop, a changed one is rebuilt.
    /// Returns the number of entries that survived.
    pub fn retain_matching(&mut self, fresh: &BTreeMap<String, u64>) -> usize {
        self.entries
            .retain(|name, s| fresh.get(name) == Some(&s.snap.fingerprint));
        self.entries.len()
    }

    /// Iterates over the summaries in callee-name order.
    pub fn iter(&self) -> impl Iterator<Item = &Arc<ProcSummary>> {
        self.entries.values()
    }

    /// Number of summaries in the table.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` when the table holds no summaries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// Why a callee could not be summarized (the caller falls back to the
/// inlining pipeline).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SummaryBuildError {
    /// Flattening the callee failed (recursion, unknown nested callee…).
    Inline(InlineError),
    /// Constructing the callee executor failed.
    Exec(ExecError),
    /// The callee's exploration hit the depth bound — entry-relative
    /// bounds are not call-site-relative bounds, so the summary would not
    /// be equivalent to inlining.
    DepthBounded,
    /// The callee's exploration was truncated by the state cap.
    Truncated,
}

impl std::fmt::Display for SummaryBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SummaryBuildError::Inline(e) => write!(f, "flattening failed: {e}"),
            SummaryBuildError::Exec(e) => write!(f, "callee executor: {e}"),
            SummaryBuildError::DepthBounded => {
                f.write_str("callee exploration hit the depth bound")
            }
            SummaryBuildError::Truncated => f.write_str("callee exploration was truncated"),
        }
    }
}

impl std::error::Error for SummaryBuildError {}

impl From<InlineError> for SummaryBuildError {
    fn from(e: InlineError) -> Self {
        SummaryBuildError::Inline(e)
    }
}

impl From<ExecError> for SummaryBuildError {
    fn from(e: ExecError) -> Self {
        SummaryBuildError::Exec(e)
    }
}

/// Explores `callee` once into a [`ProcSummary`].
///
/// The callee (flattened first, so nested calls are folded in) is
/// explored serially with a full strategy over a *fully symbolic* entry
/// environment: every formal **and every global** is bound to a fresh
/// entry variable — unlike a top-level run, where initialized globals
/// start concrete — because a call site may be reached with any global
/// state. Witness models are then derived per path by re-pushing the
/// path's guards into a fresh solver (one check per path; this cost is
/// part of [`ProcSummary::build_stats`] and is amortized over every
/// instantiation).
///
/// `fingerprint` is the callee's flattened-body fingerprint
/// (`dise-diff`'s `proc_fingerprint`), stored for cross-version
/// invalidation; this crate treats it as an opaque key.
pub fn build_summary(
    program: &Program,
    callee: &str,
    fingerprint: u64,
    config: &ExecConfig,
) -> Result<ProcSummary, SummaryBuildError> {
    let flat;
    let program = if contains_calls(program, callee) {
        flat = inline_program(program, callee)?;
        &flat
    } else {
        program
    };
    let procedure = program
        .proc(callee)
        .ok_or_else(|| InlineError::MissingProcedure(callee.to_string()))?;

    // Entry environment: formals and *all* globals symbolic.
    let mut pool = dise_solver::VarPool::new();
    let mut env = Env::new();
    let mut formals = Vec::new();
    let mut globals = Vec::new();
    for param in &procedure.params {
        let ty = match param.ty {
            dise_ir::Type::Int => SymTy::Int,
            dise_ir::Type::Bool => SymTy::Bool,
        };
        let var = pool.fresh(crate::executor::symbolic_name(&param.name), ty);
        env.bind(&param.name, SymExpr::var(&var));
        formals.push((param.name.clone(), var));
    }
    for global in &program.globals {
        let ty = match global.ty {
            dise_ir::Type::Int => SymTy::Int,
            dise_ir::Type::Bool => SymTy::Bool,
        };
        let var = pool.fresh(crate::executor::symbolic_name(&global.name), ty);
        env.bind(&global.name, SymExpr::var(&var));
        globals.push((global.name.clone(), var));
    }

    // Serial, trace-free exploration; the caller's solver tuning applies
    // (the summary's solver_key records it).
    let mut callee_config = config.clone();
    callee_config.jobs = 1;
    callee_config.record_traces = false;
    callee_config.record_tree = false;
    callee_config.record_pruned = false;
    let solver_key = callee_config.solver.cache_key();
    let inputs: Vec<_> = formals.iter().chain(globals.iter()).cloned().collect();
    let mut executor = Executor::from_parts(
        callee.to_string(),
        dise_cfg::build_cfg(procedure),
        env,
        inputs,
        pool,
        callee_config,
    );
    let span = config
        .tracer
        .as_ref()
        .map(|h| h.begin(&format!("summary.build.{callee}")));
    let explored = executor.explore(&mut FullExploration);
    if let (Some(h), Some(span)) = (&config.tracer, span) {
        h.end_with(
            span,
            vec![
                ("paths".to_string(), explored.paths().len() as u64),
                ("solver.checks".to_string(), explored.stats().solver.checks),
                (
                    "solver.pipeline_checks".to_string(),
                    explored.stats().solver.pipeline_checks(),
                ),
            ],
        );
    }
    if explored.stats().truncated {
        return Err(SummaryBuildError::Truncated);
    }
    if explored.stats().paths_depth_bounded > 0 {
        return Err(SummaryBuildError::DepthBounded);
    }
    let mut build_stats = explored.stats().solver;

    // Witness derivation: one fresh solver, one check per path.
    let mut witness_solver = dise_solver::IncrementalSolver::with_config(config.solver);
    let mut paths = Vec::new();
    for path in explored.paths() {
        let guards: Vec<SymExpr> = path.pc.conjuncts().to_vec();
        let error = match &path.outcome {
            PathOutcome::Completed => None,
            PathOutcome::Error(message) => Some(message.clone()),
            // Ruled out above (depth-bounded) / by the full strategy
            // (pruned).
            PathOutcome::DepthBounded | PathOutcome::Pruned => {
                return Err(SummaryBuildError::DepthBounded)
            }
        };
        let effects: Vec<(String, SymExpr)> = globals
            .iter()
            .map(|(name, var)| {
                let value = path
                    .final_env
                    .get(name)
                    .cloned()
                    .unwrap_or_else(|| SymExpr::var(var));
                (name.clone(), value)
            })
            .collect();
        let witness = {
            witness_solver.reset();
            for guard in &guards {
                witness_solver.push(guard.clone());
            }
            match witness_solver.check() {
                dise_solver::SatResult::Sat => witness_solver.model().cloned(),
                _ => None,
            }
        };
        paths.push(SummaryPathSnapshot {
            guards,
            error,
            effects,
            witness,
        });
    }
    build_stats.merge(&witness_solver.stats());

    Ok(ProcSummary {
        snap: SummarySnapshot {
            proc_name: callee.to_string(),
            fingerprint,
            solver_key,
            formals,
            globals,
            paths,
        },
        build_stats,
    })
}

/// One summary path rewritten into the caller's expression space.
pub(crate) struct InstantiatedPath {
    /// Substituted guards, trivially-true conjuncts dropped (mirroring
    /// [`dise_solver::PathCondition::push`]). A guard that substituted to
    /// the constant `false` drops the whole path instead (the inlined run
    /// would never have forked that arm).
    pub lits: Vec<SymExpr>,
    /// The caller environment with the path's effects applied.
    pub env: Env,
    /// The callee-side assertion failure this path ends in, if any.
    pub error: Option<String>,
    /// The path's witness translated through the substitution (entries
    /// whose image is a plain caller variable), for the `push_verified`
    /// fast path.
    pub hint: Option<Model>,
}

/// Instantiates `summary` at a call site: actuals `args` evaluated in
/// `caller_env`. Returns the feasible-after-substitution paths in summary
/// (= callee serial DFS) order.
pub(crate) fn instantiate(
    summary: &ProcSummary,
    args: &[Expr],
    caller_env: &Env,
) -> Vec<InstantiatedPath> {
    let snap = &summary.snap;
    // σ: callee entry variable id → caller-side expression.
    let mut sigma: BTreeMap<u32, SymExpr> = BTreeMap::new();
    for ((_, var), actual) in snap.formals.iter().zip(args) {
        let value = eval_symbolic(actual, caller_env)
            .expect("type-checked program has no unbound variables");
        sigma.insert(var.id(), value);
    }
    for (name, var) in &snap.globals {
        let value = caller_env
            .get(name)
            .cloned()
            .unwrap_or_else(|| SymExpr::var(var));
        sigma.insert(var.id(), value);
    }

    let mut out = Vec::new();
    'paths: for path in &snap.paths {
        let mut lits = Vec::new();
        for guard in &path.guards {
            match substitute(guard, &sigma) {
                // The inlined run folds these the same way: a true guard
                // adds no literal, a false guard means the branch arm is
                // concrete and never forked.
                SymExpr::Bool(true) => {}
                SymExpr::Bool(false) => continue 'paths,
                lit => lits.push(lit),
            }
        }
        let mut env = caller_env.clone();
        for (name, effect) in &path.effects {
            env.bind(name, substitute(effect, &sigma));
        }
        let hint = path.witness.as_ref().map(|witness| {
            let mut hint = Model::default();
            for (id, value) in witness.iter() {
                if let Some(SymExpr::Var(v)) = sigma.get(&id) {
                    hint.set(v.id(), value);
                }
            }
            hint
        });
        out.push(InstantiatedPath {
            lits,
            env,
            error: path.error.clone(),
            hint,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use dise_ir::{check_program, parse_program};

    /// Builds a summary table covering every procedure `main` calls.
    fn table_for(program: &Program, main: &str, config: &ExecConfig) -> SummaryTable {
        let mut table = SummaryTable::new();
        for procedure in &program.procs {
            if procedure.name != main {
                let summary = build_summary(program, &procedure.name, 0, config)
                    .expect("test callee is summarizable");
                table.insert(Arc::new(summary));
            }
        }
        table
    }

    /// Explores `main` both ways and returns `(inlined, summarized)`.
    fn run_both(
        src: &str,
        main: &str,
        jobs: usize,
    ) -> (crate::SymbolicSummary, crate::SymbolicSummary) {
        let program = parse_program(src).unwrap();
        check_program(&program).unwrap();
        let config = ExecConfig {
            jobs,
            ..ExecConfig::default()
        };
        let flat = inline_program(&program, main).unwrap();
        let mut inlined = Executor::new(&flat, main, config.clone()).unwrap();
        let inlined_run = inlined.explore(&mut FullExploration);
        let table = Arc::new(table_for(&program, main, &config));
        let mut summarized = Executor::with_summaries(&program, main, config, table).unwrap();
        let summarized_run = summarized.explore(&mut FullExploration);
        (inlined_run, summarized_run)
    }

    /// The byte-identity contract: same pc strings, same outcomes, same
    /// final environments modulo `__`-prefixed inlined temporaries.
    fn assert_equivalent(inlined: &crate::SymbolicSummary, summarized: &crate::SymbolicSummary) {
        assert_eq!(inlined.paths().len(), summarized.paths().len());
        for (a, b) in inlined.paths().iter().zip(summarized.paths()) {
            assert_eq!(a.pc.to_string(), b.pc.to_string());
            assert_eq!(a.outcome, b.outcome);
            let visible = |env: &Env| {
                env.iter()
                    .filter(|(name, _)| !name.starts_with("__"))
                    .map(|(name, value)| format!("{name}={value}"))
                    .collect::<Vec<_>>()
            };
            assert_eq!(visible(&a.final_env), visible(&b.final_env));
        }
    }

    const BRANCHING: &str = "int total = 0;
         proc clamp(int amount) {
           if (amount > 10) { total = total + 10; }
           else { total = total + amount; }
         }
         proc main(int a, int b) { clamp(a); clamp(b); }";

    #[test]
    fn summary_matches_inlined_on_branching_callee() {
        let (inlined, summarized) = run_both(BRANCHING, "main", 1);
        assert_eq!(inlined.paths().len(), 4);
        assert_equivalent(&inlined, &summarized);
        // Dispatches, not static sites: the second call node is entered
        // once per feasible path through the first (1 + 2).
        assert_eq!(summarized.stats().summary.call_sites, 3);
        assert!(summarized.stats().summary.paths_instantiated >= 4);
    }

    #[test]
    fn summary_matches_inlined_in_parallel_frontier() {
        let (inlined, summarized) = run_both(BRANCHING, "main", 4);
        assert_equivalent(&inlined, &summarized);
        assert!(summarized.stats().summary.call_sites >= 2);
    }

    #[test]
    fn summary_propagates_callee_errors() {
        let src = "proc check(int v) { assert(v >= 0); }
             proc main(int a) { check(a); }";
        let (inlined, summarized) = run_both(src, "main", 1);
        assert_eq!(inlined.stats().paths_error, 1);
        assert_eq!(summarized.stats().paths_error, 1);
        assert_equivalent(&inlined, &summarized);
    }

    #[test]
    fn witness_fast_path_answers_pure_formal_guards_without_pipeline() {
        // Guards reference only formals and actuals are distinct caller
        // variables, so every instantiated path's witness translates
        // completely and verifies by evaluation.
        let src = "int log = 0;
             proc gate(int v) {
               if (v > 0) { log = log + 1; }
               else { log = log - 1; }
             }
             proc main(int a, int b) { gate(a); gate(b); }";
        let program = parse_program(src).unwrap();
        check_program(&program).unwrap();
        let config = ExecConfig {
            jobs: 1,
            ..ExecConfig::default()
        };
        let table = Arc::new(table_for(&program, "main", &config));
        let mut executor = Executor::with_summaries(&program, "main", config, table).unwrap();
        let run = executor.explore(&mut FullExploration);
        let stats = run.stats().summary;
        assert_eq!(stats.call_sites, 3);
        assert_eq!(stats.fallback_checks, 0, "all sites should hint-verify");
        assert_eq!(stats.hint_verified, stats.paths_instantiated);
        assert_eq!(run.stats().solver.assumed_sat, stats.hint_verified);
    }

    #[test]
    fn concrete_false_guard_drops_path_silently() {
        // `main` passes a constant, so one summary path's guard folds to
        // false: the inlined run never forks there either.
        let src = "int out = 0;
             proc pick(int v) {
               if (v > 0) { out = 1; } else { out = 2; }
             }
             proc main() { pick(5); }";
        let (inlined, summarized) = run_both(src, "main", 1);
        assert_eq!(inlined.paths().len(), 1);
        assert_equivalent(&inlined, &summarized);
    }

    #[test]
    fn build_refuses_recursive_callee() {
        let src = "proc spin(int n) { if (n > 0) { spin(n - 1); } }
             proc main(int a) { spin(a); }";
        let program = parse_program(src).unwrap();
        let err = build_summary(&program, "spin", 0, &ExecConfig::default()).unwrap_err();
        assert!(matches!(err, SummaryBuildError::Inline(_)));
    }

    #[test]
    fn missing_summary_is_reported() {
        let program = parse_program("proc f(int x) { } proc main(int a) { f(a); }").unwrap();
        check_program(&program).unwrap();
        let err = Executor::with_summaries(
            &program,
            "main",
            ExecConfig::default(),
            Arc::new(SummaryTable::new()),
        )
        .unwrap_err();
        assert!(matches!(err, ExecError::MissingSummary(name) if name == "f"));
    }

    #[test]
    fn retain_matching_invalidates_changed_fingerprints() {
        let program =
            parse_program("proc f(int x) { } proc g(int x) { } proc main(int a) { f(a); g(a); }")
                .unwrap();
        let config = ExecConfig::default();
        let mut table = SummaryTable::new();
        table.insert(Arc::new(build_summary(&program, "f", 11, &config).unwrap()));
        table.insert(Arc::new(build_summary(&program, "g", 22, &config).unwrap()));
        let fresh: BTreeMap<String, u64> = [("f".to_string(), 11), ("g".to_string(), 99)].into();
        assert_eq!(table.retain_matching(&fresh), 1);
        assert!(table.get("f").is_some());
        assert!(table.get("g").is_none());
    }
}
