//! Symbolic evaluation of MJ expressions.
//!
//! Maps an AST [`Expr`] to a [`SymExpr`] under an [`Env`], using the
//! solver's smart constructors so concrete sub-computations fold away
//! (`2 + 3` never reaches a path condition).

use dise_ir::ast::{Expr, ExprKind};
use dise_solver::SymExpr;

use crate::env::Env;

/// Errors during symbolic evaluation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EvalError {
    /// A variable was read that is not bound in the environment. Type
    /// checking prevents this for checked programs; it remains observable
    /// when executing unchecked ASTs.
    UnboundVariable(String),
}

impl std::fmt::Display for EvalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EvalError::UnboundVariable(name) => write!(f, "unbound variable `{name}`"),
        }
    }
}

impl std::error::Error for EvalError {}

/// Evaluates `expr` to a symbolic value under `env`.
///
/// # Errors
///
/// [`EvalError::UnboundVariable`] if `expr` reads a name `env` does not
/// bind.
///
/// # Examples
///
/// ```
/// use dise_ir::parse_expr;
/// use dise_solver::{SymExpr, SymTy, VarPool};
/// use dise_symexec::env::Env;
/// use dise_symexec::eval::eval_symbolic;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut pool = VarPool::new();
/// let x = pool.fresh("X", SymTy::Int);
/// let mut env = Env::new();
/// env.bind("x", SymExpr::var(&x));
/// let value = eval_symbolic(&parse_expr("x + 1 + 2")?, &env)?;
/// assert_eq!(value.to_string(), "X + 1 + 2");
/// let folded = eval_symbolic(&parse_expr("1 + 2")?, &env)?;
/// assert_eq!(folded, SymExpr::int(3));
/// # Ok(())
/// # }
/// ```
pub fn eval_symbolic(expr: &Expr, env: &Env) -> Result<SymExpr, EvalError> {
    match &expr.kind {
        ExprKind::Int(v) => Ok(SymExpr::int(*v)),
        ExprKind::Bool(b) => Ok(SymExpr::boolean(*b)),
        ExprKind::Var(name) => env
            .get(name)
            .cloned()
            .ok_or_else(|| EvalError::UnboundVariable(name.clone())),
        ExprKind::Unary { op, expr: inner } => {
            let arg = eval_symbolic(inner, env)?;
            Ok(SymExpr::unary(*op, arg))
        }
        ExprKind::Binary { op, lhs, rhs } => {
            let l = eval_symbolic(lhs, env)?;
            let r = eval_symbolic(rhs, env)?;
            Ok(SymExpr::binary(*op, l, r))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dise_ir::parse_expr;
    use dise_solver::{SymTy, VarPool};

    fn env_xy() -> (Env, VarPool) {
        let mut pool = VarPool::new();
        let x = pool.fresh("X", SymTy::Int);
        let y = pool.fresh("Y", SymTy::Int);
        let mut env = Env::new();
        env.bind("x", SymExpr::var(&x));
        env.bind("y", SymExpr::var(&y));
        (env, pool)
    }

    #[test]
    fn concrete_subterms_fold() {
        let (env, _) = env_xy();
        let e = eval_symbolic(&parse_expr("x + (2 * 3)").unwrap(), &env).unwrap();
        assert_eq!(e.to_string(), "X + 6");
    }

    #[test]
    fn symbolic_update_builds_expression() {
        // The paper's testX: after `y = y + x`, y holds Y + X.
        let (env, _) = env_xy();
        let updated = env.with(
            "y",
            eval_symbolic(&parse_expr("y + x").unwrap(), &env).unwrap(),
        );
        assert_eq!(updated.get("y").unwrap().to_string(), "Y + X");
    }

    #[test]
    fn unbound_variable_errors() {
        let (env, _) = env_xy();
        let err = eval_symbolic(&parse_expr("z + 1").unwrap(), &env).unwrap_err();
        assert_eq!(err, EvalError::UnboundVariable("z".into()));
        assert!(err.to_string().contains("z"));
    }

    #[test]
    fn comparisons_and_logic() {
        let (env, _) = env_xy();
        let e = eval_symbolic(&parse_expr("x > 0 && y <= 10").unwrap(), &env).unwrap();
        assert_eq!(e.to_string(), "X > 0 && Y <= 10");
    }

    #[test]
    fn concrete_branch_condition_folds_to_constant() {
        let mut env = Env::new();
        env.bind("x", SymExpr::int(5));
        let e = eval_symbolic(&parse_expr("x > 0").unwrap(), &env).unwrap();
        assert_eq!(e, SymExpr::boolean(true));
    }
}
