//! # dise-symexec — the symbolic execution engine
//!
//! A from-scratch equivalent of the Symbolic PathFinder substrate the paper
//! builds on (§4.1), operating on MJ CFGs:
//!
//! * **stateless search** — no state matching, exactly like SPF;
//! * **depth bound** — loops and recursion are bounded by a user-specified
//!   depth (the artifacts in the paper's study are loop-free, so their runs
//!   use no bound);
//! * **solver policy** — when the solver cannot decide a path condition,
//!   the path is treated as infeasible by default (SPF's timeout rule),
//!   configurable via [`ExecConfig::unknown_is_sat`];
//! * **pluggable strategy** — the engine exposes the two hooks the DiSE
//!   algorithm of Fig. 6 needs: a state-entry callback
//!   ([`Strategy::on_enter`] ⇒ `UpdateExploredSet`) and a successor filter
//!   ([`Strategy::should_explore`] ⇒ `AffectedLocIsReachable`). Full
//!   symbolic execution is the trivial strategy that always explores.
//!
//! The engine mimics the recursive structure of Fig. 6 with explicit
//! frames, so hook side effects observe exactly the same order as the
//! paper's pseudocode (a successor's filter runs only after the previous
//! successor's entire subtree finished).
//!
//! With [`ExecConfig::jobs`] > 1 the [`frontier`] module takes over:
//! forkable strategies are explored by a work-stealing pool with a merged,
//! byte-identical summary; order-dependent strategies (the directed
//! search) get a budgeted speculative solver sweep
//! ([`frontier::budget`], [`SweepBudget`]) followed by the unchanged
//! serial authoritative pass.
//!
//! Two companion engines share the CFG and the evaluation semantics:
//!
//! * [`concrete`] — runs a procedure on actual values (test replay,
//!   differential testing, coverage spectra), with arithmetic matching
//!   the solver's model evaluation exactly;
//! * [`concolic`] — single-path symbolic execution steered by a concrete
//!   input, regenerating the full engine's path condition for the path
//!   that input drives.
//!
//! # Examples
//!
//! ```
//! use dise_ir::parse_program;
//! use dise_symexec::{ExecConfig, Executor, FullExploration};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let program = parse_program(
//!     "int y;
//!      proc testX(int x) {
//!        if (x > 0) { y = y + x; } else { y = y - x; }
//!      }",
//! )?;
//! let mut executor = Executor::new(&program, "testX", ExecConfig::default())?;
//! let summary = executor.explore(&mut FullExploration);
//! assert_eq!(summary.path_conditions().count(), 2);
//! # Ok(())
//! # }
//! ```

pub mod concolic;
pub mod concrete;
pub mod env;
pub mod eval;
pub mod executor;
pub mod frontier;
pub mod heuristic;
pub mod state;
pub mod summary;
pub mod tree;

pub use concolic::{ConcolicExecutor, ConcolicRun};
pub use concrete::{ConcreteConfig, ConcreteExecutor, ConcreteOutcome, ConcreteRun, ValueEnv};
pub use env::Env;
pub use executor::{
    ExecConfig, ExecError, ExecStats, Executor, FilterScope, FullExploration, PathOutcome,
    PathSummary, Strategy, SymbolicSummary, WarmHandoff,
};
pub use frontier::{FrontierStats, SweepBudget, TOKENS_PER_AFFECTED_NODE};
pub use heuristic::{FeatureMaps, HeuristicChoice, HeuristicWeights, ScoreModel};
pub use state::SymState;
pub use summary::{
    build_summary, ProcSummary, SummaryBuildError, SummaryMode, SummaryStats, SummaryTable,
};
pub use tree::ExecTree;
