//! Pluggable feature-vector search heuristics for the directed frontier.
//!
//! Until this module, the speculative sweep ordered sibling branch arms by
//! one hard-coded signal: `dise_cfg::DistanceTo` the nearest affected node
//! (with the affected-cone size as a fixed tie-break). Following "Enhancing
//! Dynamic Symbolic Execution by Automatically Learning Search Heuristics",
//! the ordering is now a *scored* decision over a per-node feature vector:
//!
//! | feature    | map                              | meaning                               |
//! |------------|----------------------------------|---------------------------------------|
//! | `distance` | [`FeatureMaps::distance`]        | CFG edges to the nearest affected node|
//! | `uncovered`| [`FeatureMaps::uncovered`]       | md2u: edges to the nearest unaffected conditional ([`dise_cfg::UncoveredDistance`]) |
//! | `cone`     | [`FeatureMaps::cone`]            | affected nodes reachable from the arm |
//! | `trie`     | [`FeatureMaps::trie_depth`]      | forward depth from `begin` — a proxy for shared-trie prefix warm-hit likelihood (shallow prefixes are the ones a warm trie has already decided) |
//!
//! A [`ScoreModel`] is a [`HeuristicWeights`] vector dotted with those
//! features: `score = w·f`, lower explores first. The zero-config default
//! ([`HeuristicWeights::DISTANCE_ONLY`]) weights only `distance`, which —
//! together with the fixed structural tie-break (descending cone, then
//! stable successor index) — reproduces the previous hard-coded ordering
//! bit for bit.
//!
//! # The determinism contract
//!
//! Scores *reorder* work; they never change results. The only consumer
//! that permutes anything is the speculative sweep's arm ordering
//! (`BudgetController::order_arms`), whose sole observable product is a
//! warmer shared verdict trie; the authoritative pass consumes the same
//! scores as per-arm attribution metrics without ever permuting its fixed
//! serial order. Ties are broken by descending cone and then by the
//! arm's *stable successor index* — never by map iteration order — so
//! any weight vector yields byte-identical verdicts at any `DISE_JOBS`.
//!
//! Weights come from `--heuristic distance|tuned|FILE`, the
//! `DISE_HEURISTIC` environment variable, or — for warm runs with neither
//! given — the weights persisted in `dise-store` next to the sweep
//! feedback ([`HeuristicChoice::Inherit`]). `dise tune` searches the
//! weight space against a generated corpus and emits the checked-in
//! `tuned.weights` ([`HeuristicWeights::TUNED`]).

use std::sync::Arc;

/// One weight per feature of the arm-scoring vector. The score of an arm
/// rooted at node `n` is the dot product with [`FeatureMaps`] row `n`;
/// lower scores explore first, so a *negative* weight turns its feature
/// into a preference (e.g. `cone = -1` prefers affected-heavy arms).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HeuristicWeights {
    /// Weight of the distance-to-nearest-affected-node feature.
    pub distance: f64,
    /// Weight of the md2u (distance-to-uncovered-conditional) feature.
    pub uncovered: f64,
    /// Weight of the affected-cone-size feature.
    pub cone: f64,
    /// Weight of the trie-prefix-depth (warm-hit likelihood) feature.
    pub trie: f64,
}

impl Default for HeuristicWeights {
    fn default() -> HeuristicWeights {
        HeuristicWeights::DISTANCE_ONLY
    }
}

impl HeuristicWeights {
    /// The zero-config default: score equals the distance to the nearest
    /// affected node, reproducing the pre-heuristic ordering exactly.
    pub const DISTANCE_ONLY: HeuristicWeights = HeuristicWeights {
        distance: 1.0,
        uncovered: 0.0,
        cone: 0.0,
        trie: 0.0,
    };

    /// The corpus-tuned weights `dise tune` found (the checked-in
    /// `tuned.weights`; `dise-core`'s tests pin the two against each
    /// other). Distance still leads; the negative md2u weight penalizes
    /// arms *close to unaffected branching* (and, via the `UNREACHABLE`
    /// sentinel, strongly prefers subtrees containing no unaffected
    /// conditionals at all — pure affected work). On the generated
    /// corpus this covers the whole affected region in 15-25% fewer
    /// speculative states than pure distance; the hand-written
    /// WBS/OAE/ASW artifacts are small enough that their sweep schedule
    /// is fully determined either way (parity, no regression).
    pub const TUNED: HeuristicWeights = HeuristicWeights {
        distance: 1.0,
        uncovered: -0.25,
        cone: 0.0,
        trie: 0.0,
    };

    /// Parses the `tuned.weights` file format: one `feature = value` line
    /// per feature, `#` comments and blank lines ignored. Every feature
    /// must appear exactly once and every value must be finite.
    ///
    /// # Errors
    ///
    /// A human-readable description of the first malformed line, unknown
    /// or duplicate feature, non-finite value, or missing feature.
    pub fn parse(text: &str) -> Result<HeuristicWeights, String> {
        let mut seen: [Option<f64>; 4] = [None; 4];
        for (lineno, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let (name, value) = line
                .split_once('=')
                .ok_or_else(|| format!("line {}: expected `feature = value`", lineno + 1))?;
            let slot = match name.trim() {
                "distance" => 0,
                "uncovered" => 1,
                "cone" => 2,
                "trie" => 3,
                other => return Err(format!("line {}: unknown feature {other:?}", lineno + 1)),
            };
            if seen[slot].is_some() {
                return Err(format!(
                    "line {}: duplicate feature {:?}",
                    lineno + 1,
                    name.trim()
                ));
            }
            let value: f64 = value
                .trim()
                .parse()
                .map_err(|_| format!("line {}: {:?} is not a number", lineno + 1, value.trim()))?;
            if !value.is_finite() {
                return Err(format!("line {}: weights must be finite", lineno + 1));
            }
            seen[slot] = Some(value);
        }
        match seen {
            [Some(distance), Some(uncovered), Some(cone), Some(trie)] => Ok(HeuristicWeights {
                distance,
                uncovered,
                cone,
                trie,
            }),
            _ => {
                let names = ["distance", "uncovered", "cone", "trie"];
                let missing: Vec<&str> = names
                    .iter()
                    .zip(seen)
                    .filter(|(_, v)| v.is_none())
                    .map(|(n, _)| *n)
                    .collect();
                Err(format!("missing feature(s): {}", missing.join(", ")))
            }
        }
    }

    /// The weights as a plain `[distance, uncovered, cone, trie]` array —
    /// the shape `dise-store` persists (it must not depend on this
    /// crate).
    pub fn to_array(self) -> [f64; 4] {
        [self.distance, self.uncovered, self.cone, self.trie]
    }

    /// [`HeuristicWeights::to_array`]'s inverse.
    pub fn from_array([distance, uncovered, cone, trie]: [f64; 4]) -> HeuristicWeights {
        HeuristicWeights {
            distance,
            uncovered,
            cone,
            trie,
        }
    }

    /// The weights as one bracketed vector for stats lines:
    /// `[distance, uncovered, cone, trie]`.
    pub fn vector(&self) -> String {
        format!(
            "[{}, {}, {}, {}]",
            self.distance, self.uncovered, self.cone, self.trie
        )
    }
}

/// [`HeuristicWeights::parse`]'s inverse: the canonical `*.weights` file
/// body. `dise tune` writes exactly this (the CI tuning-determinism job
/// byte-diffs two emissions), and `f64`'s shortest-roundtrip `Display`
/// keeps it stable across runs.
impl std::fmt::Display for HeuristicWeights {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "# dise heuristic weights: score = w . features,")?;
        writeln!(
            f,
            "# lower score explores first; negative weight = preference."
        )?;
        writeln!(f, "distance = {}", self.distance)?;
        writeln!(f, "uncovered = {}", self.uncovered)?;
        writeln!(f, "cone = {}", self.cone)?;
        writeln!(f, "trie = {}", self.trie)
    }
}

/// How the run picks its weight vector (CLI `--heuristic`, environment
/// `DISE_HEURISTIC`, or nothing at all).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum HeuristicChoice {
    /// Nothing requested: inherit the weights persisted in the analysis
    /// store for this procedure when present (warm CLI runs and `dise
    /// serve` sessions keep whatever a previous `--heuristic` run
    /// recorded), else fall back to [`HeuristicWeights::DISTANCE_ONLY`].
    #[default]
    Inherit,
    /// `--heuristic distance`: the explicit pre-heuristic baseline.
    Distance,
    /// `--heuristic tuned`: the checked-in corpus-tuned vector.
    Tuned,
    /// `--heuristic FILE`: a custom weight vector from a `*.weights`
    /// file.
    Custom(HeuristicWeights),
}

impl HeuristicChoice {
    /// Parses a CLI/env spec: `distance`, `tuned`, or a path to a
    /// `*.weights` file.
    ///
    /// # Errors
    ///
    /// A human-readable description when the file cannot be read or does
    /// not parse.
    pub fn parse_spec(spec: &str) -> Result<HeuristicChoice, String> {
        let spec = spec.trim();
        if spec.eq_ignore_ascii_case("distance") {
            return Ok(HeuristicChoice::Distance);
        }
        if spec.eq_ignore_ascii_case("tuned") {
            return Ok(HeuristicChoice::Tuned);
        }
        let text = std::fs::read_to_string(spec)
            .map_err(|e| format!("cannot read weights file {spec:?}: {e}"))?;
        HeuristicWeights::parse(&text)
            .map(HeuristicChoice::Custom)
            .map_err(|e| format!("weights file {spec:?}: {e}"))
    }

    /// Resolves the choice to concrete weights. `stored` is the vector the
    /// analysis store recorded for this procedure, consulted only by
    /// [`HeuristicChoice::Inherit`].
    pub fn resolve(&self, stored: Option<HeuristicWeights>) -> HeuristicWeights {
        match self {
            HeuristicChoice::Inherit => stored.unwrap_or(HeuristicWeights::DISTANCE_ONLY),
            HeuristicChoice::Distance => HeuristicWeights::DISTANCE_ONLY,
            HeuristicChoice::Tuned => HeuristicWeights::TUNED,
            HeuristicChoice::Custom(weights) => *weights,
        }
    }

    /// The short name stats lines print (`heuristic:` prefix).
    pub fn name(&self) -> &'static str {
        match self {
            HeuristicChoice::Inherit => "inherit",
            HeuristicChoice::Distance => "distance",
            HeuristicChoice::Tuned => "tuned",
            HeuristicChoice::Custom(_) => "custom",
        }
    }
}

/// The per-node feature maps a [`ScoreModel`] scores against, indexed by
/// `dise_cfg::NodeId::index`. Weight-independent and determined entirely
/// by `(CFG, affected sets)`, so sessions cache one `Arc` per procedure
/// fingerprint and re-score it under any weight vector for free.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FeatureMaps {
    /// CFG-edge distance to the nearest affected node
    /// ([`ScoreModel::UNREACHABLE`] when none is reachable).
    pub distance: Vec<u32>,
    /// md2u: CFG-edge distance to the nearest *unaffected* conditional
    /// (`dise_cfg::UncoveredDistance`; the sentinel when none is
    /// reachable).
    pub uncovered: Vec<u32>,
    /// Number of affected nodes reachable from each node (the affected
    /// mass *under* an arm rooted there). Zero means the static
    /// speculation hint prunes the arm on entry.
    pub cone: Vec<u32>,
    /// Forward BFS depth from the CFG's `begin` node (the sentinel for
    /// unreachable nodes) — shallow depth predicts a warm-trie prefix
    /// hit.
    pub trie_depth: Vec<u32>,
    /// Total affected nodes (`|ACN ∪ AWN|`) — the `SweepBudget::Auto`
    /// sizing basis.
    pub affected_total: u32,
}

/// A weight vector bound to its feature maps: the pluggable heuristic the
/// frontier consumes. Produced by `Strategy::speculation_cost` (the
/// directed strategy builds one; full exploration has none).
#[derive(Debug, Clone)]
pub struct ScoreModel {
    weights: HeuristicWeights,
    features: Arc<FeatureMaps>,
}

impl ScoreModel {
    /// The sentinel all distance-flavored feature maps use for "no target
    /// reachable" — the same value `dise_cfg::DistanceTo` produces, so
    /// the maps and their consumers can never silently drift apart.
    pub const UNREACHABLE: u32 = dise_cfg::DistanceTo::UNREACHABLE;

    pub fn new(weights: HeuristicWeights, features: Arc<FeatureMaps>) -> ScoreModel {
        ScoreModel { weights, features }
    }

    /// The bound weight vector.
    pub fn weights(&self) -> HeuristicWeights {
        self.weights
    }

    /// The shared feature maps.
    pub fn features(&self) -> &Arc<FeatureMaps> {
        &self.features
    }

    /// Total affected nodes — the `SweepBudget::Auto` sizing basis.
    pub fn affected_total(&self) -> u32 {
        self.features.affected_total
    }

    /// The arm score for the node at `index`: the weight vector dotted
    /// with the node's feature row. Lower explores first. Out-of-range
    /// indices read as maximally distant with no affected mass, matching
    /// the previous hard-coded fallbacks.
    pub fn score(&self, index: usize) -> f64 {
        let f = &self.features;
        let at = |v: &Vec<u32>, sentinel: u32| v.get(index).copied().unwrap_or(sentinel) as f64;
        self.weights.distance * at(&f.distance, Self::UNREACHABLE)
            + self.weights.uncovered * at(&f.uncovered, Self::UNREACHABLE)
            + self.weights.cone * at(&f.cone, 0)
            + self.weights.trie * at(&f.trie_depth, Self::UNREACHABLE)
    }

    /// The node's affected-cone size (the fixed structural tie-break:
    /// equal scores explore the affected-heavier arm first).
    pub fn cone(&self, index: usize) -> u32 {
        self.features.cone.get(index).copied().unwrap_or(0)
    }

    /// The distance feature alone (the sweep's states-to-affected latch
    /// asks whether a node *is* the affected region, i.e. distance 0).
    pub fn distance(&self, index: usize) -> u32 {
        self.features
            .distance
            .get(index)
            .copied()
            .unwrap_or(Self::UNREACHABLE)
    }

    /// Sorts arm indices `0..n` by `(score ascending, cone descending,
    /// stable successor index)` — the one canonical comparator every
    /// consumer shares. Returns the permutation instead of permuting, so
    /// callers can count displaced arms and apply it to non-`Clone` data.
    pub fn ranked(&self, node_indices: &[usize]) -> Vec<usize> {
        let keys: Vec<(f64, u32)> = node_indices
            .iter()
            .map(|&n| (self.score(n), self.cone(n)))
            .collect();
        let mut order: Vec<usize> = (0..node_indices.len()).collect();
        order.sort_by(|&a, &b| {
            keys[a]
                .0
                .total_cmp(&keys[b].0)
                .then(keys[b].1.cmp(&keys[a].1))
                .then(a.cmp(&b))
        });
        order
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn maps() -> Arc<FeatureMaps> {
        Arc::new(FeatureMaps {
            distance: vec![1, 0, ScoreModel::UNREACHABLE, 1],
            uncovered: vec![2, 3, 0, ScoreModel::UNREACHABLE],
            cone: vec![2, 1, 0, 5],
            trie_depth: vec![0, 1, 2, 3],
            affected_total: 3,
        })
    }

    #[test]
    fn default_weights_score_pure_distance() {
        let model = ScoreModel::new(HeuristicWeights::default(), maps());
        assert_eq!(model.score(0), 1.0);
        assert_eq!(model.score(1), 0.0);
        assert_eq!(model.score(2), f64::from(ScoreModel::UNREACHABLE));
        // Out of range reads as unreachable, like the old fallback.
        assert_eq!(model.score(99), f64::from(ScoreModel::UNREACHABLE));
        assert_eq!(model.cone(99), 0);
    }

    #[test]
    fn ranked_orders_by_score_then_cone_then_index() {
        let model = ScoreModel::new(HeuristicWeights::default(), maps());
        // Nodes 0 and 3 tie on distance 1; node 3's bigger cone wins.
        assert_eq!(model.ranked(&[2, 0, 3, 1]), vec![3, 2, 1, 0]);
        // A full tie falls back to the stable successor index.
        let flat = ScoreModel::new(
            HeuristicWeights {
                distance: 0.0,
                uncovered: 0.0,
                cone: 0.0,
                trie: 0.0,
            },
            Arc::new(FeatureMaps {
                distance: vec![7, 7],
                uncovered: vec![0, 0],
                cone: vec![4, 4],
                trie_depth: vec![0, 0],
                affected_total: 1,
            }),
        );
        assert_eq!(flat.ranked(&[1, 0]), vec![0, 1]);
    }

    #[test]
    fn negative_cone_weight_prefers_heavy_arms() {
        let model = ScoreModel::new(
            HeuristicWeights {
                distance: 0.0,
                uncovered: 0.0,
                cone: -1.0,
                trie: 0.0,
            },
            maps(),
        );
        assert_eq!(model.ranked(&[0, 1, 3]), vec![2, 0, 1]);
    }

    #[test]
    fn weights_render_and_parse_round_trip() {
        for weights in [
            HeuristicWeights::DISTANCE_ONLY,
            HeuristicWeights::TUNED,
            HeuristicWeights {
                distance: 0.375,
                uncovered: -2.0,
                cone: 0.0,
                trie: 13.25,
            },
        ] {
            let text = weights.to_string();
            assert_eq!(HeuristicWeights::parse(&text), Ok(weights), "{text}");
        }
    }

    #[test]
    fn parse_rejects_malformed_input() {
        assert!(
            HeuristicWeights::parse("distance = 1").is_err(),
            "missing features"
        );
        assert!(
            HeuristicWeights::parse("bogus = 1").is_err(),
            "unknown feature"
        );
        assert!(
            HeuristicWeights::parse(
                "distance = 1\ndistance = 2\nuncovered = 0\ncone = 0\ntrie = 0"
            )
            .is_err(),
            "duplicate feature"
        );
        assert!(
            HeuristicWeights::parse("distance = inf\nuncovered = 0\ncone = 0\ntrie = 0").is_err(),
            "non-finite weight"
        );
        assert!(
            HeuristicWeights::parse("distance 1\nuncovered = 0\ncone = 0\ntrie = 0").is_err(),
            "no equals sign"
        );
    }

    #[test]
    fn choice_resolution_and_inheritance() {
        let stored = HeuristicWeights {
            distance: 2.0,
            uncovered: 1.0,
            cone: -1.0,
            trie: 0.5,
        };
        assert_eq!(
            HeuristicChoice::Inherit.resolve(Some(stored)),
            stored,
            "warm runs inherit recorded weights"
        );
        assert_eq!(
            HeuristicChoice::Inherit.resolve(None),
            HeuristicWeights::DISTANCE_ONLY
        );
        assert_eq!(
            HeuristicChoice::Distance.resolve(Some(stored)),
            HeuristicWeights::DISTANCE_ONLY,
            "an explicit choice beats the store"
        );
        assert_eq!(
            HeuristicChoice::Tuned.resolve(Some(stored)),
            HeuristicWeights::TUNED
        );
        assert_eq!(
            HeuristicChoice::parse_spec("distance"),
            Ok(HeuristicChoice::Distance)
        );
        assert_eq!(
            HeuristicChoice::parse_spec("TUNED"),
            Ok(HeuristicChoice::Tuned)
        );
        assert!(HeuristicChoice::parse_spec("/nonexistent/path.weights").is_err());
    }

    #[test]
    fn choice_parses_a_weights_file() {
        let dir = std::env::temp_dir().join(format!("dise-heuristic-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("w.weights");
        std::fs::write(&path, HeuristicWeights::TUNED.to_string()).unwrap();
        assert_eq!(
            HeuristicChoice::parse_spec(path.to_str().unwrap()),
            Ok(HeuristicChoice::Custom(HeuristicWeights::TUNED))
        );
        std::fs::remove_dir_all(&dir).ok();
    }
}
