//! Symbolic program states.

use std::fmt;

use dise_cfg::NodeId;
use dise_solver::PathCondition;

use crate::env::Env;

/// A symbolic program state: "a unique program location identifier (Loc),
/// symbolic expressions for the symbolic input variables, and a path
/// condition (PC)" (§2.1).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SymState {
    /// The CFG node this state is at.
    pub node: NodeId,
    /// Symbolic values of all program variables.
    pub env: Env,
    /// Constraints accumulated along the path to this state.
    pub pc: PathCondition,
    /// Number of transitions taken from the initial state.
    pub depth: u32,
    /// An assertion failure inherited from an instantiated procedure
    /// summary whose path ended at the callee's error node: the state
    /// terminates as that error on entry, exactly where the inlined
    /// exploration would have died inside the callee. `None` everywhere
    /// else.
    pub pending_error: Option<String>,
}

impl SymState {
    /// The initial state of a procedure at its `begin` node.
    pub fn initial(node: NodeId, env: Env) -> SymState {
        SymState {
            node,
            env,
            pc: PathCondition::new(),
            depth: 0,
            pending_error: None,
        }
    }

    /// A successor at `node` with the same environment and path condition.
    pub fn step_to(&self, node: NodeId) -> SymState {
        SymState {
            node,
            env: self.env.clone(),
            pc: self.pc.clone(),
            depth: self.depth + 1,
            pending_error: None,
        }
    }
}

impl fmt::Display for SymState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Loc: {}, {}, PC: {}", self.node, self.env, self.pc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dise_solver::{SymExpr, SymTy, VarPool};

    #[test]
    fn initial_state_has_true_pc_and_zero_depth() {
        let state = SymState::initial(NodeId(0), Env::new());
        assert!(state.pc.is_empty());
        assert_eq!(state.depth, 0);
    }

    #[test]
    fn step_to_increments_depth() {
        let state = SymState::initial(NodeId(0), Env::new());
        let next = state.step_to(NodeId(3));
        assert_eq!(next.depth, 1);
        assert_eq!(next.node, NodeId(3));
        assert_eq!(next.pc, state.pc);
    }

    #[test]
    fn display_matches_figure1_format() {
        let mut pool = VarPool::new();
        let x = pool.fresh("X", SymTy::Int);
        let mut env = Env::new();
        env.bind("x", SymExpr::var(&x));
        let mut state = SymState::initial(NodeId(1), env);
        state
            .pc
            .push(SymExpr::gt(SymExpr::var(&x), SymExpr::int(0)));
        assert_eq!(state.to_string(), "Loc: n1, x: X, PC: X > 0");
    }
}
