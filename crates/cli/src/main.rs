//! `dise` — the command-line front end.
//!
//! ```text
//! dise run <v1.mj> <v2.mj> [<v3.mj> …] <proc> [--full] [--trace] [--simplify]
//!          [--reaching-defs] [--jobs N] [--sweep-budget auto|unlimited|N]
//!          [--heuristic distance|tuned|FILE] [--summaries on|off|auto]
//!          [--store DIR] [--stats json|text]
//!          [--trace-json FILE] [--trace-chrome FILE]
//!     Diff consecutive program versions and report the affected path
//!     conditions of each hop. With two files this is the classic single
//!     run; with more, the hops chain through one analysis session per
//!     pair and the solver's warm trie plus the measured sweep ratio
//!     transfer hop-to-hop in process (results are byte-identical to
//!     independent runs — chaining only moves solver work).
//!     --full           also run full symbolic execution for comparison
//!     --trace          print the Fig. 5(b) and Table 1 style traces
//!     --simplify       subsume redundant bounds in printed path conditions
//!     --reaching-defs  use the precise data-flow premise (ablation mode)
//!     --jobs N         explore with N parallel frontier workers (default 1,
//!                      or the DISE_JOBS environment variable); paths and
//!                      path conditions are identical to the serial run
//!     --sweep-budget   token budget for the speculative sweep of parallel
//!                      directed runs (default `auto`, or the
//!                      DISE_SWEEP_BUDGET environment variable): `auto`
//!                      sizes the sweep from the affected cone, `unlimited`
//!                      sweeps the whole static cone, a count N admits N
//!                      speculative states, and 0 disables the sweep
//!     --heuristic      arm-scoring weights for the speculative sweep of
//!                      parallel directed runs (default: the DISE_HEURISTIC
//!                      environment variable, else inherit the weights the
//!                      analysis store recorded for this procedure, else
//!                      `distance`): `distance` scores arms purely by
//!                      distance to the nearest affected node (the
//!                      pre-heuristic baseline), `tuned` uses the
//!                      corpus-tuned vector `dise tune` found, a FILE path
//!                      loads a custom `*.weights` file. Weights only
//!                      reorder speculative work — verdicts are
//!                      byte-identical under any vector
//!     --summaries      procedure-summary mode for the --full run (default
//!                      `auto`, or the DISE_SUMMARIES environment variable):
//!                      `auto`/`on` explore each callee once and instantiate
//!                      the interned summary at every call site, `off`
//!                      always inlines. Path conditions are byte-identical
//!                      across modes; summaries only remove solver work.
//!                      Directed (DiSE) runs always inline — their
//!                      affected-location analysis is defined over the
//!                      flattened CFG
//!     --store DIR      persistent analysis store (default: the DISE_STORE
//!                      environment variable; unset = no persistence):
//!                      warm-starts the solver from the previous run of
//!                      this procedure — same version or an earlier one —
//!                      and records this run's state back. Output is
//!                      byte-identical to a cold run; a damaged store
//!                      degrades to cold with a one-line warning
//!     --stats json|text stats output format (default `text`): `text`
//!                      prints the classic `solver:`/`stages:`/`sweep:`/
//!                      `store:` lines, `json` replaces every stats line
//!                      with machine-readable metrics-registry dumps (one
//!                      JSON object per line — strip with `grep -v '^{'`
//!                      to byte-diff the analysis verdict). Both formats
//!                      read the same registry
//!     --trace-json FILE  write the run's structured trace — spans,
//!                      warnings, and registry dumps, one versioned JSON
//!                      object per line — to FILE (validate with
//!                      `dise trace validate FILE`)
//!     --trace-chrome FILE  write the run's spans as a Chrome
//!                      `trace_event` document loadable in
//!                      `chrome://tracing` or Perfetto
//!
//! dise profile <base.mj> <modified.mj> <proc> [--full]
//!     Run the pipeline with tracing enabled and print the hierarchical
//!     span tree — per-stage wall clock with solver-call and cache-hit
//!     attribution — plus how many pipeline solver checks the named
//!     stages account for and what the sweep's arm-scoring heuristic
//!     did (arms scored/displaced, states to first affected contact).
//!     --full also profiles the full exploration (summary builds
//!     included).
//!
//! dise tune [--seed N] [--pairs N] [--edits N] [--artifacts on|off] [--out FILE]
//!     Deterministic parameter search for the sweep heuristic: score
//!     every candidate weight vector against the canonical tuning
//!     corpus (`dise_gen::corpus::tune_corpus` — the WBS/OAE/ASW
//!     artifacts plus `--pairs` generated pairs at the default shape
//!     and the same number again at 10x scale) by replaying the
//!     sweep's scheduling on each case's CFG (no solver runs — see
//!     `dise_core::tune`), print the per-candidate table, and write the
//!     winning vector to FILE (default `tuned.weights`). Equal
//!     arguments produce byte-identical output and weight files; CI
//!     pins `dise tune` twice against itself and against the checked-in
//!     `tuned.weights`.
//!
//! dise trace validate <FILE>
//!     Check a `--trace-json` log against the trace-event schema.
//!
//! dise evolve <base.mj> <modified.mj> <proc>
//!     All four evolution applications — witness generation, differential
//!     summarization, fault localization, and the impact report — off ONE
//!     shared analysis session: a single flatten/diff/fixpoint/exploration
//!     serves every application, with output byte-identical to running
//!     the four standalone subcommands.
//!
//! dise gen [--seed N] [--pairs N] [--edits N] [--arms N] [--guard-depth N]
//!          [--helpers N] [--call-depth N] [--globals N] [--out DIR] [--verify]
//!     Generate deterministic (base, modified) scenario pairs with
//!     marker-tracked ground truth (see `dise-gen`). Pair k uses seed
//!     `--seed + k`; equal arguments produce byte-identical programs.
//!     --out DIR   write pairNNNN_base.mj / pairNNNN_mod.mj plus a
//!                 manifest.json recording params, edits, and ground-truth
//!                 markers
//!     --verify    run the four-check differential harness on every pair
//!                 (ground-truth coverage, jobs {1,4} determinism,
//!                 summaries on/off equivalence, warm ≡ cold) and fail on
//!                 the first violation
//!
//! dise serve [--jobs N] [--pool N] [--cache-bytes N] [--request-workers N]
//!            [--store DIR] [--trace-json DIR] [--listen ADDR]
//!     Resident analysis service: newline-delimited JSON-RPC 2.0 over
//!     stdin/stdout (or a TCP listener with --listen). Methods `analyze`,
//!     `evolve`, and `chain` expose the corresponding subcommands;
//!     identical requests answer from an in-memory session cache or
//!     coalesce onto one in-flight exploration, and `status`, `evict`,
//!     and `shutdown` administer the server. Responses may arrive out of
//!     order — clients match on the echoed `id`. The deterministic
//!     members of each response are byte-identical to the one-shot
//!     subcommand's output (for `analyze`, the indented PC block of
//!     `dise run … --stats json` minus the registry lines).
//!     --jobs N           frontier workers per exploration (default 1 or
//!                        DISE_JOBS)
//!     --pool N           total frontier-worker tokens across concurrent
//!                        explorations (default: available parallelism)
//!     --cache-bytes N    session-cache byte budget (default 64 MiB)
//!     --request-workers N request-handler threads (default scales with
//!                        the pool)
//!     --store DIR        shared persistent store (default DISE_STORE);
//!                        saves take the store's advisory lock, so the
//!                        server can share DIR with one-shot runs
//!     --trace-json DIR   write one validated trace log per request to
//!                        DIR/<request_id>.jsonl
//!     --listen ADDR      serve TCP connections on ADDR (e.g.
//!                        127.0.0.1:7645) instead of stdin/stdout
//!
//! dise store stat [DIR]
//! dise store clear [DIR]
//!     Inspect or empty a persistent analysis store (DIR defaults to the
//!     DISE_STORE environment variable).
//!
//! dise tests <base.mj> <modified.mj> <proc>
//!     Regression-testing mode (§5.2): generate the old suite, select and
//!     augment for the new version.
//!
//! dise inspect <file.mj> <proc> [--dot]
//!     Parse, type-check, and describe one procedure; --dot emits the CFG
//!     as Graphviz.
//!
//! dise witness <base.mj> <modified.mj> <proc>
//!     Solve every affected path condition, replay it on both versions,
//!     and report the inputs on which the versions observably differ.
//!
//! dise localize <base.mj> <modified.mj> <proc> [--formula ochiai|tarantula|jaccard|dstar2]
//!     Spectrum fault localization: replay the DiSE-derived suite on the
//!     modified version and rank statements by suspiciousness.
//!
//! dise classify <base.mj> <modified.mj> <proc>
//!     Differential summarization: solver-checked classification of every
//!     affected path as effect-preserving or diverging.
//!
//! dise impact <base.mj> <modified.mj> [--dot]
//!     System-level change impact: call-graph propagation plus per-
//!     procedure DiSE on every impacted procedure; --dot emits the call
//!     graph with the impact overlaid.
//!
//! dise report <base.mj> <modified.mj> <proc>
//!     Render the Markdown change-impact report.
//! ```

use std::process::ExitCode;
use std::sync::Arc;

use dise_core::dise::DiseConfig;
use dise_core::metrics::{exec_registry, result_registry};
use dise_core::report::{
    duration_mmss, heuristic_stats_line, solver_stats_line, stage_stats_line, store_stats_line,
    summary_stats_line, sweep_stats_line, verdict_pc_block,
};
use dise_core::session::AnalysisSession;
use dise_core::DataflowPrecision;
use dise_ir::Program;
use dise_trace::{stats_record, MetricsRegistry, Stability, TraceHandle, Tracer};

/// The one warning channel: every CLI warning goes to stderr with the
/// same prefix, so stdout stays byte-diffable.
fn warn(message: &str) {
    eprintln!("warning: {message}");
}

fn main() -> ExitCode {
    match dispatch(std::env::args().skip(1).collect()) {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("error: {message}");
            ExitCode::FAILURE
        }
    }
}

fn dispatch(args: Vec<String>) -> Result<(), String> {
    let mut positional = Vec::new();
    let mut flags = Vec::new();
    for arg in &args {
        if arg.starts_with("--") {
            flags.push(arg.as_str());
        } else {
            positional.push(arg.as_str());
        }
    }
    match positional.first().copied() {
        Some("run") => run_command(&args),
        Some("profile") => profile_command(&positional[1..], &flags),
        Some("tune") => tune_command(&args),
        Some("trace") => trace_command(&positional[1..]),
        Some("evolve") => evolve_command(&positional[1..], &flags),
        Some("gen") => gen_command(&args),
        Some("serve") => serve_command(&args),
        Some("store") => store_command(&positional[1..]),
        Some("tests") => tests_command(&positional[1..]),
        Some("inspect") => inspect_command(&positional[1..], &flags),
        Some("witness") => witness_command(&positional[1..]),
        Some("classify") => classify_command(&positional[1..]),
        Some("localize") => localize_command(&positional[1..], &args),
        Some("impact") => impact_command(&positional[1..], &flags),
        Some("report") => report_command(&positional[1..]),
        Some(other) => Err(format!("unknown command `{other}`\n{USAGE}")),
        None => Err(USAGE.to_string()),
    }
}

const USAGE: &str = "usage:
  dise run <v1.mj> <v2.mj> [<v3.mj> ...] <proc> [--full] [--trace] [--simplify] [--reaching-defs] [--jobs N] [--sweep-budget auto|unlimited|N] [--heuristic distance|tuned|FILE] [--summaries on|off|auto] [--store DIR] [--stats json|text] [--trace-json FILE] [--trace-chrome FILE]
  dise profile <base.mj> <modified.mj> <proc> [--full]
  dise tune [--seed N] [--pairs N] [--edits N] [--artifacts on|off] [--out FILE]
  dise trace validate <FILE>
  dise evolve <base.mj> <modified.mj> <proc>
  dise gen [--seed N] [--pairs N] [--edits N] [--arms N] [--guard-depth N] [--helpers N] [--call-depth N] [--globals N] [--out DIR] [--verify]
  dise serve [--jobs N] [--pool N] [--cache-bytes N] [--request-workers N] [--store DIR] [--trace-json DIR] [--listen ADDR]
  dise store stat|clear [DIR]
  dise tests <base.mj> <modified.mj> <proc>
  dise inspect <file.mj> <proc> [--dot]
  dise witness <base.mj> <modified.mj> <proc>
  dise classify <base.mj> <modified.mj> <proc>
  dise localize <base.mj> <modified.mj> <proc> [--formula <name>]
  dise impact <base.mj> <modified.mj> [--dot]
  dise report <base.mj> <modified.mj> <proc>";

fn load(path: &str) -> Result<Program, String> {
    let source = std::fs::read_to_string(path).map_err(|e| format!("cannot read `{path}`: {e}"))?;
    let program = dise_ir::parse_program(&source).map_err(|e| format!("{path}: {e}"))?;
    dise_ir::check_program(&program).map_err(|e| format!("{path}: {e}"))?;
    if program.procs.is_empty() {
        return Err(format!(
            "{path}: program declares no procedures (nothing to analyze)"
        ));
    }
    Ok(program)
}

fn parse_jobs_value(value: &str) -> Result<usize, String> {
    match value.parse::<usize>() {
        Ok(n) if n >= 1 => Ok(n),
        _ => Err("--jobs expects a worker count of at least 1".to_string()),
    }
}

fn parse_sweep_budget_value(value: &str) -> Result<dise_symexec::SweepBudget, String> {
    dise_symexec::SweepBudget::parse(value)
        .ok_or_else(|| "--sweep-budget expects `auto`, `unlimited`, or a token count".to_string())
}

fn parse_summaries_value(value: &str) -> Result<dise_symexec::SummaryMode, String> {
    dise_symexec::SummaryMode::parse(value)
        .ok_or_else(|| "--summaries expects `on`, `off`, or `auto`".to_string())
}

fn parse_heuristic_value(value: &str) -> Result<dise_symexec::HeuristicChoice, String> {
    dise_symexec::HeuristicChoice::parse_spec(value).map_err(|e| format!("--heuristic: {e}"))
}

/// `--stats json|text` → whether stats go out as registry dumps.
fn parse_stats_value(value: &str) -> Result<bool, String> {
    match value {
        "json" => Ok(true),
        "text" => Ok(false),
        _ => Err("--stats expects `json` or `text`".to_string()),
    }
}

/// `run` parses its own arguments: `--jobs` and `--sweep-budget` take a
/// value (`--jobs N` or `--jobs=N`), so the generic flag/positional split
/// of [`dispatch`] would misfile the value as a positional; unknown flags
/// and stray positionals are rejected instead of silently ignored.
fn run_command(args: &[String]) -> Result<(), String> {
    const KNOWN_FLAGS: [&str; 4] = ["--full", "--trace", "--simplify", "--reaching-defs"];
    let mut jobs = dise_symexec::ExecConfig::default().jobs;
    let mut sweep_budget = dise_symexec::ExecConfig::default().sweep_budget;
    let mut summaries = dise_symexec::ExecConfig::default().summaries;
    let mut heuristic = dise_symexec::ExecConfig::default().heuristic;
    let mut store: Option<std::path::PathBuf> = std::env::var_os("DISE_STORE")
        .filter(|v| !v.is_empty())
        .map(std::path::PathBuf::from);
    let mut stats_json = false;
    let mut trace_json: Option<std::path::PathBuf> = None;
    let mut trace_chrome: Option<std::path::PathBuf> = None;
    let mut flags: Vec<&str> = Vec::new();
    let mut positional: Vec<&str> = Vec::new();
    let mut seen_command = false;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        if let Some(value) = arg.strip_prefix("--jobs=") {
            jobs = parse_jobs_value(value)?;
        } else if arg == "--jobs" {
            let value = iter
                .next()
                .ok_or_else(|| "--jobs expects a worker count of at least 1".to_string())?;
            jobs = parse_jobs_value(value)?;
        } else if let Some(value) = arg.strip_prefix("--sweep-budget=") {
            sweep_budget = parse_sweep_budget_value(value)?;
        } else if arg == "--sweep-budget" {
            let value = iter.next().ok_or_else(|| {
                "--sweep-budget expects `auto`, `unlimited`, or a token count".to_string()
            })?;
            sweep_budget = parse_sweep_budget_value(value)?;
        } else if let Some(value) = arg.strip_prefix("--heuristic=") {
            heuristic = parse_heuristic_value(value)?;
        } else if arg == "--heuristic" {
            let value = iter.next().ok_or_else(|| {
                "--heuristic expects `distance`, `tuned`, or a weights file path".to_string()
            })?;
            heuristic = parse_heuristic_value(value)?;
        } else if let Some(value) = arg.strip_prefix("--summaries=") {
            summaries = parse_summaries_value(value)?;
        } else if arg == "--summaries" {
            let value = iter
                .next()
                .ok_or_else(|| "--summaries expects `on`, `off`, or `auto`".to_string())?;
            summaries = parse_summaries_value(value)?;
        } else if let Some(value) = arg.strip_prefix("--store=") {
            store = Some(std::path::PathBuf::from(value));
        } else if arg == "--store" {
            let value = iter
                .next()
                .ok_or_else(|| "--store expects a directory path".to_string())?;
            store = Some(std::path::PathBuf::from(value));
        } else if let Some(value) = arg.strip_prefix("--stats=") {
            stats_json = parse_stats_value(value)?;
        } else if arg == "--stats" {
            let value = iter
                .next()
                .ok_or_else(|| "--stats expects `json` or `text`".to_string())?;
            stats_json = parse_stats_value(value)?;
        } else if let Some(value) = arg.strip_prefix("--trace-json=") {
            trace_json = Some(std::path::PathBuf::from(value));
        } else if arg == "--trace-json" {
            let value = iter
                .next()
                .ok_or_else(|| "--trace-json expects an output file path".to_string())?;
            trace_json = Some(std::path::PathBuf::from(value));
        } else if let Some(value) = arg.strip_prefix("--trace-chrome=") {
            trace_chrome = Some(std::path::PathBuf::from(value));
        } else if arg == "--trace-chrome" {
            let value = iter
                .next()
                .ok_or_else(|| "--trace-chrome expects an output file path".to_string())?;
            trace_chrome = Some(std::path::PathBuf::from(value));
        } else if arg.starts_with("--") {
            if !KNOWN_FLAGS.contains(&arg.as_str()) {
                return Err(format!("unknown flag `{arg}` for `run`\n{USAGE}"));
            }
            flags.push(arg.as_str());
        } else if !seen_command && arg == "run" {
            seen_command = true;
        } else {
            positional.push(arg.as_str());
        }
    }
    let flags = &flags;
    // `run v1 v2 [v3 …] proc`: at least two version files, last
    // positional is the procedure.
    if positional.len() < 3 {
        return Err(USAGE.to_string());
    }
    let proc_name = positional[positional.len() - 1];
    let version_paths = &positional[..positional.len() - 1];
    let versions: Vec<Program> = version_paths
        .iter()
        .map(|path| load(path))
        .collect::<Result<_, _>>()?;
    let tracer = if trace_json.is_some() || trace_chrome.is_some() {
        Some(Arc::new(Tracer::new()))
    } else {
        None
    };
    let config = DiseConfig {
        exec: dise_symexec::ExecConfig {
            jobs,
            sweep_budget,
            summaries,
            heuristic,
            tracer: tracer.as_ref().map(|t| TraceHandle::new(t.clone())),
            ..Default::default()
        },
        precision: if flags.contains(&"--reaching-defs") {
            DataflowPrecision::ReachingDefs
        } else {
            DataflowPrecision::CfgPath
        },
        trace_affected: flags.contains(&"--trace"),
        trace_directed: flags.contains(&"--trace"),
        store,
    };

    // One session per hop; hop N+1 inherits hop N's warm solver state in
    // process via AnalysisSession::advance.
    let mut session = AnalysisSession::open(&versions[0], &versions[1], proc_name, config)
        .map_err(|e| e.to_string())?;
    let hops = versions.len() - 1;
    let mut scopes: Vec<(String, MetricsRegistry)> = Vec::new();
    for hop in 0..hops {
        if hops > 1 {
            if hop > 0 {
                println!();
            }
            println!(
                "=== {} -> {} ===",
                version_paths[hop],
                version_paths[hop + 1]
            );
        }
        let scope_prefix = if hops > 1 {
            format!("hop{}.", hop + 1)
        } else {
            String::new()
        };
        print_hop(&mut session, flags, stats_json, &scope_prefix, &mut scopes)?;
        if hop + 2 <= hops {
            session = session
                .advance(&versions[hop + 2])
                .map_err(|e| e.to_string())?;
        }
    }
    if let Some(tracer) = &tracer {
        let events = tracer.events();
        if let Some(path) = &trace_json {
            let log = dise_trace::event_log(&events, &scopes, &format!("dise run {proc_name}"));
            std::fs::write(path, log)
                .map_err(|e| format!("cannot write `{}`: {e}", path.display()))?;
        }
        if let Some(path) = &trace_chrome {
            std::fs::write(path, dise_trace::chrome_trace(&events))
                .map_err(|e| format!("cannot write `{}`: {e}", path.display()))?;
        }
    }
    Ok(())
}

/// Runs one session hop to completion and prints the standard `run`
/// report — the single invocation/report path every `run`-shaped command
/// shares. Every stats line is derived from the hop's metrics registry;
/// `stats_json` swaps the human-readable lines for the registry dump
/// itself (one JSON object per line). The registries are appended to
/// `scopes` for the trace exporters.
fn print_hop(
    session: &mut AnalysisSession,
    flags: &[&str],
    stats_json: bool,
    scope_prefix: &str,
    scopes: &mut Vec<(String, MetricsRegistry)>,
) -> Result<(), String> {
    let mut result = session.result().map_err(|e| e.to_string())?;
    if flags.contains(&"--full") {
        // Run (and cache) the full exploration before finalizing so the
        // summaries it built reach the store entry; printed further down.
        session.modified_full().map_err(|e| e.to_string())?;
    }
    let status = session.finalize().cloned();
    if let Some(warning) = status.as_ref().and_then(|s| s.warning.as_ref()) {
        warn(warning);
    }
    // The result was computed before finalize ran; fold the final store
    // status (save outcome included) into it so the registry sees it.
    result.store = status;
    let registry = result_registry(&result);
    let dise_scope = format!("{scope_prefix}dise");
    if stats_json {
        println!(
            "{}",
            stats_record(&dise_scope, Stability::Stable, &registry)
        );
        println!(
            "{}",
            stats_record(&dise_scope, Stability::Volatile, &registry)
        );
    } else {
        println!(
            "changed CFG nodes: {}   affected CFG nodes: {}",
            result.changed_nodes, result.affected_nodes
        );
        println!(
            "DiSE: {} affected path conditions, {} states, {}",
            result.summary.pc_count(),
            result.summary.stats().states_explored,
            duration_mmss(result.total_time)
        );
        println!("solver: {}", solver_stats_line(&registry));
        println!("stages: {}", stage_stats_line(&registry));
        if let Some(line) = sweep_stats_line(&registry) {
            println!("sweep: {line}");
        }
        if let Some(line) = heuristic_stats_line(&registry) {
            println!("heuristic: {line}");
        }
        if let Some(line) = store_stats_line(&registry) {
            println!("store: {line}");
        }
    }
    scopes.push((dise_scope, registry));
    // The verdict block every byte-identity consumer shares (see
    // `dise_core::report::verdict_pc_block`); `dise serve` renders its
    // responses through the same function.
    if flags.contains(&"--simplify") {
        print!(
            "{}",
            verdict_pc_block(dise_solver::simplify::simplify_pc_strings(
                result.summary.path_conditions()
            ))
        );
    } else {
        print!("{}", verdict_pc_block(result.affected_pc_strings()));
    }
    if flags.contains(&"--trace") {
        println!("\naffected-set fixpoint trace:");
        let cfg_mod = &session.diffed().map_err(|e| e.to_string())?.cfg_mod;
        print!("{}", result.affected.render_trace(cfg_mod));
        if let Some(trace) = &result.directed_trace {
            println!("\ndirected-search trace:");
            print!("{trace}");
        }
    }
    if flags.contains(&"--full") {
        let full = session.modified_full().map_err(|e| e.to_string())?;
        let mut full_registry = exec_registry(full.stats());
        full_registry.set_counter(
            "pipeline.pc_count",
            full.pc_count() as u64,
            Stability::Stable,
        );
        // Path conditions are the mode-independent verdict (CI diffs them
        // byte-for-byte across --summaries on/off); states and solver
        // work legitimately differ by mode and go on filterable lines.
        println!(
            "\nfull symbolic execution: {} path conditions",
            full.pc_count()
        );
        let full_scope = format!("{scope_prefix}full");
        if stats_json {
            println!(
                "{}",
                stats_record(&full_scope, Stability::Stable, &full_registry)
            );
            println!(
                "{}",
                stats_record(&full_scope, Stability::Volatile, &full_registry)
            );
        } else {
            println!(
                "full stats: {} states, {}",
                full.stats().states_explored,
                duration_mmss(full.stats().elapsed)
            );
            println!("solver: {}", solver_stats_line(&full_registry));
            if let Some(line) = summary_stats_line(&full_registry) {
                println!("summaries: {line}");
            }
        }
        print!("{}", verdict_pc_block(full.path_conditions()));
        scopes.push((full_scope, full_registry));
    }
    Ok(())
}

/// `dise profile` — run the pipeline with tracing on and print the
/// hierarchical span tree, then account for how many pipeline solver
/// checks (incremental + monolithic fallback decisions) landed inside a
/// named stage span.
fn profile_command(positional: &[&str], flags: &[&str]) -> Result<(), String> {
    for flag in flags {
        if *flag != "--full" {
            return Err(format!("unknown flag `{flag}` for `profile`\n{USAGE}"));
        }
    }
    let [base_path, mod_path, proc_name] = positional else {
        return Err(USAGE.to_string());
    };
    let base = load(base_path)?;
    let modified = load(mod_path)?;
    let tracer = Arc::new(Tracer::new());
    let mut config = DiseConfig::default();
    config.exec.tracer = Some(TraceHandle::new(tracer.clone()));
    let mut session =
        AnalysisSession::open(&base, &modified, proc_name, config).map_err(|e| e.to_string())?;
    let result = session.result().map_err(|e| e.to_string())?;
    let mut total = result.summary.stats().solver.pipeline_checks();
    if flags.contains(&"--full") {
        let full = session.modified_full().map_err(|e| e.to_string())?;
        total += full.stats().solver.pipeline_checks();
    }
    session.finalize();
    let events = tracer.events();
    print!("{}", dise_trace::render_profile(&events));
    // Stage spans carry their exploration's pipeline-check counter;
    // summary builds are excluded here because their solver work is not
    // part of the pipeline totals above.
    let attributed: u64 = events
        .iter()
        .filter_map(|event| match event {
            dise_trace::TraceEvent::Span(span)
                if matches!(
                    span.name.as_str(),
                    "stage.explore" | "stage.full_base" | "stage.full_modified"
                ) =>
            {
                Some(span)
            }
            _ => None,
        })
        .flat_map(|span| &span.counters)
        .filter(|(name, _)| name == "solver.pipeline_checks")
        .map(|(_, value)| value)
        .sum();
    let share = if total == 0 {
        "n/a".to_string()
    } else {
        format!("{:.1}%", attributed as f64 / total as f64 * 100.0)
    };
    println!(
        "attribution: {attributed} of {total} pipeline solver checks attributed to stage spans ({share})"
    );
    // Arm-scoring attribution: the sweep span carries the heuristic's
    // per-arm decisions (scored/displaced/states-to-affected). Serial
    // profiles have no sweep and print nothing.
    let heuristic_counter = |name: &str| -> u64 {
        events
            .iter()
            .filter_map(|event| match event {
                dise_trace::TraceEvent::Span(span) => Some(span),
                _ => None,
            })
            .flat_map(|span| &span.counters)
            .filter(|(counter, _)| counter == name)
            .map(|(_, value)| value)
            .sum()
    };
    let arms_scored = heuristic_counter("heuristic.arms_scored");
    if arms_scored > 0 {
        println!(
            "heuristic: {arms_scored} arm(s) scored, {} displaced by score order; \
             first affected contact after {} sweep state(s)",
            heuristic_counter("heuristic.arms_displaced"),
            heuristic_counter("heuristic.states_to_affected"),
        );
    }
    Ok(())
}

/// `dise tune` — deterministic parameter search for the sweep heuristic
/// (see `dise_core::tune`) over the canonical corpus
/// (`dise_gen::corpus::tune_corpus`); equal arguments produce
/// byte-identical reports and weight files.
fn tune_command(args: &[String]) -> Result<(), String> {
    let mut seed: u64 = 0;
    let mut pairs: usize = 8;
    let mut edits: usize = 2;
    let mut artifacts = true;
    let mut out = std::path::PathBuf::from("tuned.weights");
    let mut seen_command = false;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        let mut value_of = |arg: &str, name: &str| -> Result<Option<String>, String> {
            if let Some(value) = arg.strip_prefix(&format!("{name}=")) {
                return Ok(Some(value.to_string()));
            }
            if arg == name {
                return iter
                    .next()
                    .map(|v| Some(v.clone()))
                    .ok_or_else(|| format!("{name} expects a value"));
            }
            Ok(None)
        };
        if let Some(value) = value_of(arg, "--seed")? {
            seed = value
                .parse::<u64>()
                .map_err(|_| "--seed expects a non-negative integer".to_string())?;
        } else if let Some(value) = value_of(arg, "--pairs")? {
            pairs = parse_gen_count("--pairs", &value)?;
        } else if let Some(value) = value_of(arg, "--edits")? {
            edits = parse_gen_count("--edits", &value)?;
        } else if let Some(value) = value_of(arg, "--artifacts")? {
            artifacts = match value.as_str() {
                "on" => true,
                "off" => false,
                _ => return Err("--artifacts expects `on` or `off`".to_string()),
            };
        } else if let Some(value) = value_of(arg, "--out")? {
            out = std::path::PathBuf::from(value);
        } else if arg.starts_with("--") {
            return Err(format!("unknown flag `{arg}` for `tune`\n{USAGE}"));
        } else if !seen_command && arg == "tune" {
            seen_command = true;
        } else {
            return Err(format!("unexpected argument `{arg}` for `tune`\n{USAGE}"));
        }
    }
    let cases = dise_gen::corpus::tune_corpus(&dise_gen::corpus::CorpusParams {
        seed,
        pairs: pairs as u64,
        edits,
        artifacts,
    });
    let report = dise_core::tune::tune(&cases).map_err(|e| e.to_string())?;
    print!("{}", report.render());
    std::fs::write(&out, report.weights_file())
        .map_err(|e| format!("cannot write `{}`: {e}", out.display()))?;
    println!("wrote best weights to {}", out.display());
    Ok(())
}

/// `dise trace validate FILE` — check a `--trace-json` log against the
/// trace-event schema.
fn trace_command(positional: &[&str]) -> Result<(), String> {
    let ["validate", path] = positional else {
        return Err(USAGE.to_string());
    };
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read `{path}`: {e}"))?;
    let summary = dise_trace::validate_log(&text).map_err(|e| format!("{path}: {e}"))?;
    println!(
        "{path}: valid trace log (schema {}, {} span(s), {} warning(s), {} stats record(s))",
        dise_trace::TRACE_SCHEMA_VERSION,
        summary.spans,
        summary.warnings,
        summary.stats_records
    );
    Ok(())
}

/// `dise evolve` — all four evolution applications off one shared
/// analysis session. The printers are the ones the standalone
/// subcommands use, so the concatenated output is byte-identical to
/// running `witness`, `classify`, `localize`, `report` back to back
/// (CI pins this).
fn evolve_command(positional: &[&str], flags: &[&str]) -> Result<(), String> {
    // The standalone subcommands evolve mirrors take no flags either;
    // silently ignoring one (say, a misplaced --store) would diverge the
    // two paths CI pins as byte-identical.
    if let Some(flag) = flags.first() {
        return Err(format!("unknown flag `{flag}` for `evolve`\n{USAGE}"));
    }
    let [base_path, mod_path, proc_name] = positional else {
        return Err(USAGE.to_string());
    };
    let base = load(base_path)?;
    let modified = load(mod_path)?;
    let mut session = AnalysisSession::open(&base, &modified, proc_name, DiseConfig::default())
        .map_err(|e| e.to_string())?;

    let witnesses = dise_evolution::witness::find_witnesses_with(
        &mut session,
        &dise_evolution::witness::WitnessConfig::default(),
    )
    .map_err(|e| e.to_string())?;
    print_witness_report(&witnesses);

    let summary = dise_evolution::diffsum::classify_changes_with(
        &mut session,
        &dise_evolution::diffsum::DiffSumConfig::default(),
    )
    .map_err(|e| e.to_string())?;
    print!("{}", summary.render());

    let localization = dise_evolution::localize::localize_change_with(
        &mut session,
        &dise_evolution::localize::LocalizeConfig::default(),
    )
    .map_err(|e| e.to_string())?;
    print_localization(&localization);

    let report = dise_evolution::report::impact_report_with(
        &mut session,
        &dise_evolution::report::ImpactConfig::default(),
    )
    .map_err(|e| e.to_string())?;
    print!("{report}");

    session.finalize();
    Ok(())
}

/// Parses a `--flag N` / `--flag=N` numeric value for `gen`.
fn parse_gen_count(flag: &str, value: &str) -> Result<usize, String> {
    value
        .parse::<usize>()
        .map_err(|_| format!("{flag} expects a non-negative integer"))
}

/// `dise gen` — emit deterministic scenario pairs and (optionally) run
/// the differential harness on them. Like `run`, it parses its own
/// arguments because every size knob takes a value.
fn gen_command(args: &[String]) -> Result<(), String> {
    let mut base_seed: u64 = 0;
    let mut pairs: usize = 1;
    let mut edits: usize = 2;
    let mut params = dise_gen::GenParams::default();
    let mut out: Option<std::path::PathBuf> = None;
    let mut verify = false;
    let mut seen_command = false;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        // Every value flag accepts both `--flag value` and `--flag=value`.
        let mut value_of = |arg: &str, name: &str| -> Result<Option<String>, String> {
            if let Some(value) = arg.strip_prefix(&format!("{name}=")) {
                return Ok(Some(value.to_string()));
            }
            if arg == name {
                return iter
                    .next()
                    .map(|v| Some(v.clone()))
                    .ok_or_else(|| format!("{name} expects a value"));
            }
            Ok(None)
        };
        if let Some(value) = value_of(arg, "--seed")? {
            base_seed = value
                .parse::<u64>()
                .map_err(|_| "--seed expects a non-negative integer".to_string())?;
        } else if let Some(value) = value_of(arg, "--pairs")? {
            pairs = parse_gen_count("--pairs", &value)?;
        } else if let Some(value) = value_of(arg, "--edits")? {
            edits = parse_gen_count("--edits", &value)?;
        } else if let Some(value) = value_of(arg, "--arms")? {
            params.arms = parse_gen_count("--arms", &value)?;
        } else if let Some(value) = value_of(arg, "--guard-depth")? {
            params.guard_depth = parse_gen_count("--guard-depth", &value)?;
        } else if let Some(value) = value_of(arg, "--helpers")? {
            params.helpers = parse_gen_count("--helpers", &value)?;
        } else if let Some(value) = value_of(arg, "--call-depth")? {
            params.call_depth = parse_gen_count("--call-depth", &value)?;
        } else if let Some(value) = value_of(arg, "--globals")? {
            params.globals = parse_gen_count("--globals", &value)?;
        } else if let Some(value) = value_of(arg, "--out")? {
            out = Some(std::path::PathBuf::from(value));
        } else if arg == "--verify" {
            verify = true;
        } else if arg.starts_with("--") {
            return Err(format!("unknown flag `{arg}` for `gen`\n{USAGE}"));
        } else if !seen_command && arg == "gen" {
            seen_command = true;
        } else {
            return Err(format!("unexpected argument `{arg}` for `gen`\n{USAGE}"));
        }
    }
    if let Some(dir) = &out {
        std::fs::create_dir_all(dir)
            .map_err(|e| format!("cannot create `{}`: {e}", dir.display()))?;
    }
    let mut manifest_pairs = Vec::new();
    for k in 0..pairs {
        let seed = base_seed.wrapping_add(k as u64);
        let scenario = dise_gen::Scenario::generate(&dise_gen::GenParams {
            seed,
            ..params.clone()
        });
        let evolution = dise_gen::evolve(&scenario, seed, edits);
        let edit_tags: Vec<String> = evolution
            .edits
            .iter()
            .map(|e| format!("{}({})", e.kind.tag(), render_markers(&e.markers)))
            .collect();
        println!(
            "pair {k:04}: seed={seed} stmts={} procs={} edits=[{}]",
            scenario.stmt_count(),
            scenario.program().procs.len(),
            edit_tags.join(", ")
        );
        if let Some(dir) = &out {
            let base_file = format!("pair{k:04}_base.mj");
            let mod_file = format!("pair{k:04}_mod.mj");
            std::fs::write(dir.join(&base_file), scenario.source())
                .map_err(|e| format!("cannot write `{base_file}`: {e}"))?;
            std::fs::write(dir.join(&mod_file), evolution.modified.source())
                .map_err(|e| format!("cannot write `{mod_file}`: {e}"))?;
            let edits_json: Vec<String> = evolution
                .edits
                .iter()
                .map(|e| {
                    format!(
                        "{{\"kind\": \"{}\", \"markers\": [{}], \"description\": {}}}",
                        e.kind.tag(),
                        render_markers(&e.markers),
                        json_string(&e.description)
                    )
                })
                .collect();
            let gt: Vec<String> = evolution
                .ground_truth_markers()
                .iter()
                .map(|m| m.to_string())
                .collect();
            manifest_pairs.push(format!(
                "    {{\"seed\": {seed}, \"base\": \"{base_file}\", \"modified\": \"{mod_file}\", \
                 \"ground_truth_markers\": [{}], \"edits\": [{}]}}",
                gt.join(", "),
                edits_json.join(", ")
            ));
        }
        if verify {
            match dise_gen::check_pair(&scenario, &evolution) {
                Ok(report) => println!(
                    "  verify: ok ({} ground-truth node(s) covered, {} affected, \
                     {} directed path(s), warm reuse {})",
                    report.ground_truth_nodes,
                    report.affected_nodes,
                    report.directed_paths,
                    report.warm_affected_reused
                ),
                Err(failure) => {
                    return Err(format!("pair {k:04} (seed {seed}) failed: {failure}"));
                }
            }
        }
    }
    if let Some(dir) = &out {
        let manifest = format!(
            "{{\n  \"generator\": \"dise-gen\",\n  \"proc\": \"{}\",\n  \"params\": \
             {{\"seed\": {base_seed}, \"pairs\": {pairs}, \"edits\": {edits}, \"arms\": {}, \
             \"guard_depth\": {}, \"helpers\": {}, \"call_depth\": {}, \"globals\": {}}},\n  \
             \"pairs\": [\n{}\n  ]\n}}\n",
            dise_gen::PROC_NAME,
            params.arms,
            params.guard_depth,
            params.helpers,
            params.call_depth,
            params.globals,
            manifest_pairs.join(",\n")
        );
        std::fs::write(dir.join("manifest.json"), manifest)
            .map_err(|e| format!("cannot write manifest.json: {e}"))?;
        println!("wrote {pairs} pair(s) + manifest.json to {}", dir.display());
    }
    Ok(())
}

fn render_markers(markers: &[i64]) -> String {
    markers
        .iter()
        .map(|m| m.to_string())
        .collect::<Vec<_>>()
        .join(", ")
}

/// Minimal JSON string escaping for manifest descriptions (the generator
/// emits ASCII, but quoting defensively costs nothing).
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// `dise serve` — the resident analysis service (see `dise-serve`).
/// Parses its own arguments for the same reason `run` does: most flags
/// take a value.
fn serve_command(args: &[String]) -> Result<(), String> {
    let mut config = dise_serve::ServeConfig {
        store: std::env::var_os("DISE_STORE")
            .filter(|v| !v.is_empty())
            .map(std::path::PathBuf::from),
        ..dise_serve::ServeConfig::default()
    };
    let mut request_workers = 0usize; // 0 = front-end default
    let mut listen: Option<String> = None;
    let mut pool_set = false;
    let parse_count = |flag: &str, value: &str| -> Result<usize, String> {
        match value.parse::<usize>() {
            Ok(n) if n >= 1 => Ok(n),
            _ => Err(format!("{flag} expects a count of at least 1")),
        }
    };
    let mut seen_command = false;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        let mut value_of = |flag: &str| -> Result<String, String> {
            match arg.strip_prefix(&format!("{flag}=")) {
                Some(value) => Ok(value.to_string()),
                None => iter
                    .next()
                    .map(|v| v.to_string())
                    .ok_or_else(|| format!("{flag} expects a value")),
            }
        };
        if arg == "--jobs" || arg.starts_with("--jobs=") {
            config.jobs = parse_count("--jobs", &value_of("--jobs")?)?;
        } else if arg == "--pool" || arg.starts_with("--pool=") {
            config.pool = parse_count("--pool", &value_of("--pool")?)?;
            pool_set = true;
        } else if arg == "--cache-bytes" || arg.starts_with("--cache-bytes=") {
            config.cache_bytes = parse_count("--cache-bytes", &value_of("--cache-bytes")?)?;
        } else if arg == "--request-workers" || arg.starts_with("--request-workers=") {
            request_workers = parse_count("--request-workers", &value_of("--request-workers")?)?;
        } else if arg == "--store" || arg.starts_with("--store=") {
            config.store = Some(std::path::PathBuf::from(value_of("--store")?));
        } else if arg == "--trace-json" || arg.starts_with("--trace-json=") {
            config.trace_dir = Some(std::path::PathBuf::from(value_of("--trace-json")?));
        } else if arg == "--listen" || arg.starts_with("--listen=") {
            listen = Some(value_of("--listen")?);
        } else if arg.starts_with("--") {
            return Err(format!("unknown flag `{arg}` for `serve`\n{USAGE}"));
        } else if !seen_command && arg == "serve" {
            seen_command = true;
        } else {
            return Err(format!("unexpected argument `{arg}` for `serve`\n{USAGE}"));
        }
    }
    if pool_set && config.pool < config.jobs {
        return Err("--pool must be at least --jobs".to_string());
    }
    // The default pool follows the host; an explicit --jobs above it
    // still needs that many tokens for one exploration.
    config.pool = config.pool.max(config.jobs);
    let server = Arc::new(dise_serve::Server::new(config));
    match listen {
        Some(addr) => dise_serve::serve_tcp(server, &addr, request_workers, |bound| {
            eprintln!("dise serve: listening on {bound}");
        }),
        None => dise_serve::serve_stdio(server, request_workers),
    }
    .map_err(|e| format!("serve: {e}"))
}

/// `dise store stat|clear [DIR]` — inspect or empty a persistent
/// analysis store. `DIR` falls back to the `DISE_STORE` environment
/// variable.
fn store_command(positional: &[&str]) -> Result<(), String> {
    let (action, dir) = match positional {
        [action] => (*action, None),
        [action, dir] => (*action, Some(*dir)),
        _ => return Err(USAGE.to_string()),
    };
    let dir = match dir.map(std::path::PathBuf::from).or_else(|| {
        std::env::var_os("DISE_STORE")
            .filter(|v| !v.is_empty())
            .map(std::path::PathBuf::from)
    }) {
        Some(dir) => dir,
        None => {
            return Err("no store directory: pass one or set DISE_STORE".to_string());
        }
    };
    let store = dise_store::Store::open(&dir);
    match action {
        "stat" => {
            let entries = store.entries().map_err(|e| e.to_string())?;
            println!(
                "store {}: {} entr{}",
                dir.display(),
                entries.len(),
                if entries.len() == 1 { "y" } else { "ies" }
            );
            for (file, outcome) in entries {
                match outcome {
                    Ok(entry) => {
                        let sets = match &entry.affected {
                            Some(affected) => format!(
                                "{} changed / {} affected node(s)",
                                affected.changed_nodes,
                                affected.acn.len() + affected.awn.len()
                            ),
                            None => "no affected sets".to_string(),
                        };
                        let bytes = std::fs::metadata(dir.join(&file))
                            .map(|m| m.len())
                            .unwrap_or(0);
                        println!(
                            "  {}: {} run(s), {} affected pc(s), {sets}, {} decided prefix(es), \
                             sweep feedback {}, versions {:08x}->{:08x}, summary {:016x}, \
                             kinds {}, {} bytes",
                            entry.proc_name,
                            entry.runs,
                            entry.pc_count,
                            entry.trie.decided(),
                            entry
                                .sweep_feedback
                                .map(|f| format!("{f:.2}"))
                                .unwrap_or_else(|| "n/a".to_string()),
                            entry.base_fingerprint as u32,
                            entry.mod_fingerprint as u32,
                            entry.summary_digest,
                            entry.kinds(),
                            bytes,
                        )
                    }
                    // A damaged entry is a warning about the store, not
                    // part of its listing — stderr, like every other
                    // degradation warning.
                    Err(e) => warn(&format!("{file}: unreadable ({e})")),
                }
            }
            Ok(())
        }
        "clear" => {
            let removed = store.clear().map_err(|e| e.to_string())?;
            println!(
                "removed {removed} entr{} from {}",
                if removed == 1 { "y" } else { "ies" },
                dir.display()
            );
            Ok(())
        }
        other => Err(format!("unknown store action `{other}`\n{USAGE}")),
    }
}

fn tests_command(positional: &[&str]) -> Result<(), String> {
    let [base_path, mod_path, proc_name] = positional else {
        return Err(USAGE.to_string());
    };
    let base = load(base_path)?;
    let modified = load(mod_path)?;
    // The regression application rides the same staged session as every
    // other consumer: base full run, directed run, and both flattened
    // programs come from one pipeline.
    let mut session = AnalysisSession::open(&base, &modified, proc_name, DiseConfig::default())
        .map_err(|e| e.to_string())?;
    let plan = {
        let (base_flat, base_full, mod_flat, dise_summary) =
            session.regression_inputs().map_err(|e| e.to_string())?;
        dise_regression::regression_plan(base_flat, base_full, mod_flat, dise_summary)
    };
    session.finalize();
    println!("existing suite ({} tests)", plan.existing.len());
    println!(
        "selected {} existing test(s); {} new test(s) required",
        plan.selection.selected.len(),
        plan.selection.added.len()
    );
    for test in &plan.selection.selected {
        println!("  selected: {test}");
    }
    for test in &plan.selection.added {
        println!("  new:      {test}");
    }
    Ok(())
}

fn inspect_command(positional: &[&str], flags: &[&str]) -> Result<(), String> {
    let [path, proc_name] = positional else {
        return Err(USAGE.to_string());
    };
    let program = load(path)?;
    let flat = dise_ir::inline::inline_program(&program, proc_name).map_err(|e| e.to_string())?;
    let procedure = flat
        .proc(proc_name)
        .ok_or_else(|| format!("procedure `{proc_name}` not found"))?;
    let cfg = dise_cfg::build_cfg(procedure);
    if flags.contains(&"--dot") {
        print!("{}", dise_cfg::dot::to_dot(&cfg, &Default::default()));
        return Ok(());
    }
    println!(
        "{}: {} statements, CFG with {} nodes ({} conditionals, {} writes)",
        proc_name,
        procedure.body.stmt_count(),
        cfg.len(),
        cfg.cond_nodes().count(),
        cfg.write_nodes().count()
    );
    for id in cfg.node_ids() {
        let succs: Vec<String> = cfg
            .succs(id)
            .iter()
            .map(|(s, label)| match label {
                dise_cfg::EdgeLabel::Seq => s.to_string(),
                other => format!("{s}[{other}]"),
            })
            .collect();
        println!("  {id}: {:<40} -> {}", cfg.label(id), succs.join(", "));
    }
    Ok(())
}

fn witness_command(positional: &[&str]) -> Result<(), String> {
    let [base_path, mod_path, proc_name] = positional else {
        return Err(USAGE.to_string());
    };
    let base = load(base_path)?;
    let modified = load(mod_path)?;
    let report = dise_evolution::witness::find_witnesses(
        &base,
        &modified,
        proc_name,
        &dise_evolution::witness::WitnessConfig::default(),
    )
    .map_err(|e| e.to_string())?;
    print_witness_report(&report);
    Ok(())
}

/// The `witness` report rendering, shared verbatim with `evolve` and
/// `dise serve` (see `dise_evolution::witness::render_report`).
fn print_witness_report(report: &dise_evolution::witness::WitnessReport) {
    print!("{}", dise_evolution::witness::render_report(report));
}

fn localize_command(positional: &[&str], args: &[String]) -> Result<(), String> {
    // `--formula <name>` contributes a bare value to the positional list;
    // only the first three positionals are paths and the procedure.
    let [base_path, mod_path, proc_name, ..] = positional else {
        return Err(USAGE.to_string());
    };
    let formula = match args
        .iter()
        .position(|a| a == "--formula")
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
    {
        None | Some("ochiai") => dise_evolution::localize::Formula::Ochiai,
        Some("tarantula") => dise_evolution::localize::Formula::Tarantula,
        Some("jaccard") => dise_evolution::localize::Formula::Jaccard,
        Some("dstar2") => dise_evolution::localize::Formula::DStar2,
        Some(other) => return Err(format!("unknown formula `{other}`")),
    };
    let base = load(base_path)?;
    let modified = load(mod_path)?;
    let config = dise_evolution::localize::LocalizeConfig {
        formula,
        ..Default::default()
    };
    let outcome = dise_evolution::localize::localize_change(&base, &modified, proc_name, &config)
        .map_err(|e| e.to_string())?;
    print_localization(&outcome);
    Ok(())
}

/// The `localize` ranking rendering, shared verbatim with `evolve` and
/// `dise serve` (see `dise_evolution::localize::render_localization`).
fn print_localization(outcome: &dise_evolution::localize::ChangeLocalization) {
    print!("{}", dise_evolution::localize::render_localization(outcome));
}

fn classify_command(positional: &[&str]) -> Result<(), String> {
    let [base_path, mod_path, proc_name] = positional else {
        return Err(USAGE.to_string());
    };
    let base = load(base_path)?;
    let modified = load(mod_path)?;
    let summary = dise_evolution::diffsum::classify_changes(
        &base,
        &modified,
        proc_name,
        &dise_evolution::diffsum::DiffSumConfig::default(),
    )
    .map_err(|e| e.to_string())?;
    print!("{}", summary.render());
    Ok(())
}

fn impact_command(positional: &[&str], flags: &[&str]) -> Result<(), String> {
    let [base_path, mod_path] = positional else {
        return Err(USAGE.to_string());
    };
    let base = load(base_path)?;
    let modified = load(mod_path)?;
    let result = dise_core::interproc::run_dise_system(
        &base,
        &modified,
        &dise_core::interproc::SystemConfig::default(),
    )
    .map_err(|e| e.to_string())?;
    if flags.contains(&"--dot") {
        print!("{}", result.impact.to_dot());
        return Ok(());
    }
    println!("impacted procedures:");
    for proc_result in &result.procedures {
        println!(
            "  {}: {} — {} affected PCs, {} states",
            proc_result.name,
            proc_result.reason,
            proc_result.result.summary.pc_count(),
            proc_result.result.summary.stats().states_explored
        );
    }
    for (name, err) in &result.failed {
        println!("  {name}: impacted but not analyzable ({err})");
    }
    if !result.skipped.is_empty() {
        println!("skipped (unimpacted): {}", result.skipped.join(", "));
    }
    if !result.impact.removed.is_empty() {
        println!(
            "removed in modified version: {}",
            result.impact.removed.join(", ")
        );
    }
    println!(
        "total: {} affected path conditions, {} states, {}",
        result.total_affected_pcs(),
        result.total_states(),
        duration_mmss(result.total_time)
    );
    Ok(())
}

fn report_command(positional: &[&str]) -> Result<(), String> {
    let [base_path, mod_path, proc_name] = positional else {
        return Err(USAGE.to_string());
    };
    let base = load(base_path)?;
    let modified = load(mod_path)?;
    let text = dise_evolution::report::impact_report(
        &base,
        &modified,
        proc_name,
        &dise_evolution::report::ImpactConfig::default(),
    )
    .map_err(|e| e.to_string())?;
    print!("{text}");
    Ok(())
}
