//! End-to-end tests of the `dise` binary: every subcommand, the error
//! paths, and the exit codes.

use std::path::PathBuf;
use std::process::{Command, Output};

fn write_fixture(dir: &std::path::Path, name: &str, content: &str) -> PathBuf {
    let path = dir.join(name);
    std::fs::write(&path, content).expect("fixture writes");
    path
}

struct Fixture {
    _dir: tempdir::TempDir,
    base: PathBuf,
    modified: PathBuf,
}

/// Minimal stand-in for the `tempdir` crate: a unique directory under the
/// target tmp dir, removed on drop.
mod tempdir {
    use std::path::{Path, PathBuf};
    use std::sync::atomic::{AtomicU64, Ordering};

    static COUNTER: AtomicU64 = AtomicU64::new(0);

    pub struct TempDir(PathBuf);

    impl TempDir {
        pub fn new(prefix: &str) -> std::io::Result<TempDir> {
            let unique = format!(
                "{prefix}-{}-{}",
                std::process::id(),
                COUNTER.fetch_add(1, Ordering::Relaxed)
            );
            let path = std::env::temp_dir().join(unique);
            std::fs::create_dir_all(&path)?;
            Ok(TempDir(path))
        }

        pub fn path(&self) -> &Path {
            &self.0
        }
    }

    impl Drop for TempDir {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }
}

fn fixture() -> Fixture {
    let dir = tempdir::TempDir::new("dise-cli-test").expect("temp dir");
    let base = write_fixture(
        dir.path(),
        "base.mj",
        "int out;\nproc f(int x) { if (x > 0) { out = 1; } else { out = 2; } }\n",
    );
    let modified = write_fixture(
        dir.path(),
        "modified.mj",
        "int out;\nproc f(int x) { if (x >= 0) { out = 1; } else { out = 2; } }\n",
    );
    Fixture {
        _dir: dir,
        base,
        modified,
    }
}

fn dise(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_dise"))
        .args(args)
        .output()
        .expect("binary runs")
}

fn stdout(output: &Output) -> String {
    String::from_utf8_lossy(&output.stdout).into_owned()
}

fn stderr(output: &Output) -> String {
    String::from_utf8_lossy(&output.stderr).into_owned()
}

/// The `.dise` entry files of a store directory, wherever the sharding
/// layout put them (top level for legacy stores, `xx/` subdirs today).
fn store_entry_files(dir: &std::path::Path) -> Vec<PathBuf> {
    std::fs::read_dir(dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .flat_map(|p| {
            if p.is_dir() {
                std::fs::read_dir(&p)
                    .unwrap()
                    .map(|e| e.unwrap().path())
                    .collect()
            } else {
                vec![p]
            }
        })
        .filter(|p| p.extension().and_then(|e| e.to_str()) == Some("dise"))
        .collect()
}

#[test]
fn run_reports_affected_path_conditions() {
    let fx = fixture();
    let out = dise(&[
        "run",
        fx.base.to_str().unwrap(),
        fx.modified.to_str().unwrap(),
        "f",
        "--full",
    ]);
    assert!(out.status.success(), "{}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("affected path conditions"), "{text}");
    assert!(text.contains("X >= 0"), "{text}");
    assert!(text.contains("full symbolic execution"), "{text}");
}

#[test]
fn run_with_jobs_matches_serial_output() {
    let fx = fixture();
    let base = fx.base.to_str().unwrap();
    let modified = fx.modified.to_str().unwrap();
    let serial = dise(&["run", base, modified, "f", "--full", "--jobs", "1"]);
    let parallel = dise(&["run", base, modified, "f", "--full", "--jobs", "4"]);
    assert!(serial.status.success(), "{}", stderr(&serial));
    assert!(parallel.status.success(), "{}", stderr(&parallel));
    // Timing and solver counters legitimately differ; the reported path
    // conditions (the indented lines) must be identical and non-empty.
    let pcs = |out: &Output| -> Vec<String> {
        stdout(out)
            .lines()
            .filter(|l| l.starts_with("  "))
            .map(str::to_owned)
            .collect()
    };
    let serial_pcs = pcs(&serial);
    assert!(!serial_pcs.is_empty());
    assert_eq!(serial_pcs, pcs(&parallel));
}

#[test]
fn run_accepts_the_equals_form_of_jobs() {
    let fx = fixture();
    let out = dise(&[
        "run",
        fx.base.to_str().unwrap(),
        fx.modified.to_str().unwrap(),
        "f",
        "--jobs=4",
    ]);
    assert!(out.status.success(), "{}", stderr(&out));
    assert!(stdout(&out).contains("affected path conditions"));
}

#[test]
fn run_rejects_a_bad_jobs_value() {
    let fx = fixture();
    let base = fx.base.to_str().unwrap();
    let modified = fx.modified.to_str().unwrap();
    for bad in [
        &["run", base, modified, "f", "--jobs", "0"][..],
        &["run", base, modified, "f", "--jobs"][..],
        &["run", base, modified, "f", "--jobs=zero"][..],
    ] {
        let out = dise(bad);
        assert!(!out.status.success(), "{bad:?}");
        assert!(stderr(&out).contains("--jobs"), "{}", stderr(&out));
    }
}

#[test]
fn run_accepts_sweep_budget_forms_and_prints_sweep_stats() {
    let fx = fixture();
    let base = fx.base.to_str().unwrap();
    let modified = fx.modified.to_str().unwrap();
    // Any budget must leave the reported path conditions identical.
    let pcs = |out: &Output| -> Vec<String> {
        stdout(out)
            .lines()
            .filter(|l| l.starts_with("  "))
            .map(str::to_owned)
            .collect()
    };
    let serial = dise(&["run", base, modified, "f", "--jobs", "1"]);
    assert!(serial.status.success(), "{}", stderr(&serial));
    for budget in ["auto", "unlimited", "0", "3"] {
        let out = dise(&[
            "run",
            base,
            modified,
            "f",
            "--jobs",
            "4",
            "--sweep-budget",
            budget,
        ]);
        assert!(out.status.success(), "budget {budget}: {}", stderr(&out));
        assert_eq!(pcs(&serial), pcs(&out), "budget {budget}");
    }
    // A parallel directed run with a live sweep reports its efficiency.
    let out = dise(&["run", base, modified, "f", "--jobs=4", "--sweep-budget=8"]);
    assert!(out.status.success(), "{}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("sweep:"), "{text}");
    assert!(text.contains("trie answers consumed"), "{text}");
    // Budget 0 disables the sweep: nothing to report.
    let out = dise(&["run", base, modified, "f", "--jobs=4", "--sweep-budget=0"]);
    assert!(!stdout(&out).contains("sweep:"), "{}", stdout(&out));
}

#[test]
fn run_rejects_a_bad_sweep_budget_value() {
    let fx = fixture();
    let base = fx.base.to_str().unwrap();
    let modified = fx.modified.to_str().unwrap();
    for bad in [
        &["run", base, modified, "f", "--sweep-budget", "lots"][..],
        &["run", base, modified, "f", "--sweep-budget"][..],
        &["run", base, modified, "f", "--sweep-budget=-1"][..],
    ] {
        let out = dise(bad);
        assert!(!out.status.success(), "{bad:?}");
        assert!(stderr(&out).contains("--sweep-budget"), "{}", stderr(&out));
    }
}

#[test]
fn run_rejects_unknown_flags_and_bad_positionals() {
    let fx = fixture();
    let base = fx.base.to_str().unwrap();
    let modified = fx.modified.to_str().unwrap();
    // A typo'd flag must not be silently ignored.
    let out = dise(&["run", base, modified, "f", "--job", "4"]);
    assert!(!out.status.success());
    assert!(stderr(&out).contains("unknown flag"), "{}", stderr(&out));
    // Too few positionals trigger the usage error.
    let out = dise(&["run", base, "f"]);
    assert!(!out.status.success());
    assert!(stderr(&out).contains("usage"), "{}", stderr(&out));
    // In the multi-version grammar everything before the procedure is a
    // version file; a stray word makes `f` a (missing) file.
    let out = dise(&["run", base, modified, "f", "extra"]);
    assert!(!out.status.success());
    assert!(stderr(&out).contains("cannot read `f`"), "{}", stderr(&out));
}

#[test]
fn run_chains_multiple_versions_with_identical_per_hop_output() {
    let fx = fixture();
    let dir = tempdir::TempDir::new("dise-cli-chain").expect("temp dir");
    // A third version: flip the boundary back but change the else value.
    let v3 = write_fixture(
        dir.path(),
        "v3.mj",
        "int out;\nproc f(int x) { if (x >= 0) { out = 1; } else { out = 3; } }\n",
    );
    let base = fx.base.to_str().unwrap();
    let modified = fx.modified.to_str().unwrap();
    let v3 = v3.to_str().unwrap();

    let chained = dise(&["run", base, modified, v3, "f"]);
    assert!(chained.status.success(), "{}", stderr(&chained));
    let text = stdout(&chained);
    assert!(
        text.contains(&format!("=== {base} -> {modified} ===")),
        "{text}"
    );
    assert!(
        text.contains(&format!("=== {modified} -> {v3} ===")),
        "{text}"
    );

    // Per-hop path conditions equal the independent pairwise runs'.
    let pcs = |out: &Output| -> Vec<String> {
        stdout(out)
            .lines()
            .filter(|l| l.starts_with("  "))
            .map(str::to_owned)
            .collect()
    };
    let hop1 = dise(&["run", base, modified, "f"]);
    let hop2 = dise(&["run", modified, v3, "f"]);
    let mut expected = pcs(&hop1);
    expected.extend(pcs(&hop2));
    assert_eq!(pcs(&chained), expected, "chaining must not change results");
}

#[test]
fn evolve_rejects_flags() {
    let fx = fixture();
    let out = dise(&[
        "evolve",
        fx.base.to_str().unwrap(),
        fx.modified.to_str().unwrap(),
        "f",
        "--store=/tmp/nope",
    ]);
    assert!(!out.status.success());
    assert!(stderr(&out).contains("unknown flag"), "{}", stderr(&out));
}

#[test]
fn evolve_output_matches_the_four_standalone_subcommands() {
    let fx = fixture();
    let base = fx.base.to_str().unwrap();
    let modified = fx.modified.to_str().unwrap();
    let evolve = dise(&["evolve", base, modified, "f"]);
    assert!(evolve.status.success(), "{}", stderr(&evolve));

    let mut standalone = String::new();
    for cmd in ["witness", "classify", "localize", "report"] {
        let out = dise(&[cmd, base, modified, "f"]);
        assert!(out.status.success(), "{cmd}: {}", stderr(&out));
        standalone.push_str(&stdout(&out));
    }
    assert_eq!(
        stdout(&evolve),
        standalone,
        "evolve must be byte-identical to the standalone subcommands"
    );
}

#[test]
fn tests_selects_and_augments() {
    let fx = fixture();
    let out = dise(&[
        "tests",
        fx.base.to_str().unwrap(),
        fx.modified.to_str().unwrap(),
        "f",
    ]);
    assert!(out.status.success(), "{}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("existing suite"), "{text}");
    assert!(text.contains("selected"), "{text}");
}

#[test]
fn inspect_describes_and_dots() {
    let fx = fixture();
    let out = dise(&["inspect", fx.modified.to_str().unwrap(), "f"]);
    assert!(out.status.success(), "{}", stderr(&out));
    assert!(stdout(&out).contains("CFG with"), "{}", stdout(&out));

    let dot = dise(&["inspect", fx.modified.to_str().unwrap(), "f", "--dot"]);
    assert!(dot.status.success());
    assert!(stdout(&dot).starts_with("digraph"), "{}", stdout(&dot));
}

#[test]
fn witness_prints_the_boundary_input() {
    let fx = fixture();
    let out = dise(&[
        "witness",
        fx.base.to_str().unwrap(),
        fx.modified.to_str().unwrap(),
        "f",
    ]);
    assert!(out.status.success(), "{}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("1 diverge"), "{text}");
    assert!(text.contains("[x = 0] out: 2 -> 1"), "{text}");
}

#[test]
fn classify_prints_verdicts() {
    let fx = fixture();
    let out = dise(&[
        "classify",
        fx.base.to_str().unwrap(),
        fx.modified.to_str().unwrap(),
        "f",
    ]);
    assert!(out.status.success(), "{}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("diverges on out"), "{text}");
    assert!(text.contains("preserving"), "{text}");
}

#[test]
fn localize_accepts_formula_flag() {
    let fx = fixture();
    let out = dise(&[
        "localize",
        fx.base.to_str().unwrap(),
        fx.modified.to_str().unwrap(),
        "f",
        "--formula",
        "tarantula",
    ]);
    assert!(out.status.success(), "{}", stderr(&out));
    assert!(
        stdout(&out).contains("formula tarantula"),
        "{}",
        stdout(&out)
    );

    let bad = dise(&[
        "localize",
        fx.base.to_str().unwrap(),
        fx.modified.to_str().unwrap(),
        "f",
        "--formula",
        "nonsense",
    ]);
    assert!(!bad.status.success());
    assert!(stderr(&bad).contains("unknown formula"), "{}", stderr(&bad));
}

#[test]
fn impact_lists_and_dots() {
    let fx = fixture();
    let out = dise(&[
        "impact",
        fx.base.to_str().unwrap(),
        fx.modified.to_str().unwrap(),
    ]);
    assert!(out.status.success(), "{}", stderr(&out));
    assert!(stdout(&out).contains("f: body changed"), "{}", stdout(&out));

    let dot = dise(&[
        "impact",
        fx.base.to_str().unwrap(),
        fx.modified.to_str().unwrap(),
        "--dot",
    ]);
    assert!(dot.status.success());
    assert!(
        stdout(&dot).starts_with("digraph impact"),
        "{}",
        stdout(&dot)
    );
}

#[test]
fn report_renders_markdown() {
    let fx = fixture();
    let out = dise(&[
        "report",
        fx.base.to_str().unwrap(),
        fx.modified.to_str().unwrap(),
        "f",
    ]);
    assert!(out.status.success(), "{}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("# Change impact: `f`"), "{text}");
    assert!(text.contains("## Regression suite"), "{text}");
}

#[test]
fn unknown_command_fails_with_usage() {
    let out = dise(&["frobnicate"]);
    assert!(!out.status.success());
    assert!(stderr(&out).contains("usage:"), "{}", stderr(&out));
}

#[test]
fn missing_file_is_a_clean_error() {
    let out = dise(&["run", "/nonexistent/a.mj", "/nonexistent/b.mj", "f"]);
    assert!(!out.status.success());
    assert!(stderr(&out).contains("cannot read"), "{}", stderr(&out));
}

#[test]
fn parse_error_points_at_the_file() {
    let dir = tempdir::TempDir::new("dise-cli-parse").expect("temp dir");
    let bad = write_fixture(dir.path(), "bad.mj", "proc f( { }");
    let out = dise(&["run", bad.to_str().unwrap(), bad.to_str().unwrap(), "f"]);
    assert!(!out.status.success());
    assert!(stderr(&out).contains("bad.mj"), "{}", stderr(&out));
}

#[test]
fn run_with_store_warm_starts_and_matches_cold_output() {
    let fx = fixture();
    let store_dir = tempdir::TempDir::new("dise-cli-store").expect("temp dir");
    let store = store_dir.path().to_str().unwrap();
    let base = fx.base.to_str().unwrap();
    let modified = fx.modified.to_str().unwrap();

    let pcs = |out: &Output| -> Vec<String> {
        stdout(out)
            .lines()
            .filter(|l| l.starts_with("  "))
            .map(str::to_owned)
            .collect()
    };

    let cold = dise(&["run", base, modified, "f", "--store", store]);
    assert!(cold.status.success(), "{}", stderr(&cold));
    let cold_text = stdout(&cold);
    assert!(cold_text.contains("store: cold start"), "{cold_text}");
    assert!(cold_text.contains("saved"), "{cold_text}");

    let warm = dise(&["run", base, modified, "f", &format!("--store={store}")]);
    assert!(warm.status.success(), "{}", stderr(&warm));
    let warm_text = stdout(&warm);
    assert!(warm_text.contains("store: warm start"), "{warm_text}");
    assert!(warm_text.contains("affected sets reused"), "{warm_text}");
    assert_eq!(pcs(&cold), pcs(&warm), "summaries must be byte-identical");

    // `store stat` sees the recorded entry; `store clear` empties it.
    let stat = dise(&["store", "stat", store]);
    assert!(stat.status.success(), "{}", stderr(&stat));
    let stat_text = stdout(&stat);
    assert!(stat_text.contains("1 entry"), "{stat_text}");
    assert!(stat_text.contains("f: 2 run(s)"), "{stat_text}");

    let clear = dise(&["store", "clear", store]);
    assert!(clear.status.success(), "{}", stderr(&clear));
    assert!(
        stdout(&clear).contains("removed 1 entry"),
        "{}",
        stdout(&clear)
    );
    let stat = dise(&["store", "stat", store]);
    assert!(stdout(&stat).contains("0 entries"), "{}", stdout(&stat));
}

#[test]
fn corrupt_store_entries_warn_and_fall_back_cold() {
    let fx = fixture();
    let store_dir = tempdir::TempDir::new("dise-cli-store-corrupt").expect("temp dir");
    let store = store_dir.path().to_str().unwrap();
    let base = fx.base.to_str().unwrap();
    let modified = fx.modified.to_str().unwrap();

    let cold = dise(&["run", base, modified, "f", "--store", store]);
    assert!(cold.status.success(), "{}", stderr(&cold));
    // Truncate the single entry file (entries live in shard subdirs).
    let entry = store_entry_files(store_dir.path())
        .into_iter()
        .next()
        .expect("entry file exists");
    let bytes = std::fs::read(&entry).unwrap();
    std::fs::write(&entry, &bytes[..bytes.len() / 2]).unwrap();

    let damaged = dise(&["run", base, modified, "f", "--store", store]);
    assert!(damaged.status.success(), "{}", stderr(&damaged));
    assert!(
        stderr(&damaged).contains("warning: analysis store:"),
        "{}",
        stderr(&damaged)
    );
    let text = stdout(&damaged);
    assert!(text.contains("store: cold start"), "{text}");
    // Same path conditions as the healthy cold run.
    let pcs = |out: &Output| -> Vec<String> {
        stdout(out)
            .lines()
            .filter(|l| l.starts_with("  "))
            .map(str::to_owned)
            .collect()
    };
    assert_eq!(pcs(&cold), pcs(&damaged));
}

#[test]
fn store_command_requires_a_directory() {
    let out = Command::new(env!("CARGO_BIN_EXE_dise"))
        .args(["store", "stat"])
        .env_remove("DISE_STORE")
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
    assert!(stderr(&out).contains("DISE_STORE"), "{}", stderr(&out));
}

#[test]
fn dise_store_env_var_enables_persistence() {
    let fx = fixture();
    let store_dir = tempdir::TempDir::new("dise-cli-store-env").expect("temp dir");
    let out = Command::new(env!("CARGO_BIN_EXE_dise"))
        .args([
            "run",
            fx.base.to_str().unwrap(),
            fx.modified.to_str().unwrap(),
            "f",
        ])
        .env("DISE_STORE", store_dir.path())
        .output()
        .expect("binary runs");
    assert!(out.status.success(), "{}", stderr(&out));
    assert!(
        stdout(&out).contains("store: cold start"),
        "{}",
        stdout(&out)
    );
    assert_eq!(store_entry_files(store_dir.path()).len(), 1);
}

#[test]
fn run_stats_json_replaces_stats_lines_with_registry_dumps() {
    let fx = fixture();
    let out = dise(&[
        "run",
        fx.base.to_str().unwrap(),
        fx.modified.to_str().unwrap(),
        "f",
        "--full",
        "--stats",
        "json",
    ]);
    assert!(out.status.success(), "{}", stderr(&out));
    let text = stdout(&out);
    // No prose stats lines in json mode — only registry dumps plus the
    // verdict lines (path conditions, section headers).
    for prose in ["DiSE:", "solver:", "stages:", "full stats:"] {
        assert!(!text.contains(prose), "{text}");
    }
    let dumps: Vec<&str> = text.lines().filter(|l| l.starts_with('{')).collect();
    // dise stable + volatile, full stable + volatile.
    assert_eq!(dumps.len(), 4, "{text}");
    for dump in &dumps {
        assert!(dump.contains(r#""type":"stats""#), "{dump}");
        assert!(dump.contains(r#""schema":1"#), "{dump}");
    }
    assert!(dumps[0].contains(r#""scope":"dise""#), "{}", dumps[0]);
    assert!(dumps[0].contains(r#""kind":"stable""#), "{}", dumps[0]);
    assert!(dumps[2].contains(r#""scope":"full""#), "{}", dumps[2]);
    // Path conditions still print for byte-diffing.
    assert!(text.contains("X >= 0"), "{text}");
    // The stable dump is byte-identical across jobs settings — the CI
    // byte-diff leg's contract.
    let stable = |out: &Output| -> Vec<String> {
        stdout(out)
            .lines()
            .filter(|l| l.contains(r#""kind":"stable""#))
            .map(str::to_owned)
            .collect()
    };
    let parallel = dise(&[
        "run",
        fx.base.to_str().unwrap(),
        fx.modified.to_str().unwrap(),
        "f",
        "--full",
        "--stats=json",
        "--jobs=4",
    ]);
    assert!(parallel.status.success(), "{}", stderr(&parallel));
    assert_eq!(stable(&out), stable(&parallel));
}

#[test]
fn run_rejects_a_bad_stats_value() {
    let fx = fixture();
    let out = dise(&[
        "run",
        fx.base.to_str().unwrap(),
        fx.modified.to_str().unwrap(),
        "f",
        "--stats",
        "yaml",
    ]);
    assert!(!out.status.success());
    assert!(stderr(&out).contains("--stats"), "{}", stderr(&out));
}

#[test]
fn trace_json_export_validates_and_chrome_export_is_json() {
    let fx = fixture();
    let dir = tempdir::TempDir::new("dise-cli-trace").expect("temp dir");
    let trace_path = dir.path().join("trace.jsonl");
    let chrome_path = dir.path().join("chrome.json");
    let out = dise(&[
        "run",
        fx.base.to_str().unwrap(),
        fx.modified.to_str().unwrap(),
        "f",
        "--trace-json",
        trace_path.to_str().unwrap(),
        "--trace-chrome",
        chrome_path.to_str().unwrap(),
    ]);
    assert!(out.status.success(), "{}", stderr(&out));

    let log = std::fs::read_to_string(&trace_path).expect("trace log written");
    assert!(log.lines().next().unwrap().contains(r#""type":"meta""#));
    assert!(log.contains(r#""name":"stage.explore""#), "{log}");
    // Every line is one JSON object; `dise trace validate` agrees.
    let validated = dise(&["trace", "validate", trace_path.to_str().unwrap()]);
    assert!(validated.status.success(), "{}", stderr(&validated));
    assert!(
        stdout(&validated).contains("valid trace log"),
        "{}",
        stdout(&validated)
    );

    let chrome = std::fs::read_to_string(&chrome_path).expect("chrome trace written");
    assert!(chrome.trim_start().starts_with('['), "{chrome}");
    assert!(chrome.contains(r#""ph":"X""#), "{chrome}");
}

#[test]
fn trace_validate_rejects_damaged_logs() {
    let dir = tempdir::TempDir::new("dise-cli-trace-bad").expect("temp dir");
    let path = dir.path().join("bad.jsonl");
    std::fs::write(&path, "{\"type\":\"span\"}\n").unwrap();
    let out = dise(&["trace", "validate", path.to_str().unwrap()]);
    assert!(!out.status.success());
    assert!(stderr(&out).contains("bad.jsonl"), "{}", stderr(&out));
}

#[test]
fn profile_prints_the_span_tree_and_full_attribution() {
    let fx = fixture();
    let out = dise(&[
        "profile",
        fx.base.to_str().unwrap(),
        fx.modified.to_str().unwrap(),
        "f",
    ]);
    assert!(out.status.success(), "{}", stderr(&out));
    let text = stdout(&out);
    assert!(text.starts_with("session"), "{text}");
    for stage in [
        "stage.flatten",
        "stage.diff",
        "stage.affected",
        "stage.explore",
    ] {
        assert!(text.contains(&format!("  {stage}")), "{text}");
    }
    // Our instrumentation attributes every pipeline check to a stage.
    assert!(text.contains("(100.0%)"), "{text}");

    // --full adds the full-exploration span to the tree.
    let full = dise(&[
        "profile",
        fx.base.to_str().unwrap(),
        fx.modified.to_str().unwrap(),
        "f",
        "--full",
    ]);
    assert!(full.status.success(), "{}", stderr(&full));
    let text = stdout(&full);
    assert!(text.contains("stage.full_modified"), "{text}");
    assert!(text.contains("(100.0%)"), "{text}");
}

#[test]
fn store_stat_reports_unreadable_entries_on_stderr() {
    let fx = fixture();
    let store_dir = tempdir::TempDir::new("dise-cli-store-stat-warn").expect("temp dir");
    let store = store_dir.path().to_str().unwrap();
    let seeded = dise(&[
        "run",
        fx.base.to_str().unwrap(),
        fx.modified.to_str().unwrap(),
        "f",
        "--store",
        store,
    ]);
    assert!(seeded.status.success(), "{}", stderr(&seeded));
    // Truncate the entry so `store stat` cannot read it.
    let entry = store_entry_files(store_dir.path())
        .into_iter()
        .next()
        .expect("entry file exists");
    let bytes = std::fs::read(&entry).unwrap();
    std::fs::write(&entry, &bytes[..bytes.len() / 2]).unwrap();

    let stat = dise(&["store", "stat", store]);
    assert!(stat.status.success(), "{}", stderr(&stat));
    // The listing itself stays on stdout; the damage report is a warning
    // on stderr, keeping stdout machine-readable.
    assert!(!stdout(&stat).contains("unreadable"), "{}", stdout(&stat));
    assert!(
        stderr(&stat).contains("warning:") && stderr(&stat).contains("unreadable"),
        "{}",
        stderr(&stat)
    );
}

#[test]
fn gen_is_deterministic_and_writes_pairs() {
    let dir = tempdir::TempDir::new("dise-gen-out").expect("temp dir");
    let out_a = dir.path().join("a");
    let out_b = dir.path().join("b");
    for out in [&out_a, &out_b] {
        let run = dise(&[
            "gen",
            "--seed",
            "11",
            "--pairs",
            "2",
            "--out",
            out.to_str().unwrap(),
        ]);
        assert!(run.status.success(), "{}", stderr(&run));
        assert!(stdout(&run).contains("pair 0000"), "{}", stdout(&run));
    }
    for name in [
        "pair0000_base.mj",
        "pair0000_mod.mj",
        "pair0001_base.mj",
        "pair0001_mod.mj",
        "manifest.json",
    ] {
        let a = std::fs::read(out_a.join(name)).expect(name);
        let b = std::fs::read(out_b.join(name)).expect(name);
        assert_eq!(a, b, "{name} differs between identical invocations");
    }
    // Base and modified genuinely differ, and both load back through the
    // normal `run` path (the generated pair is a valid version pair).
    assert_ne!(
        std::fs::read(out_a.join("pair0000_base.mj")).unwrap(),
        std::fs::read(out_a.join("pair0000_mod.mj")).unwrap()
    );
    let run = dise(&[
        "run",
        out_a.join("pair0000_base.mj").to_str().unwrap(),
        out_a.join("pair0000_mod.mj").to_str().unwrap(),
        "step",
    ]);
    assert!(run.status.success(), "{}", stderr(&run));
    assert!(
        stdout(&run).contains("affected path conditions"),
        "{}",
        stdout(&run)
    );
}

#[test]
fn gen_verify_runs_the_differential_harness() {
    let out = dise(&["gen", "--seed", "5", "--pairs", "1", "--verify"]);
    assert!(out.status.success(), "{}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("verify: ok"), "{text}");
    assert!(text.contains("ground-truth node(s) covered"), "{text}");
}

#[test]
fn gen_rejects_unknown_flags_and_bad_values() {
    for bad in [
        &["gen", "--bogus"][..],
        &["gen", "--pairs", "many"][..],
        &["gen", "--seed"][..],
        &["gen", "stray"][..],
    ] {
        let out = dise(bad);
        assert!(!out.status.success(), "{bad:?}");
    }
}

#[test]
fn zero_procedure_programs_fail_with_a_clear_error() {
    let dir = tempdir::TempDir::new("dise-empty-prog").expect("temp dir");
    let empty = write_fixture(dir.path(), "empty.mj", "int out;\n");
    let fx = fixture();
    // `run` and `evolve` both reject the degenerate file with the same
    // one-line diagnostic, whichever side of the pair it appears on.
    for args in [
        &[
            "run",
            empty.to_str().unwrap(),
            fx.modified.to_str().unwrap(),
            "f",
        ][..],
        &[
            "run",
            fx.base.to_str().unwrap(),
            empty.to_str().unwrap(),
            "f",
        ][..],
        &[
            "evolve",
            empty.to_str().unwrap(),
            fx.modified.to_str().unwrap(),
            "f",
        ][..],
    ] {
        let out = dise(args);
        assert!(!out.status.success(), "{args:?}");
        let err = stderr(&out);
        assert!(
            err.contains("program declares no procedures (nothing to analyze)"),
            "{args:?}: {err}"
        );
    }
}

// ---------------------------------------------------------------------------
// `dise serve` — the resident analysis service over stdin/stdout.

/// Spawns `dise serve`, pipes `requests` (one JSON-RPC line each), closes
/// stdin, and returns the response lines.
fn serve_session(args: &[&str], requests: &[String]) -> Vec<String> {
    use std::io::{BufRead, BufReader, Write};
    let mut child = Command::new(env!("CARGO_BIN_EXE_dise"))
        .arg("serve")
        .args(args)
        .stdin(std::process::Stdio::piped())
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::piped())
        .spawn()
        .expect("serve spawns");
    {
        let mut stdin = child.stdin.take().expect("stdin piped");
        for request in requests {
            writeln!(stdin, "{request}").expect("request writes");
        }
        // Dropping stdin closes the pipe; the server drains and exits.
    }
    let stdout = child.stdout.take().expect("stdout piped");
    let lines: Vec<String> = BufReader::new(stdout)
        .lines()
        .map(|l| l.expect("response line reads"))
        .collect();
    let status = child.wait().expect("serve exits");
    assert!(status.success(), "serve exited with {status}");
    lines
}

/// Finds the response with the given numeric id among out-of-order lines.
fn response_with_id(lines: &[String], id: u64) -> dise_trace::json::JsonValue {
    for line in lines {
        let value = dise_trace::json::parse(line)
            .unwrap_or_else(|e| panic!("response `{line}` parses: {e}"));
        if value
            .get("id")
            .and_then(dise_trace::json::JsonValue::as_u64)
            == Some(id)
        {
            return value;
        }
    }
    panic!("no response with id {id} in {lines:?}");
}

fn result_str(value: &dise_trace::json::JsonValue, key: &str) -> String {
    value
        .get("result")
        .and_then(|r| r.get(key))
        .and_then(dise_trace::json::JsonValue::as_str)
        .unwrap_or_else(|| panic!("result.{key} missing in {value:?}"))
        .to_string()
}

#[test]
fn serve_analyze_output_is_byte_identical_to_the_one_shot_residue() {
    let fx = fixture();
    let base = fx.base.to_str().unwrap();
    let modified = fx.modified.to_str().unwrap();
    for jobs in ["1", "4"] {
        // The one-shot verdict residue: `--stats json` stdout minus the
        // registry lines.
        let one_shot = dise(&[
            "run", base, modified, "f", "--stats", "json", "--jobs", jobs,
        ]);
        assert!(one_shot.status.success(), "{}", stderr(&one_shot));
        let residue: String = stdout(&one_shot)
            .lines()
            .filter(|l| !l.starts_with('{'))
            .map(|l| format!("{l}\n"))
            .collect();
        assert!(!residue.is_empty());

        let request = format!(
            "{{\"jsonrpc\":\"2.0\",\"id\":1,\"method\":\"analyze\",\"params\":{{\
             \"request_id\":\"e2e\",\"proc\":\"f\",\"base_path\":{base:?},\"mod_path\":{modified:?}}}}}",
        );
        let lines = serve_session(&["--jobs", jobs], &[request.clone(), request]);
        assert_eq!(lines.len(), 2, "one response per request: {lines:?}");
        let value = response_with_id(&lines, 1);
        assert_eq!(
            result_str(&value, "output"),
            residue,
            "serve output must be byte-identical to the one-shot residue (jobs={jobs})"
        );
        assert_eq!(result_str(&value, "request_id"), "e2e");
        // The repeat is a cache hit or coalesced follower: same bytes.
        assert_eq!(lines[0], lines[1], "identical requests, identical bytes");
    }
}

#[test]
fn serve_evolve_output_is_byte_identical_to_dise_evolve() {
    let fx = fixture();
    let base = fx.base.to_str().unwrap();
    let modified = fx.modified.to_str().unwrap();
    let one_shot = dise(&["evolve", base, modified, "f"]);
    assert!(one_shot.status.success(), "{}", stderr(&one_shot));

    let request = format!(
        "{{\"jsonrpc\":\"2.0\",\"id\":4,\"method\":\"evolve\",\"params\":{{\
         \"proc\":\"f\",\"base_path\":{base:?},\"mod_path\":{modified:?}}}}}",
    );
    let lines = serve_session(&[], &[request]);
    let value = response_with_id(&lines, 4);
    assert_eq!(
        result_str(&value, "output"),
        stdout(&one_shot),
        "serve evolve must render exactly what `dise evolve` prints"
    );
}

#[test]
fn serve_shares_a_store_with_one_shot_runs() {
    let fx = fixture();
    let store_dir = tempdir::TempDir::new("dise-cli-serve-store").expect("temp dir");
    let store = store_dir.path().to_str().unwrap();
    let base = fx.base.to_str().unwrap();
    let modified = fx.modified.to_str().unwrap();

    // The server's exploration populates the shared store (saves take
    // the store's advisory lock)...
    let request = format!(
        "{{\"jsonrpc\":\"2.0\",\"id\":1,\"method\":\"analyze\",\"params\":{{\
         \"proc\":\"f\",\"base_path\":{base:?},\"mod_path\":{modified:?}}}}}",
    );
    let lines = serve_session(&["--store", store], &[request]);
    assert!(lines[0].contains("\"result\""), "{lines:?}");

    // ...and a one-shot run warm-starts from it afterwards.
    let warm = dise(&["run", base, modified, "f", "--store", store]);
    assert!(warm.status.success(), "{}", stderr(&warm));
    assert!(
        stdout(&warm).contains("store: warm start"),
        "{}",
        stdout(&warm)
    );
    let stat = dise(&["store", "stat", store]);
    assert!(stdout(&stat).contains("1 entry"), "{}", stdout(&stat));
}

#[test]
fn serve_status_shutdown_and_bad_requests() {
    let requests = vec![
        "nonsense".to_string(),
        r#"{"jsonrpc":"2.0","id":2,"method":"status"}"#.to_string(),
        r#"{"jsonrpc":"2.0","id":3,"method":"shutdown"}"#.to_string(),
    ];
    let lines = serve_session(&[], &requests);
    assert!(
        lines.iter().any(|l| l.contains("-32700")),
        "parse error reported: {lines:?}"
    );
    let status = response_with_id(&lines, 2);
    assert!(
        status
            .get("result")
            .and_then(|r| r.get("cache_budget"))
            .is_some(),
        "{status:?}"
    );
    let bye = response_with_id(&lines, 3);
    assert!(
        bye.get("result")
            .and_then(|r| r.get("ok"))
            .and_then(dise_trace::json::JsonValue::as_bool)
            == Some(true),
        "{bye:?}"
    );
}

#[test]
fn serve_writes_one_validated_trace_log_per_request() {
    let fx = fixture();
    let trace_dir = tempdir::TempDir::new("dise-cli-serve-trace").expect("temp dir");
    let base = fx.base.to_str().unwrap();
    let modified = fx.modified.to_str().unwrap();
    let request = format!(
        "{{\"jsonrpc\":\"2.0\",\"id\":1,\"method\":\"analyze\",\"params\":{{\
         \"request_id\":\"traced-1\",\"proc\":\"f\",\"base_path\":{base:?},\"mod_path\":{modified:?}}}}}",
    );
    let trace = trace_dir.path().to_str().unwrap();
    serve_session(&["--trace-json", trace], &[request]);
    let log = trace_dir.path().join("traced-1.jsonl");
    assert!(log.exists(), "per-request trace log written");
    let validated = dise(&["trace", "validate", log.to_str().unwrap()]);
    assert!(
        validated.status.success(),
        "trace log validates: {}",
        stderr(&validated)
    );
    let text = std::fs::read_to_string(&log).unwrap();
    assert!(
        text.contains("request.traced-1"),
        "root span carries the request id"
    );
    assert!(
        text.contains("\"scope\":\"traced-1.dise\""),
        "stats records are scoped by the request id"
    );
}
