//! # dise-gen — scenario generation and the ground-truth differential harness
//!
//! Every cache layer in this workspace (incremental solver, persistent
//! store, procedure summaries, staged sessions) promises the same thing:
//! *warm state moves solver work around, it never changes results*. Until
//! this crate, those contracts were validated against four hand-written
//! paper artifacts. `dise-gen` turns each contract into a property checked
//! over arbitrarily many generated programs:
//!
//! * [`Scenario::generate`] emits parameterized WBS/OAE-style state-machine
//!   programs — a mode-dispatched guard lattice over shared output
//!   registers, with a helper call graph of configurable width and depth so
//!   procedure summaries see real fan-in ([`GenParams`]);
//! * [`evolve`] applies randomized evolution edits (guard
//!   strengthening/weakening, effect rewrites, dead-branch insertion,
//!   callee-body edits) while tracking the edited sites' **marker
//!   constants** — globally unique integer literals embedded in every
//!   editable statement — as machine-checkable ground truth;
//! * [`check_pair`] runs the full differential harness on one
//!   `(base, modified)` pair: ground-truth coverage of the affected sets,
//!   byte-identical directed verdicts across `jobs ∈ {1, 4}`, summaries-on
//!   ≡ summaries-off full exploration, and warm-store rerun ≡ cold run.
//!
//! ## Why marker constants?
//!
//! The inliner pretty-prints and re-parses flattened programs, so source
//! spans do not survive flattening and cannot anchor ground truth. A
//! marker literal does: it rides inside the statement's expression through
//! inlining (once per inlined copy of a callee), and
//! [`nodes_with_marker`] recovers exactly the CFG nodes of the edited
//! statement in the flattened modified version.
//!
//! The soundness argument (why `ground truth ⊆ ACN ∪ AWN` is a real
//! theorem about the pipeline, not a tautology of the generator) is spelled
//! out in ARCHITECTURE.md's "Generated corpus" section.
//!
//! # Examples
//!
//! ```
//! use dise_gen::{check_pair, evolve, GenParams, Scenario};
//!
//! let base = Scenario::generate(&GenParams {
//!     seed: 7,
//!     ..GenParams::default()
//! });
//! let evolution = evolve(&base, 7, 2);
//! assert_eq!(evolution.edits.len(), 2);
//! let report = check_pair(&base, &evolution).expect("all four checks hold");
//! assert!(report.ground_truth_nodes > 0);
//! ```

pub mod corpus;
pub mod edits;
pub mod harness;
pub mod scenario;

pub use edits::{evolve, AppliedEdit, EditKind, Evolution};
pub use harness::{check_pair, nodes_with_marker, render_verdicts, HarnessFailure, HarnessReport};
pub use scenario::{GenParams, Scenario, PROC_NAME};

/// Deterministic splitmix64 generator — the same construction the
/// workspace's other deterministic streams use.
#[derive(Debug, Clone)]
pub(crate) struct Rng {
    state: u64,
}

impl Rng {
    pub(crate) fn new(seed: u64) -> Rng {
        Rng {
            state: seed ^ 0x9e37_79b9_7f4a_7c15,
        }
    }

    pub(crate) fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform draw in `0..bound` (`bound > 0`).
    pub(crate) fn below(&mut self, bound: u64) -> u64 {
        self.next() % bound
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic() {
        let mut a = Rng::new(42);
        let mut b = Rng::new(42);
        for _ in 0..16 {
            assert_eq!(a.next(), b.next());
        }
    }

    #[test]
    fn below_respects_bound() {
        let mut rng = Rng::new(1);
        for _ in 0..64 {
            assert!(rng.below(7) < 7);
        }
    }
}
