//! Randomized evolution edits with marker-tracked ground truth.
//!
//! [`evolve`] derives a modified [`Scenario`] from a base one by applying
//! a seed-determined sequence of edits from the taxonomy below. Every edit
//! rewrites (or inserts) statements that carry globally unique marker
//! constants, and records those markers on the returned
//! [`AppliedEdit`] — the *known-affected* ground truth the differential
//! harness checks against the pipeline's computed affected sets.
//!
//! | kind | what changes | ground-truth markers |
//! |---|---|---|
//! | [`EditKind::GuardStrengthen`] | a guard's comparison gets harder to satisfy | the guard's |
//! | [`EditKind::GuardWeaken`] | a guard's comparison gets easier to satisfy | the guard's |
//! | [`EditKind::EffectRewrite`] | an assignment's coefficient changes | the assignment's |
//! | [`EditKind::DeadBranchInsert`] | an infeasible `if` + write is inserted | two fresh markers |
//! | [`EditKind::CalleeBodyEdit`] | a guard/effect edit inside a helper body | the helper site's |
//!
//! Each site is edited at most once per evolution, and every rewrite
//! changes the statement's structure (operator or coefficient) while
//! keeping its marker — so the edited statement differs structurally from
//! *every* statement of the base version, which is what makes the
//! ground-truth coverage property non-circular (see ARCHITECTURE.md,
//! "Generated corpus").

use std::collections::BTreeSet;

use crate::scenario::{AssignSite, CmpOp, GStmt, GuardSite, Scenario};
use crate::Rng;

/// The edit taxonomy (see the module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EditKind {
    /// Guard comparison made harder to satisfy (`<=` → `<`, …).
    GuardStrengthen,
    /// Guard comparison made easier to satisfy (`<` → `<=`, …).
    GuardWeaken,
    /// Assignment coefficient rewritten (`v * 3 + m` → `v * 4 + m`).
    EffectRewrite,
    /// An infeasible branch with a fresh write inserted after an existing
    /// statement.
    DeadBranchInsert,
    /// A guard/effect edit applied inside a helper procedure's body (so
    /// the change lands in *every* inlined copy).
    CalleeBodyEdit,
}

impl EditKind {
    /// Short tag used in manifests and failure dumps.
    pub fn tag(self) -> &'static str {
        match self {
            EditKind::GuardStrengthen => "guard-strengthen",
            EditKind::GuardWeaken => "guard-weaken",
            EditKind::EffectRewrite => "effect-rewrite",
            EditKind::DeadBranchInsert => "dead-branch-insert",
            EditKind::CalleeBodyEdit => "callee-body-edit",
        }
    }
}

/// One applied edit: its kind, the marker constants identifying the
/// edited/inserted statements, and a human-readable description.
#[derive(Debug, Clone)]
pub struct AppliedEdit {
    /// What was done.
    pub kind: EditKind,
    /// Marker constants of every statement this edit touched or created.
    pub markers: Vec<i64>,
    /// One-line description for manifests and failure dumps.
    pub description: String,
}

/// A modified scenario plus the edit log that produced it.
#[derive(Debug, Clone)]
pub struct Evolution {
    /// The evolved scenario.
    pub modified: Scenario,
    /// The edits applied, in order.
    pub edits: Vec<AppliedEdit>,
}

impl Evolution {
    /// The ground-truth marker set: every edited or inserted statement's
    /// marker constant. The differential harness requires the CFG nodes
    /// carrying these markers to be covered by the computed affected sets.
    pub fn ground_truth_markers(&self) -> BTreeSet<i64> {
        self.edits
            .iter()
            .flat_map(|e| e.markers.iter().copied())
            .collect()
    }

    /// True when every applied edit landed in a dispatch arm — no
    /// helper-body site was touched. A helper edit is inlined into every
    /// calling arm, so its affected region grows with the program; the
    /// scale benchmark selects arm-local evolutions to measure the
    /// paper's localized-change economics.
    pub fn is_arm_local(&self) -> bool {
        let edited = self.ground_truth_markers();
        let mut helper_sites = Vec::new();
        for (i, helper) in self.modified.helpers.iter().enumerate() {
            collect_sites(&helper.body, Some(i), &mut helper_sites);
        }
        helper_sites.iter().all(|s| !edited.contains(&s.marker))
    }
}

/// Which kind of site a marker identifies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SiteKind {
    Guard,
    Assign,
}

/// One editable site: where it lives and which marker identifies it.
#[derive(Debug, Clone)]
struct Site {
    /// `Some(i)` when the site is inside `helpers[i]`'s body.
    helper: Option<usize>,
    kind: SiteKind,
    marker: i64,
}

/// Applies `count` seed-determined edits to a copy of `base`. Equal
/// `(base, seed, count)` produce byte-identical evolutions. `count` is
/// silently capped at the number of editable sites.
pub fn evolve(base: &Scenario, seed: u64, count: usize) -> Evolution {
    let mut rng = Rng::new(seed.wrapping_mul(0x00ed_17ed).wrapping_add(3));
    let mut modified = base.clone();

    let mut sites = Vec::new();
    for (i, helper) in modified.helpers.iter().enumerate() {
        collect_sites(&helper.body, Some(i), &mut sites);
    }
    for arm in &modified.arms {
        collect_sites(arm, None, &mut sites);
    }
    let main_sites: Vec<Site> = sites
        .iter()
        .filter(|s| s.helper.is_none())
        .cloned()
        .collect();
    let helper_sites: Vec<Site> = sites
        .iter()
        .filter(|s| s.helper.is_some())
        .cloned()
        .collect();

    let mut edited: BTreeSet<i64> = BTreeSet::new();
    let mut edits = Vec::new();
    let count = count.min(sites.len());
    while edits.len() < count {
        let kind = match rng.below(5) {
            0 => EditKind::GuardStrengthen,
            1 => EditKind::GuardWeaken,
            2 => EditKind::EffectRewrite,
            3 => EditKind::DeadBranchInsert,
            _ => EditKind::CalleeBodyEdit,
        };
        let applied = match kind {
            EditKind::GuardStrengthen | EditKind::GuardWeaken => {
                apply_guard_edit(&mut modified, &mut rng, &main_sites, &edited, kind)
            }
            EditKind::EffectRewrite => {
                apply_effect_edit(&mut modified, &mut rng, &main_sites, &edited, kind)
            }
            EditKind::DeadBranchInsert => {
                apply_dead_branch(&mut modified, &mut rng, &main_sites, &edited)
            }
            EditKind::CalleeBodyEdit => {
                // Route through the guard/effect editors, restricted to
                // helper-body sites; call-free scenarios fall back to a
                // main-body edit below.
                if helper_sites.is_empty() {
                    None
                } else if rng.below(2) == 0 {
                    apply_guard_edit(&mut modified, &mut rng, &helper_sites, &edited, kind)
                } else {
                    apply_effect_edit(&mut modified, &mut rng, &helper_sites, &edited, kind)
                }
            }
        };
        match applied {
            Some(edit) => {
                edited.extend(edit.markers.iter().copied());
                edits.push(edit);
            }
            // The drawn kind had no eligible site left; the next draw
            // picks again. Termination: every loop iteration either
            // applies an edit or burns rng state, and EffectRewrite is
            // always applicable while unedited assign sites remain (every
            // scenario has more assign sites than `count`).
            None => {
                if let Some(edit) =
                    apply_effect_edit(&mut modified, &mut rng, &sites, &edited, kind)
                {
                    edited.extend(edit.markers.iter().copied());
                    edits.push(edit);
                } else {
                    break;
                }
            }
        }
    }

    Evolution { modified, edits }
}

fn collect_sites(body: &[GStmt], helper: Option<usize>, out: &mut Vec<Site>) {
    for stmt in body {
        match stmt {
            GStmt::Assign(site) => out.push(Site {
                helper,
                kind: SiteKind::Assign,
                marker: site.marker,
            }),
            GStmt::If {
                guard,
                then_b,
                else_b,
            } => {
                out.push(Site {
                    helper,
                    kind: SiteKind::Guard,
                    marker: guard.marker,
                });
                collect_sites(then_b, helper, out);
                collect_sites(else_b, helper, out);
            }
            GStmt::Call { .. } => {}
        }
    }
}

/// Picks an unedited site of `kind` from `pool`, uniformly by rng.
fn pick_site<'s>(
    rng: &mut Rng,
    pool: &'s [Site],
    edited: &BTreeSet<i64>,
    kind: SiteKind,
) -> Option<&'s Site> {
    let eligible: Vec<&Site> = pool
        .iter()
        .filter(|s| s.kind == kind && !edited.contains(&s.marker))
        .collect();
    if eligible.is_empty() {
        return None;
    }
    Some(eligible[rng.below(eligible.len() as u64) as usize])
}

/// A strictly harder-to-satisfy comparison (always a different operator).
fn strengthen(op: CmpOp) -> CmpOp {
    match op {
        CmpOp::Le => CmpOp::Lt,
        CmpOp::Ge => CmpOp::Gt,
        CmpOp::Lt | CmpOp::Gt | CmpOp::Ne => CmpOp::Eq,
        CmpOp::Eq => CmpOp::Lt,
    }
}

/// An easier-to-satisfy comparison (always a different operator).
fn weaken(op: CmpOp) -> CmpOp {
    match op {
        CmpOp::Lt => CmpOp::Le,
        CmpOp::Gt => CmpOp::Ge,
        CmpOp::Le | CmpOp::Ge | CmpOp::Eq => CmpOp::Ne,
        CmpOp::Ne => CmpOp::Ge,
    }
}

fn apply_guard_edit(
    scenario: &mut Scenario,
    rng: &mut Rng,
    pool: &[Site],
    edited: &BTreeSet<i64>,
    kind: EditKind,
) -> Option<AppliedEdit> {
    let site = pick_site(rng, pool, edited, SiteKind::Guard)?.clone();
    let mut description = String::new();
    let strengthen_it = matches!(kind, EditKind::GuardStrengthen)
        || (matches!(kind, EditKind::CalleeBodyEdit) && rng.below(2) == 0);
    let changed = with_guard_mut(scenario, site.marker, |guard| {
        let old = guard.op;
        guard.op = if strengthen_it {
            strengthen(old)
        } else {
            weaken(old)
        };
        description = format!(
            "guard {} {} {} -> {} {} {}",
            guard.var,
            old.src(),
            guard.marker,
            guard.var,
            guard.op.src(),
            guard.marker
        );
    });
    debug_assert!(changed, "collected guard site must exist");
    changed.then_some(AppliedEdit {
        kind,
        markers: vec![site.marker],
        description,
    })
}

fn apply_effect_edit(
    scenario: &mut Scenario,
    rng: &mut Rng,
    pool: &[Site],
    edited: &BTreeSet<i64>,
    kind: EditKind,
) -> Option<AppliedEdit> {
    let site = pick_site(rng, pool, edited, SiteKind::Assign)?.clone();
    let mut description = String::new();
    let changed = with_assign_mut(scenario, site.marker, |assign| {
        let old = assign.coef;
        assign.coef = if assign.coef >= 8 { 2 } else { assign.coef + 1 };
        description = format!(
            "effect {} = {} * {} + {} -> coef {}",
            assign.target, assign.source, old, assign.marker, assign.coef
        );
    });
    debug_assert!(changed, "collected assign site must exist");
    changed.then_some(AppliedEdit {
        kind: if matches!(kind, EditKind::CalleeBodyEdit) {
            EditKind::CalleeBodyEdit
        } else {
            EditKind::EffectRewrite
        },
        markers: vec![site.marker],
        description,
    })
}

/// Inserts `if (Level > F && Level < F) { Reg = Level * c + F'; }` right
/// after the main-body statement carrying the anchor marker. The branch
/// condition is unsatisfiable (a genuinely dead branch), but both fresh
/// nodes are *added* CFG nodes and must be seeded into the affected sets
/// regardless of feasibility.
fn apply_dead_branch(
    scenario: &mut Scenario,
    rng: &mut Rng,
    main_sites: &[Site],
    edited: &BTreeSet<i64>,
) -> Option<AppliedEdit> {
    // Any unedited main site works as the anchor; the anchor itself is
    // not edited (insertion after it leaves it byte-identical), so it
    // stays eligible for later edits.
    let anchors: Vec<&Site> = main_sites
        .iter()
        .filter(|s| !edited.contains(&s.marker))
        .collect();
    if anchors.is_empty() {
        return None;
    }
    let anchor = anchors[rng.below(anchors.len() as u64) as usize];
    let guard_marker = scenario.next_marker;
    let write_marker = scenario.next_marker + 1;
    scenario.next_marker += 2;
    let target = scenario.globals[rng.below(scenario.globals.len() as u64) as usize].clone();
    let branch = GStmt::If {
        guard: GuardSite {
            var: "Level".to_string(),
            op: CmpOp::Gt,
            marker: guard_marker,
            dead: true,
        },
        then_b: vec![GStmt::Assign(AssignSite {
            target: target.clone(),
            source: "Level".to_string(),
            coef: 2 + rng.below(7) as i64,
            marker: write_marker,
        })],
        else_b: Vec::new(),
    };
    let mut inserted = false;
    for arm in &mut scenario.arms {
        if insert_after(arm, anchor.marker, &branch) {
            inserted = true;
            break;
        }
    }
    debug_assert!(inserted, "anchor must live in some arm");
    inserted.then_some(AppliedEdit {
        kind: EditKind::DeadBranchInsert,
        markers: vec![guard_marker, write_marker],
        description: format!(
            "dead branch if (Level > {guard_marker} && Level < {guard_marker}) \
             {{ {target} = … + {write_marker}; }} after marker {}",
            anchor.marker
        ),
    })
}

/// Runs `f` on the guard carrying `marker` anywhere in the scenario.
fn with_guard_mut(scenario: &mut Scenario, marker: i64, mut f: impl FnMut(&mut GuardSite)) -> bool {
    fn walk(body: &mut [GStmt], marker: i64, f: &mut impl FnMut(&mut GuardSite)) -> bool {
        for stmt in body {
            if let GStmt::If {
                guard,
                then_b,
                else_b,
            } = stmt
            {
                if guard.marker == marker {
                    f(guard);
                    return true;
                }
                if walk(then_b, marker, f) || walk(else_b, marker, f) {
                    return true;
                }
            }
        }
        false
    }
    for helper in &mut scenario.helpers {
        if walk(&mut helper.body, marker, &mut f) {
            return true;
        }
    }
    for arm in &mut scenario.arms {
        if walk(arm, marker, &mut f) {
            return true;
        }
    }
    false
}

/// Runs `f` on the assignment carrying `marker` anywhere in the scenario.
fn with_assign_mut(
    scenario: &mut Scenario,
    marker: i64,
    mut f: impl FnMut(&mut AssignSite),
) -> bool {
    fn walk(body: &mut [GStmt], marker: i64, f: &mut impl FnMut(&mut AssignSite)) -> bool {
        for stmt in body {
            match stmt {
                GStmt::Assign(site) if site.marker == marker => {
                    f(site);
                    return true;
                }
                // The guard form clippy suggests cannot work here: match
                // guards take shared borrows, and `walk` needs the
                // bodies mutably.
                #[allow(clippy::collapsible_match)]
                GStmt::If { then_b, else_b, .. } => {
                    if walk(then_b, marker, f) || walk(else_b, marker, f) {
                        return true;
                    }
                }
                _ => {}
            }
        }
        false
    }
    for helper in &mut scenario.helpers {
        if walk(&mut helper.body, marker, &mut f) {
            return true;
        }
    }
    for arm in &mut scenario.arms {
        if walk(arm, marker, &mut f) {
            return true;
        }
    }
    false
}

/// Inserts `new_stmt` right after the statement carrying `marker` (an
/// assignment's own marker or an `if`'s guard marker) in `body` or any
/// nested block. Returns `true` on success.
fn insert_after(body: &mut Vec<GStmt>, marker: i64, new_stmt: &GStmt) -> bool {
    let mut position = None;
    for (i, stmt) in body.iter_mut().enumerate() {
        match stmt {
            GStmt::Assign(site) if site.marker == marker => {
                position = Some(i);
                break;
            }
            GStmt::If {
                guard,
                then_b,
                else_b,
            } => {
                if guard.marker == marker {
                    position = Some(i);
                    break;
                }
                if insert_after(then_b, marker, new_stmt) || insert_after(else_b, marker, new_stmt)
                {
                    return true;
                }
            }
            _ => {}
        }
    }
    if let Some(i) = position {
        body.insert(i + 1, new_stmt.clone());
        return true;
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::GenParams;

    fn base() -> Scenario {
        Scenario::generate(&GenParams {
            seed: 5,
            ..GenParams::default()
        })
    }

    #[test]
    fn evolution_is_deterministic() {
        let scenario = base();
        let a = evolve(&scenario, 11, 3);
        let b = evolve(&scenario, 11, 3);
        assert_eq!(a.modified.source(), b.modified.source());
        assert_eq!(a.ground_truth_markers(), b.ground_truth_markers());
    }

    #[test]
    fn evolutions_change_the_program() {
        let scenario = base();
        for seed in 0..12 {
            let evo = evolve(&scenario, seed, 2);
            assert_eq!(evo.edits.len(), 2, "seed {seed}");
            assert_ne!(
                evo.modified.source(),
                scenario.source(),
                "seed {seed} produced an identity evolution"
            );
            assert!(!evo.ground_truth_markers().is_empty());
        }
    }

    #[test]
    fn edits_never_touch_the_same_site_twice() {
        let scenario = base();
        for seed in 0..12 {
            let evo = evolve(&scenario, seed, 4);
            let all: Vec<i64> = evo
                .edits
                .iter()
                .flat_map(|e| e.markers.iter().copied())
                .collect();
            let distinct: BTreeSet<i64> = all.iter().copied().collect();
            assert_eq!(all.len(), distinct.len(), "seed {seed}: {all:?}");
        }
    }

    #[test]
    fn modified_scenarios_still_parse_and_check() {
        let scenario = base();
        for seed in 0..12 {
            let evo = evolve(&scenario, seed, 3);
            evo.modified.program();
        }
    }

    #[test]
    fn dead_branch_markers_are_fresh() {
        let scenario = base();
        for seed in 0..24 {
            let evo = evolve(&scenario, seed, 3);
            for edit in &evo.edits {
                if matches!(edit.kind, EditKind::DeadBranchInsert) {
                    for marker in &edit.markers {
                        assert!(*marker >= scenario.next_marker);
                    }
                }
            }
        }
    }

    #[test]
    fn callee_edits_land_in_helpers() {
        let scenario = base();
        let mut saw_callee_edit = false;
        for seed in 0..48 {
            let evo = evolve(&scenario, seed, 3);
            for edit in &evo.edits {
                if matches!(edit.kind, EditKind::CalleeBodyEdit) {
                    saw_callee_edit = true;
                    // The edited marker must belong to a helper body: the
                    // helper sources changed, the arm sources for those
                    // markers did not exist in the base.
                    assert!(
                        scenario
                            .helpers
                            .iter()
                            .zip(&evo.modified.helpers)
                            .any(|(b, m)| b != m),
                        "seed {seed}: callee edit left every helper unchanged"
                    );
                }
            }
        }
        assert!(saw_callee_edit, "taxonomy never drew a callee edit");
    }
}
