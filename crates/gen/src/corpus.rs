//! The canonical heuristic-tuning corpus: one definition shared by
//! `dise tune`, the `heuristic_tuning` benchmark, and CI's
//! tuning-determinism job, so all three always sweep the same cases and
//! the checked-in `tuned.weights` is reproducible from any of them.
//!
//! The corpus mixes three populations:
//!
//! * every version of the hand-written WBS / OAE / ASW artifacts
//!   (optional — `dise tune --artifacts off` drops them);
//! * generated pairs at the **default scenario shape** (the size the
//!   paper's artifacts are at);
//! * generated pairs at **10x scale** — the `generated_scale`
//!   benchmark's shape (24 dispatch arms, a 3-wide 2-deep helper call
//!   graph) — so the winning vector is not an artifact of small CFGs.
//!
//! Seeds derive deterministically from [`CorpusParams::seed`]; the 10x
//! population is offset so the two generated populations never share a
//! scenario.

use crate::{evolve, GenParams, Scenario, PROC_NAME};
use dise_core::tune::TuneCase;

/// The 10x-scale scenario shape (kept in lockstep with the
/// `generated_scale` benchmark's 10x tier).
pub const SCALE_10X: GenParams = GenParams {
    seed: 0,
    arms: 24,
    guard_depth: 2,
    helpers: 3,
    call_depth: 2,
    globals: 3,
};

/// Seed offset separating the 10x population from the default-shape one.
const SCALE_10X_SEED_OFFSET: u64 = 1 << 32;

/// Parameters of the canonical tuning corpus.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CorpusParams {
    /// Base seed every generated pair derives from.
    pub seed: u64,
    /// Generated pairs *per population* (default shape and 10x scale
    /// each contribute this many).
    pub pairs: u64,
    /// Evolution edits applied to each generated pair.
    pub edits: usize,
    /// Whether the WBS / OAE / ASW artifact versions are included.
    pub artifacts: bool,
}

impl Default for CorpusParams {
    fn default() -> CorpusParams {
        CorpusParams {
            seed: 0,
            pairs: 8,
            edits: 2,
            artifacts: true,
        }
    }
}

/// Builds the canonical tuning corpus for `params`.
///
/// # Examples
///
/// ```
/// use dise_gen::corpus::{tune_corpus, CorpusParams};
///
/// let corpus = tune_corpus(&CorpusParams {
///     pairs: 1,
///     artifacts: false,
///     ..CorpusParams::default()
/// });
/// assert_eq!(corpus.len(), 2); // one default-shape + one 10x pair
/// ```
pub fn tune_corpus(params: &CorpusParams) -> Vec<TuneCase> {
    let mut cases = Vec::new();
    if params.artifacts {
        for artifact in [
            dise_artifacts::wbs::artifact(),
            dise_artifacts::oae::artifact(),
            dise_artifacts::asw::artifact(),
        ] {
            for version in &artifact.versions {
                cases.push(TuneCase {
                    name: format!("{} {}", artifact.name, version.id),
                    base: artifact.base.clone(),
                    modified: version.program.clone(),
                    proc_name: artifact.proc_name.to_string(),
                });
            }
        }
    }
    for k in 0..params.pairs {
        let seed = params.seed.wrapping_add(k);
        let scenario = Scenario::generate(&GenParams {
            seed,
            ..GenParams::default()
        });
        let evolution = evolve(&scenario, seed, params.edits);
        cases.push(TuneCase {
            name: format!("gen seed {seed}"),
            base: scenario.program(),
            modified: evolution.modified.program(),
            proc_name: PROC_NAME.to_string(),
        });
    }
    for k in 0..params.pairs {
        let seed = params.seed.wrapping_add(SCALE_10X_SEED_OFFSET + k);
        let scenario = Scenario::generate(&GenParams { seed, ..SCALE_10X });
        let evolution = evolve(&scenario, seed, params.edits);
        cases.push(TuneCase {
            name: format!("gen10x seed {seed}"),
            base: scenario.program(),
            modified: evolution.modified.program(),
            proc_name: PROC_NAME.to_string(),
        });
    }
    cases
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_is_deterministic_and_layered() {
        let params = CorpusParams {
            pairs: 2,
            ..CorpusParams::default()
        };
        let a = tune_corpus(&params);
        let b = tune_corpus(&params);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.name, y.name);
            assert_eq!(x.modified, y.modified);
        }
        // Every artifact version + 2 default-shape + 2 10x pairs.
        assert!(a.iter().any(|c| c.name.starts_with("WBS")));
        assert!(a.iter().any(|c| c.name.starts_with("gen seed")));
        assert!(a.iter().any(|c| c.name.starts_with("gen10x seed")));
        let versions = dise_artifacts::wbs::artifact().versions.len()
            + dise_artifacts::oae::artifact().versions.len()
            + dise_artifacts::asw::artifact().versions.len();
        assert_eq!(
            a.len(),
            tune_corpus(&CorpusParams {
                pairs: 2,
                artifacts: false,
                ..CorpusParams::default()
            })
            .len()
                + versions
        );
    }

    #[test]
    fn populations_never_share_a_seed() {
        let corpus = tune_corpus(&CorpusParams {
            pairs: 3,
            artifacts: false,
            ..CorpusParams::default()
        });
        let names: Vec<&str> = corpus.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(names.len(), 6);
        let unique: std::collections::BTreeSet<&str> = names.iter().copied().collect();
        assert_eq!(unique.len(), 6);
    }
}
