//! The ground-truth differential harness — four checks per
//! `(base, modified)` pair.
//!
//! [`check_pair`] runs the full DiSE pipeline on a generated scenario and
//! its evolution and verifies, in order:
//!
//! 1. **Ground-truth coverage** — every CFG node of the flattened
//!    modified version that carries an edited marker constant (see
//!    [`nodes_with_marker`]) is contained in the computed affected sets
//!    (`ACN ∪ AWN`), and every edited marker is actually present in the
//!    flattened CFG (so the check can never pass vacuously).
//! 2. **Job-count determinism** — the directed exploration's verdicts
//!    (path conditions, outcomes, final environments, traces) are
//!    byte-identical between `jobs = 1` and `jobs = 4`.
//! 3. **Summary equivalence** — full exploration of the modified version
//!    with procedure summaries forced on produces the same path
//!    conditions and outcomes as with summaries forced off (skipped for
//!    call-free scenarios, where the modes coincide trivially).
//! 4. **Warm ≡ cold** — re-running the directed pipeline against a
//!    freshly populated persistent store reuses the recorded affected
//!    sets and still produces byte-identical verdicts.
//!
//! Every run pins `jobs` and trace recording explicitly, so the harness
//! stays deterministic under CI's `DISE_JOBS` matrix.

use std::sync::atomic::{AtomicU64, Ordering};

use dise_cfg::{Cfg, NodeId, NodeKind};
use dise_core::dise::{run_dise, run_full_on, DiseConfig};
use dise_core::session::AnalysisSession;
use dise_ir::ast::{Expr, ExprKind};
use dise_symexec::{SummaryMode, SymbolicSummary};

use crate::edits::Evolution;
use crate::scenario::{Scenario, PROC_NAME};

/// A failed harness check: which check and a reproduction-grade detail
/// string (dumped alongside the pair's sources by the corpus test).
#[derive(Debug, Clone)]
pub struct HarnessFailure {
    /// The check that failed: `"pipeline"`, `"ground-truth"`, `"jobs"`,
    /// `"summaries"`, or `"warm-store"`.
    pub check: &'static str,
    /// What went wrong.
    pub detail: String,
}

impl std::fmt::Display for HarnessFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}] {}", self.check, self.detail)
    }
}

impl std::error::Error for HarnessFailure {}

/// What a passing [`check_pair`] observed — consumed by the corpus test's
/// aggregate assertions and the `dise gen --verify` report.
#[derive(Debug, Clone, Default)]
pub struct HarnessReport {
    /// Markers in the evolution's ground truth.
    pub ground_truth_markers: usize,
    /// Flattened-CFG nodes those markers identify (≥ markers when callee
    /// edits were inlined more than once).
    pub ground_truth_nodes: usize,
    /// Computed `|ACN| + |AWN|` of the pair.
    pub affected_nodes: usize,
    /// Paths the directed exploration recorded.
    pub directed_paths: usize,
    /// Paths the full exploration recorded (0 when the summary check was
    /// skipped for a call-free scenario).
    pub full_paths: usize,
    /// Whether the warm rerun reused the stored affected sets.
    pub warm_affected_reused: bool,
}

/// Renders a summary's observable verdicts one path per line:
/// `pc|outcome|var=value;…|trace`. Two summaries are byte-identical in
/// the determinism-contract sense exactly when these strings are equal.
pub fn render_verdicts(summary: &SymbolicSummary) -> String {
    let mut out = String::new();
    for path in summary.paths() {
        out.push_str(&path.pc.to_string());
        out.push('|');
        out.push_str(&format!("{:?}", path.outcome));
        out.push('|');
        for (var, value) in path.final_env.iter() {
            out.push_str(var);
            out.push('=');
            out.push_str(&value.to_string());
            out.push(';');
        }
        out.push('|');
        for node in &path.trace {
            out.push_str(&node.index().to_string());
            out.push(',');
        }
        out.push('\n');
    }
    out
}

/// The CFG nodes whose expression embeds the integer literal `marker`:
/// `Assign` right-hand sides, `Branch`/`Assume` conditions. This is how
/// ground truth survives flattening — the inliner re-parses programs (so
/// spans regenerate) but copies expressions verbatim, once per inlined
/// call.
pub fn nodes_with_marker(cfg: &Cfg, marker: i64) -> Vec<NodeId> {
    cfg.node_ids()
        .filter(|&id| match &cfg.node(id).kind {
            NodeKind::Assign { value, .. } => expr_contains_int(value, marker),
            NodeKind::Branch { cond } | NodeKind::Assume { cond } => {
                expr_contains_int(cond, marker)
            }
            _ => false,
        })
        .collect()
}

fn expr_contains_int(expr: &Expr, literal: i64) -> bool {
    match &expr.kind {
        ExprKind::Int(v) => *v == literal,
        ExprKind::Bool(_) | ExprKind::Var(_) => false,
        ExprKind::Unary { expr, .. } => expr_contains_int(expr, literal),
        ExprKind::Binary { lhs, rhs, .. } => {
            expr_contains_int(lhs, literal) || expr_contains_int(rhs, literal)
        }
    }
}

/// A deterministic executor configuration: serial, traces recorded. Every
/// knob that honors an environment default (`DISE_JOBS`,
/// `DISE_SWEEP_BUDGET`, `DISE_SUMMARIES`) is either irrelevant at
/// `jobs = 1` or pinned explicitly by the caller.
fn pinned_config(jobs: usize) -> DiseConfig {
    let mut config = DiseConfig::default();
    config.exec.jobs = jobs;
    config.exec.record_traces = true;
    config
}

/// A fresh per-call store directory under the system temp dir.
fn temp_store_dir(tag: &str) -> std::path::PathBuf {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("dise-gen-{tag}-{}-{n}", std::process::id()))
}

/// Runs all four differential checks on one generated pair. Returns the
/// observations on success, the first failing check otherwise.
///
/// # Errors
///
/// [`HarnessFailure`] names the violated check; pipeline errors (parse,
/// inline, diff, exec) surface as the `"pipeline"` check.
pub fn check_pair(base: &Scenario, evolution: &Evolution) -> Result<HarnessReport, HarnessFailure> {
    let pipeline = |e: dise_core::dise::DiseError| HarnessFailure {
        check: "pipeline",
        detail: e.to_string(),
    };
    let base_prog = base.program();
    let mod_prog = evolution.modified.program();
    let mut report = HarnessReport::default();

    // Check 1: ground-truth coverage. The session gives us the flattened
    // modified CFG and the affected sets of the same run.
    let mut session = AnalysisSession::open(&base_prog, &mod_prog, PROC_NAME, pinned_config(1))
        .map_err(pipeline)?;
    let affected = session.affected().map_err(pipeline)?.clone();
    let diffed = session.diffed().map_err(pipeline)?;
    report.affected_nodes = affected.len();
    let markers = evolution.ground_truth_markers();
    report.ground_truth_markers = markers.len();
    for marker in &markers {
        let nodes = nodes_with_marker(&diffed.cfg_mod, *marker);
        if nodes.is_empty() {
            return Err(HarnessFailure {
                check: "ground-truth",
                detail: format!(
                    "edited marker {marker} has no node in the flattened modified CFG \
                     (generator/inliner bug — the check would be vacuous)"
                ),
            });
        }
        for node in nodes {
            report.ground_truth_nodes += 1;
            if !affected.contains(node) {
                return Err(HarnessFailure {
                    check: "ground-truth",
                    detail: format!(
                        "node {} (marker {marker}, kind {:?}) is edited ground truth but \
                         missing from ACN ∪ AWN ({} affected of {} nodes)",
                        node.index(),
                        diffed.cfg_mod.node(node).kind,
                        affected.len(),
                        diffed.cfg_mod.len()
                    ),
                });
            }
        }
    }

    // Check 2: directed verdicts byte-identical across jobs {1, 4}. The
    // serial run is the session's own exploration.
    let serial = render_verdicts(&session.explored().map_err(pipeline)?.summary);
    report.directed_paths = session.explored().map_err(pipeline)?.summary.paths().len();
    let parallel =
        run_dise(&base_prog, &mod_prog, PROC_NAME, &pinned_config(4)).map_err(pipeline)?;
    let parallel = render_verdicts(&parallel.summary);
    if serial != parallel {
        return Err(HarnessFailure {
            check: "jobs",
            detail: format!(
                "directed verdicts differ between jobs=1 and jobs=4:\n--- jobs=1\n{serial}\
                 --- jobs=4\n{parallel}"
            ),
        });
    }

    // Check 3: summaries-on ≡ summaries-off on the modified version's
    // full exploration. Path conditions and outcomes are the contract;
    // final environments may α-rename call-local temporaries.
    if base.params().helpers > 0 {
        let mut on = pinned_config(1);
        on.exec.summaries = SummaryMode::On;
        let mut off = pinned_config(1);
        off.exec.summaries = SummaryMode::Off;
        let with = run_full_on(&mod_prog, PROC_NAME, &on).map_err(pipeline)?;
        let without = run_full_on(&mod_prog, PROC_NAME, &off).map_err(pipeline)?;
        report.full_paths = without.paths().len();
        let observable = |s: &SymbolicSummary| -> Vec<(String, String)> {
            s.paths()
                .iter()
                .map(|p| (p.pc.to_string(), format!("{:?}", p.outcome)))
                .collect()
        };
        if observable(&with) != observable(&without) {
            return Err(HarnessFailure {
                check: "summaries",
                detail: format!(
                    "full-exploration verdicts differ between summary modes:\n--- on\n{:?}\n\
                     --- off\n{:?}",
                    observable(&with),
                    observable(&without)
                ),
            });
        }
    }

    // Check 4: a warm-store rerun reuses the recorded affected sets and
    // reproduces the cold run's verdicts byte for byte.
    let dir = temp_store_dir("store");
    std::fs::remove_dir_all(&dir).ok();
    let store_config = || DiseConfig {
        store: Some(dir.clone()),
        ..pinned_config(1)
    };
    let result = (|| {
        let cold = run_dise(&base_prog, &mod_prog, PROC_NAME, &store_config()).map_err(pipeline)?;
        let warm = run_dise(&base_prog, &mod_prog, PROC_NAME, &store_config()).map_err(pipeline)?;
        let status = warm.store.as_ref().expect("store configured");
        if !status.affected_reused {
            return Err(HarnessFailure {
                check: "warm-store",
                detail: format!(
                    "second run on an unchanged pair did not reuse the recorded affected \
                     sets (status: {status:?})"
                ),
            });
        }
        let cold = render_verdicts(&cold.summary);
        let warm = render_verdicts(&warm.summary);
        if cold != warm {
            return Err(HarnessFailure {
                check: "warm-store",
                detail: format!(
                    "warm rerun verdicts differ from cold run:\n--- cold\n{cold}--- warm\n{warm}"
                ),
            });
        }
        report.warm_affected_reused = true;
        Ok(())
    })();
    std::fs::remove_dir_all(&dir).ok();
    result?;

    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::edits::evolve;
    use crate::scenario::GenParams;

    fn pair(seed: u64) -> (Scenario, Evolution) {
        let base = Scenario::generate(&GenParams {
            seed,
            ..GenParams::default()
        });
        let evolution = evolve(&base, seed, 2);
        (base, evolution)
    }

    #[test]
    fn markers_are_recoverable_from_the_flattened_cfg() {
        let (base, evolution) = pair(3);
        let mod_prog = evolution.modified.program();
        let mut session =
            AnalysisSession::open(&base.program(), &mod_prog, PROC_NAME, pinned_config(1)).unwrap();
        let diffed = session.diffed().unwrap();
        for marker in evolution.ground_truth_markers() {
            assert!(
                !nodes_with_marker(&diffed.cfg_mod, marker).is_empty(),
                "marker {marker} lost in flattening"
            );
        }
    }

    #[test]
    fn check_pair_accepts_generated_pairs() {
        for seed in 0..4 {
            let (base, evolution) = pair(seed);
            let report =
                check_pair(&base, &evolution).unwrap_or_else(|f| panic!("seed {seed}: {f}"));
            assert!(report.ground_truth_nodes >= report.ground_truth_markers);
            assert!(report.directed_paths > 0);
            assert!(report.warm_affected_reused);
        }
    }

    #[test]
    fn render_verdicts_distinguishes_different_summaries() {
        let (base, evolution) = pair(5);
        let config = pinned_config(1);
        let directed = run_dise(
            &base.program(),
            &evolution.modified.program(),
            PROC_NAME,
            &config,
        )
        .unwrap();
        let full = run_full_on(&evolution.modified.program(), PROC_NAME, &config).unwrap();
        // Directed prunes unaffected paths, so the renderings must differ
        // whenever pruning actually happened.
        if directed.summary.paths().len() != full.paths().len() {
            assert_ne!(render_verdicts(&directed.summary), render_verdicts(&full));
        }
        assert_eq!(
            render_verdicts(&directed.summary),
            render_verdicts(&directed.summary)
        );
    }
}
