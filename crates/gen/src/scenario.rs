//! Parameterized WBS/OAE-style state-machine programs.
//!
//! A generated scenario follows the shape of the paper's case studies
//! scaled along every axis that matters to the pipeline:
//!
//! ```text
//! int Reg0 = 0; …                         // shared output registers
//! proc h0_0(int v) { … h1_0(v + c); }     // helper call graph
//! proc step(int Mode, int Level, int Skid) {
//!   if (Mode < 1) {                       // dispatch lattice: `arms` arms
//!     <arm 0>                             // (interval guards — see source())
//!     if (Reg0 > 500000) { Reg0 = 500000; } // per-arm clamp stage
//!     assert(Reg0 <= 500000);             // WBS-style safety property
//!   } else if (Mode < 2) { <arm 1> … } …
//! }
//! ```
//!
//! Each arm nests guards to [`GenParams::guard_depth`] and ends in a call
//! into the level-0 helpers (several arms share one helper — the fan-in
//! procedure summaries need). Every *editable* statement — a guard or a
//! register assignment — embeds a globally unique **marker constant**
//! (integer literals counting up from `MARKER_BASE`): the guard's
//! comparison bound, or the assignment's additive offset. Markers survive
//! flattening (the inliner copies literals verbatim), which is what lets
//! the evolution engine (`crate::edits`) track ground-truth affected nodes
//! without relying on source spans.

use dise_ir::ast::Program;
use dise_ir::{check_program, parse_program};

use crate::Rng;

/// The analyzed procedure of every generated scenario.
pub const PROC_NAME: &str = "step";

/// First marker constant; every editable site gets the next integer.
/// Chosen so markers can never collide with the generator's other
/// constants (dispatch indices, coefficients < 10, the clamp bound).
pub(crate) const MARKER_BASE: i64 = 1000;

/// Clamp/assert bound — far above any marker.
pub(crate) const CLAMP_BOUND: i64 = 500_000;

/// Size and shape knobs of one generated scenario. All knobs are
/// deterministic functions of themselves plus [`GenParams::seed`]: equal
/// params produce byte-identical programs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GenParams {
    /// Seed of the scenario's deterministic random stream.
    pub seed: u64,
    /// State-machine arms in the `Mode` dispatch lattice (≥ 1).
    pub arms: usize,
    /// Nested guard depth inside each arm (≥ 1).
    pub guard_depth: usize,
    /// Helper procedures per call-graph level (0 = call-free program).
    /// Effectively capped at `arms` so every helper has a caller.
    pub helpers: usize,
    /// Call-graph depth: level-`l` helpers call level-`l+1` helpers
    /// (≥ 1 when `helpers > 0`).
    pub call_depth: usize,
    /// Shared output registers (≥ 1).
    pub globals: usize,
}

impl Default for GenParams {
    fn default() -> GenParams {
        GenParams {
            seed: 0,
            arms: 4,
            guard_depth: 2,
            helpers: 2,
            call_depth: 1,
            globals: 2,
        }
    }
}

/// Comparison operators the generator draws guards from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum CmpOp {
    Lt,
    Le,
    Gt,
    Ge,
    Eq,
    Ne,
}

impl CmpOp {
    pub(crate) fn src(self) -> &'static str {
        match self {
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
            CmpOp::Eq => "==",
            CmpOp::Ne => "!=",
        }
    }

    fn draw(rng: &mut Rng) -> CmpOp {
        match rng.below(4) {
            0 => CmpOp::Lt,
            1 => CmpOp::Le,
            2 => CmpOp::Gt,
            _ => CmpOp::Ge,
        }
    }
}

/// A guard site: `var OP marker` (or the always-false
/// `var > marker && var < marker` for inserted dead branches).
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct GuardSite {
    pub(crate) var: String,
    pub(crate) op: CmpOp,
    pub(crate) marker: i64,
    pub(crate) dead: bool,
}

impl GuardSite {
    fn src(&self) -> String {
        if self.dead {
            format!("{v} > {m} && {v} < {m}", v = self.var, m = self.marker)
        } else {
            format!("{} {} {}", self.var, self.op.src(), self.marker)
        }
    }
}

/// An assignment site: `target = source * coef + marker;`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct AssignSite {
    pub(crate) target: String,
    pub(crate) source: String,
    pub(crate) coef: i64,
    pub(crate) marker: i64,
}

impl AssignSite {
    fn src(&self) -> String {
        format!(
            "{} = {} * {} + {};",
            self.target, self.source, self.coef, self.marker
        )
    }
}

/// A statement of the generator's structured model. The model is edited
/// in place by `crate::edits` and only rendered to MJ source on demand.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum GStmt {
    Assign(AssignSite),
    If {
        guard: GuardSite,
        then_b: Vec<GStmt>,
        else_b: Vec<GStmt>,
    },
    Call {
        callee: String,
        arg_var: String,
        arg_offset: i64,
    },
}

/// One helper procedure of the generated call graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct Helper {
    pub(crate) name: String,
    pub(crate) body: Vec<GStmt>,
}

/// A generated program in structured form. [`Scenario::source`] renders
/// MJ text; [`Scenario::program`] parses and type-checks it (panicking on
/// a generator bug — generated programs are well-formed by construction).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Scenario {
    pub(crate) params: GenParams,
    pub(crate) globals: Vec<String>,
    pub(crate) helpers: Vec<Helper>,
    /// The dispatch arms of `step`, in `Mode` order.
    pub(crate) arms: Vec<Vec<GStmt>>,
    /// Next unallocated marker constant (edits allocate fresh markers for
    /// inserted statements from here).
    pub(crate) next_marker: i64,
}

impl Scenario {
    /// Generates the scenario determined by `params` — byte-identical
    /// output for equal params.
    pub fn generate(params: &GenParams) -> Scenario {
        let params = GenParams {
            // Upper bound keeps dispatch bounds (`Mode < i + 1`) below
            // MARKER_BASE, so they can never collide with a marker.
            arms: params.arms.max(1).min(MARKER_BASE as usize - 1),
            guard_depth: params.guard_depth.max(1),
            // Every helper needs a calling arm; a helper with no caller
            // would vanish from the flattened program and break the
            // ground-truth mapping for callee-body edits.
            helpers: params.helpers.min(params.arms),
            call_depth: if params.helpers == 0 {
                0
            } else {
                params.call_depth.max(1)
            },
            globals: params.globals.max(1),
            seed: params.seed,
        };
        let mut rng = Rng::new(params.seed.wrapping_mul(0x0d1e_5e00).wrapping_add(1));
        let globals: Vec<String> = (0..params.globals).map(|g| format!("Reg{g}")).collect();
        let mut next_marker = MARKER_BASE;

        let mut assign_site = |rng: &mut Rng, next_marker: &mut i64, source_pool: &[&str]| {
            let marker = *next_marker;
            *next_marker += 1;
            GStmt::Assign(AssignSite {
                target: globals[rng.below(globals.len() as u64) as usize].clone(),
                source: source_pool[rng.below(source_pool.len() as u64) as usize].to_string(),
                coef: 2 + rng.below(7) as i64,
                marker,
            })
        };

        // Helper call graph: `call_depth` levels of `helpers` procedures;
        // level l's helper j calls level l+1's helper j, so every helper
        // is reachable once level 0 is.
        let mut helpers = Vec::new();
        for level in 0..params.call_depth {
            for j in 0..params.helpers {
                let sources = ["v"];
                let guard_marker = next_marker;
                next_marker += 1;
                let mut body = vec![GStmt::If {
                    guard: GuardSite {
                        var: "v".to_string(),
                        op: CmpOp::draw(&mut rng),
                        marker: guard_marker,
                        dead: false,
                    },
                    then_b: vec![assign_site(&mut rng, &mut next_marker, &sources)],
                    else_b: vec![assign_site(&mut rng, &mut next_marker, &sources)],
                }];
                if level + 1 < params.call_depth {
                    body.push(GStmt::Call {
                        callee: helper_name(level + 1, j),
                        arg_var: "v".to_string(),
                        arg_offset: 1 + rng.below(7) as i64,
                    });
                }
                helpers.push(Helper {
                    name: helper_name(level, j),
                    body,
                });
            }
        }

        // Dispatch arms. Register-to-register sources create the data-flow
        // chains the affected fixpoint propagates along.
        let mut arms = Vec::new();
        for arm in 0..params.arms {
            let mut reg_sources: Vec<&str> = vec!["Level", "Skid"];
            for g in &globals {
                reg_sources.push(g.as_str());
            }
            let mut body = vec![assign_site(&mut rng, &mut next_marker, &reg_sources)];
            body.extend(Self::guard_chain(
                &mut rng,
                &mut next_marker,
                &mut assign_site,
                &reg_sources,
                params.guard_depth,
            ));
            if params.helpers > 0 {
                body.push(GStmt::Call {
                    callee: helper_name(0, arm % params.helpers),
                    arg_var: "Level".to_string(),
                    arg_offset: (arm % 9) as i64,
                });
            }
            arms.push(body);
        }

        Scenario {
            params,
            globals,
            helpers,
            arms,
            next_marker,
        }
    }

    /// One level of the nested guard chain: `if (g) { <deeper> } else
    /// { <assign> }`, recursing in the then-branch — `depth + 1` paths per
    /// arm, so path counts grow linearly (not exponentially) in program
    /// size.
    fn guard_chain(
        rng: &mut Rng,
        next_marker: &mut i64,
        assign_site: &mut impl FnMut(&mut Rng, &mut i64, &[&str]) -> GStmt,
        sources: &[&str],
        depth: usize,
    ) -> Vec<GStmt> {
        if depth == 0 {
            return Vec::new();
        }
        let guard_var = if rng.below(2) == 0 { "Level" } else { "Skid" };
        let mut then_b = vec![assign_site(rng, next_marker, sources)];
        then_b.extend(Self::guard_chain(
            rng,
            next_marker,
            assign_site,
            sources,
            depth - 1,
        ));
        vec![GStmt::If {
            guard: GuardSite {
                var: guard_var.to_string(),
                op: CmpOp::draw(rng),
                marker: {
                    let m = *next_marker;
                    *next_marker += 1;
                    m
                },
                dead: false,
            },
            then_b,
            else_b: vec![assign_site(rng, next_marker, sources)],
        }]
    }

    /// The scenario's generation parameters (post-normalization).
    pub fn params(&self) -> &GenParams {
        &self.params
    }

    /// Renders the scenario as MJ source text.
    pub fn source(&self) -> String {
        let mut out = String::new();
        for g in &self.globals {
            out.push_str(&format!("int {g} = 0;\n"));
        }
        out.push('\n');
        for helper in &self.helpers {
            out.push_str(&format!("proc {}(int v) {{\n", helper.name));
            render_block(&mut out, &helper.body, 1);
            out.push_str("}\n\n");
        }
        out.push_str(&format!(
            "proc {PROC_NAME}(int Mode, int Level, int Skid) {{\n"
        ));
        // Interval dispatch (`Mode < i + 1`), not equality dispatch
        // (`Mode == i`): an else-if chain of equalities accumulates a
        // disequality per rejected arm in every deeper path condition,
        // and disequalities cost the solver a DNF case split each — past
        // ~24 arms the case budget exhausts, the check goes `Unknown`,
        // and the whole remaining spine is silently dropped as
        // infeasible. Interval guards keep every dispatch path condition
        // a pure conjunction of linear bounds on `Mode`, which solves
        // without case splits at any arm count — the property that lets
        // scenarios scale 10–100x.
        for (i, arm) in self.arms.iter().enumerate() {
            let head = if i == 0 { "  if" } else { " else if" };
            out.push_str(&format!("{head} (Mode < {}) {{\n", i + 1));
            render_block(&mut out, arm, 2);
            // Per-arm clamp + safety property on the arm's own register.
            // A single shared clamp at the end of `step` would read a
            // register every edit's data-flow reaches, making the one
            // branch every path crosses affected — directed exploration
            // could never prune anything. Arms are mutually exclusive, so
            // per-arm properties keep an edit's influence inside the arms
            // it actually touches; unedited arms prune at the dispatch
            // spine, which is what lets the directed/full cost ratio grow
            // with program size.
            let reg = &self.globals[i % self.globals.len()];
            out.push_str(&format!(
                "    if ({reg} > {CLAMP_BOUND}) {{\n      {reg} = {CLAMP_BOUND};\n    }}\n"
            ));
            out.push_str(&format!("    assert({reg} <= {CLAMP_BOUND});\n"));
            out.push_str("  }");
        }
        out.push_str(" else {\n    skip;\n  }\n");
        out.push_str("}\n");
        out
    }

    /// Parses and type-checks the rendered source. Panics on a generator
    /// bug: every scenario is well-formed by construction.
    pub fn program(&self) -> Program {
        let source = self.source();
        let program = parse_program(&source)
            .unwrap_or_else(|e| panic!("generated program must parse: {e}\n{source}"));
        check_program(&program)
            .unwrap_or_else(|e| panic!("generated program must type-check: {e}\n{source}"));
        program
    }

    /// Total statement count across all procedures (the scenario's "size"
    /// as reported by the scale benchmark).
    pub fn stmt_count(&self) -> usize {
        self.program()
            .procs
            .iter()
            .map(|p| p.body.stmt_count())
            .sum()
    }
}

pub(crate) fn helper_name(level: usize, j: usize) -> String {
    format!("h{level}_{j}")
}

fn render_block(out: &mut String, body: &[GStmt], indent: usize) {
    let pad = "  ".repeat(indent);
    for stmt in body {
        match stmt {
            GStmt::Assign(site) => out.push_str(&format!("{pad}{}\n", site.src())),
            GStmt::If {
                guard,
                then_b,
                else_b,
            } => {
                out.push_str(&format!("{pad}if ({}) {{\n", guard.src()));
                render_block(out, then_b, indent + 1);
                if else_b.is_empty() {
                    out.push_str(&format!("{pad}}}\n"));
                } else {
                    out.push_str(&format!("{pad}}} else {{\n"));
                    render_block(out, else_b, indent + 1);
                    out.push_str(&format!("{pad}}}\n"));
                }
            }
            GStmt::Call {
                callee,
                arg_var,
                arg_offset,
            } => out.push_str(&format!("{pad}{callee}({arg_var} + {arg_offset});\n")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let params = GenParams {
            seed: 99,
            ..GenParams::default()
        };
        assert_eq!(
            Scenario::generate(&params).source(),
            Scenario::generate(&params).source()
        );
    }

    #[test]
    fn generated_programs_parse_and_check() {
        for seed in 0..8 {
            let scenario = Scenario::generate(&GenParams {
                seed,
                ..GenParams::default()
            });
            let program = scenario.program();
            assert!(program.proc(PROC_NAME).is_some());
        }
    }

    #[test]
    fn markers_are_unique() {
        let scenario = Scenario::generate(&GenParams::default());
        let source = scenario.source();
        for marker in MARKER_BASE..scenario.next_marker {
            // Guards render the marker once, dead guards twice; every
            // marker must appear somewhere and belong to one site only —
            // uniqueness of allocation guarantees the latter.
            assert!(
                source.contains(&marker.to_string()),
                "marker {marker} missing from source"
            );
        }
    }

    #[test]
    fn call_free_scenarios_have_no_helpers() {
        let scenario = Scenario::generate(&GenParams {
            helpers: 0,
            ..GenParams::default()
        });
        assert!(scenario.helpers.is_empty());
        assert_eq!(scenario.program().procs.len(), 1);
    }

    #[test]
    fn size_scales_with_arms() {
        let small = Scenario::generate(&GenParams {
            arms: 4,
            ..GenParams::default()
        });
        let large = Scenario::generate(&GenParams {
            arms: 40,
            ..GenParams::default()
        });
        assert!(large.stmt_count() > 5 * small.stmt_count());
    }
}
