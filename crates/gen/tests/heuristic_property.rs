//! Property: heuristic weights may only *reorder* exploration, never
//! change results. Any weight vector — including adversarial ones — must
//! yield verdicts byte-identical to the `DistanceTo`-only baseline, at
//! any job count.

use dise_core::dise::{run_dise, DiseConfig};
use dise_gen::harness::render_verdicts;
use dise_gen::{evolve, GenParams, Scenario, PROC_NAME};
use dise_symexec::{ExecConfig, HeuristicChoice, HeuristicWeights};

fn run(
    base: &dise_ir::Program,
    modified: &dise_ir::Program,
    jobs: usize,
    heuristic: HeuristicChoice,
) -> String {
    let config = DiseConfig {
        exec: ExecConfig {
            jobs,
            heuristic,
            ..ExecConfig::default()
        },
        ..DiseConfig::default()
    };
    let result = run_dise(base, modified, PROC_NAME, &config).expect("pipeline runs");
    render_verdicts(&result.summary)
}

/// Weight vectors chosen to stress every ordering regime: the baseline,
/// the tuned blend, sign flips, zero (all arms tie — pure index order),
/// and magnitudes that make each individual feature dominate.
fn adversarial_vectors() -> Vec<HeuristicWeights> {
    [
        [1.0, 0.0, 0.0, 0.0],
        [1.0, -0.25, 0.0, 0.0],
        [0.0, 0.0, 0.0, 0.0],
        [-1.0, 1.0, -1.0, 1.0],
        [0.0, 0.0, -100.0, 0.0],
        [0.001, 1000.0, 0.5, -273.15],
    ]
    .into_iter()
    .map(HeuristicWeights::from_array)
    .collect()
}

#[test]
fn any_weight_vector_yields_verdicts_byte_identical_to_distance_only() {
    for seed in 0..4u64 {
        let scenario = Scenario::generate(&GenParams {
            seed,
            ..GenParams::default()
        });
        let evolution = evolve(&scenario, seed, 2);
        let base = scenario.program();
        let modified = evolution.modified.program();
        let baseline = run(&base, &modified, 1, HeuristicChoice::Distance);
        for weights in adversarial_vectors() {
            for jobs in [1, 4] {
                let verdicts = run(&base, &modified, jobs, HeuristicChoice::Custom(weights));
                assert_eq!(
                    verdicts,
                    baseline,
                    "seed {seed}, jobs {jobs}, weights {}: verdicts diverged",
                    weights.vector()
                );
            }
        }
    }
}

/// The satellite tie-break pin: with the tuned vector (whose scores tie
/// far more often than pure distance), jobs 1 and 4 must still agree
/// byte-for-byte — ties break on the stable successor index, never on
/// scheduling or map iteration order.
#[test]
fn tuned_weights_stay_byte_identical_across_job_counts() {
    for seed in [11u64, 12, 13] {
        let scenario = Scenario::generate(&GenParams {
            seed,
            arms: 8,
            ..GenParams::default()
        });
        let evolution = evolve(&scenario, seed, 3);
        let base = scenario.program();
        let modified = evolution.modified.program();
        let serial = run(&base, &modified, 1, HeuristicChoice::Tuned);
        let parallel = run(&base, &modified, 4, HeuristicChoice::Tuned);
        assert_eq!(serial, parallel, "seed {seed}: jobs 1 vs 4 diverged");
        // And the tuned ordering itself never changes what is reported.
        assert_eq!(
            serial,
            run(&base, &modified, 1, HeuristicChoice::Distance),
            "seed {seed}: tuned vs distance verdicts diverged"
        );
    }
}
