//! Differential witness generation.
//!
//! An *affected* path condition tells you the change **may** influence the
//! paths it describes; a *witness* shows the influence with actual values.
//! For each affected path condition DiSE computes, this module solves the
//! condition to a concrete input, replays the input on both program
//! versions with the concrete executor, and compares the observable
//! behaviour: the run outcome (completion vs. assertion failure) and the
//! final values of the global variables the two versions share.
//!
//! Inputs whose replays differ are **diverging witnesses** — ready-made
//! regression tests demonstrating the behavioural change. Inputs whose
//! replays agree are evidence the affected path is behaviourally benign
//! *for that input* (the conservative static analysis over-approximates;
//! §5 of the paper: "DiSE may generate some path conditions that represent
//! unchanged paths"). The solver-backed [`crate::diffsum`] classification
//! strengthens the per-input check to a per-region one.

use dise_core::dise::DiseConfig;
use dise_core::session::AnalysisSession;
use dise_ir::ast::Program;
use dise_solver::model::Value;
use dise_symexec::concrete::{ConcreteConfig, ConcreteExecutor, ConcreteOutcome};
use dise_symexec::ValueEnv;

use crate::inputs::{solve_inputs, SolveStats};
use crate::EvolutionError;

/// Configuration of a witness-generation run.
#[derive(Debug, Clone, Default)]
pub struct WitnessConfig {
    /// Settings of the underlying DiSE run.
    pub dise: DiseConfig,
    /// Settings of the concrete replays.
    pub concrete: ConcreteConfig,
    /// Stop after this many affected path conditions (`None` = all).
    pub max_paths: Option<usize>,
}

/// One concrete variable that ends with different values in the two
/// versions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VarDiff {
    /// The global variable's name.
    pub var: String,
    /// Its final value in the base version.
    pub base: Value,
    /// Its final value in the modified version.
    pub modified: Value,
}

/// How the two versions' replays differ on a witness input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Divergence {
    /// The runs ended differently (e.g., the modified version fails an
    /// assertion the base version passes).
    Outcome {
        /// Base version's outcome.
        base: ConcreteOutcome,
        /// Modified version's outcome.
        modified: ConcreteOutcome,
    },
    /// Both runs completed, but at least one shared global ends with a
    /// different value.
    Effect(Vec<VarDiff>),
    /// The replays agree on outcome and all shared globals.
    None,
}

impl Divergence {
    /// `true` when the input distinguishes the two versions.
    pub fn is_diverging(&self) -> bool {
        !matches!(self, Divergence::None)
    }
}

/// One solved affected path condition and the result of replaying it.
#[derive(Debug, Clone)]
pub struct Witness {
    /// The concrete input (symbolic-input name → value).
    pub input: ValueEnv,
    /// The affected path condition the input was solved from.
    pub pc: String,
    /// How the versions' behaviours compare on this input.
    pub divergence: Divergence,
}

/// The result of a witness-generation run.
#[derive(Debug, Clone)]
pub struct WitnessReport {
    /// The analyzed procedure.
    pub proc_name: String,
    /// One entry per solved affected path condition, in generation order.
    pub witnesses: Vec<Witness>,
    /// Solving counters (path conditions processed / unsolved).
    pub solve_stats: SolveStats,
    /// Number of affected path conditions DiSE generated.
    pub affected_pcs: usize,
}

impl WitnessReport {
    /// The witnesses on which the versions observably differ.
    pub fn diverging(&self) -> impl Iterator<Item = &Witness> {
        self.witnesses
            .iter()
            .filter(|w| w.divergence.is_diverging())
    }

    /// Number of diverging witnesses.
    pub fn diverging_count(&self) -> usize {
        self.diverging().count()
    }

    /// Number of witnesses on which the versions agree.
    pub fn equivalent_count(&self) -> usize {
        self.witnesses.len() - self.diverging_count()
    }
}

/// The report rendering shared verbatim by `dise witness`, `dise
/// evolve`, and `dise serve` — one renderer so the byte-identity the
/// CI pins between those surfaces holds by construction.
pub fn render_report(report: &WitnessReport) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{} affected path condition(s): {} diverge, {} agree",
        report.affected_pcs,
        report.diverging_count(),
        report.equivalent_count()
    );
    for witness in &report.witnesses {
        let verdict = match &witness.divergence {
            Divergence::None => "agrees".to_string(),
            Divergence::Outcome { base, modified } => {
                format!("outcome {base} -> {modified}")
            }
            Divergence::Effect(diffs) => diffs
                .iter()
                .map(|d| format!("{}: {} -> {}", d.var, d.base, d.modified))
                .collect::<Vec<_>>()
                .join(", "),
        };
        let _ = writeln!(
            out,
            "  [{}] {}",
            crate::inputs::render_env(&witness.input),
            verdict
        );
    }
    out
}

/// Runs DiSE on `base` → `modified` and replays every affected path
/// condition's solved input on both versions.
///
/// Only globals declared in **both** versions are compared (a global added
/// by the change has no base-side counterpart to compare against); the
/// run outcome is always compared.
///
/// Opens a fresh [`AnalysisSession`] for the pair; use
/// [`find_witnesses_with`] to share one session's exploration with other
/// applications.
///
/// # Errors
///
/// [`EvolutionError::Dise`] if the DiSE pipeline fails,
/// [`EvolutionError::Exec`] if either version cannot be executed.
pub fn find_witnesses(
    base: &Program,
    modified: &Program,
    proc_name: &str,
    config: &WitnessConfig,
) -> Result<WitnessReport, EvolutionError> {
    let mut session = AnalysisSession::open(base, modified, proc_name, config.dise.clone())?;
    let report = find_witnesses_with(&mut session, config)?;
    session.finalize();
    Ok(report)
}

/// [`find_witnesses`] over a shared [`AnalysisSession`]: borrows the
/// session's flattened programs and directed exploration instead of
/// recomputing them. The session's [`DiseConfig`] governs the pipeline —
/// [`WitnessConfig::dise`] is not consulted.
///
/// # Errors
///
/// [`EvolutionError::Dise`] if a pipeline stage fails,
/// [`EvolutionError::Exec`] if either version cannot be executed.
pub fn find_witnesses_with(
    session: &mut AnalysisSession,
    config: &WitnessConfig,
) -> Result<WitnessReport, EvolutionError> {
    let (solved, solve_stats, affected_pcs) = {
        let summary = &session.explored()?.summary;
        let (solved, stats) = solve_inputs(summary);
        (solved, stats, summary.pc_count())
    };
    let flat_base = session.base_flat();
    let flat_mod = session.mod_flat();
    let proc_name = session.proc_name();
    let base_exec = ConcreteExecutor::new(flat_base, proc_name, config.concrete)?;
    let mod_exec = ConcreteExecutor::new(flat_mod, proc_name, config.concrete)?;
    let shared = shared_globals(flat_base, flat_mod);

    let limit = config.max_paths.unwrap_or(usize::MAX);
    let mut witnesses = Vec::new();
    for item in solved.into_iter().take(limit) {
        let base_run = base_exec.run(&item.env);
        let mod_run = mod_exec.run(&item.env);
        let divergence = compare_runs(
            &base_run.outcome,
            &mod_run.outcome,
            &shared,
            |name| base_run.value(name),
            |name| mod_run.value(name),
        );
        witnesses.push(Witness {
            input: item.env,
            pc: item.pc,
            divergence,
        });
    }

    Ok(WitnessReport {
        proc_name: proc_name.to_string(),
        witnesses,
        solve_stats,
        affected_pcs,
    })
}

/// Renders the diverging witnesses as a regression-test suite in the
/// §5.2 call-string format (`proc(arg, …)`), argument values taken from
/// each witness input (unconstrained arguments default to `0`/`false`,
/// like the test generator).
///
/// These are the tests a reviewer would add to pin the behavioural
/// change: each one demonstrably distinguishes the two versions.
///
/// # Panics
///
/// Panics if `proc_name` does not exist in `program` — mismatched inputs,
/// a caller bug.
pub fn witness_tests(
    program: &Program,
    proc_name: &str,
    report: &WitnessReport,
) -> dise_regression::TestSuite {
    let procedure = program
        .proc(proc_name)
        .expect("witness report's procedure exists in the program");
    let mut suite = dise_regression::TestSuite::new();
    for witness in report.diverging() {
        let args: Vec<String> = procedure
            .params
            .iter()
            .map(|param| {
                witness.input.get(&param.name).copied().map_or_else(
                    || match param.ty {
                        dise_ir::Type::Int => "0".to_string(),
                        dise_ir::Type::Bool => "false".to_string(),
                    },
                    |value| value.to_string(),
                )
            })
            .collect();
        suite.insert(format!("{proc_name}({})", args.join(", ")));
    }
    suite
}

/// The globals declared in both programs, in base declaration order.
pub(crate) fn shared_globals(base: &Program, modified: &Program) -> Vec<String> {
    base.globals
        .iter()
        .filter(|g| modified.global(&g.name).is_some())
        .map(|g| g.name.clone())
        .collect()
}

/// Compares two replays: outcomes first, then shared globals.
pub(crate) fn compare_runs(
    base_outcome: &ConcreteOutcome,
    mod_outcome: &ConcreteOutcome,
    shared: &[String],
    base_value: impl Fn(&str) -> Option<Value>,
    mod_value: impl Fn(&str) -> Option<Value>,
) -> Divergence {
    if base_outcome != mod_outcome {
        return Divergence::Outcome {
            base: base_outcome.clone(),
            modified: mod_outcome.clone(),
        };
    }
    let mut diffs = Vec::new();
    for name in shared {
        match (base_value(name), mod_value(name)) {
            (Some(b), Some(m)) if b != m => diffs.push(VarDiff {
                var: name.clone(),
                base: b,
                modified: m,
            }),
            _ => {}
        }
    }
    if diffs.is_empty() {
        Divergence::None
    } else {
        Divergence::Effect(diffs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dise_ir::parse_program;

    fn witnesses(base_src: &str, mod_src: &str, proc: &str) -> WitnessReport {
        let base = parse_program(base_src).unwrap();
        let modified = parse_program(mod_src).unwrap();
        find_witnesses(&base, &modified, proc, &WitnessConfig::default()).unwrap()
    }

    #[test]
    fn boundary_shift_yields_an_effect_witness() {
        // base writes 2 at x == 0; modified writes 1. Only x == 0
        // distinguishes them.
        let report = witnesses(
            "int out;
             proc f(int x) { if (x > 0) { out = 1; } else { out = 2; } }",
            "int out;
             proc f(int x) { if (x >= 0) { out = 1; } else { out = 2; } }",
            "f",
        );
        assert!(report.diverging_count() >= 1);
        let diverging: Vec<&Witness> = report.diverging().collect();
        // Some diverging witness must be the boundary input x = 0 with
        // out: 2 → 1.
        assert!(diverging.iter().any(|w| {
            w.input.get("x") == Some(&Value::Int(0))
                && matches!(
                    &w.divergence,
                    Divergence::Effect(diffs) if diffs.iter().any(|d| {
                        d.var == "out"
                            && d.base == Value::Int(2)
                            && d.modified == Value::Int(1)
                    })
                )
        }));
    }

    #[test]
    fn introduced_assertion_failure_is_an_outcome_witness() {
        let report = witnesses(
            "proc f(int x) { if (x > 0) { x = x + 1; } assert(x < 100); }",
            "proc f(int x) { if (x > 50) { x = x + 100; } assert(x < 100); }",
            "f",
        );
        assert!(report.diverging().any(
            |w| matches!(&w.divergence, Divergence::Outcome { base, modified }
                if base.is_completed() && modified.is_failure())
        ));
    }

    #[test]
    fn equivalent_change_yields_no_diverging_witnesses() {
        // `x + x` vs `2 * x`: every affected path is behaviourally
        // identical.
        let report = witnesses(
            "int out;
             proc f(int x) { out = x + x; if (out > 10) { out = 10; } }",
            "int out;
             proc f(int x) { out = 2 * x; if (out > 10) { out = 10; } }",
            "f",
        );
        assert!(report.affected_pcs > 0, "the change is seen as affecting");
        assert_eq!(report.diverging_count(), 0);
        assert_eq!(report.equivalent_count(), report.witnesses.len());
    }

    #[test]
    fn identical_versions_produce_no_diverging_witnesses() {
        // With an empty diff the affected sets are empty; the directed
        // search still emits at most one representative path (the empty
        // affected-node sequence lies on every path — Theorem 3.10), and
        // its replay must agree between the (identical) versions.
        let src = "int g;
             proc f(int x) { if (x > 0) { g = 1; } }";
        let report = witnesses(src, src, "f");
        assert!(report.affected_pcs <= 1);
        assert_eq!(report.diverging_count(), 0);
    }

    #[test]
    fn max_paths_caps_the_replays() {
        let base = parse_program(
            "int out;
             proc f(int x, int y) {
               if (x > 0) { out = 1; } else { out = 2; }
               if (y > 0) { out = out + 10; }
             }",
        )
        .unwrap();
        let modified = parse_program(
            "int out;
             proc f(int x, int y) {
               if (x >= 0) { out = 1; } else { out = 2; }
               if (y > 0) { out = out + 10; }
             }",
        )
        .unwrap();
        let capped = find_witnesses(
            &base,
            &modified,
            "f",
            &WitnessConfig {
                max_paths: Some(1),
                ..WitnessConfig::default()
            },
        )
        .unwrap();
        assert_eq!(capped.witnesses.len(), 1);
        assert!(capped.affected_pcs > 1);
    }

    #[test]
    fn new_global_in_modified_is_not_compared() {
        // The modified version introduces `extra`; comparing it against the
        // base (where it does not exist) must not panic or diverge.
        let report = witnesses(
            "int out;
             proc f(int x) { if (x > 0) { out = 1; } }",
            "int out; int extra;
             proc f(int x) { if (x >= 0) { out = 1; } extra = 5; }",
            "f",
        );
        for w in &report.witnesses {
            if let Divergence::Effect(diffs) = &w.divergence {
                assert!(diffs.iter().all(|d| d.var != "extra"));
            }
        }
    }

    #[test]
    fn witness_tests_render_call_strings() {
        let base = parse_program(
            "int out;
             proc f(int x, bool strict) {
               if (x > 0) { out = 1; } else { out = 2; }
               if (strict) { out = out + 10; }
             }",
        )
        .unwrap();
        let modified = parse_program(
            "int out;
             proc f(int x, bool strict) {
               if (x >= 0) { out = 1; } else { out = 2; }
               if (strict) { out = out + 10; }
             }",
        )
        .unwrap();
        let report = find_witnesses(&base, &modified, "f", &WitnessConfig::default()).unwrap();
        let suite = witness_tests(&modified, "f", &report);
        assert_eq!(suite.len(), report.diverging_count());
        assert!(suite.iter().all(|t| t.starts_with("f(")));
        // The boundary witness appears as a runnable call.
        assert!(
            suite.iter().any(|t| t.starts_with("f(0, ")),
            "missing the x = 0 boundary test in {:?}",
            suite.iter().collect::<Vec<_>>()
        );
        // Suites round-trip through the §5.2 text format.
        let reloaded = dise_regression::TestSuite::from_text(&suite.to_text());
        assert_eq!(reloaded.len(), suite.len());
    }

    #[test]
    fn multi_procedure_versions_are_flattened() {
        let report = witnesses(
            "int out;
             proc helper(int v) { out = v; }
             proc f(int x) { if (x > 0) { helper(1); } else { helper(2); } }",
            "int out;
             proc helper(int v) { out = v + 1; }
             proc f(int x) { if (x > 0) { helper(1); } else { helper(2); } }",
            "f",
        );
        // Every path diverges: out is shifted by one everywhere.
        assert!(report.diverging_count() >= 1);
        assert_eq!(report.equivalent_count(), 0);
    }
}
