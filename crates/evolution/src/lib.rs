//! # dise-evolution — software-evolution applications of DiSE
//!
//! The paper motivates DiSE as an *enabling* analysis: "DiSE enables other
//! program analysis techniques to efficiently perform software evolution
//! tasks such as program documentation, regression testing, fault
//! localization and program summarization" (§1). The workspace's
//! `dise-regression` crate covers regression testing (§5.2); this crate
//! implements the remaining three applications on top of the affected path
//! conditions DiSE computes:
//!
//! * [`witness`] — **differential witness generation**: solve each
//!   affected path condition to a concrete input, replay it on *both*
//!   program versions, and report the inputs on which the versions
//!   observably differ (final global state or outcome). These are
//!   ready-to-run regression tests that *demonstrate* the behavioural
//!   change.
//! * [`diffsum`] — **differential program summarization**: classify each
//!   affected path as *effect-preserving* or *effect-diverging* by
//!   comparing the symbolic effects of the two versions along the paths a
//!   common input exercises, deciding equivalence with the constraint
//!   solver. This is a lightweight form of the differential symbolic
//!   execution the paper cites as related work \[27\].
//! * [`localize`](mod@localize) — **spectrum-based fault localization**: run the
//!   DiSE-derived test suite concretely, collect node-level coverage
//!   spectra, and rank statements by suspiciousness (Ochiai, Tarantula,
//!   Jaccard, D*). When a change introduces an assertion failure, the
//!   changed statements should rank near the top.
//! * [`report`] — **program documentation**: render a human-readable
//!   change-impact report (changed statements, affected locations,
//!   affected path conditions with witness inputs, and a regression-suite
//!   summary).
//!
//! All four consume only the two program versions plus DiSE's output.
//! Each application has two entry points: a standalone function taking
//! the two versions (it opens its own pipeline), and a `*_with` variant
//! taking a `&mut` [`dise_core::session::AnalysisSession`] so several
//! applications share one flatten/diff/fixpoint/exploration of the same
//! version pair — the CLI's `dise evolve` runs all four off a single
//! exploration this way, with byte-identical output to the standalone
//! runs.
//!
//! # Examples
//!
//! ```
//! use dise_evolution::witness::{find_witnesses, WitnessConfig};
//! use dise_ir::parse_program;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let base = parse_program(
//!     "int out;
//!      proc f(int x) { if (x > 0) { out = 1; } else { out = 2; } }",
//! )?;
//! let modified = parse_program(
//!     "int out;
//!      proc f(int x) { if (x >= 0) { out = 1; } else { out = 2; } }",
//! )?;
//! let report = find_witnesses(&base, &modified, "f", &WitnessConfig::default())?;
//! // x = 0 distinguishes the versions: base writes 2, modified writes 1.
//! assert!(report.diverging_count() >= 1);
//! # Ok(())
//! # }
//! ```

pub mod diffsum;
pub mod inputs;
pub mod localize;
pub mod report;
pub mod witness;

pub use diffsum::{classify_changes, classify_changes_with, DiffSummary, PathClass};
pub use localize::{localize, localize_change, localize_change_with, Formula, LocalizeReport};
pub use report::{impact_report, impact_report_with, ImpactConfig};
pub use witness::{
    find_witnesses, find_witnesses_with, witness_tests, Divergence, Witness, WitnessConfig,
    WitnessReport,
};

use dise_core::dise::DiseError;
use dise_symexec::ExecError;

/// Errors from the evolution applications.
#[derive(Debug)]
pub enum EvolutionError {
    /// The underlying DiSE pipeline failed.
    Dise(DiseError),
    /// Setting up a concrete or concolic executor failed.
    Exec(ExecError),
}

impl std::fmt::Display for EvolutionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EvolutionError::Dise(e) => write!(f, "dise error: {e}"),
            EvolutionError::Exec(e) => write!(f, "execution error: {e}"),
        }
    }
}

impl std::error::Error for EvolutionError {}

impl From<DiseError> for EvolutionError {
    fn from(e: DiseError) -> Self {
        EvolutionError::Dise(e)
    }
}

impl From<ExecError> for EvolutionError {
    fn from(e: ExecError) -> Self {
        EvolutionError::Exec(e)
    }
}

impl From<dise_ir::inline::InlineError> for EvolutionError {
    fn from(e: dise_ir::inline::InlineError) -> Self {
        EvolutionError::Dise(DiseError::Inline(e))
    }
}

/// Flattens a multi-procedure program by bounded inlining, exactly as the
/// DiSE driver does; call-free programs pass through unchanged.
pub(crate) fn flatten<'p>(
    program: &'p dise_ir::Program,
    proc_name: &str,
) -> Result<std::borrow::Cow<'p, dise_ir::Program>, EvolutionError> {
    use std::borrow::Cow;
    if dise_ir::inline::contains_calls(program, proc_name) {
        Ok(Cow::Owned(dise_ir::inline::inline_program(
            program, proc_name,
        )?))
    } else {
        Ok(Cow::Borrowed(program))
    }
}
