//! Change-impact documentation.
//!
//! "DiSE enables other program analysis techniques to efficiently perform
//! software evolution tasks such as program documentation …" (§1). This
//! module renders a self-contained Markdown report of a change: what
//! changed, which locations the static analysis marks as affected, which
//! path conditions characterize the affected behaviours (each with a
//! concrete witness input), how the two versions behave on those inputs,
//! and what the change means for an existing regression suite.
//!
//! The report consumes only the two program versions — the property the
//! paper emphasizes ("only the source code for two related program
//! versions is required", abstract).

use std::fmt::Write as _;

use dise_core::dise::DiseConfig;
use dise_core::session::AnalysisSession;
use dise_ir::ast::Program;
use dise_regression::regression_plan;
use dise_symexec::concrete::ConcreteConfig;

use crate::inputs::render_env;
use crate::witness::{find_witnesses_with, Divergence, WitnessConfig};
use crate::EvolutionError;

/// Configuration of an impact report.
#[derive(Debug, Clone)]
pub struct ImpactConfig {
    /// Settings of the underlying DiSE run.
    pub dise: DiseConfig,
    /// Settings of the concrete replays backing the witness section.
    pub concrete: ConcreteConfig,
    /// Maximum number of affected path conditions listed verbatim.
    pub max_pcs: usize,
    /// Maximum number of diverging witnesses listed verbatim.
    pub max_witnesses: usize,
}

impl Default for ImpactConfig {
    fn default() -> Self {
        ImpactConfig {
            dise: DiseConfig::default(),
            concrete: ConcreteConfig::default(),
            max_pcs: 20,
            max_witnesses: 10,
        }
    }
}

/// Renders the Markdown change-impact report for `proc_name` of
/// `base` → `modified`.
///
/// Opens a fresh [`AnalysisSession`] for the pair; use
/// [`impact_report_with`] to share one session's exploration with other
/// applications.
///
/// # Errors
///
/// [`EvolutionError::Dise`] if the DiSE pipeline fails,
/// [`EvolutionError::Exec`] if either version cannot be executed.
pub fn impact_report(
    base: &Program,
    modified: &Program,
    proc_name: &str,
    config: &ImpactConfig,
) -> Result<String, EvolutionError> {
    let mut session = AnalysisSession::open(base, modified, proc_name, config.dise.clone())?;
    let text = impact_report_with(&mut session, config)?;
    session.finalize();
    Ok(text)
}

/// [`impact_report`] over a shared [`AnalysisSession`]: every section —
/// the diff, the affected sets, the witness replays, the regression plan
/// — reads the session's cached stages, so the report costs one
/// exploration even though it spans four applications. The session's
/// [`DiseConfig`] governs the pipeline — [`ImpactConfig::dise`] is not
/// consulted.
///
/// # Errors
///
/// [`EvolutionError::Dise`] if a pipeline stage fails,
/// [`EvolutionError::Exec`] if either version cannot be executed.
pub fn impact_report_with(
    session: &mut AnalysisSession,
    config: &ImpactConfig,
) -> Result<String, EvolutionError> {
    let proc_name = session.proc_name().to_string();

    let mut out = String::new();
    let _ = writeln!(out, "# Change impact: `{proc_name}`\n");

    {
        // Borrow the stage artifacts directly — the report only reads
        // counts and node sets, so cloning the whole exploration
        // (session.result()) would be pure waste.
        let bundle = session.explored_bundle()?;
        let (cfg_mod, diff) = (&bundle.diffed.cfg_mod, &bundle.diffed.diff);
        let affected = bundle.affected;

        // §1 — the change.
        let _ = writeln!(out, "## Changed statements\n");
        if diff.is_identical() {
            let _ = writeln!(out, "No statement-level differences detected.\n");
        } else {
            for node in diff.changed_or_added_mod() {
                let payload = cfg_mod.node(node);
                let mark = if diff.added_mod().any(|n| n == node) {
                    "added"
                } else {
                    "changed"
                };
                let _ = writeln!(out, "- line {}: `{}` ({mark})", payload.span.line, payload);
            }
            let removed: Vec<_> = diff.removed_base().collect();
            if !removed.is_empty() {
                let _ = writeln!(
                    out,
                    "- {} statement(s) removed from the base version",
                    removed.len()
                );
            }
            let _ = writeln!(out);
        }

        // §2 — affected locations.
        let _ = writeln!(out, "## Affected locations\n");
        let _ = writeln!(
            out,
            "{} changed node(s) → {} affected node(s): {} affected conditional(s) (ACN), {} affected write(s) (AWN).\n",
            diff.changed_node_count(),
            affected.len(),
            affected.acn().len(),
            affected.awn().len(),
        );
        for &node in affected.acn() {
            let payload = cfg_mod.node(node);
            let _ = writeln!(
                out,
                "- ACN {}: line {}, `{}`",
                node, payload.span.line, payload
            );
        }
        for &node in affected.awn() {
            let payload = cfg_mod.node(node);
            let _ = writeln!(
                out,
                "- AWN {}: line {}, `{}`",
                node, payload.span.line, payload
            );
        }
        let _ = writeln!(out);
    }

    // §3 — affected behaviours, with witnesses (shares the session's
    // exploration).
    let witness_config = WitnessConfig {
        dise: session.config().clone(),
        concrete: config.concrete,
        max_paths: None,
    };
    let witnesses = find_witnesses_with(session, &witness_config)?;
    let _ = writeln!(out, "## Affected path conditions\n");
    let _ = writeln!(
        out,
        "DiSE generated {} affected path condition(s); {} replay(s) diverge between the versions, {} agree.\n",
        witnesses.affected_pcs,
        witnesses.diverging_count(),
        witnesses.equivalent_count(),
    );
    for witness in witnesses.witnesses.iter().take(config.max_pcs) {
        let _ = writeln!(out, "- `{}`", witness.pc);
        let _ = writeln!(out, "  - witness input: {}", render_env(&witness.input));
        match &witness.divergence {
            Divergence::None => {
                let _ = writeln!(out, "  - behaviour: identical on this input");
            }
            Divergence::Outcome { base, modified } => {
                let _ = writeln!(out, "  - behaviour: base {base}, modified {modified} ⚠");
            }
            Divergence::Effect(diffs) => {
                for d in diffs {
                    let _ = writeln!(
                        out,
                        "  - behaviour: `{}` was {}, now {} ⚠",
                        d.var, d.base, d.modified
                    );
                }
            }
        }
    }
    if witnesses.witnesses.len() > config.max_pcs {
        let _ = writeln!(
            out,
            "- … {} more path condition(s) elided",
            witnesses.witnesses.len() - config.max_pcs
        );
    }
    let _ = writeln!(out);

    // §4 — regression-suite impact (§5.2 of the paper).
    let plan = {
        let (base_flat, base_full, mod_flat, dise_summary) = session.regression_inputs()?;
        regression_plan(base_flat, base_full, mod_flat, dise_summary)
    };
    let _ = writeln!(out, "## Regression suite\n");
    let _ = writeln!(
        out,
        "Existing suite: {} test(s). Selected for re-run: {}. New tests to add: {}. Total to execute: {} ({} would be run by re-test-all).\n",
        plan.existing.len(),
        plan.selection.selected.len(),
        plan.selection.added.len(),
        plan.selection.total(),
        plan.existing.len(),
    );

    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dise_ir::parse_program;

    fn report(base_src: &str, mod_src: &str, proc: &str) -> String {
        let base = parse_program(base_src).unwrap();
        let modified = parse_program(mod_src).unwrap();
        impact_report(&base, &modified, proc, &ImpactConfig::default()).unwrap()
    }

    #[test]
    fn report_has_all_sections() {
        let text = report(
            "int out;
             proc f(int x) { if (x > 0) { out = 1; } else { out = 2; } }",
            "int out;
             proc f(int x) { if (x >= 0) { out = 1; } else { out = 2; } }",
            "f",
        );
        for heading in [
            "# Change impact: `f`",
            "## Changed statements",
            "## Affected locations",
            "## Affected path conditions",
            "## Regression suite",
        ] {
            assert!(text.contains(heading), "missing {heading:?} in:\n{text}");
        }
        // The changed condition appears with its line number.
        assert!(text.contains("x >= 0"));
        // The boundary divergence is called out.
        assert!(text.contains("⚠"), "no divergence marker:\n{text}");
    }

    #[test]
    fn identical_versions_report_no_differences() {
        let src = "proc f(int x) { if (x > 0) { x = 1; } }";
        let text = report(src, src, "f");
        assert!(text.contains("No statement-level differences"));
        assert!(text.contains("0 affected node(s)"));
    }

    #[test]
    fn pc_listing_is_capped() {
        // Two affected if/else blocks → 4 affected path conditions; cap
        // the listing at 2.
        let base = parse_program(
            "int out;
             proc f(int x, int y) {
               if (x > 0) { out = 1; } else { out = 2; }
               if (y > 0) { out = out + 2; } else { out = out + 3; }
               assert(out >= 0);
             }",
        )
        .unwrap();
        let modified = parse_program(
            "int out;
             proc f(int x, int y) {
               if (x >= 0) { out = 1; } else { out = 2; }
               if (y > 0) { out = out + 2; } else { out = out + 3; }
               assert(out >= 0);
             }",
        )
        .unwrap();
        let config = ImpactConfig {
            max_pcs: 2,
            ..ImpactConfig::default()
        };
        let text = impact_report(&base, &modified, "f", &config).unwrap();
        assert!(text.contains("more path condition(s) elided"));
    }

    #[test]
    fn regression_section_reports_selection_counts() {
        let text = report(
            "int out;
             proc f(int x) { if (x > 0) { out = 1; } else { out = 2; } }",
            "int out;
             proc f(int x) { if (x >= 0) { out = 1; } else { out = 2; } }",
            "f",
        );
        assert!(text.contains("Existing suite: 2 test(s)"));
    }
}
