//! Spectrum-based fault localization over DiSE-derived test suites.
//!
//! When a change introduces a failure (an assertion violation in the
//! modified version), the affected path conditions point at the inputs
//! that can reach it. This module turns those inputs into a localization
//! spectrum:
//!
//! 1. build a test suite — inputs solved from the base version's symbolic
//!    summary (the "existing suite" of §5.2) plus inputs solved from
//!    DiSE's affected path conditions (the "augmented" tests);
//! 2. replay every input on the modified version with the concrete
//!    executor, labelling runs *passing* (completed) or *failing*
//!    (assertion failure);
//! 3. from the per-run node traces, compute each CFG node's suspiciousness
//!    with a standard spectrum formula (Ochiai, Tarantula, Jaccard, D*²)
//!    and rank the nodes.
//!
//! The interesting measurement — reproduced by `dise-bench localize` — is
//! that DiSE's *affected* inputs concentrate the spectrum on the changed
//! code: the changed nodes rank near the top, with an EXAM score (fraction
//! of the program inspected before reaching a changed node) far below the
//! 50% a random inspection order would give.

use std::collections::BTreeSet;

use dise_cfg::{Cfg, NodeId};
use dise_core::dise::DiseConfig;
use dise_core::session::AnalysisSession;
use dise_ir::ast::Program;
use dise_ir::Span;
use dise_symexec::concrete::{ConcreteConfig, ConcreteExecutor, ConcreteOutcome};
use dise_symexec::ValueEnv;

use crate::inputs::solve_inputs;
use crate::EvolutionError;

/// A suspiciousness formula over the four spectrum counters: `ef`/`ep` =
/// failing/passing tests that executed the node, `nf`/`np` = failing/
/// passing tests that did not.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Formula {
    /// `ef / sqrt((ef + nf) · (ef + ep))` — the usual default; best
    /// general accuracy in the classic studies.
    #[default]
    Ochiai,
    /// `(ef/F) / (ef/F + ep/P)`.
    Tarantula,
    /// `ef / (ef + nf + ep)`.
    Jaccard,
    /// `ef² / (ep + nf)` — D* with the customary exponent 2.
    DStar2,
}

impl Formula {
    /// Scores one node's counters. Returns `0.0` when the node was never
    /// executed by a failing test (all four formulas agree there), and
    /// caps the D* division-by-zero case at a large finite score so
    /// ranking stays total.
    pub fn score(self, ef: u32, ep: u32, nf: u32, np: u32) -> f64 {
        let (ef, ep, nf, np) = (f64::from(ef), f64::from(ep), f64::from(nf), f64::from(np));
        if ef == 0.0 {
            return 0.0;
        }
        match self {
            Formula::Ochiai => ef / ((ef + nf) * (ef + ep)).sqrt(),
            Formula::Tarantula => {
                let fail_rate = ef / (ef + nf);
                let pass_total = ep + np;
                let pass_rate = if pass_total == 0.0 {
                    0.0
                } else {
                    ep / pass_total
                };
                fail_rate / (fail_rate + pass_rate)
            }
            Formula::Jaccard => ef / (ef + nf + ep),
            Formula::DStar2 => {
                let denom = ep + nf;
                if denom == 0.0 {
                    f64::from(u32::MAX) // executed by every failing test and no passing one
                } else {
                    ef * ef / denom
                }
            }
        }
    }
}

impl std::fmt::Display for Formula {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Formula::Ochiai => f.write_str("ochiai"),
            Formula::Tarantula => f.write_str("tarantula"),
            Formula::Jaccard => f.write_str("jaccard"),
            Formula::DStar2 => f.write_str("dstar2"),
        }
    }
}

/// One node with its spectrum counters and suspiciousness score.
#[derive(Debug, Clone)]
pub struct RankedNode {
    /// The CFG node.
    pub node: NodeId,
    /// Rendered statement (the CFG node's display form).
    pub label: String,
    /// Source location of the originating statement.
    pub span: Span,
    /// Failing tests that executed the node.
    pub exec_fail: u32,
    /// Passing tests that executed the node.
    pub exec_pass: u32,
    /// The suspiciousness score.
    pub score: f64,
}

/// The result of a localization run.
#[derive(Debug, Clone)]
pub struct LocalizeReport {
    /// Nodes sorted by descending score (ties broken by node id).
    pub ranking: Vec<RankedNode>,
    /// Number of failing tests in the suite.
    pub failing: usize,
    /// Number of passing tests in the suite.
    pub passing: usize,
    /// The formula used.
    pub formula: Formula,
}

impl LocalizeReport {
    /// The worst-case 1-based rank of `node`: the number of nodes with a
    /// score greater than or equal to its own (the standard tie-pessimistic
    /// rank used for EXAM scores). `None` if the node is not in the
    /// ranking.
    pub fn rank_of(&self, node: NodeId) -> Option<usize> {
        let score = self
            .ranking
            .iter()
            .find(|r| r.node == node)
            .map(|r| r.score)?;
        Some(self.ranking.iter().filter(|r| r.score >= score).count())
    }

    /// The EXAM score of `node`: fraction of ranked nodes inspected before
    /// reaching it under the worst-case rank. `None` if absent.
    pub fn exam_score(&self, node: NodeId) -> Option<f64> {
        let rank = self.rank_of(node)?;
        if self.ranking.is_empty() {
            return None;
        }
        Some(rank as f64 / self.ranking.len() as f64)
    }

    /// The highest-scored nodes (up to `k`).
    pub fn top(&self, k: usize) -> &[RankedNode] {
        &self.ranking[..k.min(self.ranking.len())]
    }
}

/// Replays `tests` on `program`'s `proc_name` and ranks the procedure's
/// CFG nodes by suspiciousness.
///
/// Runs that neither complete nor fail an assertion (assume violations,
/// fuel exhaustion, arithmetic errors) are excluded from the spectrum —
/// they are neither passing nor failing evidence.
///
/// # Errors
///
/// [`EvolutionError::Exec`] if the procedure cannot be executed.
pub fn localize(
    program: &Program,
    proc_name: &str,
    tests: &[ValueEnv],
    formula: Formula,
    concrete: ConcreteConfig,
) -> Result<LocalizeReport, EvolutionError> {
    let flat = crate::flatten(program, proc_name)?;
    let executor = ConcreteExecutor::new(flat.as_ref(), proc_name, concrete)?;
    let cfg = executor.cfg();

    let mut failing = 0u32;
    let mut passing = 0u32;
    let mut exec_fail = vec![0u32; cfg.len()];
    let mut exec_pass = vec![0u32; cfg.len()];
    for input in tests {
        let run = executor.run(input);
        let counters = match run.outcome {
            ConcreteOutcome::Completed => {
                passing += 1;
                &mut exec_pass
            }
            ConcreteOutcome::AssertionFailure(_) => {
                failing += 1;
                &mut exec_fail
            }
            _ => continue,
        };
        let mut seen = BTreeSet::new();
        for &node in &run.trace {
            if seen.insert(node) {
                counters[node.0 as usize] += 1;
            }
        }
    }

    let mut ranking: Vec<RankedNode> = cfg
        .node_ids()
        .map(|node| {
            let idx = node.0 as usize;
            let ef = exec_fail[idx];
            let ep = exec_pass[idx];
            let payload = cfg.node(node);
            RankedNode {
                node,
                label: payload.to_string(),
                span: payload.span,
                exec_fail: ef,
                exec_pass: ep,
                score: formula.score(ef, ep, failing - ef, passing - ep),
            }
        })
        .collect();
    ranking.sort_by(|a, b| {
        b.score
            .partial_cmp(&a.score)
            .expect("scores are never NaN")
            .then(a.node.cmp(&b.node))
    });

    Ok(LocalizeReport {
        ranking,
        failing: failing as usize,
        passing: passing as usize,
        formula,
    })
}

/// Configuration of an end-to-end change localization.
#[derive(Debug, Clone, Default)]
pub struct LocalizeConfig {
    /// Settings of the underlying DiSE run.
    pub dise: DiseConfig,
    /// Settings of the concrete replays.
    pub concrete: ConcreteConfig,
    /// The spectrum formula.
    pub formula: Formula,
}

/// The result of [`localize_change`].
#[derive(Debug, Clone)]
pub struct ChangeLocalization {
    /// The spectrum ranking over the modified version's CFG.
    pub report: LocalizeReport,
    /// The changed/added nodes in the modified version's CFG (ground
    /// truth).
    pub changed_nodes: Vec<NodeId>,
    /// The best (smallest) worst-case rank among the changed nodes.
    pub best_changed_rank: Option<usize>,
    /// EXAM score of the best-ranked changed node.
    pub exam: Option<f64>,
    /// Suite composition: tests reused from the base suite.
    pub reused_tests: usize,
    /// Suite composition: tests added from DiSE's affected path
    /// conditions.
    pub affected_tests: usize,
}

/// The localization rendering shared verbatim by `dise localize`,
/// `dise evolve`, and `dise serve`: the top-10 ranking plus the
/// changed-statement rank line.
pub fn render_localization(outcome: &ChangeLocalization) -> String {
    use std::fmt::Write as _;
    let mut out = render_ranking(&outcome.report, None, 10);
    match (outcome.best_changed_rank, outcome.exam) {
        (Some(rank), Some(exam)) => {
            let _ = writeln!(
                out,
                "changed statement: rank {rank} of {} (EXAM {exam:.2})",
                outcome.report.ranking.len()
            );
        }
        _ => {
            let _ = writeln!(out, "no changed statement to rank (identical versions?)");
        }
    }
    out
}

/// End-to-end change localization: builds the §5.2-style suite (base
/// summary inputs + DiSE affected inputs), replays it on the modified
/// version, and reports where the changed nodes rank.
///
/// Opens a fresh [`AnalysisSession`] for the pair; use
/// [`localize_change_with`] to share one session's exploration (and its
/// base full-run baseline) with other applications.
///
/// # Errors
///
/// [`EvolutionError::Dise`] if the DiSE pipeline fails,
/// [`EvolutionError::Exec`] if the modified version cannot be executed.
pub fn localize_change(
    base: &Program,
    modified: &Program,
    proc_name: &str,
    config: &LocalizeConfig,
) -> Result<ChangeLocalization, EvolutionError> {
    let mut session = AnalysisSession::open(base, modified, proc_name, config.dise.clone())?;
    let outcome = localize_change_with(&mut session, config)?;
    session.finalize();
    Ok(outcome)
}

/// [`localize_change`] over a shared [`AnalysisSession`]: borrows the
/// session's flattened programs, diff, base full-exploration summary, and
/// directed exploration instead of recomputing them. The session's
/// [`DiseConfig`] governs the pipeline — [`LocalizeConfig::dise`] is not
/// consulted.
///
/// # Errors
///
/// [`EvolutionError::Dise`] if a pipeline stage fails,
/// [`EvolutionError::Exec`] if the modified version cannot be executed.
pub fn localize_change_with(
    session: &mut AnalysisSession,
    config: &LocalizeConfig,
) -> Result<ChangeLocalization, EvolutionError> {
    // Existing suite: full symbolic execution of the base version.
    let (base_inputs, _) = {
        let base_summary = session.base_full()?;
        solve_inputs(base_summary)
    };
    // Augmentation: DiSE's affected path conditions on the change.
    let (affected_inputs, _) = {
        let summary = &session.explored()?.summary;
        solve_inputs(summary)
    };

    let mut tests: Vec<ValueEnv> = Vec::new();
    let mut seen = BTreeSet::new();
    for item in base_inputs.iter().chain(affected_inputs.iter()) {
        if seen.insert(crate::inputs::render_env(&item.env)) {
            tests.push(item.env.clone());
        }
    }

    // Ground truth: the changed/added nodes of the modified CFG.
    let changed_nodes: Vec<NodeId> = {
        let diffed = session.diffed()?;
        diffed.diff.changed_or_added_mod().collect()
    };

    let report = localize(
        session.mod_flat(),
        session.proc_name(),
        &tests,
        config.formula,
        config.concrete,
    )?;
    let best_changed_rank = changed_nodes
        .iter()
        .filter_map(|&n| report.rank_of(n))
        .min();
    let exam = changed_nodes
        .iter()
        .filter_map(|&n| report.exam_score(n))
        .min_by(|a, b| a.partial_cmp(b).expect("EXAM scores are never NaN"));

    Ok(ChangeLocalization {
        report,
        changed_nodes,
        best_changed_rank,
        exam,
        reused_tests: base_inputs.len(),
        affected_tests: affected_inputs.len(),
    })
}

/// Renders a localization report as a text table (top `k` nodes).
pub fn render_ranking(report: &LocalizeReport, cfg_hint: Option<&Cfg>, k: usize) -> String {
    let _ = cfg_hint; // labels are already embedded; hint reserved for DOT overlays
    let mut out = String::new();
    out.push_str(&format!(
        "spectrum: {} failing / {} passing tests, formula {}\n",
        report.failing, report.passing, report.formula
    ));
    out.push_str("rank  score   ef  ep  node  statement\n");
    for (i, r) in report.top(k).iter().enumerate() {
        out.push_str(&format!(
            "{:>4}  {:>6.3} {:>4} {:>3}  {:>4}  {}\n",
            i + 1,
            r.score,
            r.exec_fail,
            r.exec_pass,
            r.node.0,
            r.label
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use dise_ir::parse_program;
    use dise_solver::model::Value;

    /// A base/mod pair where the change makes the assertion violable: the
    /// mutated branch adds 100 instead of 10 when x > 5.
    const BASE: &str = "int total;
         proc f(int x) {
           total = 0;
           if (x > 5) { total = total + 10; } else { total = total + 1; }
           if (x > 100) { total = total + 1; }
           assert(total <= 50);
         }";
    const MODIFIED: &str = "int total;
         proc f(int x) {
           total = 0;
           if (x > 5) { total = total + 100; } else { total = total + 1; }
           if (x > 100) { total = total + 1; }
           assert(total <= 50);
         }";

    #[test]
    fn formulas_agree_on_never_failing_nodes() {
        for formula in [
            Formula::Ochiai,
            Formula::Tarantula,
            Formula::Jaccard,
            Formula::DStar2,
        ] {
            assert_eq!(formula.score(0, 5, 3, 2), 0.0, "{formula}");
        }
    }

    #[test]
    fn ochiai_prefers_fail_only_nodes() {
        let fail_only = Formula::Ochiai.score(3, 0, 0, 5);
        let mixed = Formula::Ochiai.score(3, 5, 0, 0);
        assert!(fail_only > mixed);
        assert!((fail_only - 1.0).abs() < 1e-9);
    }

    #[test]
    fn dstar2_caps_zero_denominator() {
        let score = Formula::DStar2.score(4, 0, 0, 9);
        assert!(score.is_finite());
        assert!(score > Formula::DStar2.score(4, 1, 0, 9));
    }

    #[test]
    fn localize_ranks_the_faulty_assignment_first() {
        let modified = parse_program(MODIFIED).unwrap();
        // Hand-built suite: one failing input (x > 5) and two passing.
        let tests: Vec<ValueEnv> = [6i64, 0, 3]
            .iter()
            .map(|&x| {
                let mut env = ValueEnv::new();
                env.insert("x".to_string(), Value::Int(x));
                env
            })
            .collect();
        let report = localize(
            &modified,
            "f",
            &tests,
            Formula::Ochiai,
            ConcreteConfig::default(),
        )
        .unwrap();
        assert_eq!(report.failing, 1);
        assert_eq!(report.passing, 2);
        // The faulty assignment `total = total + 100` must be among the
        // top-scored nodes (score 1.0: executed by the failing test only).
        let top = &report.ranking[0];
        assert!((top.score - 1.0).abs() < 1e-9);
        assert!(
            report
                .ranking
                .iter()
                .take_while(|r| (r.score - 1.0).abs() < 1e-9)
                .any(|r| r.label.contains("total + 100")),
            "faulty statement not in the top tie group:\n{}",
            render_ranking(&report, None, 10)
        );
    }

    #[test]
    fn localize_change_end_to_end_ranks_changed_node_highly() {
        let base = parse_program(BASE).unwrap();
        let modified = parse_program(MODIFIED).unwrap();
        let outcome = localize_change(&base, &modified, "f", &LocalizeConfig::default()).unwrap();
        assert!(outcome.report.failing > 0, "the change introduces failures");
        assert!(!outcome.changed_nodes.is_empty());
        let rank = outcome.best_changed_rank.expect("changed node is ranked");
        // The changed node sits in the top tie group — well inside the
        // first third of the ranking.
        let exam = outcome.exam.unwrap();
        assert!(
            exam <= 0.34,
            "changed node ranked too low: rank {rank}, EXAM {exam:.2}\n{}",
            render_ranking(&outcome.report, None, 20)
        );
    }

    #[test]
    fn non_terminating_and_assume_runs_are_excluded() {
        let program = parse_program(
            "proc f(int x) {
               assume(x >= 0);
               while (x > 0) { x = x + 1; }
               assert(x == 0);
             }",
        )
        .unwrap();
        let tests: Vec<ValueEnv> = [-1i64, 1, 0]
            .iter()
            .map(|&x| {
                let mut env = ValueEnv::new();
                env.insert("x".to_string(), Value::Int(x));
                env
            })
            .collect();
        let report = localize(
            &program,
            "f",
            &tests,
            Formula::Ochiai,
            ConcreteConfig { fuel: 1_000 },
        )
        .unwrap();
        // x = -1 violates the assume; x = 1 loops forever; only x = 0
        // contributes (a passing run).
        assert_eq!(report.failing, 0);
        assert_eq!(report.passing, 1);
    }

    mod formula_props {
        use super::*;
        use proptest::prelude::*;

        const ALL: [Formula; 4] = [
            Formula::Ochiai,
            Formula::Tarantula,
            Formula::Jaccard,
            Formula::DStar2,
        ];

        proptest! {
            /// Never executed by a failing test ⇒ score 0, for every
            /// formula.
            #[test]
            fn zero_fail_coverage_scores_zero(ep in 0u32..50, nf in 0u32..50, np in 0u32..50) {
                for formula in ALL {
                    prop_assert_eq!(formula.score(0, ep, nf, np), 0.0);
                }
            }

            /// Scores are finite and non-negative over the whole counter
            /// space (D*'s zero-denominator case is capped, not infinite).
            #[test]
            fn scores_are_finite_and_non_negative(
                ef in 0u32..50, ep in 0u32..50, nf in 0u32..50, np in 0u32..50,
            ) {
                for formula in ALL {
                    let score = formula.score(ef, ep, nf, np);
                    prop_assert!(score.is_finite(), "{formula}: {score}");
                    prop_assert!(score >= 0.0, "{formula}: {score}");
                }
            }

            /// Ochiai, Tarantula and Jaccard stay within [0, 1].
            #[test]
            fn normalized_formulas_stay_in_unit_interval(
                ef in 0u32..50, ep in 0u32..50, nf in 0u32..50, np in 0u32..50,
            ) {
                for formula in [Formula::Ochiai, Formula::Tarantula, Formula::Jaccard] {
                    let score = formula.score(ef, ep, nf, np);
                    prop_assert!((0.0..=1.0).contains(&score), "{formula}: {score}");
                }
            }

            /// More failing coverage never lowers suspiciousness (other
            /// counters fixed; total failing tests grow with ef).
            #[test]
            fn monotone_in_failing_coverage(
                ef in 0u32..49, ep in 0u32..50, nf in 0u32..50, np in 0u32..50,
            ) {
                for formula in ALL {
                    let lo = formula.score(ef, ep, nf, np);
                    let hi = formula.score(ef + 1, ep, nf, np);
                    prop_assert!(hi >= lo, "{formula}: {hi} < {lo}");
                }
            }

            /// More passing coverage never raises suspiciousness.
            #[test]
            fn antitone_in_passing_coverage(
                ef in 0u32..50, ep in 0u32..49, nf in 0u32..50, np in 0u32..50,
            ) {
                for formula in ALL {
                    let lo = formula.score(ef, ep + 1, nf, np);
                    let hi = formula.score(ef, ep, nf, np);
                    prop_assert!(hi >= lo, "{formula}: {hi} < {lo}");
                }
            }
        }
    }

    #[test]
    fn rank_of_is_tie_pessimistic() {
        let modified = parse_program(MODIFIED).unwrap();
        let tests: Vec<ValueEnv> = [6i64, 0]
            .iter()
            .map(|&x| {
                let mut env = ValueEnv::new();
                env.insert("x".to_string(), Value::Int(x));
                env
            })
            .collect();
        let report = localize(
            &modified,
            "f",
            &tests,
            Formula::Ochiai,
            ConcreteConfig::default(),
        )
        .unwrap();
        let top_score = report.ranking[0].score;
        let ties = report
            .ranking
            .iter()
            .filter(|r| (r.score - top_score).abs() < 1e-12)
            .count();
        assert_eq!(report.rank_of(report.ranking[0].node), Some(ties));
    }
}
