//! Turning symbolic summaries into concrete input environments.
//!
//! Every evolution application starts the same way: take the path
//! conditions of a [`SymbolicSummary`] (full or DiSE-directed), solve each
//! one, and read the model back as a concrete assignment to the
//! procedure's symbolic inputs. Unlike the regression crate's test *call
//! strings* (which, faithful to §5.2, only carry method arguments), these
//! environments keep values for **all** symbolic inputs — including
//! uninitialized globals — because the concrete executor needs the full
//! entry state to replay a path.

use dise_solver::{Solver, SymVar};
use dise_symexec::{SymbolicSummary, ValueEnv};

/// A solved path condition: the concrete entry state plus the rendered
/// path condition it came from.
#[derive(Debug, Clone)]
pub struct SolvedInput {
    /// Concrete values for every symbolic input constrained by the path
    /// condition (unconstrained inputs are absent; the executors default
    /// them to `0` / `false`).
    pub env: ValueEnv,
    /// The originating path condition, rendered.
    pub pc: String,
}

/// Counters for one solving sweep.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SolveStats {
    /// Path conditions processed.
    pub path_conditions: usize,
    /// Path conditions the solver could not re-solve (skipped).
    pub unsolved: usize,
}

/// Solves every path condition of `summary` to a concrete input.
///
/// Summaries produced by this workspace's executor contain only feasible
/// paths, so `unsolved` stays `0` in practice; it is reported for
/// completeness (a solver budget too small to *re-solve* a feasible
/// condition would show up here rather than panic).
pub fn solve_inputs(summary: &SymbolicSummary) -> (Vec<SolvedInput>, SolveStats) {
    let mut solver = Solver::new();
    let mut stats = SolveStats::default();
    let mut out = Vec::new();
    for pc in summary.path_conditions() {
        stats.path_conditions += 1;
        let outcome = solver.check(pc.conjuncts());
        let Some(model) = outcome.model() else {
            stats.unsolved += 1;
            continue;
        };
        out.push(SolvedInput {
            env: env_from_model(summary.inputs(), model),
            pc: pc.to_string(),
        });
    }
    (out, stats)
}

/// Reads a model back as a concrete environment over the given inputs.
/// Inputs the model leaves unassigned are omitted (executors apply the
/// `0` / `false` default).
pub fn env_from_model(inputs: &[(String, SymVar)], model: &dise_solver::Model) -> ValueEnv {
    let mut env = ValueEnv::new();
    for (name, var) in inputs {
        if let Some(value) = model.value(var) {
            env.insert(name.clone(), value);
        }
    }
    env
}

/// Renders a concrete input environment as `name = value` pairs, sorted by
/// name — the format the reports embed.
pub fn render_env(env: &ValueEnv) -> String {
    if env.is_empty() {
        return "(any input)".to_string();
    }
    env.iter()
        .map(|(name, value)| format!("{name} = {value}"))
        .collect::<Vec<_>>()
        .join(", ")
}

/// Parses [`render_env`]'s format back into an environment, so witness
/// inputs written to reports or files can be replayed later.
///
/// Accepts `name = value` pairs separated by commas; values are `true`,
/// `false`, or a (possibly negative) 64-bit integer. The special form
/// `(any input)` parses to the empty environment.
///
/// # Errors
///
/// Returns a description of the first malformed pair.
pub fn parse_env(text: &str) -> Result<ValueEnv, String> {
    use dise_solver::model::Value;
    let text = text.trim();
    let mut env = ValueEnv::new();
    if text.is_empty() || text == "(any input)" {
        return Ok(env);
    }
    for pair in text.split(',') {
        let Some((name, value)) = pair.split_once('=') else {
            return Err(format!("expected `name = value`, found {pair:?}"));
        };
        let name = name.trim();
        if name.is_empty() {
            return Err(format!("empty variable name in {pair:?}"));
        }
        let value = match value.trim() {
            "true" => Value::Bool(true),
            "false" => Value::Bool(false),
            number => Value::Int(
                number
                    .parse::<i64>()
                    .map_err(|e| format!("bad value {number:?}: {e}"))?,
            ),
        };
        env.insert(name.to_string(), value);
    }
    Ok(env)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dise_solver::model::Value;
    use dise_symexec::{ExecConfig, Executor, FullExploration};

    fn summary_of(src: &str, proc: &str) -> SymbolicSummary {
        let program = dise_ir::parse_program(src).unwrap();
        dise_ir::check_program(&program).unwrap();
        let mut executor = Executor::new(&program, proc, ExecConfig::default()).unwrap();
        executor.explore(&mut FullExploration)
    }

    #[test]
    fn solves_every_feasible_path() {
        let summary = summary_of(
            "proc f(int x) { if (x > 0) { x = 1; } else { x = 2; } }",
            "f",
        );
        let (inputs, stats) = solve_inputs(&summary);
        assert_eq!(stats.path_conditions, 2);
        assert_eq!(stats.unsolved, 0);
        assert_eq!(inputs.len(), 2);
        // One input is positive, the other is not.
        let xs: Vec<i64> = inputs
            .iter()
            .map(|i| match i.env.get("x") {
                Some(Value::Int(v)) => *v,
                other => panic!("expected an int for x, got {other:?}"),
            })
            .collect();
        assert!(xs.iter().any(|&x| x > 0));
        assert!(xs.iter().any(|&x| x <= 0));
    }

    #[test]
    fn globals_appear_in_solved_inputs() {
        let summary = summary_of(
            "int g;
             proc f(int x) { if (g > 5) { x = 1; } }",
            "f",
        );
        let (inputs, _) = solve_inputs(&summary);
        assert!(inputs.iter().any(|i| matches!(
            i.env.get("g"),
            Some(Value::Int(v)) if *v > 5
        )));
    }

    #[test]
    fn render_env_is_sorted_and_readable() {
        let mut env = ValueEnv::new();
        env.insert("z".into(), Value::Int(3));
        env.insert("a".into(), Value::Bool(true));
        assert_eq!(render_env(&env), "a = true, z = 3");
        assert_eq!(render_env(&ValueEnv::new()), "(any input)");
    }

    #[test]
    fn env_round_trips_through_the_report_format() {
        let mut env = ValueEnv::new();
        env.insert("pedal".into(), Value::Int(-3));
        env.insert("skid".into(), Value::Bool(true));
        env.insert("auto".into(), Value::Bool(false));
        let rendered = render_env(&env);
        assert_eq!(parse_env(&rendered).unwrap(), env);
        assert_eq!(parse_env("(any input)").unwrap(), ValueEnv::new());
        assert_eq!(parse_env("").unwrap(), ValueEnv::new());
    }

    #[test]
    fn parse_env_rejects_malformed_pairs() {
        assert!(parse_env("x").unwrap_err().contains("name = value"));
        assert!(parse_env("= 3").unwrap_err().contains("empty variable"));
        assert!(parse_env("x = maybe").unwrap_err().contains("bad value"));
    }

    #[test]
    fn pc_strings_accompany_inputs() {
        let summary = summary_of("proc f(int x) { if (x == 7) { x = 0; } }", "f");
        let (inputs, _) = solve_inputs(&summary);
        assert!(inputs.iter().any(|i| i.pc.contains("X == 7")));
    }
}
