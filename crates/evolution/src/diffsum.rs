//! Differential program summarization over affected paths.
//!
//! [`crate::witness`] compares the two program versions on *single
//! inputs*. This module strengthens the comparison to *input regions*
//! using the constraint solver, in the spirit of the differential symbolic
//! execution work the paper cites as \[27\]:
//!
//! 1. solve an affected path condition to a concrete input *i*;
//! 2. run both versions **concolically** on *i*, obtaining for each
//!    version the path condition of the executed path and the *symbolic*
//!    final value of every global (`PC_b`, `E_b` and `PC_m`, `E_m`);
//! 3. align the two runs' symbolic variables by input name, then ask the
//!    solver whether `PC_b ∧ PC_m ∧ E_b[g] ≠ E_m[g]` is satisfiable for
//!    any shared global `g`.
//!
//! *Unsatisfiable for all globals* proves the two paths compute identical
//! global states on **every** input in the overlap region `PC_b ∧ PC_m` —
//! the path is **effect-preserving** even though the static analysis
//! flagged it as affected. *Satisfiable* yields a model: a fresh witness
//! input on which the versions genuinely differ, usually more informative
//! than the original solved input (the solver picks any point in the
//! diverging region, not just the one DiSE's path condition happened to
//! produce).
//!
//! The classification is per affected path: it covers the inputs in the
//! overlap of the two executed paths. Inputs of the affected region
//! outside the overlap are covered by the other affected paths' entries.

use std::collections::BTreeMap;

use dise_core::dise::DiseConfig;
use dise_core::session::AnalysisSession;
use dise_ir::ast::Program;
use dise_solver::{SatResult, Solver, SymExpr, SymVar, VarPool};
use dise_symexec::concolic::ConcolicExecutor;
use dise_symexec::concrete::{ConcreteConfig, ConcreteOutcome};
use dise_symexec::ValueEnv;

use crate::inputs::{env_from_model, solve_inputs, SolveStats};
use crate::witness::shared_globals;
use crate::EvolutionError;

/// Configuration of a differential summarization run.
#[derive(Debug, Clone, Default)]
pub struct DiffSumConfig {
    /// Settings of the underlying DiSE run.
    pub dise: DiseConfig,
    /// Settings of the concolic replays.
    pub concrete: ConcreteConfig,
    /// Budget of the solver deciding effect equivalence. A starved budget
    /// degrades verdicts to [`PathClass::Undecided`] — never to a wrong
    /// `EffectPreserving`.
    pub solver: dise_solver::SolverConfig,
    /// Stop after this many affected path conditions (`None` = all).
    pub max_paths: Option<usize>,
}

/// The classification of one affected path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PathClass {
    /// The two versions end differently on the original input (e.g., only
    /// the modified version fails an assertion).
    OutcomeDiverging {
        /// Base version's outcome.
        base: ConcreteOutcome,
        /// Modified version's outcome.
        modified: ConcreteOutcome,
    },
    /// Some shared global can end with different values: the solver found
    /// an input in the overlap region where the versions disagree.
    EffectDiverging {
        /// The globals that can diverge.
        vars: Vec<String>,
        /// A solver-produced input demonstrating the divergence.
        witness: ValueEnv,
    },
    /// Proven: on every input in the overlap of the two executed paths,
    /// all shared globals end with identical values.
    EffectPreserving,
    /// The solver could not decide equivalence for this variable
    /// (nonlinear constraints beyond its budget) — conservatively *not*
    /// proven equivalent.
    Undecided {
        /// The first variable whose comparison came back unknown.
        var: String,
    },
}

impl PathClass {
    /// `true` when the path demonstrably changes behaviour.
    pub fn is_diverging(&self) -> bool {
        matches!(
            self,
            PathClass::OutcomeDiverging { .. } | PathClass::EffectDiverging { .. }
        )
    }
}

/// One affected path condition with its classification.
#[derive(Debug, Clone)]
pub struct ClassifiedPath {
    /// The affected path condition (rendered).
    pub pc: String,
    /// The input it was solved to.
    pub input: ValueEnv,
    /// The classification.
    pub class: PathClass,
}

/// The result of a differential summarization run.
#[derive(Debug, Clone)]
pub struct DiffSummary {
    /// The analyzed procedure.
    pub proc_name: String,
    /// One entry per solved affected path condition.
    pub paths: Vec<ClassifiedPath>,
    /// Solving counters.
    pub solve_stats: SolveStats,
}

impl DiffSummary {
    /// Number of paths proven effect-preserving.
    pub fn preserving_count(&self) -> usize {
        self.paths
            .iter()
            .filter(|p| p.class == PathClass::EffectPreserving)
            .count()
    }

    /// Number of paths with demonstrated divergence (outcome or effect).
    pub fn diverging_count(&self) -> usize {
        self.paths.iter().filter(|p| p.class.is_diverging()).count()
    }

    /// Number of paths the solver could not decide.
    pub fn undecided_count(&self) -> usize {
        self.paths
            .iter()
            .filter(|p| matches!(p.class, PathClass::Undecided { .. }))
            .count()
    }

    /// Renders the summary as indented text, one line per classified
    /// path.
    pub fn render(&self) -> String {
        let mut out = format!(
            "{}: {} affected path(s) — {} diverging, {} preserving, {} undecided\n",
            self.proc_name,
            self.paths.len(),
            self.diverging_count(),
            self.preserving_count(),
            self.undecided_count(),
        );
        for path in &self.paths {
            let verdict = match &path.class {
                PathClass::EffectPreserving => "preserving".to_string(),
                PathClass::Undecided { var } => format!("undecided on `{var}`"),
                PathClass::OutcomeDiverging { base, modified } => {
                    format!("outcome {base} -> {modified}")
                }
                PathClass::EffectDiverging { vars, witness } => format!(
                    "diverges on {} (witness: {})",
                    vars.join(", "),
                    crate::inputs::render_env(witness)
                ),
            };
            out.push_str(&format!("  {} : {verdict}\n", path.pc));
        }
        out
    }
}

/// Runs DiSE on `base` → `modified` and classifies every affected path as
/// effect-preserving or diverging.
///
/// Opens a fresh [`AnalysisSession`] for the pair; use
/// [`classify_changes_with`] to share one session's exploration with
/// other applications.
///
/// # Errors
///
/// [`EvolutionError::Dise`] if the DiSE pipeline fails,
/// [`EvolutionError::Exec`] if either version cannot be executed.
pub fn classify_changes(
    base: &Program,
    modified: &Program,
    proc_name: &str,
    config: &DiffSumConfig,
) -> Result<DiffSummary, EvolutionError> {
    let mut session = AnalysisSession::open(base, modified, proc_name, config.dise.clone())?;
    let summary = classify_changes_with(&mut session, config)?;
    session.finalize();
    Ok(summary)
}

/// [`classify_changes`] over a shared [`AnalysisSession`]: borrows the
/// session's flattened programs and directed exploration instead of
/// recomputing them. The session's [`DiseConfig`] governs the pipeline —
/// [`DiffSumConfig::dise`] is not consulted.
///
/// # Errors
///
/// [`EvolutionError::Dise`] if a pipeline stage fails,
/// [`EvolutionError::Exec`] if either version cannot be executed.
pub fn classify_changes_with(
    session: &mut AnalysisSession,
    config: &DiffSumConfig,
) -> Result<DiffSummary, EvolutionError> {
    let (solved, solve_stats) = {
        let summary = &session.explored()?.summary;
        solve_inputs(summary)
    };
    let flat_base = session.base_flat();
    let flat_mod = session.mod_flat();
    let proc_name = session.proc_name();
    let base_exec = ConcolicExecutor::new(flat_base, proc_name, config.concrete)?;
    let mod_exec = ConcolicExecutor::new(flat_mod, proc_name, config.concrete)?;
    let shared = shared_globals(flat_base, flat_mod);
    let alignment = Alignment::new(base_exec.inputs(), mod_exec.inputs());

    let limit = config.max_paths.unwrap_or(usize::MAX);
    let mut solver = Solver::with_config(config.solver);
    let mut paths = Vec::new();
    for item in solved.into_iter().take(limit) {
        let base_run = base_exec.run(&item.env);
        let mod_run = mod_exec.run(&item.env);

        let class = if base_run.outcome != mod_run.outcome {
            PathClass::OutcomeDiverging {
                base: base_run.outcome.clone(),
                modified: mod_run.outcome.clone(),
            }
        } else {
            // Build the overlap region PC_b ∧ PC_m in the aligned
            // namespace.
            let mut region: Vec<SymExpr> = Vec::new();
            for conjunct in base_run.pc.conjuncts() {
                region.push(alignment.rename_base(conjunct));
            }
            for conjunct in mod_run.pc.conjuncts() {
                region.push(alignment.rename_mod(conjunct));
            }
            classify_effects(
                &mut solver,
                &region,
                &shared,
                &base_run.final_env,
                &mod_run.final_env,
                &alignment,
                &item.env,
            )
        };
        paths.push(ClassifiedPath {
            pc: item.pc,
            input: item.env,
            class,
        });
    }

    Ok(DiffSummary {
        proc_name: proc_name.to_string(),
        paths,
        solve_stats,
    })
}

#[allow(clippy::too_many_arguments)]
fn classify_effects(
    solver: &mut Solver,
    region: &[SymExpr],
    shared: &[String],
    base_env: &dise_symexec::Env,
    mod_env: &dise_symexec::Env,
    alignment: &Alignment,
    original_input: &ValueEnv,
) -> PathClass {
    let mut diverging = Vec::new();
    let mut witness = None;
    for name in shared {
        let (Some(b), Some(m)) = (base_env.get(name), mod_env.get(name)) else {
            continue;
        };
        if b.ty() != m.ty() {
            // A type-changed global cannot be compared symbolically; the
            // declaration change itself is already reported by the diff.
            continue;
        }
        let b = alignment.rename_base(b);
        let m = alignment.rename_mod(m);
        let differs = SymExpr::ne(b, m);
        match differs {
            // Syntactically identical effects fold away — decided without
            // the solver.
            SymExpr::Bool(false) => continue,
            // Constant-vs-constant effects fold to a definite divergence;
            // the original input (which satisfies the whole region by
            // construction) is already a witness.
            SymExpr::Bool(true) => {
                diverging.push(name.clone());
                if witness.is_none() {
                    witness = Some(original_input.clone());
                }
                continue;
            }
            _ => {}
        }
        let mut constraints = region.to_vec();
        constraints.push(differs);
        let outcome = solver.check(&constraints);
        match outcome.result() {
            SatResult::Sat => {
                diverging.push(name.clone());
                if witness.is_none() {
                    witness = outcome
                        .model()
                        .map(|model| env_from_model(&alignment.fresh_inputs, model));
                }
            }
            SatResult::Unsat => {}
            SatResult::Unknown => {
                return PathClass::Undecided { var: name.clone() };
            }
        }
    }
    if diverging.is_empty() {
        PathClass::EffectPreserving
    } else {
        PathClass::EffectDiverging {
            vars: diverging,
            witness: witness.unwrap_or_default(),
        }
    }
}

/// A shared symbolic namespace for two independently-allocated variable
/// pools: base and modified inputs with the same program name (and type)
/// map to one fresh variable, so constraints from both runs can be
/// conjoined soundly.
struct Alignment {
    /// Program name → fresh variable, in base-then-mod declaration order.
    fresh_inputs: Vec<(String, SymVar)>,
    base_map: BTreeMap<u32, SymVar>,
    mod_map: BTreeMap<u32, SymVar>,
}

impl Alignment {
    fn new(base_inputs: &[(String, SymVar)], mod_inputs: &[(String, SymVar)]) -> Alignment {
        let mut pool = VarPool::new();
        let mut fresh_inputs: Vec<(String, SymVar)> = Vec::new();
        let mut base_map = BTreeMap::new();
        let mut mod_map = BTreeMap::new();
        for (name, var) in base_inputs {
            let fresh = pool.fresh(var.name(), var.ty());
            base_map.insert(var.id(), fresh.clone());
            fresh_inputs.push((name.clone(), fresh));
        }
        for (name, var) in mod_inputs {
            let matching = fresh_inputs
                .iter()
                .find(|(n, f)| n == name && f.ty() == var.ty())
                .map(|(_, f)| f.clone());
            let fresh = match matching {
                Some(fresh) => fresh,
                None => {
                    let fresh = pool.fresh(var.name(), var.ty());
                    fresh_inputs.push((name.clone(), fresh.clone()));
                    fresh
                }
            };
            mod_map.insert(var.id(), fresh);
        }
        Alignment {
            fresh_inputs,
            base_map,
            mod_map,
        }
    }

    fn rename_base(&self, expr: &SymExpr) -> SymExpr {
        rename(expr, &self.base_map)
    }

    fn rename_mod(&self, expr: &SymExpr) -> SymExpr {
        rename(expr, &self.mod_map)
    }
}

/// Rebuilds `expr` with every variable replaced per `map`, using the smart
/// constructors (renaming is a bijection on variables, so any folding the
/// constructors perform is sound).
///
/// # Panics
///
/// Panics if `expr` contains a variable absent from `map` — impossible for
/// expressions produced by an executor whose inputs seeded the map.
fn rename(expr: &SymExpr, map: &BTreeMap<u32, SymVar>) -> SymExpr {
    match expr {
        SymExpr::Int(v) => SymExpr::int(*v),
        SymExpr::Bool(b) => SymExpr::boolean(*b),
        SymExpr::Var(var) => {
            let fresh = map
                .get(&var.id())
                .unwrap_or_else(|| panic!("variable {} missing from alignment", var.name()));
            SymExpr::var(fresh)
        }
        SymExpr::Unary { op, arg } => SymExpr::unary(*op, rename(arg, map)),
        SymExpr::Binary { op, lhs, rhs } => {
            SymExpr::binary(*op, rename(lhs, map), rename(rhs, map))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dise_ir::parse_program;
    use dise_solver::model::Value;

    fn classify(base_src: &str, mod_src: &str, proc: &str) -> DiffSummary {
        let base = parse_program(base_src).unwrap();
        let modified = parse_program(mod_src).unwrap();
        classify_changes(&base, &modified, proc, &DiffSumConfig::default()).unwrap()
    }

    #[test]
    fn semantically_equivalent_rewrite_is_proven_preserving() {
        // `x + x` vs `2 * x` — every affected path is effect-preserving,
        // and unlike the concrete witness check this is a *proof* over the
        // whole overlap region.
        let summary = classify(
            "int out;
             proc f(int x) { out = x + x; if (out > 10) { out = 0; } }",
            "int out;
             proc f(int x) { out = 2 * x; if (out > 10) { out = 0; } }",
            "f",
        );
        assert!(!summary.paths.is_empty());
        assert_eq!(summary.preserving_count(), summary.paths.len());
        assert_eq!(summary.diverging_count(), 0);
    }

    #[test]
    fn real_change_produces_a_solver_witness() {
        let summary = classify(
            "int out;
             proc f(int x) { if (x > 0) { out = 1; } else { out = 2; } }",
            "int out;
             proc f(int x) { if (x >= 0) { out = 1; } else { out = 2; } }",
            "f",
        );
        assert!(summary.diverging_count() >= 1);
        let diverging = summary
            .paths
            .iter()
            .find(|p| p.class.is_diverging())
            .unwrap();
        let PathClass::EffectDiverging { vars, witness } = &diverging.class else {
            panic!("expected effect divergence, got {:?}", diverging.class);
        };
        assert_eq!(vars, &["out".to_string()]);
        // The solver witness must lie in the diverging region: x = 0 is
        // the only input where the versions differ on this path pair.
        assert_eq!(witness.get("x"), Some(&Value::Int(0)));
    }

    #[test]
    fn mixed_change_separates_diverging_from_preserving_arms() {
        // Both arms change, but only the then-arm changes behaviour: the
        // else-arm's `0 + 0` → `0 * 1` rewrite is semantically identity.
        let summary = classify(
            "int out;
             proc f(int x) { if (x > 0) { out = x; } else { out = 0 + 0; } }",
            "int out;
             proc f(int x) { if (x > 0) { out = x + 1; } else { out = 0 * 1; } }",
            "f",
        );
        assert!(summary.diverging_count() >= 1);
        assert!(summary.preserving_count() >= 1);
        assert_eq!(summary.undecided_count(), 0);
    }

    #[test]
    fn introduced_assertion_failure_is_outcome_divergence() {
        let summary = classify(
            "proc f(int x) { assert(x < 100 || x >= 100); }",
            "proc f(int x) { assert(x < 100); }",
            "f",
        );
        assert!(summary.paths.iter().any(
            |p| matches!(&p.class, PathClass::OutcomeDiverging { base, modified }
                if base.is_completed() && modified.is_failure())
        ));
    }

    #[test]
    fn constant_effects_diverge_without_the_solver() {
        // Both versions write constants, so the comparison folds to a
        // definite divergence and the original input doubles as the
        // witness — even a zero-budget solver cannot stop this verdict.
        let base = parse_program(
            "int out;
             proc f(int x) { if (x > 0) { out = 1; } else { out = 2; } }",
        )
        .unwrap();
        let modified = parse_program(
            "int out;
             proc f(int x) { if (x > 0) { out = 9; } else { out = 2; } }",
        )
        .unwrap();
        let config = DiffSumConfig {
            solver: dise_solver::SolverConfig {
                case_budget: 0,
                ..dise_solver::SolverConfig::default()
            },
            ..DiffSumConfig::default()
        };
        let summary = classify_changes(&base, &modified, "f", &config).unwrap();
        let diverging = summary
            .paths
            .iter()
            .find(|p| p.class.is_diverging())
            .expect("the constant change must diverge");
        let PathClass::EffectDiverging { vars, witness } = &diverging.class else {
            panic!("expected effect divergence");
        };
        assert_eq!(vars, &["out".to_string()]);
        // The witness is the original solved input, which lies in the
        // then-region.
        assert!(matches!(witness.get("x"), Some(Value::Int(v)) if *v > 0));
    }

    #[test]
    fn rename_aligns_independent_pools() {
        let mut pool_a = VarPool::new();
        let mut pool_b = VarPool::new();
        let xa = pool_a.fresh("X", dise_solver::SymTy::Int);
        let _pad = pool_b.fresh("PAD", dise_solver::SymTy::Int);
        let xb = pool_b.fresh("X", dise_solver::SymTy::Int);
        assert_ne!(xa.id(), xb.id());

        let alignment = Alignment::new(
            &[("x".to_string(), xa.clone())],
            &[("pad".to_string(), _pad), ("x".to_string(), xb.clone())],
        );
        let ea = alignment.rename_base(&SymExpr::gt(SymExpr::var(&xa), SymExpr::int(0)));
        let eb = alignment.rename_mod(&SymExpr::gt(SymExpr::var(&xb), SymExpr::int(0)));
        assert_eq!(ea, eb, "same program name must align to one variable");
    }

    #[test]
    fn type_changed_global_is_skipped_not_compared() {
        let summary = classify(
            "int flag;
             proc f(int x) { if (x > 0) { flag = 1; } }",
            "bool flag;
             proc f(int x) { if (x >= 0) { flag = true; } }",
            "f",
        );
        // No panic, and `flag` never appears as a diverging var.
        for path in &summary.paths {
            if let PathClass::EffectDiverging { vars, .. } = &path.class {
                assert!(vars.iter().all(|v| v != "flag"));
            }
        }
    }
}
