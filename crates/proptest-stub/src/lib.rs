//! Offline stand-in for the `proptest` property-testing crate.
//!
//! The build environment cannot reach crates.io, so this workspace vendors
//! a minimal, deterministic re-implementation of the proptest surface the
//! test suites use: the [`proptest!`] macro, `any::<T>()`, integer-range
//! strategies, [`strategy::Strategy::prop_map`], `prop::collection::vec`,
//! and the `prop_assert!`/`prop_assert_eq!`/`prop_assume!` assertion
//! macros.
//!
//! Differences from real proptest, by design:
//!
//! * generation is a fixed splitmix64 stream seeded from the test name —
//!   every run explores the same cases (reproducible CI);
//! * there is no shrinking: a failing case panics with its message
//!   directly;
//! * rejected cases (`prop_assume!`) are retried up to a bounded factor of
//!   the configured case count.

pub mod strategy {
    use super::test_runner::Rng;

    /// A value generator. The associated function [`Strategy::generate`]
    /// replaces proptest's tree-based `new_tree`.
    pub trait Strategy {
        /// The generated value type.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut Rng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;

        fn generate(&self, rng: &mut Rng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Marker strategy returned by [`any`](super::arbitrary::any).
    pub struct Any<T>(pub(crate) std::marker::PhantomData<T>);

    macro_rules! any_impl {
        ($($ty:ty => $draw:expr),+ $(,)?) => {
            $(impl Strategy for Any<$ty> {
                type Value = $ty;
                fn generate(&self, rng: &mut Rng) -> $ty {
                    let draw: fn(&mut Rng) -> $ty = $draw;
                    draw(rng)
                }
            })+
        };
    }

    any_impl! {
        u64 => |rng| rng.next(),
        u32 => |rng| rng.next() as u32,
        usize => |rng| rng.next() as usize,
        i64 => |rng| rng.next() as i64,
        i32 => |rng| rng.next() as i32,
        bool => |rng| rng.next() & 1 == 1,
    }

    macro_rules! range_impl {
        ($($ty:ty),+ $(,)?) => {
            $(
                impl Strategy for std::ops::Range<$ty> {
                    type Value = $ty;
                    fn generate(&self, rng: &mut Rng) -> $ty {
                        assert!(self.start < self.end, "empty range strategy");
                        let span = (self.end as i128) - (self.start as i128);
                        let offset = (rng.next() as i128).rem_euclid(span);
                        ((self.start as i128) + offset) as $ty
                    }
                }
                impl Strategy for std::ops::RangeInclusive<$ty> {
                    type Value = $ty;
                    fn generate(&self, rng: &mut Rng) -> $ty {
                        let (start, end) = (*self.start(), *self.end());
                        assert!(start <= end, "empty range strategy");
                        let span = (end as i128) - (start as i128) + 1;
                        let offset = (rng.next() as i128).rem_euclid(span);
                        ((start as i128) + offset) as $ty
                    }
                }
            )+
        };
    }

    range_impl!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    /// Fixed-count vector strategy (see `prop::collection::vec`).
    pub struct VecStrategy<S> {
        pub(crate) element: S,
        pub(crate) count: usize,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut Rng) -> Vec<S::Value> {
            (0..self.count)
                .map(|_| self.element.generate(rng))
                .collect()
        }
    }
}

pub mod arbitrary {
    use super::strategy::Any;

    /// `any::<T>()` — the full-range strategy for `T`.
    pub fn any<T>() -> Any<T> {
        Any(std::marker::PhantomData)
    }
}

pub mod collection {
    use super::strategy::{Strategy, VecStrategy};

    /// A vector of `count` draws from `element`.
    pub fn vec<S: Strategy>(element: S, count: usize) -> VecStrategy<S> {
        VecStrategy { element, count }
    }
}

/// The `proptest::prop` facade module.
pub mod prop {
    pub use super::collection;
}

pub mod test_runner {
    /// Deterministic splitmix64 generator.
    pub struct Rng {
        state: u64,
    }

    impl Rng {
        /// Seeds from an arbitrary string (the test name).
        pub fn new(seed: &str) -> Rng {
            let mut state = 0x9e37_79b9_7f4a_7c15u64;
            for b in seed.bytes() {
                state = state.wrapping_mul(31).wrapping_add(u64::from(b));
            }
            Rng { state }
        }

        /// Next raw 64-bit draw.
        // Not an iterator: draws are infinite and the receiver is a plain
        // generator, matching proptest's own `Rng` surface.
        #[allow(clippy::should_implement_trait)]
        pub fn next(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }

    /// Why a test case did not pass.
    pub enum TestCaseError {
        /// `prop_assume!` rejected the inputs; the case is retried.
        Reject,
        /// `prop_assert!`-family failure; the test panics with the message.
        Fail(String),
    }

    /// Runner configuration (`ProptestConfig`).
    #[derive(Clone, Copy)]
    pub struct Config {
        /// Number of successful cases required.
        pub cases: u32,
    }

    impl Config {
        /// The constructor the suites use.
        pub fn with_cases(cases: u32) -> Config {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Config {
            Config { cases: 64 }
        }
    }
}

pub mod prelude {
    pub use super::arbitrary::any;
    pub use super::prop;
    pub use super::strategy::Strategy;
    pub use super::test_runner::Config as ProptestConfig;
    // Macro re-exports: `#[macro_export]` puts them at the crate root;
    // pulling them into the prelude mirrors real proptest.
    pub use super::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// The property-test declaration macro. Accepts the same shape as real
/// proptest: an optional `#![proptest_config(...)]` header followed by
/// `#[test] fn name(arg in strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            ($crate::test_runner::Config::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($config:expr)) => {};
    (($config:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::Config = $config;
            let mut rng = $crate::test_runner::Rng::new(concat!(module_path!(), "::", stringify!($name)));
            let mut passed: u32 = 0;
            let mut attempts: u32 = 0;
            let max_attempts = config.cases.saturating_mul(16).max(16);
            while passed < config.cases && attempts < max_attempts {
                attempts += 1;
                $(let $arg = $crate::strategy::Strategy::generate(&($strategy), &mut rng);)+
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                match outcome {
                    Ok(()) => passed += 1,
                    Err($crate::test_runner::TestCaseError::Reject) => {}
                    Err($crate::test_runner::TestCaseError::Fail(message)) => {
                        panic!("property failed (case {attempts}): {message}");
                    }
                }
            }
            assert!(
                passed > 0,
                "every generated case was rejected by prop_assume!"
            );
        }
        $crate::__proptest_items! { ($config) $($rest)* }
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Fails the current case unless the two values compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if !(left == right) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!("assertion failed: {:?} != {:?}", left, right),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        if !(left == right) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!($($fmt)+),
            ));
        }
    }};
}

/// Fails the current case if the two values compare equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if left == right {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!("assertion failed: {:?} == {:?}", left, right),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        if left == right {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!($($fmt)+),
            ));
        }
    }};
}

/// Rejects the current case (it is regenerated, not failed).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}
