//! Offline stand-in for the `proptest` property-testing crate.
//!
//! The build environment cannot reach crates.io, so this workspace vendors
//! a minimal, deterministic re-implementation of the proptest surface the
//! test suites use. **Exactly this subset is implemented:**
//!
//! * the [`proptest!`] macro — optional `#![proptest_config(...)]` header
//!   followed by `#[test] fn name(arg in strategy, ...) { body }` items;
//! * `any::<T>()` for `u64`, `u32`, `usize`, `i64`, `i32`, `bool`;
//! * `Range`/`RangeInclusive` strategies over the primitive integers;
//! * [`strategy::Strategy::prop_map`] and `prop::collection::vec`
//!   (fixed element count);
//! * `prop_assert!`, `prop_assert_eq!`, `prop_assert_ne!`, `prop_assume!`;
//! * `ProptestConfig::with_cases(n)` (the `cases` field is the only knob).
//!
//! How a run works: every case draws a fresh **case seed** from a
//! splitmix64 stream keyed on the test's module path and name, then
//! generates all argument values from a generator seeded with that case
//! seed. The stream is fixed, so every run of the suite explores the same
//! cases (reproducible CI), yet each case is independently replayable
//! from its seed alone.
//!
//! On a `prop_assert!`-family failure the runner *shrinks at the seed
//! level*: it rescans small seeds ascending and then walks a halving
//! ladder down from the failing seed, re-running the property on each
//! candidate, and reports the smallest failing seed it finds. The panic
//! message includes a `PROPTEST_STUB_SEED=<seed>` replay line; setting
//! that environment variable makes the next run execute exactly that one
//! seed instead of the stream.
//!
//! Differences from real proptest, by design:
//!
//! * shrinking is seed-level only — there is no value-level simplification
//!   of the generated arguments (no strategy `simplify`/`complicate`);
//! * panics inside the body are **not** caught: only `prop_assert*`
//!   failures drive shrinking, a plain `assert!`/`unwrap` aborts the test
//!   immediately without seed reporting;
//! * rejected cases (`prop_assume!`) consume a seed and are retried up to
//!   a bounded factor (16x) of the configured case count;
//! * there is no failure-persistence file; replay is via
//!   `PROPTEST_STUB_SEED`.

pub mod strategy {
    use super::test_runner::Rng;

    /// A value generator. The associated function [`Strategy::generate`]
    /// replaces proptest's tree-based `new_tree`.
    pub trait Strategy {
        /// The generated value type.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut Rng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;

        fn generate(&self, rng: &mut Rng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Marker strategy returned by [`any`](super::arbitrary::any).
    pub struct Any<T>(pub(crate) std::marker::PhantomData<T>);

    macro_rules! any_impl {
        ($($ty:ty => $draw:expr),+ $(,)?) => {
            $(impl Strategy for Any<$ty> {
                type Value = $ty;
                fn generate(&self, rng: &mut Rng) -> $ty {
                    let draw: fn(&mut Rng) -> $ty = $draw;
                    draw(rng)
                }
            })+
        };
    }

    any_impl! {
        u64 => |rng| rng.next(),
        u32 => |rng| rng.next() as u32,
        usize => |rng| rng.next() as usize,
        i64 => |rng| rng.next() as i64,
        i32 => |rng| rng.next() as i32,
        bool => |rng| rng.next() & 1 == 1,
    }

    macro_rules! range_impl {
        ($($ty:ty),+ $(,)?) => {
            $(
                impl Strategy for std::ops::Range<$ty> {
                    type Value = $ty;
                    fn generate(&self, rng: &mut Rng) -> $ty {
                        assert!(self.start < self.end, "empty range strategy");
                        let span = (self.end as i128) - (self.start as i128);
                        let offset = (rng.next() as i128).rem_euclid(span);
                        ((self.start as i128) + offset) as $ty
                    }
                }
                impl Strategy for std::ops::RangeInclusive<$ty> {
                    type Value = $ty;
                    fn generate(&self, rng: &mut Rng) -> $ty {
                        let (start, end) = (*self.start(), *self.end());
                        assert!(start <= end, "empty range strategy");
                        let span = (end as i128) - (start as i128) + 1;
                        let offset = (rng.next() as i128).rem_euclid(span);
                        ((start as i128) + offset) as $ty
                    }
                }
            )+
        };
    }

    range_impl!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    /// Fixed-count vector strategy (see `prop::collection::vec`).
    pub struct VecStrategy<S> {
        pub(crate) element: S,
        pub(crate) count: usize,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut Rng) -> Vec<S::Value> {
            (0..self.count)
                .map(|_| self.element.generate(rng))
                .collect()
        }
    }
}

pub mod arbitrary {
    use super::strategy::Any;

    /// `any::<T>()` — the full-range strategy for `T`.
    pub fn any<T>() -> Any<T> {
        Any(std::marker::PhantomData)
    }
}

pub mod collection {
    use super::strategy::{Strategy, VecStrategy};

    /// A vector of `count` draws from `element`.
    pub fn vec<S: Strategy>(element: S, count: usize) -> VecStrategy<S> {
        VecStrategy { element, count }
    }
}

/// The `proptest::prop` facade module.
pub mod prop {
    pub use super::collection;
}

pub mod test_runner {
    /// Deterministic splitmix64 generator.
    pub struct Rng {
        state: u64,
    }

    impl Rng {
        /// Seeds from an arbitrary string (the test name). Used for the
        /// per-test *seed stream*, not for case generation.
        pub fn new(seed: &str) -> Rng {
            let mut state = 0x9e37_79b9_7f4a_7c15u64;
            for b in seed.bytes() {
                state = state.wrapping_mul(31).wrapping_add(u64::from(b));
            }
            Rng { state }
        }

        /// Seeds from a case seed: every case's argument values are a pure
        /// function of one `u64`, which is what makes seed-level shrinking
        /// and `PROPTEST_STUB_SEED` replay possible.
        pub fn from_seed(seed: u64) -> Rng {
            Rng { state: seed }
        }

        /// Next raw 64-bit draw.
        // Not an iterator: draws are infinite and the receiver is a plain
        // generator, matching proptest's own `Rng` surface.
        #[allow(clippy::should_implement_trait)]
        pub fn next(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }

    /// Why a test case did not pass.
    pub enum TestCaseError {
        /// `prop_assume!` rejected the inputs; the case is retried.
        Reject,
        /// `prop_assert!`-family failure; the runner shrinks the seed and
        /// panics with the message.
        Fail(String),
    }

    /// Runner configuration (`ProptestConfig`).
    #[derive(Clone, Copy)]
    pub struct Config {
        /// Number of successful cases required.
        pub cases: u32,
    }

    impl Config {
        /// The constructor the suites use.
        pub fn with_cases(cases: u32) -> Config {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Config {
            Config { cases: 64 }
        }
    }

    /// Small seeds scanned ascending during shrinking: the first failure
    /// in `0..SHRINK_SCAN` is the smallest failing seed in that range.
    const SHRINK_SCAN: u64 = 64;

    /// Cap on halving-ladder steps, so shrinking an expensive property
    /// stays bounded at `SHRINK_SCAN + SHRINK_LADDER_MAX` extra runs.
    const SHRINK_LADDER_MAX: u32 = 64;

    /// Seed-level shrinking: scan small seeds ascending (first failure is
    /// the smallest in range, so return it immediately), then walk a
    /// halving ladder down from the original failing seed. Returns the
    /// smallest failing seed found, its failure message, and how many
    /// candidates were tried.
    fn shrink(
        seed: u64,
        message: String,
        case: &mut dyn FnMut(u64) -> Result<(), TestCaseError>,
    ) -> (u64, String, u32) {
        let mut tried = 0u32;
        for candidate in 0..SHRINK_SCAN.min(seed) {
            tried += 1;
            if let Err(TestCaseError::Fail(m)) = case(candidate) {
                return (candidate, m, tried);
            }
        }
        let mut best = seed;
        let mut best_message = message;
        let mut candidate = seed / 2;
        while candidate >= SHRINK_SCAN && tried < SHRINK_SCAN as u32 + SHRINK_LADDER_MAX {
            tried += 1;
            if let Err(TestCaseError::Fail(m)) = case(candidate) {
                best = candidate;
                best_message = m;
            }
            candidate /= 2;
        }
        (best, best_message, tried)
    }

    /// Drives one property: draws case seeds from a stream keyed on
    /// `test_name`, runs `case` on each until `config.cases` pass, and on
    /// the first failure shrinks the seed and panics with a replayable
    /// report. Honours `PROPTEST_STUB_SEED` as a single-seed replay
    /// override. Called by the [`proptest!`](crate::proptest) expansion.
    pub fn run(
        config: Config,
        test_name: &str,
        case: &mut dyn FnMut(u64) -> Result<(), TestCaseError>,
    ) {
        if let Ok(replay) = std::env::var("PROPTEST_STUB_SEED") {
            let seed: u64 = replay
                .trim()
                .parse()
                .expect("PROPTEST_STUB_SEED must be a u64");
            match case(seed) {
                Ok(()) => return,
                Err(TestCaseError::Reject) => {
                    panic!("replay seed {seed} was rejected by prop_assume!")
                }
                Err(TestCaseError::Fail(message)) => {
                    panic!("property failed at replay seed {seed}: {message}")
                }
            }
        }
        let mut stream = Rng::new(test_name);
        let mut passed = 0u32;
        let mut attempts = 0u32;
        let max_attempts = config.cases.saturating_mul(16).max(16);
        while passed < config.cases && attempts < max_attempts {
            attempts += 1;
            let seed = stream.next();
            match case(seed) {
                Ok(()) => passed += 1,
                Err(TestCaseError::Reject) => {}
                Err(TestCaseError::Fail(message)) => {
                    let (min_seed, min_message, tried) = shrink(seed, message, case);
                    panic!(
                        "property failed (case {attempts}, seed {seed}); smallest \
                         failing seed after {tried} shrink candidate(s): {min_seed}\n\
                         replay with PROPTEST_STUB_SEED={min_seed}\n{min_message}"
                    );
                }
            }
        }
        assert!(
            passed > 0,
            "every generated case was rejected by prop_assume!"
        );
    }
}

pub mod prelude {
    pub use super::arbitrary::any;
    pub use super::prop;
    pub use super::strategy::Strategy;
    pub use super::test_runner::Config as ProptestConfig;
    // Macro re-exports: `#[macro_export]` puts them at the crate root;
    // pulling them into the prelude mirrors real proptest.
    pub use super::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// The property-test declaration macro. Accepts the same shape as real
/// proptest: an optional `#![proptest_config(...)]` header followed by
/// `#[test] fn name(arg in strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            ($crate::test_runner::Config::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($config:expr)) => {};
    (($config:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::Config = $config;
            // The whole case is a pure function of one seed, so the
            // runner can replay it during shrinking.
            let mut case = |seed: u64| -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                let mut rng = $crate::test_runner::Rng::from_seed(seed);
                $(let $arg = $crate::strategy::Strategy::generate(&($strategy), &mut rng);)+
                $body
                ::std::result::Result::Ok(())
            };
            $crate::test_runner::run(
                config,
                concat!(module_path!(), "::", stringify!($name)),
                &mut case,
            );
        }
        $crate::__proptest_items! { ($config) $($rest)* }
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Fails the current case unless the two values compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if !(left == right) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!("assertion failed: {:?} != {:?}", left, right),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        if !(left == right) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!($($fmt)+),
            ));
        }
    }};
}

/// Fails the current case if the two values compare equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if left == right {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!("assertion failed: {:?} == {:?}", left, right),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        if left == right {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!($($fmt)+),
            ));
        }
    }};
}

/// Rejects the current case (it is regenerated, not failed).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

#[cfg(test)]
mod tests {
    use super::test_runner::{run, Config, TestCaseError};

    fn panic_message(result: std::thread::Result<()>) -> String {
        let payload = result.expect_err("property should fail");
        payload
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
            .expect("panic payload is a string")
    }

    /// A property failing on every seed shrinks all the way to seed 0: the
    /// ascending scan finds it first, so the reported seed is minimal.
    #[test]
    fn shrinking_reports_the_smallest_failing_seed() {
        let result = std::panic::catch_unwind(|| {
            run(Config::with_cases(8), "always_fails", &mut |_seed| {
                Err(TestCaseError::Fail("boom".to_string()))
            });
        });
        let message = panic_message(result);
        assert!(
            message.contains("smallest failing seed after 1 shrink candidate(s): 0"),
            "unexpected report: {message}"
        );
        assert!(
            message.contains("replay with PROPTEST_STUB_SEED=0"),
            "missing replay line: {message}"
        );
    }

    /// When small seeds pass, the halving ladder still walks the failing
    /// seed down and the reported seed fails while seeds below the scan
    /// window were verified to pass.
    #[test]
    fn shrinking_walks_the_halving_ladder() {
        let fails = |seed: u64| seed >= 1_000_000;
        let result = std::panic::catch_unwind(|| {
            run(Config::with_cases(8), "fails_when_large", &mut |seed| {
                if fails(seed) {
                    Err(TestCaseError::Fail(format!("large seed {seed}")))
                } else {
                    Ok(())
                }
            });
        });
        let message = panic_message(result);
        let reported: u64 = message
            .split("shrink candidate(s): ")
            .nth(1)
            .and_then(|rest| rest.split('\n').next())
            .and_then(|s| s.parse().ok())
            .expect("report names the shrunk seed");
        assert!(fails(reported), "reported seed {reported} does not fail");
        // The ladder halves until it crosses the threshold, so the result
        // lands within one doubling of the smallest failing seed.
        assert!(
            reported < 2_000_000,
            "ladder did not shrink: reported {reported}"
        );
    }

    /// Each case seed is drawn from a per-test stream, so two runs of the
    /// same property see identical seed sequences (reproducible CI).
    #[test]
    fn seed_streams_are_deterministic_per_test() {
        let collect = || {
            let mut seeds = Vec::new();
            run(Config::with_cases(5), "stream_probe", &mut |seed| {
                seeds.push(seed);
                Ok(())
            });
            seeds
        };
        let first = collect();
        let second = collect();
        assert_eq!(first, second);
        assert_eq!(first.len(), 5);
        assert!(
            first.windows(2).all(|w| w[0] != w[1]),
            "stream repeats seeds back-to-back: {first:?}"
        );
    }

    /// Rejected cases consume seeds without counting as passes, and a
    /// property that rejects everything is flagged rather than passing.
    #[test]
    fn exhausted_assume_is_reported() {
        let result = std::panic::catch_unwind(|| {
            run(Config::with_cases(4), "rejects_all", &mut |_seed| {
                Err(TestCaseError::Reject)
            });
        });
        let message = panic_message(result);
        assert!(
            message.contains("rejected by prop_assume!"),
            "unexpected report: {message}"
        );
    }
}
