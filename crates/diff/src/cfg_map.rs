//! Mapping statement-level diff results onto CFG nodes.
//!
//! This is the "pre-processing step" of §3.1: DiSE "maps the change
//! information to the corresponding nodes in each CFG", marking nodes in
//! `CFG_base` as removed/changed/unchanged and nodes in `CFG_mod` as
//! added/changed/unchanged, and computing the `diffMap` from base nodes to
//! mod nodes (removed base nodes map to nothing).
//!
//! A single statement can own several CFG nodes (a desugared `assert` owns
//! a branch and an error node); the [`dise_cfg::OriginRole`] discriminator keeps the
//! mapping exact.

use std::collections::{BTreeMap, BTreeSet};

use dise_cfg::{Cfg, NodeId};

use crate::stmt_diff::{BaseMark, ModMark, ProcDiff};

/// The diff lifted to CFG-node granularity.
#[derive(Debug, Clone, Default)]
pub struct CfgDiff {
    changed_mod: BTreeSet<NodeId>,
    added_mod: BTreeSet<NodeId>,
    removed_base: BTreeSet<NodeId>,
    changed_base: BTreeSet<NodeId>,
    diff_map: BTreeMap<NodeId, NodeId>,
}

impl CfgDiff {
    /// Lifts `diff` onto the two CFGs.
    ///
    /// # Examples
    ///
    /// ```
    /// use dise_cfg::build_cfg;
    /// use dise_diff::{CfgDiff, stmt_diff::diff_programs};
    /// use dise_ir::parse_program;
    ///
    /// # fn main() -> Result<(), Box<dyn std::error::Error>> {
    /// let base = parse_program("proc f(int x) { if (x == 0) { x = 1; } }")?;
    /// let new = parse_program("proc f(int x) { if (x <= 0) { x = 1; } }")?;
    /// let diff = diff_programs(&base, &new, "f")?;
    /// let cfg_base = build_cfg(base.proc("f").unwrap());
    /// let cfg_mod = build_cfg(new.proc("f").unwrap());
    /// let cfg_diff = CfgDiff::new(&diff, &cfg_base, &cfg_mod);
    /// assert_eq!(cfg_diff.changed_mod().count(), 1);
    /// # Ok(())
    /// # }
    /// ```
    pub fn new(diff: &ProcDiff, cfg_base: &Cfg, cfg_mod: &Cfg) -> CfgDiff {
        let mut out = CfgDiff::default();

        // Mod-side marks.
        for id in cfg_mod.node_ids() {
            let node = cfg_mod.node(id);
            if node.span.is_dummy() {
                continue; // begin/end
            }
            match diff.mod_mark(node.span) {
                Some(ModMark::Changed) => {
                    out.changed_mod.insert(id);
                }
                Some(ModMark::Added) => {
                    out.added_mod.insert(id);
                }
                Some(ModMark::Unchanged) | None => {}
            }
        }

        // Base-side marks + diffMap.
        for id in cfg_base.node_ids() {
            let node = cfg_base.node(id);
            if node.span.is_dummy() {
                continue;
            }
            match diff.base_mark(node.span) {
                Some(BaseMark::Removed) => {
                    out.removed_base.insert(id);
                }
                mark => {
                    if mark == Some(BaseMark::Changed) {
                        out.changed_base.insert(id);
                    }
                    if let Some(mod_span) = diff.map_span(node.span) {
                        if let Some(mod_id) = cfg_mod.node_by_origin(mod_span, node.role) {
                            out.diff_map.insert(id, mod_id);
                        }
                    }
                }
            }
        }
        // Virtual nodes correspond to each other.
        out.diff_map.insert(cfg_base.begin(), cfg_mod.begin());
        out.diff_map.insert(cfg_base.end(), cfg_mod.end());
        out
    }

    /// Builds the full diff pipeline for one procedure of two programs:
    /// statement diff, both CFGs, and the node-level lift.
    ///
    /// # Errors
    ///
    /// Propagates [`crate::stmt_diff::DiffError`] from the statement diff.
    pub fn from_programs(
        base: &dise_ir::Program,
        modified: &dise_ir::Program,
        proc_name: &str,
    ) -> Result<(Cfg, Cfg, CfgDiff), crate::stmt_diff::DiffError> {
        let diff = crate::stmt_diff::diff_programs(base, modified, proc_name)?;
        let cfg_base = dise_cfg::build_cfg(
            base.proc(proc_name)
                .expect("diff_programs verified existence"),
        );
        let cfg_mod = dise_cfg::build_cfg(
            modified
                .proc(proc_name)
                .expect("diff_programs verified existence"),
        );
        let cfg_diff = CfgDiff::new(&diff, &cfg_base, &cfg_mod);
        Ok((cfg_base, cfg_mod, cfg_diff))
    }

    /// Changed nodes in `CFG_mod`.
    pub fn changed_mod(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.changed_mod.iter().copied()
    }

    /// Added nodes in `CFG_mod`.
    pub fn added_mod(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.added_mod.iter().copied()
    }

    /// Changed-or-added nodes in `CFG_mod` — the seeds of the affected-set
    /// analysis.
    pub fn changed_or_added_mod(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.changed_mod
            .iter()
            .chain(self.added_mod.iter())
            .copied()
    }

    /// Removed nodes in `CFG_base` — the seeds of the `removeNodes`
    /// algorithm (Fig. 5a).
    pub fn removed_base(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.removed_base.iter().copied()
    }

    /// Changed nodes in `CFG_base`.
    pub fn changed_base(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.changed_base.iter().copied()
    }

    /// `diffMap.get(n)`: the `CFG_mod` node corresponding to base node `n`
    /// (`None` for removed nodes).
    pub fn map_node(&self, base_node: NodeId) -> Option<NodeId> {
        self.diff_map.get(&base_node).copied()
    }

    /// Number of changed-or-added mod nodes plus removed base nodes — the
    /// "CFG Nodes Changed" column of Table 2.
    pub fn changed_node_count(&self) -> usize {
        self.changed_mod.len() + self.added_mod.len() + self.removed_base.len()
    }

    /// Is anything different at all?
    pub fn is_identical(&self) -> bool {
        self.changed_node_count() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dise_cfg::OriginRole;
    use dise_ir::parse_program;

    fn lift(base: &str, modified: &str) -> (Cfg, Cfg, CfgDiff) {
        let b = parse_program(base).unwrap();
        let m = parse_program(modified).unwrap();
        CfgDiff::from_programs(&b, &m, "f").unwrap()
    }

    #[test]
    fn identical_lift_is_identity() {
        let src = "proc f(int x) { if (x > 0) { x = 1; } }";
        let (cfg_base, _, d) = lift(src, src);
        assert!(d.is_identical());
        // Every base node (incl. begin/end) maps somewhere.
        for id in cfg_base.node_ids() {
            assert!(d.map_node(id).is_some(), "{id} unmapped");
        }
    }

    #[test]
    fn changed_condition_marks_one_mod_node() {
        let (_, cfg_mod, d) = lift(
            "proc f(int x) { if (x == 0) { x = 1; } }",
            "proc f(int x) { if (x <= 0) { x = 1; } }",
        );
        let changed: Vec<NodeId> = d.changed_mod().collect();
        assert_eq!(changed.len(), 1);
        assert!(cfg_mod.node(changed[0]).kind.is_cond());
        assert_eq!(d.changed_node_count(), 1);
    }

    #[test]
    fn removed_nodes_have_no_mapping() {
        let (cfg_base, _, d) = lift(
            "proc f(int x) {\n  x = 1;\n  x = x + 5;\n}",
            "proc f(int x) {\n  x = 1;\n}",
        );
        let removed: Vec<NodeId> = d.removed_base().collect();
        assert_eq!(removed.len(), 1);
        assert_eq!(d.map_node(removed[0]), None);
        assert!(cfg_base.node(removed[0]).kind.is_write());
    }

    #[test]
    fn assert_statement_maps_both_roles() {
        let (cfg_base, cfg_mod, d) = lift(
            "proc f(int x) {\n  x = 1;\n  assert(x > 0);\n}",
            "proc f(int x) {\n  x = 2;\n  assert(x > 0);\n}",
        );
        // The assert owns two nodes; both must be mapped.
        let branch = cfg_base
            .cond_nodes()
            .next()
            .expect("assert produces a cond node");
        let error = cfg_base.false_succ(branch);
        let mapped_branch = d.map_node(branch).unwrap();
        let mapped_error = d.map_node(error).unwrap();
        assert!(cfg_mod.node(mapped_branch).kind.is_cond());
        assert!(cfg_mod.node(mapped_error).kind.is_error());
        assert_eq!(cfg_mod.node(mapped_branch).role, OriginRole::Primary);
        assert_eq!(cfg_mod.node(mapped_error).role, OriginRole::AssertError);
    }

    #[test]
    fn added_node_is_reported() {
        let (_, cfg_mod, d) = lift(
            "proc f(int x) {\n  x = 1;\n}",
            "proc f(int x) {\n  x = 1;\n  if (x > 0) {\n    x = 2;\n  }\n}",
        );
        // The added if + its body assignment = 2 added nodes.
        assert_eq!(d.added_mod().count(), 2);
        assert_eq!(d.changed_or_added_mod().count(), 2);
        let kinds: Vec<bool> = d
            .added_mod()
            .map(|n| cfg_mod.node(n).kind.is_cond())
            .collect();
        assert!(kinds.contains(&true));
    }

    #[test]
    fn begin_end_always_map() {
        let (cfg_base, cfg_mod, d) = lift("proc f(int x) { x = 1; }", "proc f(int x) { x = 2; }");
        assert_eq!(d.map_node(cfg_base.begin()), Some(cfg_mod.begin()));
        assert_eq!(d.map_node(cfg_base.end()), Some(cfg_mod.end()));
    }
}
