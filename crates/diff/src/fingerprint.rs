//! Per-procedure content fingerprinting.
//!
//! The persistent analysis store keys its cross-run reuse decisions on a
//! stable fingerprint of *what the pipeline actually analyzes*: the
//! procedure after bounded inlining (the same flattening
//! `dise-core::run_dise` performs), its referenced globals, and the CFG
//! built from it. Hashing both the canonical pretty-printed IR and the
//! CFG structure means the fingerprint is independent of source spans,
//! comments, and formatting — a re-indented file warm-starts — while any
//! change to statements, control structure, or global initializers
//! produces a new fingerprint.
//!
//! FNV-1a 64 over the canonical text plus the CFG's node labels and
//! labelled edge list. Stable across processes and platforms; collisions
//! are the usual 64-bit-birthday remote, and a collision only re-uses a
//! memoized *affected set* (the solver trie is structurally keyed and
//! immune).

use dise_cfg::{build_cfg, NodeKind};
use dise_ir::ast::Program;
use dise_ir::inline::{contains_calls, inline_program, InlineError};
use dise_ir::pretty::{pretty_expr, pretty_proc};

/// FNV-1a 64 (local copy; the diff layer stays dependency-free).
fn fnv1a(hash: &mut u64, bytes: &[u8]) {
    for &byte in bytes {
        *hash ^= u64::from(byte);
        *hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
}

/// The content fingerprint of `proc_name` within `program`: canonical IR
/// of the globals and the (inlined) procedure, plus its CFG structure.
/// Two programs with equal fingerprints are analyzed identically by the
/// DiSE pipeline; sibling procedures the target never calls do not
/// participate, so editing one leaves the others' fingerprints intact.
///
/// # Errors
///
/// Propagates [`InlineError`] when the procedure's calls cannot be
/// flattened (missing callee, recursion past the bound) — the same
/// programs `run_dise` itself rejects.
///
/// # Examples
///
/// ```
/// use dise_diff::fingerprint::proc_fingerprint;
/// use dise_ir::parse_program;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let a = parse_program("proc f(int x) { if (x > 0) { x = 1; } }")?;
/// let same = parse_program("proc f(int x) {\n  if (x>0) { x = 1; }\n}")?;
/// let different = parse_program("proc f(int x) { if (x >= 0) { x = 1; } }")?;
/// assert_eq!(proc_fingerprint(&a, "f")?, proc_fingerprint(&same, "f")?);
/// assert_ne!(proc_fingerprint(&a, "f")?, proc_fingerprint(&different, "f")?);
/// # Ok(())
/// # }
/// ```
pub fn proc_fingerprint(program: &Program, proc_name: &str) -> Result<u64, InlineError> {
    let flat;
    let program = if contains_calls(program, proc_name) {
        flat = inline_program(program, proc_name)?;
        &flat
    } else {
        program
    };
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    fnv1a(&mut hash, proc_name.as_bytes());
    fnv1a(&mut hash, &[0]);
    // Only the analyzed procedure and the globals participate — a sibling
    // procedure's edit must not invalidate this one's fingerprint (the
    // summary broker keys cross-version callee reuse on exactly that).
    for global in &program.globals {
        fnv1a(&mut hash, global.ty.to_string().as_bytes());
        fnv1a(&mut hash, global.name.as_bytes());
        if let Some(init) = &global.init {
            fnv1a(&mut hash, pretty_expr(init).as_bytes());
        }
        fnv1a(&mut hash, &[0]);
    }
    if let Some(procedure) = program.proc(proc_name) {
        fnv1a(&mut hash, pretty_proc(procedure).as_bytes());
    }
    if let Some(procedure) = program.proc(proc_name) {
        let cfg = build_cfg(procedure);
        for id in cfg.node_ids() {
            // Node content without source positions (labels carry line
            // numbers, which formatting-only edits shift).
            let kind = match &cfg.node(id).kind {
                NodeKind::Begin => "begin".to_string(),
                NodeKind::End => "end".to_string(),
                NodeKind::Nop => "nop".to_string(),
                NodeKind::Assign { var, value } => {
                    format!("{var} = {}", pretty_expr(value))
                }
                NodeKind::Assume { cond } => format!("assume {}", pretty_expr(cond)),
                NodeKind::Branch { cond } => format!("branch {}", pretty_expr(cond)),
                NodeKind::Error { message } => format!("error {message}"),
                // Never reached here (the CFG above is built from the
                // flattened program), but kept total so summary-mode CFGs
                // could be fingerprinted directly.
                NodeKind::Call { callee, args } => {
                    let rendered: Vec<String> = args.iter().map(pretty_expr).collect();
                    format!("call {callee}({})", rendered.join(", "))
                }
            };
            fnv1a(&mut hash, kind.as_bytes());
            fnv1a(&mut hash, &[0]);
            for &(succ, label) in cfg.succs(id) {
                fnv1a(&mut hash, &(succ.index() as u64).to_le_bytes());
                fnv1a(&mut hash, format!("{label:?}").as_bytes());
            }
        }
    }
    Ok(hash)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dise_ir::parse_program;

    #[test]
    fn formatting_is_invisible() {
        let a = parse_program("int g;\nproc f(int x) { if (x > g) { g = x; } }").unwrap();
        let b = parse_program("int  g ;\nproc f( int x ) {\n  if (x > g) {\n    g = x;\n  }\n}")
            .unwrap();
        assert_eq!(
            proc_fingerprint(&a, "f").unwrap(),
            proc_fingerprint(&b, "f").unwrap()
        );
    }

    #[test]
    fn statement_changes_are_visible() {
        let base = parse_program("proc f(int x) { if (x > 0) { x = 1; } }").unwrap();
        let cond = parse_program("proc f(int x) { if (x >= 0) { x = 1; } }").unwrap();
        let body = parse_program("proc f(int x) { if (x > 0) { x = 2; } }").unwrap();
        let extra = parse_program("proc f(int x) { if (x > 0) { x = 1; } x = 0; }").unwrap();
        let fp = proc_fingerprint(&base, "f").unwrap();
        assert_ne!(fp, proc_fingerprint(&cond, "f").unwrap());
        assert_ne!(fp, proc_fingerprint(&body, "f").unwrap());
        assert_ne!(fp, proc_fingerprint(&extra, "f").unwrap());
    }

    #[test]
    fn global_initializers_participate() {
        let a = parse_program("int g = 1;\nproc f(int x) { x = g; }").unwrap();
        let b = parse_program("int g = 2;\nproc f(int x) { x = g; }").unwrap();
        assert_ne!(
            proc_fingerprint(&a, "f").unwrap(),
            proc_fingerprint(&b, "f").unwrap()
        );
    }

    #[test]
    fn callee_changes_propagate_through_inlining() {
        let a = parse_program("proc callee(int y) { y = y + 1; }\nproc f(int x) { callee(x); }")
            .unwrap();
        let b = parse_program("proc callee(int y) { y = y + 2; }\nproc f(int x) { callee(x); }")
            .unwrap();
        assert_ne!(
            proc_fingerprint(&a, "f").unwrap(),
            proc_fingerprint(&b, "f").unwrap()
        );
    }

    #[test]
    fn sibling_procedures_do_not_participate() {
        // Cross-version summary reuse depends on this: editing a caller
        // must leave its unchanged callees' fingerprints intact.
        let a =
            parse_program("int g;\nproc callee(int y) { g = y; }\nproc main(int x) { callee(x); }")
                .unwrap();
        let b = parse_program(
            "int g;\nproc callee(int y) { g = y; }\nproc main(int x) { callee(x); callee(g); }",
        )
        .unwrap();
        assert_eq!(
            proc_fingerprint(&a, "callee").unwrap(),
            proc_fingerprint(&b, "callee").unwrap()
        );
        assert_ne!(
            proc_fingerprint(&a, "main").unwrap(),
            proc_fingerprint(&b, "main").unwrap()
        );
    }

    #[test]
    fn missing_procedures_do_not_panic() {
        // No such proc: the fingerprint covers the (empty) program text
        // only; run_dise rejects the name before ever consulting it.
        let p = parse_program("proc f() { skip; }").unwrap();
        let fp = proc_fingerprint(&p, "g").unwrap();
        assert_ne!(fp, proc_fingerprint(&p, "f").unwrap());
    }
}
