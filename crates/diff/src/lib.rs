//! # dise-diff — lightweight program differencing
//!
//! DiSE takes as input "the results of a lightweight differential (diff)
//! analysis (e.g., source line or abstract syntax tree diff)" (§3.1). This
//! crate provides both:
//!
//! * [`line_diff`](mod@line_diff) — a classic LCS diff over source lines (display and
//!   sanity checks);
//! * [`stmt_diff`] — the structural AST diff used by the pipeline: it
//!   matches statements between the two versions of a procedure (recursing
//!   into `if`/`while` bodies) and classifies every statement as
//!   *unchanged*, *changed*, *added* (mod-only) or *removed* (base-only);
//! * [`cfg_map`] — the pre-processing step of §3.1 that transfers
//!   statement marks onto CFG nodes and builds the `diffMap` relating
//!   `CFG_base` nodes to their `CFG_mod` counterparts (removed nodes map
//!   to nothing);
//! * [`fingerprint`] — stable per-procedure content fingerprints over the
//!   canonical IR and CFG, the invalidation keys of the persistent
//!   analysis store (`dise-store`).
//!
//! The marked `CFG_mod` nodes seed the affected-location fixpoint in
//! `dise-core` — see the workspace `ARCHITECTURE.md` for where this
//! crate sits in the pipeline.
//!
//! # Examples
//!
//! ```
//! use dise_diff::stmt_diff::diff_programs;
//! use dise_ir::parse_program;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let base = parse_program("proc f(int x) { if (x == 0) { x = 1; } }")?;
//! let new = parse_program("proc f(int x) { if (x <= 0) { x = 1; } }")?;
//! let diff = diff_programs(&base, &new, "f")?;
//! assert!(!diff.is_identical());
//! assert_eq!(diff.changed_mod_spans().count(), 1);
//! # Ok(())
//! # }
//! ```

pub mod cfg_map;
pub mod fingerprint;
pub mod line_diff;
pub mod stmt_diff;

pub use cfg_map::CfgDiff;
pub use fingerprint::proc_fingerprint;
pub use line_diff::{line_diff, LineEdit};
pub use stmt_diff::{diff_procedures, diff_programs, BaseMark, DiffError, ModMark, ProcDiff};
