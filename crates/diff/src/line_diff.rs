//! Source-line diff (longest-common-subsequence).
//!
//! The simplest of the two "lightweight diff" frontends the paper mentions.
//! The structural AST diff ([`crate::stmt_diff`]) is what the DiSE pipeline
//! actually consumes; the line diff is kept for display and for
//! cross-checking that a mutant really differs from its base in the
//! expected number of places.

/// One edit in a line diff.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LineEdit {
    /// Line present in both versions (1-based line numbers in each).
    Common {
        /// Line number in the base version.
        base_line: u32,
        /// Line number in the modified version.
        mod_line: u32,
        /// The text.
        text: String,
    },
    /// Line only in the base version.
    Removed {
        /// Line number in the base version.
        base_line: u32,
        /// The text.
        text: String,
    },
    /// Line only in the modified version.
    Added {
        /// Line number in the modified version.
        mod_line: u32,
        /// The text.
        text: String,
    },
}

/// Computes an LCS diff between two texts, line by line.
///
/// # Examples
///
/// ```
/// use dise_diff::{line_diff, LineEdit};
///
/// let edits = line_diff("a\nb\nc", "a\nx\nc");
/// let removed: Vec<_> = edits
///     .iter()
///     .filter(|e| matches!(e, LineEdit::Removed { .. }))
///     .collect();
/// assert_eq!(removed.len(), 1);
/// ```
pub fn line_diff(base: &str, modified: &str) -> Vec<LineEdit> {
    let base_lines: Vec<&str> = base.lines().collect();
    let mod_lines: Vec<&str> = modified.lines().collect();
    let matched = lcs_table(&base_lines, &mod_lines, |a, b| a == b);

    let mut edits = Vec::new();
    let (mut i, mut j) = (0usize, 0usize);
    for &(bi, mj) in &matched {
        while i < bi {
            edits.push(LineEdit::Removed {
                base_line: (i + 1) as u32,
                text: base_lines[i].to_string(),
            });
            i += 1;
        }
        while j < mj {
            edits.push(LineEdit::Added {
                mod_line: (j + 1) as u32,
                text: mod_lines[j].to_string(),
            });
            j += 1;
        }
        edits.push(LineEdit::Common {
            base_line: (bi + 1) as u32,
            mod_line: (mj + 1) as u32,
            text: base_lines[bi].to_string(),
        });
        i = bi + 1;
        j = mj + 1;
    }
    while i < base_lines.len() {
        edits.push(LineEdit::Removed {
            base_line: (i + 1) as u32,
            text: base_lines[i].to_string(),
        });
        i += 1;
    }
    while j < mod_lines.len() {
        edits.push(LineEdit::Added {
            mod_line: (j + 1) as u32,
            text: mod_lines[j].to_string(),
        });
        j += 1;
    }
    edits
}

/// Generic LCS: returns the matched index pairs `(base_idx, mod_idx)` in
/// order. Shared with the statement diff.
pub(crate) fn lcs_table<T>(
    base: &[T],
    modified: &[T],
    eq: impl Fn(&T, &T) -> bool,
) -> Vec<(usize, usize)> {
    let n = base.len();
    let m = modified.len();
    // dp[i][j] = LCS length of base[i..], modified[j..]
    let mut dp = vec![vec![0usize; m + 1]; n + 1];
    for i in (0..n).rev() {
        for j in (0..m).rev() {
            dp[i][j] = if eq(&base[i], &modified[j]) {
                dp[i + 1][j + 1] + 1
            } else {
                dp[i + 1][j].max(dp[i][j + 1])
            };
        }
    }
    let mut pairs = Vec::new();
    let (mut i, mut j) = (0, 0);
    while i < n && j < m {
        if eq(&base[i], &modified[j]) && dp[i][j] == dp[i + 1][j + 1] + 1 {
            pairs.push((i, j));
            i += 1;
            j += 1;
        } else if dp[i + 1][j] >= dp[i][j + 1] {
            i += 1;
        } else {
            j += 1;
        }
    }
    pairs
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(edits: &[LineEdit]) -> String {
        edits
            .iter()
            .map(|e| match e {
                LineEdit::Common { .. } => '=',
                LineEdit::Removed { .. } => '-',
                LineEdit::Added { .. } => '+',
            })
            .collect()
    }

    #[test]
    fn identical_texts_are_all_common() {
        let edits = line_diff("a\nb", "a\nb");
        assert_eq!(kinds(&edits), "==");
    }

    #[test]
    fn single_line_change_is_remove_plus_add() {
        let edits = line_diff("a\nb\nc", "a\nx\nc");
        assert_eq!(kinds(&edits), "=-+=");
    }

    #[test]
    fn pure_insertion() {
        let edits = line_diff("a\nc", "a\nb\nc");
        assert_eq!(kinds(&edits), "=+=");
        let LineEdit::Added { mod_line, text } = &edits[1] else {
            panic!("expected Added");
        };
        assert_eq!(*mod_line, 2);
        assert_eq!(text, "b");
    }

    #[test]
    fn pure_deletion() {
        let edits = line_diff("a\nb\nc", "a\nc");
        assert_eq!(kinds(&edits), "=-=");
    }

    #[test]
    fn empty_inputs() {
        assert!(line_diff("", "").is_empty());
        assert_eq!(kinds(&line_diff("", "x")), "+");
        assert_eq!(kinds(&line_diff("x", "")), "-");
    }

    #[test]
    fn line_numbers_are_one_based_and_tracked() {
        let edits = line_diff("a\nb", "b");
        // 'a' removed from line 1; 'b' common (base 2, mod 1).
        assert_eq!(
            edits,
            vec![
                LineEdit::Removed {
                    base_line: 1,
                    text: "a".into()
                },
                LineEdit::Common {
                    base_line: 2,
                    mod_line: 1,
                    text: "b".into()
                },
            ]
        );
    }

    #[test]
    fn lcs_prefers_longest_match() {
        let pairs = lcs_table(&["a", "b", "a"], &["b", "a"], |x, y| x == y);
        assert_eq!(pairs.len(), 2); // "b a"
    }
}
