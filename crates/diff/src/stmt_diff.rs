//! Structural statement diff between two versions of a procedure.
//!
//! Matching runs in two LCS passes per block:
//!
//! 1. **Header matching** — statements whose headers are structurally equal
//!    ([`dise_ir::ast::Stmt::header_eq`]: the full statement for simple
//!    statements, just the condition for `if`/`while`) are paired and
//!    marked *unchanged*; compound pairs recurse into their bodies.
//! 2. **Kind matching** — leftover statements of the same kind (an `if`
//!    against an `if`, an assignment against an assignment to the same
//!    variable, …) are paired and marked *changed*; compound pairs still
//!    recurse so an `if` with a mutated condition doesn't drag its whole
//!    body into the changed set.
//!
//! Anything unmatched is *removed* (base side) or *added* (mod side),
//! including, recursively, the bodies of unmatched compound statements.
//!
//! Statements are keyed by their source [`Span`], which is unique per
//! statement in parsed programs (the constructor validates this and
//! reports [`DiffError::AmbiguousSpans`] otherwise — pretty-print and
//! re-parse builder-generated ASTs first).

use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;

use dise_ir::ast::{Block, Procedure, Program, Stmt, StmtKind};
use dise_ir::Span;

use crate::line_diff::lcs_table;

/// Classification of a base-version statement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BaseMark {
    /// Present and identical (header) in the modified version.
    Unchanged,
    /// Matched to a modified-version statement with different content.
    Changed,
    /// No counterpart in the modified version.
    Removed,
}

/// Classification of a modified-version statement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ModMark {
    /// Present and identical (header) in the base version.
    Unchanged,
    /// Matched to a base-version statement with different content.
    Changed,
    /// No counterpart in the base version.
    Added,
}

/// Errors from the differencing analysis.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DiffError {
    /// The requested procedure is missing from one of the programs.
    MissingProcedure(String),
    /// Two statements share a span; the program was probably built
    /// programmatically. Pretty-print and re-parse first.
    AmbiguousSpans(Span),
}

impl fmt::Display for DiffError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DiffError::MissingProcedure(name) => {
                write!(f, "procedure `{name}` not found in both versions")
            }
            DiffError::AmbiguousSpans(span) => write!(
                f,
                "duplicate statement span {span}; re-parse the program to assign unique spans"
            ),
        }
    }
}

impl Error for DiffError {}

/// The diff of one procedure across two program versions.
#[derive(Debug, Clone, Default)]
pub struct ProcDiff {
    base_marks: BTreeMap<Span, BaseMark>,
    mod_marks: BTreeMap<Span, ModMark>,
    /// Matched statements: base span → mod span (changed + unchanged).
    span_map: BTreeMap<Span, Span>,
}

impl ProcDiff {
    /// The mark of the base statement at `span` (if it exists).
    pub fn base_mark(&self, span: Span) -> Option<BaseMark> {
        self.base_marks.get(&span).copied()
    }

    /// The mark of the modified statement at `span` (if it exists).
    pub fn mod_mark(&self, span: Span) -> Option<ModMark> {
        self.mod_marks.get(&span).copied()
    }

    /// The `diffMap` at statement granularity: the modified-version span a
    /// base statement corresponds to. Removed statements return `None`
    /// ("the get method on diffMap returns the empty set", Fig. 5(a)).
    pub fn map_span(&self, base_span: Span) -> Option<Span> {
        self.span_map.get(&base_span).copied()
    }

    /// Spans of changed statements in the modified version.
    pub fn changed_mod_spans(&self) -> impl Iterator<Item = Span> + '_ {
        self.mod_marks
            .iter()
            .filter(|(_, &m)| m == ModMark::Changed)
            .map(|(&s, _)| s)
    }

    /// Spans of added statements in the modified version.
    pub fn added_mod_spans(&self) -> impl Iterator<Item = Span> + '_ {
        self.mod_marks
            .iter()
            .filter(|(_, &m)| m == ModMark::Added)
            .map(|(&s, _)| s)
    }

    /// Spans of removed statements in the base version.
    pub fn removed_base_spans(&self) -> impl Iterator<Item = Span> + '_ {
        self.base_marks
            .iter()
            .filter(|(_, &m)| m == BaseMark::Removed)
            .map(|(&s, _)| s)
    }

    /// Spans of changed statements in the base version.
    pub fn changed_base_spans(&self) -> impl Iterator<Item = Span> + '_ {
        self.base_marks
            .iter()
            .filter(|(_, &m)| m == BaseMark::Changed)
            .map(|(&s, _)| s)
    }

    /// Returns `true` when nothing changed, was added, or was removed.
    pub fn is_identical(&self) -> bool {
        self.base_marks.values().all(|&m| m == BaseMark::Unchanged)
            && self.mod_marks.values().all(|&m| m == ModMark::Unchanged)
    }

    /// Number of changed-or-added statements in the modified version (the
    /// "Changed" CFG-node count of Table 2 is derived from these marks).
    pub fn change_count(&self) -> usize {
        self.mod_marks
            .values()
            .filter(|&&m| m != ModMark::Unchanged)
            .count()
            + self
                .base_marks
                .values()
                .filter(|&&m| m == BaseMark::Removed)
                .count()
    }
}

/// Diffs the procedure named `proc_name` between two programs.
///
/// # Errors
///
/// [`DiffError::MissingProcedure`] if either program lacks the procedure;
/// [`DiffError::AmbiguousSpans`] if statement spans are not unique.
pub fn diff_programs(
    base: &Program,
    modified: &Program,
    proc_name: &str,
) -> Result<ProcDiff, DiffError> {
    let base_proc = base
        .proc(proc_name)
        .ok_or_else(|| DiffError::MissingProcedure(proc_name.to_string()))?;
    let mod_proc = modified
        .proc(proc_name)
        .ok_or_else(|| DiffError::MissingProcedure(proc_name.to_string()))?;
    diff_procedures(base_proc, mod_proc)
}

/// Diffs two versions of a procedure.
///
/// # Errors
///
/// [`DiffError::AmbiguousSpans`] if statement spans are not unique within
/// either version.
pub fn diff_procedures(base: &Procedure, modified: &Procedure) -> Result<ProcDiff, DiffError> {
    validate_spans(&base.body)?;
    validate_spans(&modified.body)?;
    let mut diff = ProcDiff::default();
    diff_blocks(&base.body, &modified.body, &mut diff);
    Ok(diff)
}

fn validate_spans(block: &Block) -> Result<(), DiffError> {
    fn walk(block: &Block, seen: &mut BTreeMap<Span, ()>) -> Result<(), DiffError> {
        for stmt in &block.stmts {
            if seen.insert(stmt.span, ()).is_some() {
                return Err(DiffError::AmbiguousSpans(stmt.span));
            }
            match &stmt.kind {
                StmtKind::If {
                    then_branch,
                    else_branch,
                    ..
                } => {
                    walk(then_branch, seen)?;
                    if let Some(e) = else_branch {
                        walk(e, seen)?;
                    }
                }
                StmtKind::While { body, .. } => walk(body, seen)?,
                _ => {}
            }
        }
        Ok(())
    }
    let mut seen = BTreeMap::new();
    walk(block, &mut seen)
}

fn diff_blocks(base: &Block, modified: &Block, diff: &mut ProcDiff) {
    let base_stmts: Vec<&Stmt> = base.stmts.iter().collect();
    let mod_stmts: Vec<&Stmt> = modified.stmts.iter().collect();

    // Pass 1: header-equal pairs are unchanged.
    let header_pairs = lcs_table(&base_stmts, &mod_stmts, |a, b| a.header_eq(b));
    let mut base_matched = vec![false; base_stmts.len()];
    let mut mod_matched = vec![false; mod_stmts.len()];
    for &(bi, mj) in &header_pairs {
        base_matched[bi] = true;
        mod_matched[mj] = true;
        let (b, m) = (base_stmts[bi], mod_stmts[mj]);
        diff.base_marks.insert(b.span, BaseMark::Unchanged);
        diff.mod_marks.insert(m.span, ModMark::Unchanged);
        diff.span_map.insert(b.span, m.span);
        recurse_into_pair(b, m, diff);
    }

    // Pass 2: same-kind pairs among the leftovers are "changed".
    let base_rest: Vec<(usize, &Stmt)> = base_stmts
        .iter()
        .enumerate()
        .filter(|(i, _)| !base_matched[*i])
        .map(|(i, s)| (i, *s))
        .collect();
    let mod_rest: Vec<(usize, &Stmt)> = mod_stmts
        .iter()
        .enumerate()
        .filter(|(j, _)| !mod_matched[*j])
        .map(|(j, s)| (j, *s))
        .collect();
    let kind_pairs = lcs_table(&base_rest, &mod_rest, |(_, a), (_, b)| same_kind(a, b));
    for &(ri, rj) in &kind_pairs {
        let (bi, b) = base_rest[ri];
        let (mj, m) = mod_rest[rj];
        base_matched[bi] = true;
        mod_matched[mj] = true;
        diff.base_marks.insert(b.span, BaseMark::Changed);
        diff.mod_marks.insert(m.span, ModMark::Changed);
        diff.span_map.insert(b.span, m.span);
        recurse_into_pair(b, m, diff);
    }

    // Leftovers: removed / added, recursively.
    for (i, stmt) in base_stmts.iter().enumerate() {
        if !base_matched[i] {
            mark_base_subtree(stmt, diff);
        }
    }
    for (j, stmt) in mod_stmts.iter().enumerate() {
        if !mod_matched[j] {
            mark_mod_subtree(stmt, diff);
        }
    }
}

/// Do two statements have the same shape, coarsely? Used by the second
/// matching pass, where contents already differ.
fn same_kind(a: &Stmt, b: &Stmt) -> bool {
    match (&a.kind, &b.kind) {
        (StmtKind::If { .. }, StmtKind::If { .. }) => true,
        (StmtKind::While { .. }, StmtKind::While { .. }) => true,
        (StmtKind::Assert { .. }, StmtKind::Assert { .. }) => true,
        (StmtKind::Assume { .. }, StmtKind::Assume { .. }) => true,
        (StmtKind::Assign { name: na, .. }, StmtKind::Assign { name: nb, .. }) => na == nb,
        (StmtKind::Decl { name: na, .. }, StmtKind::Decl { name: nb, .. }) => na == nb,
        (StmtKind::Skip, StmtKind::Skip) => true,
        (StmtKind::Return, StmtKind::Return) => true,
        (StmtKind::Call { callee: a, .. }, StmtKind::Call { callee: b, .. }) => a == b,
        _ => false,
    }
}

fn recurse_into_pair(base: &Stmt, modified: &Stmt, diff: &mut ProcDiff) {
    static EMPTY: Block = Block { stmts: Vec::new() };
    match (&base.kind, &modified.kind) {
        (
            StmtKind::If {
                then_branch: bt,
                else_branch: be,
                ..
            },
            StmtKind::If {
                then_branch: mt,
                else_branch: me,
                ..
            },
        ) => {
            diff_blocks(bt, mt, diff);
            let be = be.as_ref().unwrap_or(&EMPTY);
            let me = me.as_ref().unwrap_or(&EMPTY);
            diff_blocks(be, me, diff);
        }
        (StmtKind::While { body: bb, .. }, StmtKind::While { body: mb, .. }) => {
            diff_blocks(bb, mb, diff);
        }
        _ => {}
    }
}

fn mark_base_subtree(stmt: &Stmt, diff: &mut ProcDiff) {
    diff.base_marks.insert(stmt.span, BaseMark::Removed);
    for_each_child(stmt, &mut |child| mark_base_subtree(child, diff));
}

fn mark_mod_subtree(stmt: &Stmt, diff: &mut ProcDiff) {
    diff.mod_marks.insert(stmt.span, ModMark::Added);
    for_each_child(stmt, &mut |child| mark_mod_subtree(child, diff));
}

fn for_each_child(stmt: &Stmt, f: &mut impl FnMut(&Stmt)) {
    match &stmt.kind {
        StmtKind::If {
            then_branch,
            else_branch,
            ..
        } => {
            for s in &then_branch.stmts {
                f(s);
            }
            if let Some(e) = else_branch {
                for s in &e.stmts {
                    f(s);
                }
            }
        }
        StmtKind::While { body, .. } => {
            for s in &body.stmts {
                f(s);
            }
        }
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dise_ir::parse_program;

    fn diff(base: &str, modified: &str) -> ProcDiff {
        let b = parse_program(base).unwrap();
        let m = parse_program(modified).unwrap();
        diff_programs(&b, &m, "f").unwrap()
    }

    #[test]
    fn identical_programs_have_identity_diff() {
        let src = "proc f(int x) { if (x > 0) { x = 1; } else { x = 2; } }";
        let d = diff(src, src);
        assert!(d.is_identical());
        assert_eq!(d.change_count(), 0);
    }

    #[test]
    fn operator_mutation_marks_condition_changed() {
        // The paper's canonical change: `==` → `<=` on a conditional.
        let d = diff(
            "proc f(int x) {\n  if (x == 0) {\n    x = 1;\n  }\n}",
            "proc f(int x) {\n  if (x <= 0) {\n    x = 1;\n  }\n}",
        );
        let changed: Vec<Span> = d.changed_mod_spans().collect();
        assert_eq!(changed.len(), 1);
        assert_eq!(changed[0].line, 2);
        // The body statement is still unchanged.
        assert!(d.mod_mark(Span::new(3, 5, 3, 11)).is_some());
        assert!(d
            .mod_marks
            .iter()
            .filter(|(s, _)| s.line == 3)
            .all(|(_, &m)| m == ModMark::Unchanged));
        assert_eq!(d.change_count(), 1);
    }

    #[test]
    fn assignment_rhs_mutation_is_changed() {
        let d = diff(
            "proc f(int x) {\n  x = x + 1;\n}",
            "proc f(int x) {\n  x = x + 2;\n}",
        );
        assert_eq!(d.changed_mod_spans().count(), 1);
        assert_eq!(d.changed_base_spans().count(), 1);
    }

    #[test]
    fn added_statement_is_added() {
        let d = diff(
            "proc f(int x) {\n  x = 1;\n}",
            "proc f(int x) {\n  x = 1;\n  x = x + 5;\n}",
        );
        assert_eq!(d.added_mod_spans().count(), 1);
        assert_eq!(d.removed_base_spans().count(), 0);
        assert_eq!(d.added_mod_spans().next().unwrap().line, 3);
    }

    #[test]
    fn removed_statement_is_removed_and_unmapped() {
        let d = diff(
            "proc f(int x) {\n  x = 1;\n  x = x + 5;\n}",
            "proc f(int x) {\n  x = 1;\n}",
        );
        let removed: Vec<Span> = d.removed_base_spans().collect();
        assert_eq!(removed.len(), 1);
        assert_eq!(d.map_span(removed[0]), None);
    }

    #[test]
    fn span_map_links_matched_statements() {
        let d = diff(
            "proc f(int x) {\n  x = 1;\n  x = 2;\n}",
            "proc f(int x) {\n  x = 0;\n  x = 1;\n  x = 2;\n}",
        );
        // base line 2 (`x = 1;`) maps to mod line 3.
        let base_span = d.base_marks.keys().find(|s| s.line == 2).copied().unwrap();
        assert_eq!(d.map_span(base_span).unwrap().line, 3);
    }

    #[test]
    fn changed_if_condition_keeps_body_matched() {
        let d = diff(
            "proc f(int x) {\n  if (x == 0) {\n    x = 1;\n    x = 2;\n  }\n}",
            "proc f(int x) {\n  if (x < 0) {\n    x = 1;\n    x = 9;\n  }\n}",
        );
        // The if is changed; `x = 1` unchanged; `x = 2`→`x = 9` changed.
        let mod_marks: BTreeMap<u32, ModMark> =
            d.mod_marks.iter().map(|(s, &m)| (s.line, m)).collect();
        assert_eq!(mod_marks[&2], ModMark::Changed);
        assert_eq!(mod_marks[&3], ModMark::Unchanged);
        assert_eq!(mod_marks[&4], ModMark::Changed);
    }

    #[test]
    fn removed_if_marks_whole_subtree() {
        let d = diff(
            "proc f(int x) {\n  if (x > 0) {\n    x = 1;\n  }\n  x = 5;\n}",
            "proc f(int x) {\n  x = 5;\n}",
        );
        // Both the if (line 2) and its body (line 3) are removed.
        let removed_lines: Vec<u32> = d.removed_base_spans().map(|s| s.line).collect();
        assert_eq!(removed_lines, vec![2, 3]);
    }

    #[test]
    fn added_else_branch() {
        let d = diff(
            "proc f(int x) {\n  if (x > 0) {\n    x = 1;\n  }\n}",
            "proc f(int x) {\n  if (x > 0) {\n    x = 1;\n  } else {\n    x = 2;\n  }\n}",
        );
        // The if header is unchanged; the else body is added.
        let added: Vec<u32> = d.added_mod_spans().map(|s| s.line).collect();
        assert_eq!(added, vec![5]);
        assert!(d
            .mod_marks
            .iter()
            .filter(|(s, _)| s.line == 2)
            .all(|(_, &m)| m == ModMark::Unchanged));
    }

    #[test]
    fn missing_procedure_is_reported() {
        let b = parse_program("proc f() { skip; }").unwrap();
        let m = parse_program("proc g() { skip; }").unwrap();
        assert_eq!(
            diff_programs(&b, &m, "f").unwrap_err(),
            DiffError::MissingProcedure("f".into())
        );
    }

    #[test]
    fn dummy_spans_are_rejected() {
        use dise_ir::builder::{assign, int, ProgramBuilder};
        use dise_ir::Type;
        let p = ProgramBuilder::new()
            .proc(
                "f",
                [("x", Type::Int)],
                vec![assign("x", int(1)), assign("x", int(2))],
            )
            .build();
        let err = diff_programs(&p, &p, "f").unwrap_err();
        assert!(matches!(err, DiffError::AmbiguousSpans(_)));
    }

    #[test]
    fn assignment_to_different_variable_is_remove_add() {
        let d = diff(
            "proc f(int x, int y) {\n  x = 1;\n}",
            "proc f(int x, int y) {\n  y = 1;\n}",
        );
        assert_eq!(d.removed_base_spans().count(), 1);
        assert_eq!(d.added_mod_spans().count(), 1);
    }

    #[test]
    fn reordered_statements_match_partially() {
        // LCS keeps the longest common run; one of the two swapped
        // statements ends up changed or removed+added.
        let d = diff(
            "proc f(int x, int y) {\n  x = 1;\n  y = 2;\n}",
            "proc f(int x, int y) {\n  y = 2;\n  x = 1;\n}",
        );
        assert!(!d.is_identical());
        // At least one statement stays matched.
        assert!(d.mod_marks.values().any(|&m| m == ModMark::Unchanged));
    }
}
