//! Source positions.
//!
//! Every AST node carries a [`Span`] giving its line/column range in the
//! original source. The differencing analysis ([`dise-diff`]) uses spans only
//! for reporting; structural matching is span-insensitive.
//!
//! [`dise-diff`]: https://example.invalid/dise

use std::fmt;

/// A half-open region of source text identified by line/column coordinates.
///
/// Lines and columns are 1-based, matching what editors display. The dummy
/// span ([`Span::dummy`]) is used for synthesized nodes (for example those
/// produced by [`crate::builder::ProgramBuilder`]).
///
/// # Examples
///
/// ```
/// use dise_ir::Span;
///
/// let span = Span::new(3, 5, 3, 12);
/// assert_eq!(span.line, 3);
/// assert_eq!(format!("{span}"), "3:5");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Span {
    /// 1-based line of the first character, or 0 for synthesized nodes.
    pub line: u32,
    /// 1-based column of the first character, or 0 for synthesized nodes.
    pub col: u32,
    /// 1-based line of the last character.
    pub end_line: u32,
    /// 1-based column just past the last character.
    pub end_col: u32,
}

impl Span {
    /// Creates a span covering `line:col` through `end_line:end_col`.
    pub fn new(line: u32, col: u32, end_line: u32, end_col: u32) -> Self {
        Span {
            line,
            col,
            end_line,
            end_col,
        }
    }

    /// Creates a zero-width span at a single position.
    pub fn point(line: u32, col: u32) -> Self {
        Span::new(line, col, line, col)
    }

    /// The span used for synthesized nodes with no source location.
    pub fn dummy() -> Self {
        Span::default()
    }

    /// Returns `true` if this span refers to no real source location.
    pub fn is_dummy(&self) -> bool {
        self.line == 0
    }

    /// Returns the smallest span covering both `self` and `other`.
    ///
    /// Dummy spans are treated as identity elements.
    pub fn merge(self, other: Span) -> Span {
        if self.is_dummy() {
            return other;
        }
        if other.is_dummy() {
            return self;
        }
        let (line, col) = if (self.line, self.col) <= (other.line, other.col) {
            (self.line, self.col)
        } else {
            (other.line, other.col)
        };
        let (end_line, end_col) =
            if (self.end_line, self.end_col) >= (other.end_line, other.end_col) {
                (self.end_line, self.end_col)
            } else {
                (other.end_line, other.end_col)
            };
        Span::new(line, col, end_line, end_col)
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_dummy() {
            write!(f, "<synthesized>")
        } else {
            write!(f, "{}:{}", self.line, self.col)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dummy_span_is_dummy() {
        assert!(Span::dummy().is_dummy());
        assert!(!Span::point(1, 1).is_dummy());
    }

    #[test]
    fn merge_takes_extremes() {
        let a = Span::new(2, 4, 2, 9);
        let b = Span::new(3, 1, 4, 2);
        let m = a.merge(b);
        assert_eq!(m, Span::new(2, 4, 4, 2));
        // Merging is commutative.
        assert_eq!(b.merge(a), m);
    }

    #[test]
    fn merge_with_dummy_is_identity() {
        let a = Span::new(5, 1, 5, 10);
        assert_eq!(a.merge(Span::dummy()), a);
        assert_eq!(Span::dummy().merge(a), a);
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", Span::point(7, 3)), "7:3");
        assert_eq!(format!("{}", Span::dummy()), "<synthesized>");
    }

    #[test]
    fn merge_overlapping_spans() {
        let a = Span::new(1, 1, 3, 5);
        let b = Span::new(2, 2, 2, 8);
        assert_eq!(a.merge(b), Span::new(1, 1, 3, 5));
    }
}
