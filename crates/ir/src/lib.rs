//! # dise-ir — the MJ language
//!
//! The intermediate representation used throughout the DiSE reproduction.
//!
//! The paper's prototype analyzes Java bytecode inside Symbolic PathFinder.
//! This crate provides the equivalent substrate: **MJ**, a small imperative
//! language with integers, booleans, assignments, `if`/`else`, `while`,
//! `assert`/`assume`, global variables, and procedures. MJ is exactly the
//! fragment exercised by the paper's artifacts (reactive control logic over
//! ints and bools), so the DiSE algorithms — which are defined over a
//! per-procedure control-flow graph with `Write`/`Cond` nodes and `Def`/`Use`
//! maps — carry over unchanged.
//!
//! The crate provides:
//!
//! * [`ast`] — the abstract syntax tree, with span-insensitive structural
//!   equality (`syn_eq`) used by the differencing analysis;
//! * [`lexer`] / [`parser`] — a hand-written lexer and recursive-descent
//!   parser with position-carrying errors;
//! * [`pretty`] — a canonical pretty-printer such that parsing the output
//!   reproduces the input AST;
//! * [`typeck`] — a type checker that also validates
//!   definite-initialization of locals;
//! * [`builder`] — a programmatic AST construction API (used heavily by the
//!   property-test program generators).
//!
//! # Examples
//!
//! ```
//! use dise_ir::parse_program;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let program = parse_program(
//!     "int y;
//!      proc testX(int x) {
//!        if (x > 0) { y = y + x; } else { y = y - x; }
//!      }",
//! )?;
//! assert_eq!(program.procs[0].name, "testX");
//! # Ok(())
//! # }
//! ```

pub mod ast;
pub mod builder;
pub mod error;
pub mod inline;
pub mod lexer;
pub mod parser;
pub mod pretty;
pub mod span;
pub mod token;
pub mod typeck;

pub use ast::{
    BinOp, Block, Expr, ExprKind, Global, Procedure, Program, Stmt, StmtKind, Type, UnOp,
};
pub use builder::ProgramBuilder;
pub use error::{IrError, ParseError, TypeError};
pub use parser::{parse_expr, parse_program};
pub use span::Span;
pub use typeck::check_program;
