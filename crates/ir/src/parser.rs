//! Recursive-descent parser for MJ.
//!
//! The grammar (Java-flavoured, semicolon-terminated):
//!
//! ```text
//! program  := (global | proc)*
//! global   := type IDENT ("=" expr)? ";"
//! proc     := "proc" IDENT "(" (param ("," param)*)? ")" block
//! param    := type IDENT
//! type     := "int" | "bool"
//! block    := "{" stmt* "}"
//! stmt     := type IDENT "=" expr ";"
//!           | IDENT "=" expr ";"
//!           | IDENT "(" (expr ("," expr)*)? ")" ";"
//!           | "if" "(" expr ")" block ("else" (block | if-stmt))?
//!           | "while" "(" expr ")" block
//!           | "assert" "(" expr ")" ";"
//!           | "assume" "(" expr ")" ";"
//!           | "skip" ";"
//!           | "return" ";"
//! expr     := or
//! or       := and ("||" and)*
//! and      := cmp ("&&" cmp)*
//! cmp      := add (("=="|"!="|"<"|"<="|">"|">=") add)?
//! add      := mul (("+"|"-") mul)*
//! mul      := unary (("*"|"/"|"%") unary)*
//! unary    := ("-"|"!") unary | primary
//! primary  := INT | "true" | "false" | IDENT | "(" expr ")"
//! ```
//!
//! `else if` chains parse as nested `If` statements in the else block,
//! exactly as the pretty-printer renders them, so parse∘pretty is the
//! identity on ASTs (up to spans).

use crate::ast::{
    BinOp, Block, Expr, ExprKind, Global, Param, Procedure, Program, Stmt, StmtKind, Type, UnOp,
};
use crate::error::ParseError;
use crate::lexer::lex;
use crate::span::Span;
use crate::token::{Token, TokenKind};

/// Parses a complete MJ program.
///
/// # Errors
///
/// Returns a [`ParseError`] describing the first syntax error encountered.
///
/// # Examples
///
/// ```
/// use dise_ir::parse_program;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let p = parse_program("int g = 2; proc main(int x) { g = g + x; }")?;
/// assert_eq!(p.globals.len(), 1);
/// assert_eq!(p.procs.len(), 1);
/// # Ok(())
/// # }
/// ```
pub fn parse_program(source: &str) -> Result<Program, ParseError> {
    let tokens = lex(source)?;
    let mut parser = Parser::new(tokens);
    let program = parser.program()?;
    parser.expect_eof()?;
    Ok(program)
}

/// Parses a single expression (useful in tests and the REPL-style examples).
///
/// # Errors
///
/// Returns a [`ParseError`] if the text is not exactly one expression.
///
/// # Examples
///
/// ```
/// use dise_ir::parse_expr;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let e = parse_expr("x + 2 * y <= 10")?;
/// assert_eq!(e.vars(), vec!["x".to_string(), "y".to_string()]);
/// # Ok(())
/// # }
/// ```
pub fn parse_expr(source: &str) -> Result<Expr, ParseError> {
    let tokens = lex(source)?;
    let mut parser = Parser::new(tokens);
    let expr = parser.expr()?;
    parser.expect_eof()?;
    Ok(expr)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn new(tokens: Vec<Token>) -> Self {
        Parser { tokens, pos: 0 }
    }

    fn peek(&self) -> &Token {
        &self.tokens[self.pos.min(self.tokens.len() - 1)]
    }

    fn peek2(&self) -> &Token {
        &self.tokens[(self.pos + 1).min(self.tokens.len() - 1)]
    }

    fn bump(&mut self) -> Token {
        let token = self.peek().clone();
        if self.pos < self.tokens.len() - 1 {
            self.pos += 1;
        }
        token
    }

    fn at(&self, kind: &TokenKind) -> bool {
        &self.peek().kind == kind
    }

    fn eat(&mut self, kind: &TokenKind) -> bool {
        if self.at(kind) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, kind: &TokenKind) -> Result<Token, ParseError> {
        if self.at(kind) {
            Ok(self.bump())
        } else {
            let found = self.peek();
            Err(ParseError::new(
                format!("expected `{kind}`, found {}", found.kind.describe()),
                found.span,
            ))
        }
    }

    fn expect_eof(&mut self) -> Result<(), ParseError> {
        if self.at(&TokenKind::Eof) {
            Ok(())
        } else {
            let found = self.peek();
            Err(ParseError::new(
                format!("expected end of input, found {}", found.kind.describe()),
                found.span,
            ))
        }
    }

    fn expect_ident(&mut self) -> Result<(String, Span), ParseError> {
        match &self.peek().kind {
            TokenKind::Ident(_) => {
                let token = self.bump();
                let TokenKind::Ident(name) = token.kind else {
                    unreachable!("peeked an identifier");
                };
                Ok((name, token.span))
            }
            other => Err(ParseError::new(
                format!("expected identifier, found {}", other.describe()),
                self.peek().span,
            )),
        }
    }

    fn peek_type(&self) -> Option<Type> {
        match self.peek().kind {
            TokenKind::KwInt => Some(Type::Int),
            TokenKind::KwBool => Some(Type::Bool),
            _ => None,
        }
    }

    fn program(&mut self) -> Result<Program, ParseError> {
        let mut program = Program::default();
        loop {
            if self.at(&TokenKind::Eof) {
                return Ok(program);
            }
            if self.at(&TokenKind::KwProc) {
                program.procs.push(self.procedure()?);
            } else if self.peek_type().is_some() {
                program.globals.push(self.global()?);
            } else {
                let found = self.peek();
                return Err(ParseError::new(
                    format!(
                        "expected `proc`, `int`, or `bool` at top level, found {}",
                        found.kind.describe()
                    ),
                    found.span,
                ));
            }
        }
    }

    fn global(&mut self) -> Result<Global, ParseError> {
        let ty_token = self.bump();
        let ty = match ty_token.kind {
            TokenKind::KwInt => Type::Int,
            TokenKind::KwBool => Type::Bool,
            _ => unreachable!("caller checked peek_type"),
        };
        let (name, _) = self.expect_ident()?;
        let init = if self.eat(&TokenKind::Assign) {
            Some(self.expr()?)
        } else {
            None
        };
        let end = self.expect(&TokenKind::Semi)?;
        Ok(Global {
            ty,
            name,
            init,
            span: ty_token.span.merge(end.span),
        })
    }

    fn procedure(&mut self) -> Result<Procedure, ParseError> {
        let kw = self.expect(&TokenKind::KwProc)?;
        let (name, _) = self.expect_ident()?;
        self.expect(&TokenKind::LParen)?;
        let mut params = Vec::new();
        if !self.at(&TokenKind::RParen) {
            loop {
                params.push(self.param()?);
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
            }
        }
        let close = self.expect(&TokenKind::RParen)?;
        let body = self.block()?;
        Ok(Procedure {
            name,
            params,
            body,
            span: kw.span.merge(close.span),
        })
    }

    fn param(&mut self) -> Result<Param, ParseError> {
        let Some(ty) = self.peek_type() else {
            let found = self.peek();
            return Err(ParseError::new(
                format!(
                    "expected parameter type `int` or `bool`, found {}",
                    found.kind.describe()
                ),
                found.span,
            ));
        };
        let ty_token = self.bump();
        let (name, name_span) = self.expect_ident()?;
        Ok(Param {
            ty,
            name,
            span: ty_token.span.merge(name_span),
        })
    }

    fn block(&mut self) -> Result<Block, ParseError> {
        self.expect(&TokenKind::LBrace)?;
        let mut stmts = Vec::new();
        while !self.at(&TokenKind::RBrace) {
            if self.at(&TokenKind::Eof) {
                let found = self.peek();
                return Err(ParseError::new("unclosed block: expected `}`", found.span));
            }
            stmts.push(self.stmt()?);
        }
        self.expect(&TokenKind::RBrace)?;
        Ok(Block::new(stmts))
    }

    fn stmt(&mut self) -> Result<Stmt, ParseError> {
        match self.peek().kind {
            TokenKind::KwIf => self.if_stmt(),
            TokenKind::KwWhile => self.while_stmt(),
            TokenKind::KwAssert => self.assert_stmt(false),
            TokenKind::KwAssume => self.assert_stmt(true),
            TokenKind::KwSkip => {
                let kw = self.bump();
                let end = self.expect(&TokenKind::Semi)?;
                Ok(Stmt::with_span(StmtKind::Skip, kw.span.merge(end.span)))
            }
            TokenKind::KwReturn => {
                let kw = self.bump();
                let end = self.expect(&TokenKind::Semi)?;
                Ok(Stmt::with_span(StmtKind::Return, kw.span.merge(end.span)))
            }
            TokenKind::KwInt | TokenKind::KwBool => self.decl_stmt(),
            TokenKind::Ident(_) => {
                if self.peek2().kind == TokenKind::LParen {
                    self.call_stmt()
                } else {
                    self.assign_stmt()
                }
            }
            _ => {
                let found = self.peek();
                Err(ParseError::new(
                    format!("expected a statement, found {}", found.kind.describe()),
                    found.span,
                ))
            }
        }
    }

    fn decl_stmt(&mut self) -> Result<Stmt, ParseError> {
        let ty_token = self.bump();
        let ty = match ty_token.kind {
            TokenKind::KwInt => Type::Int,
            TokenKind::KwBool => Type::Bool,
            _ => unreachable!("caller checked for a type keyword"),
        };
        let (name, _) = self.expect_ident()?;
        self.expect(&TokenKind::Assign)?;
        let init = self.expr()?;
        let end = self.expect(&TokenKind::Semi)?;
        Ok(Stmt::with_span(
            StmtKind::Decl { ty, name, init },
            ty_token.span.merge(end.span),
        ))
    }

    fn assign_stmt(&mut self) -> Result<Stmt, ParseError> {
        let (name, name_span) = self.expect_ident()?;
        self.expect(&TokenKind::Assign)?;
        let value = self.expr()?;
        let end = self.expect(&TokenKind::Semi)?;
        Ok(Stmt::with_span(
            StmtKind::Assign { name, value },
            name_span.merge(end.span),
        ))
    }

    fn call_stmt(&mut self) -> Result<Stmt, ParseError> {
        let (callee, callee_span) = self.expect_ident()?;
        self.expect(&TokenKind::LParen)?;
        let mut args = Vec::new();
        if !self.at(&TokenKind::RParen) {
            loop {
                args.push(self.expr()?);
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
            }
        }
        self.expect(&TokenKind::RParen)?;
        let end = self.expect(&TokenKind::Semi)?;
        Ok(Stmt::with_span(
            StmtKind::Call { callee, args },
            callee_span.merge(end.span),
        ))
    }

    fn if_stmt(&mut self) -> Result<Stmt, ParseError> {
        let kw = self.expect(&TokenKind::KwIf)?;
        self.expect(&TokenKind::LParen)?;
        let cond = self.expr()?;
        let close = self.expect(&TokenKind::RParen)?;
        let then_branch = self.block()?;
        let else_branch = if self.eat(&TokenKind::KwElse) {
            if self.at(&TokenKind::KwIf) {
                // `else if` sugar: a one-statement else block.
                let nested = self.if_stmt()?;
                Some(Block::new(vec![nested]))
            } else {
                Some(self.block()?)
            }
        } else {
            None
        };
        Ok(Stmt::with_span(
            StmtKind::If {
                cond,
                then_branch,
                else_branch,
            },
            kw.span.merge(close.span),
        ))
    }

    fn while_stmt(&mut self) -> Result<Stmt, ParseError> {
        let kw = self.expect(&TokenKind::KwWhile)?;
        self.expect(&TokenKind::LParen)?;
        let cond = self.expr()?;
        let close = self.expect(&TokenKind::RParen)?;
        let body = self.block()?;
        Ok(Stmt::with_span(
            StmtKind::While { cond, body },
            kw.span.merge(close.span),
        ))
    }

    fn assert_stmt(&mut self, is_assume: bool) -> Result<Stmt, ParseError> {
        let kw = self.bump();
        self.expect(&TokenKind::LParen)?;
        let cond = self.expr()?;
        self.expect(&TokenKind::RParen)?;
        let end = self.expect(&TokenKind::Semi)?;
        let kind = if is_assume {
            StmtKind::Assume { cond }
        } else {
            StmtKind::Assert { cond, label: None }
        };
        Ok(Stmt::with_span(kind, kw.span.merge(end.span)))
    }

    pub(crate) fn expr(&mut self) -> Result<Expr, ParseError> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.and_expr()?;
        while self.eat(&TokenKind::OrOr) {
            let rhs = self.and_expr()?;
            lhs = binary(BinOp::Or, lhs, rhs);
        }
        Ok(lhs)
    }

    fn and_expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.cmp_expr()?;
        while self.eat(&TokenKind::AndAnd) {
            let rhs = self.cmp_expr()?;
            lhs = binary(BinOp::And, lhs, rhs);
        }
        Ok(lhs)
    }

    fn cmp_expr(&mut self) -> Result<Expr, ParseError> {
        let lhs = self.add_expr()?;
        let op = match self.peek().kind {
            TokenKind::EqEq => BinOp::Eq,
            TokenKind::NotEq => BinOp::Ne,
            TokenKind::Lt => BinOp::Lt,
            TokenKind::Le => BinOp::Le,
            TokenKind::Gt => BinOp::Gt,
            TokenKind::Ge => BinOp::Ge,
            _ => return Ok(lhs),
        };
        self.bump();
        let rhs = self.add_expr()?;
        Ok(binary(op, lhs, rhs))
    }

    fn add_expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.mul_expr()?;
        loop {
            let op = match self.peek().kind {
                TokenKind::Plus => BinOp::Add,
                TokenKind::Minus => BinOp::Sub,
                _ => return Ok(lhs),
            };
            self.bump();
            let rhs = self.mul_expr()?;
            lhs = binary(op, lhs, rhs);
        }
    }

    fn mul_expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.unary_expr()?;
        loop {
            let op = match self.peek().kind {
                TokenKind::Star => BinOp::Mul,
                TokenKind::Slash => BinOp::Div,
                TokenKind::Percent => BinOp::Rem,
                _ => return Ok(lhs),
            };
            self.bump();
            let rhs = self.unary_expr()?;
            lhs = binary(op, lhs, rhs);
        }
    }

    fn unary_expr(&mut self) -> Result<Expr, ParseError> {
        let op = match self.peek().kind {
            TokenKind::Minus => Some(UnOp::Neg),
            TokenKind::Bang => Some(UnOp::Not),
            _ => None,
        };
        if let Some(op) = op {
            let op_token = self.bump();
            let inner = self.unary_expr()?;
            let span = op_token.span.merge(inner.span);
            return Ok(Expr::with_span(
                ExprKind::Unary {
                    op,
                    expr: Box::new(inner),
                },
                span,
            ));
        }
        self.primary_expr()
    }

    fn primary_expr(&mut self) -> Result<Expr, ParseError> {
        let token = self.peek().clone();
        match token.kind {
            TokenKind::Int(value) => {
                self.bump();
                Ok(Expr::with_span(ExprKind::Int(value), token.span))
            }
            TokenKind::KwTrue => {
                self.bump();
                Ok(Expr::with_span(ExprKind::Bool(true), token.span))
            }
            TokenKind::KwFalse => {
                self.bump();
                Ok(Expr::with_span(ExprKind::Bool(false), token.span))
            }
            TokenKind::Ident(name) => {
                self.bump();
                Ok(Expr::with_span(ExprKind::Var(name), token.span))
            }
            TokenKind::LParen => {
                self.bump();
                let inner = self.expr()?;
                let close = self.expect(&TokenKind::RParen)?;
                Ok(Expr::with_span(inner.kind, token.span.merge(close.span)))
            }
            other => Err(ParseError::new(
                format!("expected an expression, found {}", other.describe()),
                token.span,
            )),
        }
    }
}

fn binary(op: BinOp, lhs: Expr, rhs: Expr) -> Expr {
    let span = lhs.span.merge(rhs.span);
    Expr::with_span(
        ExprKind::Binary {
            op,
            lhs: Box::new(lhs),
            rhs: Box::new(rhs),
        },
        span,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_globals_with_and_without_init() {
        let p = parse_program("int a = 0; int b; bool c = true;").unwrap();
        assert_eq!(p.globals.len(), 3);
        assert!(p.globals[0].init.is_some());
        assert!(p.globals[1].init.is_none());
        assert_eq!(p.globals[2].ty, Type::Bool);
    }

    #[test]
    fn parses_procedure_with_params() {
        let p = parse_program("proc f(int x, bool b) { skip; }").unwrap();
        let f = p.proc("f").unwrap();
        assert_eq!(f.params.len(), 2);
        assert_eq!(f.params[0].name, "x");
        assert_eq!(f.params[1].ty, Type::Bool);
    }

    #[test]
    fn precedence_mul_binds_tighter_than_add() {
        let e = parse_expr("1 + 2 * 3").unwrap();
        let ExprKind::Binary { op, rhs, .. } = &e.kind else {
            panic!("expected binary expr");
        };
        assert_eq!(*op, BinOp::Add);
        let ExprKind::Binary { op: inner, .. } = &rhs.kind else {
            panic!("expected nested binary expr");
        };
        assert_eq!(*inner, BinOp::Mul);
    }

    #[test]
    fn precedence_cmp_binds_tighter_than_and() {
        let e = parse_expr("x < 1 && y > 2").unwrap();
        let ExprKind::Binary { op, .. } = &e.kind else {
            panic!("expected binary expr");
        };
        assert_eq!(*op, BinOp::And);
    }

    #[test]
    fn precedence_and_binds_tighter_than_or() {
        let e = parse_expr("a && b || c").unwrap();
        let ExprKind::Binary { op, lhs, .. } = &e.kind else {
            panic!("expected binary expr");
        };
        assert_eq!(*op, BinOp::Or);
        let ExprKind::Binary { op: inner, .. } = &lhs.kind else {
            panic!("expected nested binary expr");
        };
        assert_eq!(*inner, BinOp::And);
    }

    #[test]
    fn parses_else_if_chain_as_nested_if() {
        let p = parse_program(
            "proc f(int x) { if (x == 0) { skip; } else if (x == 1) { skip; } else { skip; } }",
        )
        .unwrap();
        let StmtKind::If { else_branch, .. } = &p.procs[0].body.stmts[0].kind else {
            panic!("expected if");
        };
        let else_block = else_branch.as_ref().unwrap();
        assert_eq!(else_block.stmts.len(), 1);
        assert!(matches!(else_block.stmts[0].kind, StmtKind::If { .. }));
    }

    #[test]
    fn parses_while_assert_assume_skip_return() {
        let p = parse_program(
            "proc f(int x) {
               while (x > 0) { x = x - 1; }
               assert(x == 0);
               assume(x >= 0);
               skip;
               return;
             }",
        )
        .unwrap();
        let kinds: Vec<_> = p.procs[0].body.stmts.iter().map(|s| &s.kind).collect();
        assert!(matches!(kinds[0], StmtKind::While { .. }));
        assert!(matches!(kinds[1], StmtKind::Assert { .. }));
        assert!(matches!(kinds[2], StmtKind::Assume { .. }));
        assert!(matches!(kinds[3], StmtKind::Skip));
        assert!(matches!(kinds[4], StmtKind::Return));
    }

    #[test]
    fn local_decl_requires_initializer() {
        assert!(parse_program("proc f() { int x; }").is_err());
        assert!(parse_program("proc f() { int x = 3; }").is_ok());
    }

    #[test]
    fn unary_operators_nest() {
        let e = parse_expr("--x").unwrap();
        let ExprKind::Unary { op, expr } = &e.kind else {
            panic!("expected unary");
        };
        assert_eq!(*op, UnOp::Neg);
        assert!(matches!(expr.kind, ExprKind::Unary { .. }));
        let not = parse_expr("!(a && b)").unwrap();
        assert!(matches!(not.kind, ExprKind::Unary { op: UnOp::Not, .. }));
    }

    #[test]
    fn statement_spans_record_source_lines() {
        let p = parse_program("proc f(int x) {\n  x = 1;\n  x = 2;\n}").unwrap();
        assert_eq!(p.procs[0].body.stmts[0].span.line, 2);
        assert_eq!(p.procs[0].body.stmts[1].span.line, 3);
    }

    #[test]
    fn error_on_missing_semicolon() {
        let err = parse_program("proc f() { skip }").unwrap_err();
        assert!(err.to_string().contains("expected `;`"));
    }

    #[test]
    fn error_on_unclosed_block() {
        let err = parse_program("proc f() { skip;").unwrap_err();
        assert!(err.message().contains("unclosed block"));
    }

    #[test]
    fn error_on_trailing_tokens() {
        let err = parse_program("proc f() { } }").unwrap_err();
        assert!(err.message().contains("expected"));
    }

    #[test]
    fn error_on_garbage_top_level() {
        let err = parse_program("42").unwrap_err();
        assert!(err.message().contains("top level"));
    }

    #[test]
    fn parenthesized_expression_keeps_structure() {
        let a = parse_expr("(1 + 2) * 3").unwrap();
        let ExprKind::Binary { op, .. } = &a.kind else {
            panic!("expected binary");
        };
        assert_eq!(*op, BinOp::Mul);
    }

    #[test]
    fn parses_call_statements() {
        let p = parse_program(
            "proc helper(int a, bool b) { skip; }
             proc main(int x) {
               helper(x + 1, true);
               helper(0, false);
             }",
        )
        .unwrap();
        let StmtKind::Call { callee, args } = &p.proc("main").unwrap().body.stmts[0].kind else {
            panic!("expected call");
        };
        assert_eq!(callee, "helper");
        assert_eq!(args.len(), 2);
    }

    #[test]
    fn parses_zero_argument_call() {
        let p = parse_program("proc tick() { skip; } proc main() { tick(); }").unwrap();
        assert!(matches!(
            p.proc("main").unwrap().body.stmts[0].kind,
            StmtKind::Call { .. }
        ));
    }

    #[test]
    fn call_requires_semicolon_and_close_paren() {
        assert!(parse_program("proc main() { tick() }").is_err());
        assert!(parse_program("proc main() { tick(; }").is_err());
    }

    #[test]
    fn comparison_is_non_associative() {
        // `a < b < c` is a type error in MJ, but syntactically it must fail
        // to swallow the second `<` (cmp accepts at most one operator).
        assert!(parse_expr("a < b < c").is_err());
    }
}
