//! Hand-written lexer for MJ source text.
//!
//! The lexer is total over arbitrary input: every byte sequence either lexes
//! into a token stream terminated by [`TokenKind::Eof`] or produces a
//! [`ParseError`] with the offending position. Line comments (`// ...`) and
//! block comments (`/* ... */`, non-nesting) are skipped.

use crate::error::ParseError;
use crate::span::Span;
use crate::token::{Token, TokenKind};

/// Lexes `source` into a vector of tokens terminated by [`TokenKind::Eof`].
///
/// # Errors
///
/// Returns a [`ParseError`] on unknown characters, malformed operators
/// (a bare `&` or `|`), integer literals that overflow `i64`, or unterminated
/// block comments.
///
/// # Examples
///
/// ```
/// use dise_ir::lexer::lex;
/// use dise_ir::token::TokenKind;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let tokens = lex("x <= 10")?;
/// assert_eq!(tokens[1].kind, TokenKind::Le);
/// assert_eq!(tokens.last().unwrap().kind, TokenKind::Eof);
/// # Ok(())
/// # }
/// ```
pub fn lex(source: &str) -> Result<Vec<Token>, ParseError> {
    Lexer::new(source).run()
}

struct Lexer<'src> {
    chars: Vec<char>,
    src: std::marker::PhantomData<&'src str>,
    pos: usize,
    line: u32,
    col: u32,
}

impl<'src> Lexer<'src> {
    fn new(source: &'src str) -> Self {
        Lexer {
            chars: source.chars().collect(),
            src: std::marker::PhantomData,
            pos: 0,
            line: 1,
            col: 1,
        }
    }

    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn peek2(&self) -> Option<char> {
        self.chars.get(self.pos + 1).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        self.pos += 1;
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn here(&self) -> (u32, u32) {
        (self.line, self.col)
    }

    fn run(mut self) -> Result<Vec<Token>, ParseError> {
        let mut tokens = Vec::new();
        loop {
            self.skip_trivia()?;
            let (line, col) = self.here();
            let Some(c) = self.peek() else {
                tokens.push(Token::new(TokenKind::Eof, Span::point(line, col)));
                return Ok(tokens);
            };
            let kind = if c.is_ascii_digit() {
                self.lex_int()?
            } else if c.is_ascii_alphabetic() || c == '_' {
                self.lex_word()
            } else {
                self.lex_operator()?
            };
            let (end_line, end_col) = self.here();
            tokens.push(Token::new(kind, Span::new(line, col, end_line, end_col)));
        }
    }

    fn skip_trivia(&mut self) -> Result<(), ParseError> {
        loop {
            match self.peek() {
                Some(c) if c.is_whitespace() => {
                    self.bump();
                }
                Some('/') if self.peek2() == Some('/') => {
                    while let Some(c) = self.peek() {
                        if c == '\n' {
                            break;
                        }
                        self.bump();
                    }
                }
                Some('/') if self.peek2() == Some('*') => {
                    let (line, col) = self.here();
                    self.bump();
                    self.bump();
                    loop {
                        match (self.peek(), self.peek2()) {
                            (Some('*'), Some('/')) => {
                                self.bump();
                                self.bump();
                                break;
                            }
                            (Some(_), _) => {
                                self.bump();
                            }
                            (None, _) => {
                                return Err(ParseError::new(
                                    "unterminated block comment",
                                    Span::point(line, col),
                                ));
                            }
                        }
                    }
                }
                _ => return Ok(()),
            }
        }
    }

    fn lex_int(&mut self) -> Result<TokenKind, ParseError> {
        let (line, col) = self.here();
        let mut value: i64 = 0;
        while let Some(c) = self.peek() {
            let Some(digit) = c.to_digit(10) else { break };
            self.bump();
            value = value
                .checked_mul(10)
                .and_then(|v| v.checked_add(i64::from(digit)))
                .ok_or_else(|| {
                    ParseError::new("integer literal overflows i64", Span::point(line, col))
                })?;
        }
        Ok(TokenKind::Int(value))
    }

    fn lex_word(&mut self) -> TokenKind {
        let mut word = String::new();
        while let Some(c) = self.peek() {
            if c.is_ascii_alphanumeric() || c == '_' {
                word.push(c);
                self.bump();
            } else {
                break;
            }
        }
        TokenKind::keyword(&word).unwrap_or(TokenKind::Ident(word))
    }

    fn lex_operator(&mut self) -> Result<TokenKind, ParseError> {
        let (line, col) = self.here();
        let c = self.bump().expect("caller checked peek");
        let kind = match c {
            '(' => TokenKind::LParen,
            ')' => TokenKind::RParen,
            '{' => TokenKind::LBrace,
            '}' => TokenKind::RBrace,
            ';' => TokenKind::Semi,
            ',' => TokenKind::Comma,
            '+' => TokenKind::Plus,
            '-' => TokenKind::Minus,
            '*' => TokenKind::Star,
            '/' => TokenKind::Slash,
            '%' => TokenKind::Percent,
            '=' => {
                if self.peek() == Some('=') {
                    self.bump();
                    TokenKind::EqEq
                } else {
                    TokenKind::Assign
                }
            }
            '!' => {
                if self.peek() == Some('=') {
                    self.bump();
                    TokenKind::NotEq
                } else {
                    TokenKind::Bang
                }
            }
            '<' => {
                if self.peek() == Some('=') {
                    self.bump();
                    TokenKind::Le
                } else {
                    TokenKind::Lt
                }
            }
            '>' => {
                if self.peek() == Some('=') {
                    self.bump();
                    TokenKind::Ge
                } else {
                    TokenKind::Gt
                }
            }
            '&' => {
                if self.peek() == Some('&') {
                    self.bump();
                    TokenKind::AndAnd
                } else {
                    return Err(ParseError::new(
                        "expected `&&` (MJ has no bitwise `&`)",
                        Span::point(line, col),
                    ));
                }
            }
            '|' => {
                if self.peek() == Some('|') {
                    self.bump();
                    TokenKind::OrOr
                } else {
                    return Err(ParseError::new(
                        "expected `||` (MJ has no bitwise `|`)",
                        Span::point(line, col),
                    ));
                }
            }
            other => {
                return Err(ParseError::new(
                    format!("unexpected character `{other}`"),
                    Span::point(line, col),
                ));
            }
        };
        Ok(kind)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn lexes_simple_assignment() {
        assert_eq!(
            kinds("x = x + 1;"),
            vec![
                TokenKind::Ident("x".into()),
                TokenKind::Assign,
                TokenKind::Ident("x".into()),
                TokenKind::Plus,
                TokenKind::Int(1),
                TokenKind::Semi,
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn distinguishes_compound_operators() {
        assert_eq!(
            kinds("< <= > >= == != = ! && ||"),
            vec![
                TokenKind::Lt,
                TokenKind::Le,
                TokenKind::Gt,
                TokenKind::Ge,
                TokenKind::EqEq,
                TokenKind::NotEq,
                TokenKind::Assign,
                TokenKind::Bang,
                TokenKind::AndAnd,
                TokenKind::OrOr,
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn keywords_are_not_identifiers() {
        assert_eq!(
            kinds("if iff"),
            vec![
                TokenKind::KwIf,
                TokenKind::Ident("iff".into()),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn skips_line_and_block_comments() {
        assert_eq!(
            kinds("a // comment\n/* block\n comment */ b"),
            vec![
                TokenKind::Ident("a".into()),
                TokenKind::Ident("b".into()),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn tracks_line_numbers() {
        let tokens = lex("a\n  b").unwrap();
        assert_eq!(tokens[0].span.line, 1);
        assert_eq!(tokens[1].span.line, 2);
        assert_eq!(tokens[1].span.col, 3);
    }

    #[test]
    fn rejects_unknown_characters() {
        let err = lex("a # b").unwrap_err();
        assert!(err.message().contains("unexpected character"));
    }

    #[test]
    fn rejects_bare_ampersand_and_pipe() {
        assert!(lex("a & b").is_err());
        assert!(lex("a | b").is_err());
    }

    #[test]
    fn rejects_overflowing_integer() {
        let err = lex("99999999999999999999").unwrap_err();
        assert!(err.message().contains("overflow"));
    }

    #[test]
    fn rejects_unterminated_block_comment() {
        let err = lex("/* never closed").unwrap_err();
        assert!(err.message().contains("unterminated"));
    }

    #[test]
    fn max_i64_literal_is_accepted() {
        assert_eq!(
            kinds("9223372036854775807"),
            vec![TokenKind::Int(i64::MAX), TokenKind::Eof]
        );
    }

    #[test]
    fn empty_input_yields_only_eof() {
        assert_eq!(kinds(""), vec![TokenKind::Eof]);
        assert_eq!(kinds("   \n\t "), vec![TokenKind::Eof]);
    }

    #[test]
    fn underscore_identifiers() {
        assert_eq!(
            kinds("_x x_1"),
            vec![
                TokenKind::Ident("_x".into()),
                TokenKind::Ident("x_1".into()),
                TokenKind::Eof
            ]
        );
    }
}
