//! Canonical pretty-printer.
//!
//! The printer emits fully parenthesized-where-needed source such that
//! `parse_program(pretty(p))` reproduces `p` up to spans (verified by a
//! property test in the umbrella crate). `else`-blocks containing exactly one
//! `if` are rendered as `else if` chains, matching the parser's sugar.

use std::fmt;
use std::fmt::Write as _;

use crate::ast::{BinOp, Block, Expr, ExprKind, Procedure, Program, Stmt, StmtKind, UnOp};

/// Renders a whole program as canonical MJ source.
///
/// # Examples
///
/// ```
/// use dise_ir::{parse_program, pretty::pretty_program};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let p = parse_program("proc f(int x) { if (x>0) { x = x-1; } }")?;
/// let text = pretty_program(&p);
/// let reparsed = parse_program(&text)?;
/// assert!(p.syn_eq(&reparsed));
/// # Ok(())
/// # }
/// ```
pub fn pretty_program(program: &Program) -> String {
    let mut out = String::new();
    for global in &program.globals {
        let _ = write!(out, "{} {}", global.ty, global.name);
        if let Some(init) = &global.init {
            let _ = write!(out, " = {}", pretty_expr(init));
        }
        out.push_str(";\n");
    }
    if !program.globals.is_empty() && !program.procs.is_empty() {
        out.push('\n');
    }
    for (i, procedure) in program.procs.iter().enumerate() {
        if i > 0 {
            out.push('\n');
        }
        pretty_proc_into(procedure, &mut out);
    }
    out
}

/// Renders a single procedure as canonical MJ source.
pub fn pretty_proc(procedure: &Procedure) -> String {
    let mut out = String::new();
    pretty_proc_into(procedure, &mut out);
    out
}

fn pretty_proc_into(procedure: &Procedure, out: &mut String) {
    let _ = write!(out, "proc {}(", procedure.name);
    for (i, param) in procedure.params.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        let _ = write!(out, "{} {}", param.ty, param.name);
    }
    out.push_str(") {\n");
    pretty_block_into(&procedure.body, 1, out);
    out.push_str("}\n");
}

/// Renders a statement (with trailing newline) at the given indent level.
pub fn pretty_stmt(stmt: &Stmt, indent: usize) -> String {
    let mut out = String::new();
    pretty_stmt_into(stmt, indent, &mut out);
    out
}

fn pretty_block_into(block: &Block, indent: usize, out: &mut String) {
    for stmt in &block.stmts {
        pretty_stmt_into(stmt, indent, out);
    }
}

fn push_indent(indent: usize, out: &mut String) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn pretty_stmt_into(stmt: &Stmt, indent: usize, out: &mut String) {
    push_indent(indent, out);
    match &stmt.kind {
        StmtKind::Decl { ty, name, init } => {
            let _ = writeln!(out, "{ty} {name} = {};", pretty_expr(init));
        }
        StmtKind::Assign { name, value } => {
            let _ = writeln!(out, "{name} = {};", pretty_expr(value));
        }
        StmtKind::If {
            cond,
            then_branch,
            else_branch,
        } => {
            let _ = writeln!(out, "if ({}) {{", pretty_expr(cond));
            pretty_block_into(then_branch, indent + 1, out);
            match else_branch {
                None => {
                    push_indent(indent, out);
                    out.push_str("}\n");
                }
                Some(else_block) => {
                    push_indent(indent, out);
                    // Render `else { if ... }` with a single nested if as
                    // `else if ...`, the form the parser produces.
                    if else_block.stmts.len() == 1 {
                        if let StmtKind::If { .. } = else_block.stmts[0].kind {
                            out.push_str("} else ");
                            let mut chained = String::new();
                            pretty_stmt_into(&else_block.stmts[0], indent, &mut chained);
                            // Drop the indent the nested call added.
                            out.push_str(chained.trim_start());
                            return;
                        }
                    }
                    out.push_str("} else {\n");
                    pretty_block_into(else_block, indent + 1, out);
                    push_indent(indent, out);
                    out.push_str("}\n");
                }
            }
        }
        StmtKind::While { cond, body } => {
            let _ = writeln!(out, "while ({}) {{", pretty_expr(cond));
            pretty_block_into(body, indent + 1, out);
            push_indent(indent, out);
            out.push_str("}\n");
        }
        StmtKind::Assert { cond, .. } => {
            let _ = writeln!(out, "assert({});", pretty_expr(cond));
        }
        StmtKind::Assume { cond } => {
            let _ = writeln!(out, "assume({});", pretty_expr(cond));
        }
        StmtKind::Skip => out.push_str("skip;\n"),
        StmtKind::Return => out.push_str("return;\n"),
        StmtKind::Call { callee, args } => {
            let rendered: Vec<String> = args.iter().map(pretty_expr).collect();
            let _ = writeln!(out, "{callee}({});", rendered.join(", "));
        }
    }
}

/// Renders an expression with minimal parentheses.
///
/// # Examples
///
/// ```
/// use dise_ir::{parse_expr, pretty::pretty_expr};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// assert_eq!(pretty_expr(&parse_expr("(x + 1) * 2")?), "(x + 1) * 2");
/// assert_eq!(pretty_expr(&parse_expr("x + 1 * 2")?), "x + 1 * 2");
/// # Ok(())
/// # }
/// ```
pub fn pretty_expr(expr: &Expr) -> String {
    let mut out = String::new();
    write_expr(expr, 0, &mut out).expect("writing to String cannot fail");
    out
}

/// Binding strength: higher binds tighter. Mirrors the parser's grammar
/// levels (or < and < cmp < add < mul < unary).
fn precedence(op: BinOp) -> u8 {
    match op {
        BinOp::Or => 1,
        BinOp::And => 2,
        BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => 3,
        BinOp::Add | BinOp::Sub => 4,
        BinOp::Mul | BinOp::Div | BinOp::Rem => 5,
    }
}

fn write_expr(expr: &Expr, min_prec: u8, out: &mut String) -> fmt::Result {
    match &expr.kind {
        ExprKind::Int(v) => {
            if *v < 0 {
                // Negative literals only arise from constant folding; they
                // must re-parse as a unary negation, so parenthesize under
                // tight contexts.
                if min_prec >= 6 {
                    write!(out, "({v})")
                } else {
                    write!(out, "{v}")
                }
            } else {
                write!(out, "{v}")
            }
        }
        ExprKind::Bool(b) => write!(out, "{b}"),
        ExprKind::Var(name) => write!(out, "{name}"),
        ExprKind::Unary { op, expr: inner } => {
            match op {
                UnOp::Neg => out.push('-'),
                UnOp::Not => out.push('!'),
            }
            // Unary binds tighter than all binary operators (level 6).
            write_expr(inner, 6, out)
        }
        ExprKind::Binary { op, lhs, rhs } => {
            let prec = precedence(*op);
            let needs_parens = prec < min_prec;
            if needs_parens {
                out.push('(');
            }
            // Left-associative: the left child may be at the same level, the
            // right child must bind strictly tighter. Comparisons are
            // non-associative, so both children must bind strictly tighter.
            let (left_min, right_min) = if op.is_equality() || op.is_ordering() {
                (prec + 1, prec + 1)
            } else {
                (prec, prec + 1)
            };
            write_expr(lhs, left_min, out)?;
            write!(out, " {op} ")?;
            write_expr(rhs, right_min, out)?;
            if needs_parens {
                out.push(')');
            }
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{parse_expr, parse_program};

    fn round_trip_expr(src: &str) {
        let e = parse_expr(src).unwrap();
        let printed = pretty_expr(&e);
        let reparsed = parse_expr(&printed).unwrap();
        assert!(e.syn_eq(&reparsed), "round trip failed: {src} -> {printed}");
    }

    #[test]
    fn expr_round_trips() {
        for src in [
            "1 + 2 * 3",
            "(1 + 2) * 3",
            "a - b - c",
            "a - (b - c)",
            "-x + y",
            "-(x + y)",
            "!(a && b) || c",
            "x / y % z",
            "x % (y / z)",
            "a == b && c != d",
            "x <= 0",
            "!!a",
            "1 - -2",
        ] {
            round_trip_expr(src);
        }
    }

    #[test]
    fn associativity_is_preserved() {
        assert_eq!(pretty_expr(&parse_expr("a - b - c").unwrap()), "a - b - c");
        assert_eq!(
            pretty_expr(&parse_expr("a - (b - c)").unwrap()),
            "a - (b - c)"
        );
    }

    #[test]
    fn logical_precedence_round_trips() {
        assert_eq!(
            pretty_expr(&parse_expr("(a || b) && c").unwrap()),
            "(a || b) && c"
        );
        assert_eq!(
            pretty_expr(&parse_expr("a || b && c").unwrap()),
            "a || b && c"
        );
    }

    #[test]
    fn program_round_trips() {
        let src = "int AltPress = 0;
int Meter = 2;

proc update(int PedalPos, int BSwitch, int PedalCmd) {
  if (PedalPos <= 0) {
    PedalCmd = PedalCmd + 1;
  } else if (PedalPos == 1) {
    PedalCmd = PedalCmd + 2;
  } else {
    PedalCmd = PedalPos;
  }
  PedalCmd = PedalCmd + 1;
  if (BSwitch == 0) {
    Meter = 1;
  } else if (BSwitch == 1) {
    Meter = 2;
  }
  if (PedalCmd == 2) {
    AltPress = 0;
  } else if (PedalCmd == 3) {
    AltPress = 25;
  } else {
    AltPress = 50;
  }
}
";
        let p = parse_program(src).unwrap();
        let printed = pretty_program(&p);
        let reparsed = parse_program(&printed).unwrap();
        assert!(p.syn_eq(&reparsed));
        // The canonical form is a fixed point of pretty-printing.
        assert_eq!(printed, pretty_program(&reparsed));
    }

    #[test]
    fn else_if_chains_stay_flat() {
        let src = "proc f(int x) {
  if (x == 0) {
    skip;
  } else if (x == 1) {
    skip;
  } else {
    skip;
  }
}
";
        let p = parse_program(src).unwrap();
        assert_eq!(pretty_program(&p), src);
    }

    #[test]
    fn while_and_assert_print() {
        let p = parse_program("proc f(int x) { while (x > 0) { x = x - 1; } assert(x == 0); }")
            .unwrap();
        let printed = pretty_program(&p);
        assert!(printed.contains("while (x > 0) {"));
        assert!(printed.contains("assert(x == 0);"));
        assert!(p.syn_eq(&parse_program(&printed).unwrap()));
    }

    #[test]
    fn call_statements_round_trip() {
        let src = "proc helper(int a) {
  skip;
}

proc main(int x) {
  helper(x * 2);
  helper(0);
}
";
        let p = parse_program(src).unwrap();
        assert_eq!(pretty_program(&p), src);
        assert!(p.syn_eq(&parse_program(&pretty_program(&p)).unwrap()));
    }

    #[test]
    fn negative_literal_reparses() {
        use crate::ast::{Expr, ExprKind};
        let e = Expr::new(ExprKind::Int(-5));
        let printed = pretty_expr(&e);
        let reparsed = parse_expr(&printed).unwrap();
        // -5 reparses as Neg(5); both evaluate identically, and printing the
        // reparsed form must also parse.
        let reprinted = pretty_expr(&reparsed);
        assert!(parse_expr(&reprinted).is_ok());
    }
}
