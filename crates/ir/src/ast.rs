//! Abstract syntax tree for the MJ language.
//!
//! Every node carries a [`Span`]. Two flavours of equality exist:
//!
//! * derived `PartialEq` compares spans too (useful in parser tests);
//! * `syn_eq` methods compare *structure only*, ignoring spans — this is the
//!   equality the differencing analysis uses to decide whether a statement
//!   changed between program versions.

use std::fmt;

use crate::span::Span;

/// The two MJ value types.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Type {
    /// 64-bit signed integers.
    Int,
    /// Booleans.
    Bool,
}

impl fmt::Display for Type {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Type::Int => f.write_str("int"),
            Type::Bool => f.write_str("bool"),
        }
    }
}

/// Binary operators, grouped by the type discipline they impose.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// `+` on integers.
    Add,
    /// `-` on integers.
    Sub,
    /// `*` on integers.
    Mul,
    /// `/` on integers (C-style truncating division).
    Div,
    /// `%` on integers (C-style remainder).
    Rem,
    /// `==` on either type (operands must agree).
    Eq,
    /// `!=` on either type (operands must agree).
    Ne,
    /// `<` on integers.
    Lt,
    /// `<=` on integers.
    Le,
    /// `>` on integers.
    Gt,
    /// `>=` on integers.
    Ge,
    /// `&&` on booleans.
    And,
    /// `||` on booleans.
    Or,
}

impl BinOp {
    /// Returns `true` for `+ - * / %`.
    pub fn is_arithmetic(self) -> bool {
        matches!(
            self,
            BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div | BinOp::Rem
        )
    }

    /// Returns `true` for `< <= > >=` (integer-only comparisons).
    pub fn is_ordering(self) -> bool {
        matches!(self, BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge)
    }

    /// Returns `true` for `==` and `!=`.
    pub fn is_equality(self) -> bool {
        matches!(self, BinOp::Eq | BinOp::Ne)
    }

    /// Returns `true` for `&&` and `||`.
    pub fn is_logical(self) -> bool {
        matches!(self, BinOp::And | BinOp::Or)
    }

    /// The result type of the operator (given well-typed operands).
    pub fn result_type(self) -> Type {
        if self.is_arithmetic() {
            Type::Int
        } else {
            Type::Bool
        }
    }
}

impl fmt::Display for BinOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let text = match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Rem => "%",
            BinOp::Eq => "==",
            BinOp::Ne => "!=",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
            BinOp::And => "&&",
            BinOp::Or => "||",
        };
        f.write_str(text)
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnOp {
    /// Integer negation `-`.
    Neg,
    /// Boolean negation `!`.
    Not,
}

impl fmt::Display for UnOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UnOp::Neg => f.write_str("-"),
            UnOp::Not => f.write_str("!"),
        }
    }
}

/// An expression node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Expr {
    /// The expression's shape.
    pub kind: ExprKind,
    /// Source location.
    pub span: Span,
}

/// The shape of an [`Expr`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExprKind {
    /// Integer literal.
    Int(i64),
    /// Boolean literal.
    Bool(bool),
    /// Variable read.
    Var(String),
    /// Unary operation.
    Unary {
        /// The operator.
        op: UnOp,
        /// The operand.
        expr: Box<Expr>,
    },
    /// Binary operation.
    Binary {
        /// The operator.
        op: BinOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
    },
}

impl Expr {
    /// Creates an expression with a dummy span.
    pub fn new(kind: ExprKind) -> Self {
        Expr {
            kind,
            span: Span::dummy(),
        }
    }

    /// Creates an expression with an explicit span.
    pub fn with_span(kind: ExprKind, span: Span) -> Self {
        Expr { kind, span }
    }

    /// Structural equality, ignoring spans.
    pub fn syn_eq(&self, other: &Expr) -> bool {
        match (&self.kind, &other.kind) {
            (ExprKind::Int(a), ExprKind::Int(b)) => a == b,
            (ExprKind::Bool(a), ExprKind::Bool(b)) => a == b,
            (ExprKind::Var(a), ExprKind::Var(b)) => a == b,
            (ExprKind::Unary { op: oa, expr: ea }, ExprKind::Unary { op: ob, expr: eb }) => {
                oa == ob && ea.syn_eq(eb)
            }
            (
                ExprKind::Binary {
                    op: oa,
                    lhs: la,
                    rhs: ra,
                },
                ExprKind::Binary {
                    op: ob,
                    lhs: lb,
                    rhs: rb,
                },
            ) => oa == ob && la.syn_eq(lb) && ra.syn_eq(rb),
            _ => false,
        }
    }

    /// Collects the names of all variables read by this expression into
    /// `out`, in left-to-right order (duplicates preserved).
    pub fn collect_vars<'a>(&'a self, out: &mut Vec<&'a str>) {
        match &self.kind {
            ExprKind::Int(_) | ExprKind::Bool(_) => {}
            ExprKind::Var(name) => out.push(name),
            ExprKind::Unary { expr, .. } => expr.collect_vars(out),
            ExprKind::Binary { lhs, rhs, .. } => {
                lhs.collect_vars(out);
                rhs.collect_vars(out);
            }
        }
    }

    /// Returns the set of distinct variable names read by this expression.
    pub fn vars(&self) -> Vec<String> {
        let mut raw = Vec::new();
        self.collect_vars(&mut raw);
        let mut seen = std::collections::BTreeSet::new();
        let mut out = Vec::new();
        for v in raw {
            if seen.insert(v) {
                out.push(v.to_string());
            }
        }
        out
    }
}

/// A statement node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Stmt {
    /// The statement's shape.
    pub kind: StmtKind,
    /// Source location (for an `if`/`while`, the span of the header).
    pub span: Span,
}

/// The shape of a [`Stmt`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StmtKind {
    /// Local variable declaration with mandatory initializer:
    /// `int x = e;`.
    Decl {
        /// Declared type.
        ty: Type,
        /// Variable name.
        name: String,
        /// Initial value.
        init: Expr,
    },
    /// Assignment `x = e;`.
    Assign {
        /// Assigned variable.
        name: String,
        /// Right-hand side.
        value: Expr,
    },
    /// Conditional. `else_branch` is `None` for a bare `if`.
    If {
        /// Branch condition.
        cond: Expr,
        /// Statements executed when the condition holds.
        then_branch: Block,
        /// Statements executed otherwise, if present.
        else_branch: Option<Block>,
    },
    /// Loop `while (cond) { body }`.
    While {
        /// Loop condition.
        cond: Expr,
        /// Loop body.
        body: Block,
    },
    /// `assert(cond);` — desugared by the CFG builder into a conditional
    /// branch to an error node, mirroring Java's bytecode-level de-sugaring
    /// discussed in §5.1 of the paper.
    Assert {
        /// Asserted condition.
        cond: Expr,
        /// The condition's *source-level* rendering, set by the inliner
        /// before α-renaming the condition. Error messages prefer this so
        /// a flattened program reports the assertion the programmer wrote,
        /// not the `__callee_n_`-mangled copy — which also keeps error
        /// verdicts byte-identical between inlined and summary-instantiated
        /// exploration. `None` for asserts that were never rewritten.
        label: Option<String>,
    },
    /// `assume(cond);` — prunes paths where the condition is false.
    Assume {
        /// Assumed condition.
        cond: Expr,
    },
    /// `skip;` — no effect.
    Skip,
    /// `return;` — jump to the procedure exit.
    Return,
    /// A (void) procedure call `callee(arg, …);`.
    ///
    /// Calls must be inlined ([`crate::inline`]) before CFG construction:
    /// DiSE's analyses are intra-procedural (§3.2), so multi-procedure
    /// programs are flattened into the analyzed procedure first — the
    /// paper's stated future-work direction, realized here by bounded
    /// inlining.
    Call {
        /// The called procedure's name.
        callee: String,
        /// Actual arguments, in order.
        args: Vec<Expr>,
    },
}

impl Stmt {
    /// Creates a statement with a dummy span.
    pub fn new(kind: StmtKind) -> Self {
        Stmt {
            kind,
            span: Span::dummy(),
        }
    }

    /// Creates a statement with an explicit span.
    pub fn with_span(kind: StmtKind, span: Span) -> Self {
        Stmt { kind, span }
    }

    /// Structural equality, ignoring spans, recursing into nested blocks.
    pub fn syn_eq(&self, other: &Stmt) -> bool {
        match (&self.kind, &other.kind) {
            (
                StmtKind::Decl {
                    ty: ta,
                    name: na,
                    init: ia,
                },
                StmtKind::Decl {
                    ty: tb,
                    name: nb,
                    init: ib,
                },
            ) => ta == tb && na == nb && ia.syn_eq(ib),
            (
                StmtKind::Assign {
                    name: na,
                    value: va,
                },
                StmtKind::Assign {
                    name: nb,
                    value: vb,
                },
            ) => na == nb && va.syn_eq(vb),
            (
                StmtKind::If {
                    cond: ca,
                    then_branch: ta,
                    else_branch: ea,
                },
                StmtKind::If {
                    cond: cb,
                    then_branch: tb,
                    else_branch: eb,
                },
            ) => {
                ca.syn_eq(cb)
                    && ta.syn_eq(tb)
                    && match (ea, eb) {
                        (None, None) => true,
                        (Some(a), Some(b)) => a.syn_eq(b),
                        _ => false,
                    }
            }
            (StmtKind::While { cond: ca, body: ba }, StmtKind::While { cond: cb, body: bb }) => {
                ca.syn_eq(cb) && ba.syn_eq(bb)
            }
            (StmtKind::Assert { cond: a, .. }, StmtKind::Assert { cond: b, .. }) => a.syn_eq(b),
            (StmtKind::Assume { cond: a }, StmtKind::Assume { cond: b }) => a.syn_eq(b),
            (StmtKind::Skip, StmtKind::Skip) => true,
            (StmtKind::Return, StmtKind::Return) => true,
            (
                StmtKind::Call {
                    callee: ca,
                    args: aa,
                },
                StmtKind::Call {
                    callee: cb,
                    args: ab,
                },
            ) => ca == cb && aa.len() == ab.len() && aa.iter().zip(ab).all(|(x, y)| x.syn_eq(y)),
            _ => false,
        }
    }

    /// Structural equality of the statement *header only*: for compound
    /// statements this compares just the condition, for simple statements it
    /// is full [`Stmt::syn_eq`]. The differencing analysis uses this to match
    /// an `if` whose body changed but whose condition did not.
    pub fn header_eq(&self, other: &Stmt) -> bool {
        match (&self.kind, &other.kind) {
            (StmtKind::If { cond: ca, .. }, StmtKind::If { cond: cb, .. }) => ca.syn_eq(cb),
            (StmtKind::While { cond: ca, .. }, StmtKind::While { cond: cb, .. }) => ca.syn_eq(cb),
            _ => self.syn_eq(other),
        }
    }

    /// Returns `true` for compound statements (`if`, `while`).
    pub fn is_compound(&self) -> bool {
        matches!(self.kind, StmtKind::If { .. } | StmtKind::While { .. })
    }
}

/// A sequence of statements enclosed in braces.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Block {
    /// The statements, in program order.
    pub stmts: Vec<Stmt>,
}

impl Block {
    /// Creates a block from statements.
    pub fn new(stmts: Vec<Stmt>) -> Self {
        Block { stmts }
    }

    /// Structural equality, ignoring spans.
    pub fn syn_eq(&self, other: &Block) -> bool {
        self.stmts.len() == other.stmts.len()
            && self
                .stmts
                .iter()
                .zip(&other.stmts)
                .all(|(a, b)| a.syn_eq(b))
    }

    /// Total number of statements, including statements nested in compound
    /// statements.
    pub fn stmt_count(&self) -> usize {
        let mut count = 0;
        for stmt in &self.stmts {
            count += 1;
            match &stmt.kind {
                StmtKind::If {
                    then_branch,
                    else_branch,
                    ..
                } => {
                    count += then_branch.stmt_count();
                    if let Some(e) = else_branch {
                        count += e.stmt_count();
                    }
                }
                StmtKind::While { body, .. } => count += body.stmt_count(),
                _ => {}
            }
        }
        count
    }
}

/// A procedure parameter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Param {
    /// Parameter type.
    pub ty: Type,
    /// Parameter name.
    pub name: String,
    /// Source location.
    pub span: Span,
}

/// A procedure definition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Procedure {
    /// Procedure name.
    pub name: String,
    /// Formal parameters (symbolic inputs during symbolic execution).
    pub params: Vec<Param>,
    /// The body.
    pub body: Block,
    /// Source location of the header.
    pub span: Span,
}

impl Procedure {
    /// Structural equality, ignoring spans.
    pub fn syn_eq(&self, other: &Procedure) -> bool {
        self.name == other.name
            && self.params.len() == other.params.len()
            && self
                .params
                .iter()
                .zip(&other.params)
                .all(|(a, b)| a.ty == b.ty && a.name == b.name)
            && self.body.syn_eq(&other.body)
    }
}

/// A global variable declaration.
///
/// A global without an initializer (`int y;`) is a *symbolic input* during
/// symbolic execution, mirroring how the paper's `testX` example treats the
/// field `y`. A global with an initializer starts concrete.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Global {
    /// Declared type.
    pub ty: Type,
    /// Variable name.
    pub name: String,
    /// Concrete initial value, if any.
    pub init: Option<Expr>,
    /// Source location.
    pub span: Span,
}

/// A complete MJ program: globals followed by procedures.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Program {
    /// Global variable declarations.
    pub globals: Vec<Global>,
    /// Procedure definitions.
    pub procs: Vec<Procedure>,
}

impl Program {
    /// Looks up a procedure by name.
    pub fn proc(&self, name: &str) -> Option<&Procedure> {
        self.procs.iter().find(|p| p.name == name)
    }

    /// Looks up a global by name.
    pub fn global(&self, name: &str) -> Option<&Global> {
        self.globals.iter().find(|g| g.name == name)
    }

    /// Structural equality, ignoring spans.
    pub fn syn_eq(&self, other: &Program) -> bool {
        self.globals.len() == other.globals.len()
            && self.globals.iter().zip(&other.globals).all(|(a, b)| {
                a.ty == b.ty
                    && a.name == b.name
                    && match (&a.init, &b.init) {
                        (None, None) => true,
                        (Some(x), Some(y)) => x.syn_eq(y),
                        _ => false,
                    }
            })
            && self.procs.len() == other.procs.len()
            && self
                .procs
                .iter()
                .zip(&other.procs)
                .all(|(a, b)| a.syn_eq(b))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn var(name: &str) -> Expr {
        Expr::new(ExprKind::Var(name.to_string()))
    }

    fn int(v: i64) -> Expr {
        Expr::new(ExprKind::Int(v))
    }

    fn bin(op: BinOp, l: Expr, r: Expr) -> Expr {
        Expr::new(ExprKind::Binary {
            op,
            lhs: Box::new(l),
            rhs: Box::new(r),
        })
    }

    #[test]
    fn syn_eq_ignores_spans() {
        let a = Expr::with_span(ExprKind::Int(1), Span::point(1, 1));
        let b = Expr::with_span(ExprKind::Int(1), Span::point(9, 9));
        assert!(a.syn_eq(&b));
        assert_ne!(a, b); // derived equality sees the spans
    }

    #[test]
    fn syn_eq_distinguishes_operators() {
        let a = bin(BinOp::Eq, var("x"), int(0));
        let b = bin(BinOp::Le, var("x"), int(0));
        assert!(!a.syn_eq(&b));
        assert!(a.syn_eq(&a.clone()));
    }

    #[test]
    fn header_eq_matches_if_with_different_bodies() {
        let cond = bin(BinOp::Gt, var("x"), int(0));
        let a = Stmt::new(StmtKind::If {
            cond: cond.clone(),
            then_branch: Block::new(vec![Stmt::new(StmtKind::Skip)]),
            else_branch: None,
        });
        let b = Stmt::new(StmtKind::If {
            cond,
            then_branch: Block::new(vec![Stmt::new(StmtKind::Return)]),
            else_branch: None,
        });
        assert!(a.header_eq(&b));
        assert!(!a.syn_eq(&b));
    }

    #[test]
    fn expr_vars_are_deduplicated_in_order() {
        let e = bin(BinOp::Add, bin(BinOp::Add, var("y"), var("x")), var("y"));
        assert_eq!(e.vars(), vec!["y".to_string(), "x".to_string()]);
    }

    #[test]
    fn stmt_count_recurses() {
        let inner = Block::new(vec![Stmt::new(StmtKind::Skip), Stmt::new(StmtKind::Skip)]);
        let outer = Block::new(vec![Stmt::new(StmtKind::If {
            cond: var("b"),
            then_branch: inner.clone(),
            else_branch: Some(inner),
        })]);
        assert_eq!(outer.stmt_count(), 5);
    }

    #[test]
    fn binop_classification() {
        assert!(BinOp::Add.is_arithmetic());
        assert!(BinOp::Lt.is_ordering());
        assert!(BinOp::Eq.is_equality());
        assert!(BinOp::And.is_logical());
        assert_eq!(BinOp::Add.result_type(), Type::Int);
        assert_eq!(BinOp::Lt.result_type(), Type::Bool);
    }

    #[test]
    fn program_lookup() {
        let program = Program {
            globals: vec![Global {
                ty: Type::Int,
                name: "g".into(),
                init: None,
                span: Span::dummy(),
            }],
            procs: vec![Procedure {
                name: "p".into(),
                params: vec![],
                body: Block::default(),
                span: Span::dummy(),
            }],
        };
        assert!(program.proc("p").is_some());
        assert!(program.proc("q").is_none());
        assert!(program.global("g").is_some());
        assert!(program.global("h").is_none());
    }
}
