//! Error types for parsing and type checking.

use std::error::Error;
use std::fmt;

use crate::span::Span;

/// An error produced while lexing or parsing MJ source text.
///
/// # Examples
///
/// ```
/// use dise_ir::parse_program;
///
/// let err = parse_program("proc p( {").unwrap_err();
/// assert!(err.to_string().contains("expected"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    message: String,
    span: Span,
}

impl ParseError {
    /// Creates a parse error with a message and the offending location.
    pub fn new(message: impl Into<String>, span: Span) -> Self {
        ParseError {
            message: message.into(),
            span,
        }
    }

    /// The human-readable description of what went wrong.
    pub fn message(&self) -> &str {
        &self.message
    }

    /// Where in the source the error was detected.
    pub fn span(&self) -> Span {
        self.span
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at {}: {}", self.span, self.message)
    }
}

impl Error for ParseError {}

/// An error produced by the type checker.
///
/// # Examples
///
/// ```
/// use dise_ir::{check_program, parse_program};
///
/// let program = parse_program("proc p(int x) { y = 1; }").unwrap();
/// let err = check_program(&program).unwrap_err();
/// assert!(err.to_string().contains("undeclared"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TypeError {
    message: String,
    span: Span,
}

impl TypeError {
    /// Creates a type error with a message and the offending location.
    pub fn new(message: impl Into<String>, span: Span) -> Self {
        TypeError {
            message: message.into(),
            span,
        }
    }

    /// The human-readable description of what went wrong.
    pub fn message(&self) -> &str {
        &self.message
    }

    /// Where in the source the error was detected.
    pub fn span(&self) -> Span {
        self.span
    }
}

impl fmt::Display for TypeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "type error at {}: {}", self.span, self.message)
    }
}

impl Error for TypeError {}

/// Any front-end error: either a [`ParseError`] or a [`TypeError`].
///
/// Returned by convenience entry points that parse and check in one call.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IrError {
    /// The source text failed to parse.
    Parse(ParseError),
    /// The program parsed but failed type checking.
    Type(TypeError),
}

impl fmt::Display for IrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IrError::Parse(e) => e.fmt(f),
            IrError::Type(e) => e.fmt(f),
        }
    }
}

impl Error for IrError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            IrError::Parse(e) => Some(e),
            IrError::Type(e) => Some(e),
        }
    }
}

impl From<ParseError> for IrError {
    fn from(e: ParseError) -> Self {
        IrError::Parse(e)
    }
}

impl From<TypeError> for IrError {
    fn from(e: TypeError) -> Self {
        IrError::Type(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_error_display_includes_location() {
        let e = ParseError::new("unexpected `}`", Span::point(4, 2));
        assert_eq!(e.to_string(), "parse error at 4:2: unexpected `}`");
        assert_eq!(e.message(), "unexpected `}`");
        assert_eq!(e.span(), Span::point(4, 2));
    }

    #[test]
    fn type_error_display_includes_location() {
        let e = TypeError::new("undeclared variable `y`", Span::point(1, 8));
        assert!(e.to_string().contains("1:8"));
        assert!(e.to_string().contains("undeclared"));
    }

    #[test]
    fn ir_error_wraps_both() {
        let p: IrError = ParseError::new("m", Span::dummy()).into();
        let t: IrError = TypeError::new("m", Span::dummy()).into();
        assert!(matches!(p, IrError::Parse(_)));
        assert!(matches!(t, IrError::Type(_)));
        assert!(Error::source(&p).is_some());
        assert!(Error::source(&t).is_some());
    }
}
