//! Type checker for MJ programs.
//!
//! Checks, per procedure:
//!
//! * every variable read or written is a global, a parameter, or a local
//!   declared earlier in scope;
//! * no variable shadows another (a deliberate restriction: the DiSE
//!   `Def`/`Use` maps of the paper are keyed by *name*, Definition 3.3);
//! * operators are applied to operands of the right type;
//! * `if`/`while`/`assert`/`assume` conditions are boolean;
//! * assignments preserve the declared type.
//!
//! Locals declared inside a branch are scoped to that branch.

use std::collections::HashMap;

use crate::ast::{Block, Expr, ExprKind, Procedure, Program, Stmt, StmtKind, Type, UnOp};
use crate::error::TypeError;

/// The callable signatures visible while checking a procedure body.
type Signatures = HashMap<String, Vec<Type>>;

/// Checks a whole program.
///
/// # Errors
///
/// Returns the first [`TypeError`] found, with the offending location.
///
/// # Examples
///
/// ```
/// use dise_ir::{check_program, parse_program};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let p = parse_program("int g = 1; proc f(int x) { g = g + x; }")?;
/// check_program(&p)?;
/// # Ok(())
/// # }
/// ```
pub fn check_program(program: &Program) -> Result<(), TypeError> {
    let mut globals = HashMap::new();
    for global in &program.globals {
        if globals.insert(global.name.clone(), global.ty).is_some() {
            return Err(TypeError::new(
                format!("duplicate global `{}`", global.name),
                global.span,
            ));
        }
        if let Some(init) = &global.init {
            let ty = check_const_expr(init)?;
            if ty != global.ty {
                return Err(TypeError::new(
                    format!(
                        "global `{}` declared `{}` but initialized with `{}`",
                        global.name, global.ty, ty
                    ),
                    init.span,
                ));
            }
        }
    }
    let mut signatures: Signatures = HashMap::new();
    for procedure in &program.procs {
        let params = procedure.params.iter().map(|p| p.ty).collect();
        if signatures.insert(procedure.name.clone(), params).is_some() {
            return Err(TypeError::new(
                format!("duplicate procedure `{}`", procedure.name),
                procedure.span,
            ));
        }
    }
    for procedure in &program.procs {
        check_procedure_with(&globals, &signatures, procedure)?;
    }
    Ok(())
}

/// Checks a single procedure against a global environment (no other
/// procedures are callable).
///
/// # Errors
///
/// Returns the first [`TypeError`] found.
pub fn check_procedure(
    globals: &HashMap<String, Type>,
    procedure: &Procedure,
) -> Result<(), TypeError> {
    check_procedure_with(globals, &Signatures::new(), procedure)
}

fn check_procedure_with(
    globals: &HashMap<String, Type>,
    signatures: &Signatures,
    procedure: &Procedure,
) -> Result<(), TypeError> {
    let mut env = Env::new(globals.clone());
    for param in &procedure.params {
        env.declare(&param.name, param.ty)
            .map_err(|msg| TypeError::new(msg, param.span))?;
    }
    check_block(&mut env, signatures, &procedure.body)
}

/// Global initializers must be compile-time constants (no variable reads),
/// mirroring Java field initializers in the paper's artifacts.
fn check_const_expr(expr: &Expr) -> Result<Type, TypeError> {
    if let Some(v) = expr.vars().first() {
        return Err(TypeError::new(
            format!("global initializer may not read variable `{v}`"),
            expr.span,
        ));
    }
    // No variables, so an empty environment suffices.
    let env = Env::new(HashMap::new());
    env.check_expr(expr)
}

struct Env {
    globals: HashMap<String, Type>,
    /// Lexical scopes of locals/params; the last entry is the innermost.
    scopes: Vec<HashMap<String, Type>>,
}

impl Env {
    fn new(globals: HashMap<String, Type>) -> Self {
        Env {
            globals,
            scopes: vec![HashMap::new()],
        }
    }

    fn lookup(&self, name: &str) -> Option<Type> {
        for scope in self.scopes.iter().rev() {
            if let Some(ty) = scope.get(name) {
                return Some(*ty);
            }
        }
        self.globals.get(name).copied()
    }

    fn declare(&mut self, name: &str, ty: Type) -> Result<(), String> {
        if self.lookup(name).is_some() {
            return Err(format!(
                "`{name}` shadows an existing variable (MJ forbids shadowing; \
                 the analysis Def/Use maps are keyed by name)"
            ));
        }
        self.scopes
            .last_mut()
            .expect("environment always has a scope")
            .insert(name.to_string(), ty);
        Ok(())
    }

    fn push_scope(&mut self) {
        self.scopes.push(HashMap::new());
    }

    fn pop_scope(&mut self) {
        self.scopes.pop();
    }

    fn check_expr(&self, expr: &Expr) -> Result<Type, TypeError> {
        match &expr.kind {
            ExprKind::Int(_) => Ok(Type::Int),
            ExprKind::Bool(_) => Ok(Type::Bool),
            ExprKind::Var(name) => self
                .lookup(name)
                .ok_or_else(|| TypeError::new(format!("undeclared variable `{name}`"), expr.span)),
            ExprKind::Unary { op, expr: inner } => {
                let inner_ty = self.check_expr(inner)?;
                let (want, result) = match op {
                    UnOp::Neg => (Type::Int, Type::Int),
                    UnOp::Not => (Type::Bool, Type::Bool),
                };
                if inner_ty != want {
                    return Err(TypeError::new(
                        format!("operator `{op}` expects `{want}`, found `{inner_ty}`"),
                        expr.span,
                    ));
                }
                Ok(result)
            }
            ExprKind::Binary { op, lhs, rhs } => {
                let lt = self.check_expr(lhs)?;
                let rt = self.check_expr(rhs)?;
                if op.is_arithmetic() || op.is_ordering() {
                    if lt != Type::Int || rt != Type::Int {
                        return Err(TypeError::new(
                            format!("operator `{op}` expects integer operands"),
                            expr.span,
                        ));
                    }
                } else if op.is_logical() {
                    if lt != Type::Bool || rt != Type::Bool {
                        return Err(TypeError::new(
                            format!("operator `{op}` expects boolean operands"),
                            expr.span,
                        ));
                    }
                } else if lt != rt {
                    return Err(TypeError::new(
                        format!("operator `{op}` expects operands of the same type"),
                        expr.span,
                    ));
                }
                Ok(op.result_type())
            }
        }
    }
}

fn check_block(env: &mut Env, signatures: &Signatures, block: &Block) -> Result<(), TypeError> {
    env.push_scope();
    let result = block
        .stmts
        .iter()
        .try_for_each(|stmt| check_stmt(env, signatures, stmt));
    env.pop_scope();
    result
}

fn check_stmt(env: &mut Env, signatures: &Signatures, stmt: &Stmt) -> Result<(), TypeError> {
    match &stmt.kind {
        StmtKind::Decl { ty, name, init } => {
            let init_ty = env.check_expr(init)?;
            if init_ty != *ty {
                return Err(TypeError::new(
                    format!("`{name}` declared `{ty}` but initialized with `{init_ty}`"),
                    stmt.span,
                ));
            }
            env.declare(name, *ty)
                .map_err(|msg| TypeError::new(msg, stmt.span))
        }
        StmtKind::Assign { name, value } => {
            let Some(var_ty) = env.lookup(name) else {
                return Err(TypeError::new(
                    format!("assignment to undeclared variable `{name}`"),
                    stmt.span,
                ));
            };
            let value_ty = env.check_expr(value)?;
            if value_ty != var_ty {
                return Err(TypeError::new(
                    format!("cannot assign `{value_ty}` to `{name}: {var_ty}`"),
                    stmt.span,
                ));
            }
            Ok(())
        }
        StmtKind::If {
            cond,
            then_branch,
            else_branch,
        } => {
            expect_bool(env, cond)?;
            check_block(env, signatures, then_branch)?;
            if let Some(else_block) = else_branch {
                check_block(env, signatures, else_block)?;
            }
            Ok(())
        }
        StmtKind::While { cond, body } => {
            expect_bool(env, cond)?;
            check_block(env, signatures, body)
        }
        StmtKind::Assert { cond, .. } | StmtKind::Assume { cond } => expect_bool(env, cond),
        StmtKind::Skip | StmtKind::Return => Ok(()),
        StmtKind::Call { callee, args } => {
            let Some(params) = signatures.get(callee) else {
                return Err(TypeError::new(
                    format!("call to undeclared procedure `{callee}`"),
                    stmt.span,
                ));
            };
            if params.len() != args.len() {
                return Err(TypeError::new(
                    format!(
                        "`{callee}` expects {} argument(s), found {}",
                        params.len(),
                        args.len()
                    ),
                    stmt.span,
                ));
            }
            for (expected, arg) in params.iter().zip(args) {
                let found = env.check_expr(arg)?;
                if found != *expected {
                    return Err(TypeError::new(
                        format!("argument to `{callee}` has type `{found}`, expected `{expected}`"),
                        arg.span,
                    ));
                }
            }
            Ok(())
        }
    }
}

fn expect_bool(env: &Env, cond: &Expr) -> Result<(), TypeError> {
    let ty = env.check_expr(cond)?;
    if ty != Type::Bool {
        return Err(TypeError::new(
            format!("condition must be `bool`, found `{ty}`"),
            cond.span,
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;

    fn check(src: &str) -> Result<(), TypeError> {
        check_program(&parse_program(src).unwrap())
    }

    #[test]
    fn accepts_well_typed_program() {
        check(
            "int g = 0;
             proc f(int x, bool b) {
               int y = x + 1;
               if (b && y > 0) { g = y; } else { g = -y; }
               while (g > 0) { g = g - 1; }
               assert(g <= 0);
             }",
        )
        .unwrap();
    }

    #[test]
    fn rejects_undeclared_read() {
        let err = check("proc f() { int x = y; }").unwrap_err();
        assert!(err.message().contains("undeclared variable `y`"));
    }

    #[test]
    fn rejects_undeclared_write() {
        let err = check("proc f() { z = 1; }").unwrap_err();
        assert!(err.message().contains("undeclared variable `z`"));
    }

    #[test]
    fn rejects_shadowing() {
        let err = check("int g = 0; proc f(int g) { skip; }").unwrap_err();
        assert!(err.message().contains("shadows"));
        let err = check("proc f(int x) { if (x > 0) { int x = 1; } }").unwrap_err();
        assert!(err.message().contains("shadows"));
    }

    #[test]
    fn branch_locals_are_scoped() {
        // `y` declared in the then-branch is not visible afterwards.
        let err = check("proc f(int x) { if (x > 0) { int y = 1; } x = y; }").unwrap_err();
        assert!(err.message().contains("undeclared variable `y`"));
    }

    #[test]
    fn sibling_branches_may_reuse_names() {
        check("proc f(int x) { if (x > 0) { int y = 1; x = y; } else { int y = 2; x = y; } }")
            .unwrap();
    }

    #[test]
    fn rejects_bool_arithmetic() {
        let err = check("proc f(bool b) { int x = b + 1; }").unwrap_err();
        assert!(err.message().contains("integer operands"));
    }

    #[test]
    fn rejects_int_condition() {
        let err = check("proc f(int x) { if (x) { skip; } }").unwrap_err();
        assert!(err.message().contains("must be `bool`"));
    }

    #[test]
    fn rejects_mixed_equality() {
        let err = check("proc f(int x, bool b) { assert(x == b); }").unwrap_err();
        assert!(err.message().contains("same type"));
    }

    #[test]
    fn bool_equality_is_allowed() {
        check("proc f(bool a, bool b) { assert(a == b); assert(a != b); }").unwrap();
    }

    #[test]
    fn rejects_type_mismatch_in_assignment() {
        let err = check("proc f(int x, bool b) { x = b; }").unwrap_err();
        assert!(err.message().contains("cannot assign"));
    }

    #[test]
    fn rejects_duplicate_global() {
        let err = check("int g = 0; int g = 1; proc f() { skip; }").unwrap_err();
        assert!(err.message().contains("duplicate global"));
    }

    #[test]
    fn rejects_duplicate_procedure() {
        let err = check("proc f() { skip; } proc f() { skip; }").unwrap_err();
        assert!(err.message().contains("duplicate procedure"));
    }

    #[test]
    fn rejects_variable_in_global_initializer() {
        let err = check("int a = 0; int b = a; proc f() { skip; }").unwrap_err();
        assert!(err.message().contains("may not read variable"));
    }

    #[test]
    fn rejects_wrong_global_init_type() {
        let err = check("bool b = 3; proc f() { skip; }").unwrap_err();
        assert!(err.message().contains("initialized with"));
    }

    #[test]
    fn uninitialized_global_is_fine() {
        check("int y; proc f(int x) { y = y + x; }").unwrap();
    }

    #[test]
    fn call_checking() {
        assert!(check(
            "proc helper(int a, bool b) { skip; } proc main(int x) { helper(x, true); }"
        )
        .is_ok());
        let err = check("proc main(int x) { nothere(x); }").unwrap_err();
        assert!(err.message().contains("undeclared procedure"));
        let err =
            check("proc helper(int a) { skip; } proc main(int x) { helper(x, x); }").unwrap_err();
        assert!(err.message().contains("expects 1 argument"));
        let err =
            check("proc helper(int a) { skip; } proc main(bool b) { helper(b); }").unwrap_err();
        assert!(err.message().contains("has type `bool`"));
    }

    #[test]
    fn unary_operator_types() {
        assert!(check("proc f(bool b) { int x = -1; bool c = !b; }").is_ok());
        assert!(check("proc f(bool b) { int x = -b; }").is_err());
        assert!(check("proc f(int x) { bool c = !x; }").is_err());
    }
}
