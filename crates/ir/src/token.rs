//! Lexical tokens of the MJ language.

use std::fmt;

use crate::span::Span;

/// A lexical token together with its source [`Span`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// What kind of token this is.
    pub kind: TokenKind,
    /// Where the token appears in the source.
    pub span: Span,
}

impl Token {
    /// Creates a token from its kind and span.
    pub fn new(kind: TokenKind, span: Span) -> Self {
        Token { kind, span }
    }
}

/// The different kinds of MJ tokens.
///
/// Keywords are distinguished from identifiers during lexing; the parser
/// never sees a keyword as an [`TokenKind::Ident`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokenKind {
    /// An integer literal, e.g. `42`. Stored as `i64`; the lexer rejects
    /// literals that overflow.
    Int(i64),
    /// An identifier, e.g. `PedalPos`.
    Ident(String),

    // Keywords.
    /// `proc`
    KwProc,
    /// `int`
    KwInt,
    /// `bool`
    KwBool,
    /// `if`
    KwIf,
    /// `else`
    KwElse,
    /// `while`
    KwWhile,
    /// `assert`
    KwAssert,
    /// `assume`
    KwAssume,
    /// `skip`
    KwSkip,
    /// `return`
    KwReturn,
    /// `true`
    KwTrue,
    /// `false`
    KwFalse,

    // Punctuation.
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `;`
    Semi,
    /// `,`
    Comma,
    /// `=`
    Assign,

    // Operators.
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `%`
    Percent,
    /// `==`
    EqEq,
    /// `!=`
    NotEq,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `&&`
    AndAnd,
    /// `||`
    OrOr,
    /// `!`
    Bang,

    /// End of input (always the final token produced by the lexer).
    Eof,
}

impl TokenKind {
    /// Returns the keyword kind for `word`, if `word` is a keyword.
    pub fn keyword(word: &str) -> Option<TokenKind> {
        Some(match word {
            "proc" => TokenKind::KwProc,
            "int" => TokenKind::KwInt,
            "bool" => TokenKind::KwBool,
            "if" => TokenKind::KwIf,
            "else" => TokenKind::KwElse,
            "while" => TokenKind::KwWhile,
            "assert" => TokenKind::KwAssert,
            "assume" => TokenKind::KwAssume,
            "skip" => TokenKind::KwSkip,
            "return" => TokenKind::KwReturn,
            "true" => TokenKind::KwTrue,
            "false" => TokenKind::KwFalse,
            _ => return None,
        })
    }

    /// Short human-readable description used in parse-error messages.
    pub fn describe(&self) -> String {
        match self {
            TokenKind::Int(n) => format!("integer literal `{n}`"),
            TokenKind::Ident(s) => format!("identifier `{s}`"),
            TokenKind::Eof => "end of input".to_string(),
            other => format!("`{other}`"),
        }
    }
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let text = match self {
            TokenKind::Int(n) => return write!(f, "{n}"),
            TokenKind::Ident(s) => return write!(f, "{s}"),
            TokenKind::KwProc => "proc",
            TokenKind::KwInt => "int",
            TokenKind::KwBool => "bool",
            TokenKind::KwIf => "if",
            TokenKind::KwElse => "else",
            TokenKind::KwWhile => "while",
            TokenKind::KwAssert => "assert",
            TokenKind::KwAssume => "assume",
            TokenKind::KwSkip => "skip",
            TokenKind::KwReturn => "return",
            TokenKind::KwTrue => "true",
            TokenKind::KwFalse => "false",
            TokenKind::LParen => "(",
            TokenKind::RParen => ")",
            TokenKind::LBrace => "{",
            TokenKind::RBrace => "}",
            TokenKind::Semi => ";",
            TokenKind::Comma => ",",
            TokenKind::Assign => "=",
            TokenKind::Plus => "+",
            TokenKind::Minus => "-",
            TokenKind::Star => "*",
            TokenKind::Slash => "/",
            TokenKind::Percent => "%",
            TokenKind::EqEq => "==",
            TokenKind::NotEq => "!=",
            TokenKind::Lt => "<",
            TokenKind::Le => "<=",
            TokenKind::Gt => ">",
            TokenKind::Ge => ">=",
            TokenKind::AndAnd => "&&",
            TokenKind::OrOr => "||",
            TokenKind::Bang => "!",
            TokenKind::Eof => "<eof>",
        };
        f.write_str(text)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keywords_are_recognized() {
        assert_eq!(TokenKind::keyword("if"), Some(TokenKind::KwIf));
        assert_eq!(TokenKind::keyword("while"), Some(TokenKind::KwWhile));
        assert_eq!(TokenKind::keyword("proc"), Some(TokenKind::KwProc));
        assert_eq!(TokenKind::keyword("iff"), None);
        assert_eq!(TokenKind::keyword(""), None);
    }

    #[test]
    fn display_round_trips_punctuation() {
        assert_eq!(TokenKind::Le.to_string(), "<=");
        assert_eq!(TokenKind::AndAnd.to_string(), "&&");
        assert_eq!(TokenKind::Int(17).to_string(), "17");
        assert_eq!(TokenKind::Ident("x".into()).to_string(), "x");
    }

    #[test]
    fn describe_is_never_empty() {
        for kind in [
            TokenKind::Int(0),
            TokenKind::Ident("v".into()),
            TokenKind::Eof,
            TokenKind::KwIf,
            TokenKind::Le,
        ] {
            assert!(!kind.describe().is_empty());
        }
    }
}
